"""Legacy setup shim.

The offline environment ships setuptools without the ``wheel`` package,
so PEP 517 editable installs (which need ``bdist_wheel``) fail.  This
shim lets ``pip install -e . --no-use-pep517`` (and plain
``python setup.py develop``) work; configuration lives in pyproject.toml.
"""

from setuptools import setup

setup()
