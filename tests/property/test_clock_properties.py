"""Property-based tests: the named Lamport clock is a total order with
well-behaved merge and increment (paper Sec. 3.2)."""

from hypothesis import given, strategies as st

from repro.core.clock import ActivityClock

clocks = st.builds(
    ActivityClock,
    st.integers(min_value=0, max_value=1_000),
    st.text(alphabet="abcdef0123456789-", min_size=1, max_size=12),
)


@given(clocks, clocks)
def test_total_order_trichotomy(a, b):
    assert (a < b) + (a == b) + (a > b) == 1


@given(clocks, clocks, clocks)
def test_order_transitivity(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(clocks, clocks)
def test_comparison_antisymmetry(a, b):
    if a <= b and b <= a:
        assert a == b


@given(clocks, clocks)
def test_merge_commutative(a, b):
    assert a.merge(b) == b.merge(a)


@given(clocks, clocks, clocks)
def test_merge_associative(a, b, c):
    assert a.merge(b).merge(c) == a.merge(b.merge(c))


@given(clocks)
def test_merge_idempotent(a):
    assert a.merge(a) == a


@given(clocks, clocks)
def test_merge_is_upper_bound(a, b):
    merged = a.merge(b)
    assert merged >= a and merged >= b


@given(clocks, st.text(alphabet="abc", min_size=1, max_size=4))
def test_increment_strictly_dominates(clock, owner):
    incremented = clock.incremented(owner)
    assert incremented > clock
    assert incremented.owner == owner


@given(clocks, clocks, st.text(alphabet="abc", min_size=1, max_size=4))
def test_increment_after_merge_dominates_both(a, b, owner):
    """The Lamport property the consensus relies on: an activity that
    merges every clock it saw and then increments owns a clock greater
    than everything it saw."""
    incremented = a.merge(b).incremented(owner)
    assert incremented > a
    assert incremented > b


@given(clocks, clocks)
def test_hash_consistent_with_eq(a, b):
    if a == b:
        assert hash(a) == hash(b)
