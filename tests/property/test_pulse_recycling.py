"""Pulse-record recycling never leaks entries across instants.

The aggregated columnar core keeps a free list of per-instant pulse
records (``Network._pulse_pool``): a fired record is cleared and reused
by a later instant.  The properties checked here:

* every staged message is delivered exactly once, in stage order, no
  matter how stage/fire interleave — including re-staging *the same
  instant* from inside a pulse fire (the recycled record must not
  swallow or duplicate the re-staged traffic),
* fault-plan fallback traffic (delay rules force the per-envelope path)
  interleaved with pulse traffic neither leaks into recycled records
  nor disturbs per-channel FIFO,
* recycled records are returned empty (no entries survive the instant
  they were staged for).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.faults import FaultPlan
from repro.net.message import KIND_DGC_MESSAGE, KIND_DGC_RESPONSE
from repro.net.network import Network
from repro.net.topology import uniform_topology
from repro.sim.kernel import SimKernel

NODES = 3
KINDS = (KIND_DGC_MESSAGE, KIND_DGC_RESPONSE, "app.request")


class HookedList(list):
    """A list whose ``append`` can trigger a side effect — used to stage
    new traffic from inside a pulse fire."""

    hook = None

    def append(self, item):
        list.append(self, item)
        if self.hook is not None:
            self.hook(item)


def build_network(fault_plan=None, received=None):
    kernel = SimKernel()
    network = Network(
        kernel, uniform_topology(NODES, rtt_s=0.01), fault_plan=fault_plan
    )
    network.pulse_batching = True
    network.aggregate_site_pairs = True
    if received is None:
        received = []

    def register(name):
        def typed_sink(kind, item, payload, _name=name):
            received.append((_name, kind, item))

        def single(target, message, _name=name, _kind=KIND_DGC_MESSAGE):
            received.append((_name, _kind, target))

        def single_resp(target, message, _name=name):
            received.append((_name, KIND_DGC_RESPONSE, target))

        def batch(targets, messages, _name=name):
            for target in targets:
                received.append((_name, KIND_DGC_MESSAGE, target))

        def batch_resp(targets, messages, _name=name):
            for target in targets:
                received.append((_name, KIND_DGC_RESPONSE, target))

        network.register_node(
            name,
            lambda env: received.append(
                (name, env.kind, env.payload[0]
                 if isinstance(env.payload, tuple) else env.payload)
            ),
            typed_sink,
            dgc_sinks={
                KIND_DGC_MESSAGE: (single, batch),
                KIND_DGC_RESPONSE: (single_resp, batch_resp),
            },
        )

    for index in range(NODES):
        register(f"site-{index}")
    return kernel, network, received


message_strategy = st.tuples(
    st.integers(min_value=0, max_value=NODES - 1),  # source
    st.integers(min_value=0, max_value=NODES - 1),  # dest
    st.sampled_from(KINDS),
)


@settings(max_examples=60, deadline=None)
@given(st.lists(message_strategy, min_size=1, max_size=60))
def test_every_staged_message_is_delivered_exactly_once_in_order(sends):
    kernel, network, received = build_network()
    expected = {}
    for index, (src, dst, kind) in enumerate(sends):
        source, dest = f"site-{src}", f"site-{dst}"
        if kind == "app.request":
            network.send_typed(source, dest, kind, 10, index)
        else:
            network.send_dgc_single(source, dest, kind, 10, index, object())
        expected.setdefault((source, dest), []).append(index)
    kernel.run()
    # Exactly once, and per-channel FIFO (stage order) holds.
    assert sorted(item for __, __, item in received) == sorted(
        range(len(sends))
    )
    seen = {}
    order = {index: pos for pos, (__, __, index) in enumerate(received)}
    for (source, dest), items in expected.items():
        positions = [order[item] for item in items]
        assert positions == sorted(positions), (source, dest)
        seen[(source, dest)] = items
    # The pool holds only empty records.
    assert all(len(record) == 0 for record in network._pulse_pool)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(message_strategy, min_size=1, max_size=30),
    st.lists(message_strategy, min_size=1, max_size=30),
)
def test_restaging_the_same_instant_from_a_fire_does_not_leak(first, second):
    """Stage, fire, and stage the same instant again (from inside the
    pulse fire): the recycled record must not leak either wave."""
    received = HookedList()
    kernel, network, received = build_network(received=received)
    total = len(first) + len(second)
    fired_into = {"done": False}

    def stage(wave, offset):
        for index, (src, dst, kind) in enumerate(wave):
            source, dest = f"site-{src}", f"site-{dst}"
            if kind == "app.request":
                network.send_typed(source, dest, kind, 10, offset + index)
            else:
                network.send_dgc_single(
                    source, dest, kind, 10, offset + index, object()
                )

    # The first delivery stages the second wave — while the first pulse
    # is mid-fire, targeting the same (and nearby) instants.
    def on_delivery(entry):
        if not fired_into["done"]:
            fired_into["done"] = True
            stage(second, len(first))

    received.hook = on_delivery
    stage(first, 0)
    kernel.run()
    delivered = sorted(item for __, __, item in received)
    assert delivered == sorted(range(total))
    assert all(len(record) == 0 for record in network._pulse_pool)


@settings(max_examples=40, deadline=None)
@given(
    st.lists(message_strategy, min_size=1, max_size=40),
    st.integers(min_value=0, max_value=NODES - 1),
    st.integers(min_value=0, max_value=NODES - 1),
)
def test_fault_plan_fallback_interleaving_keeps_fifo_and_pool_clean(
    sends, delayed_src, delayed_dst
):
    """Delay rules force some channels onto the per-envelope path;
    interleaved pulse/fallback traffic still delivers exactly once and
    per-channel FIFO holds (the fallback keeps channel order)."""
    plan = FaultPlan()
    kernel, network, received = build_network(fault_plan=plan)
    plan.add_delay(0.05, kind=None)  # every channel: variable latency
    for index, (src, dst, kind) in enumerate(sends):
        source, dest = f"site-{src}", f"site-{dst}"
        if kind == "app.request":
            network.send_typed(source, dest, kind, 10, index)
        else:
            network.send_dgc_single(source, dest, kind, 10, index, object())
    kernel.run()
    items = [item for __, __, item in received]
    # Envelope fallback wraps paired kinds; unwrap already done in sink.
    assert sorted(items) == sorted(range(len(sends)))
    assert all(len(record) == 0 for record in network._pulse_pool)
