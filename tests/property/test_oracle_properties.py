"""Property-based tests: the garbage oracle satisfies Eq. 1 exactly on
random graphs, and garbage sets are well-behaved."""

from hypothesis import given, strategies as st

from repro.graph.oracle import garbage_of_snapshot
from repro.graph.refgraph import ReferenceGraphSnapshot


@st.composite
def snapshots(draw):
    count = draw(st.integers(min_value=1, max_value=10))
    ids = [f"ao-{index}" for index in range(count)]
    idle = {aid: draw(st.booleans()) for aid in ids}
    edges = {}
    for source in ids:
        targets = draw(
            st.sets(st.sampled_from(ids), max_size=count)
        )
        targets.discard(None)
        if targets:
            edges[source] = targets
    return ReferenceGraphSnapshot(time=0.0, edges=edges, idle=idle)


@given(snapshots())
def test_matches_direct_eq1_evaluation(snapshot):
    """Garbage(x) <=> every y ->* x is idle, computed the slow way."""
    garbage = garbage_of_snapshot(snapshot)
    for activity in snapshot.idle:
        closure = snapshot.transitive_referencers(activity)
        expected = all(snapshot.idle[y] for y in closure)
        assert (activity in garbage) == expected


@given(snapshots())
def test_busy_activities_never_garbage(snapshot):
    garbage = garbage_of_snapshot(snapshot)
    for activity, idle in snapshot.idle.items():
        if not idle:
            assert activity not in garbage


@given(snapshots())
def test_garbage_closed_under_referencers(snapshot):
    """If x is garbage, every referencer of x is garbage too (a live
    referencer would make x live)."""
    garbage = garbage_of_snapshot(snapshot)
    for activity in garbage:
        for referencer in snapshot.referencers_of(activity):
            assert referencer in garbage


@given(snapshots())
def test_pinning_only_shrinks_garbage(snapshot):
    garbage = garbage_of_snapshot(snapshot)
    if not snapshot.idle:
        return
    pinned = {next(iter(snapshot.idle))}
    garbage_pinned = garbage_of_snapshot(snapshot, pinned=pinned)
    assert garbage_pinned <= garbage


@given(snapshots())
def test_all_idle_graph_is_fully_garbage(snapshot):
    all_idle = ReferenceGraphSnapshot(
        time=0.0,
        edges=snapshot.edges,
        idle={aid: True for aid in snapshot.idle},
    )
    assert garbage_of_snapshot(all_idle) == set(all_idle.idle)
