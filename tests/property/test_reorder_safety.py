"""Property suite for the protocol-safe reordering class
(:mod:`repro.net.reorder`) — the relaxed tier's license.

Three layers:

1. The predicate itself: per-stream FIFO violations and
   delivered-earlier violations are caught; cross-stream permutations
   pass; :func:`~repro.net.reorder.safe_shuffle` only ever produces
   schedules the predicate accepts.
2. Live schedules: random protocol-safe shuffles applied to every pulse
   of full torture runs (via the fabric's ``pulse_permuter`` hook)
   leave the world bit-identical — collection outcomes, stats, and the
   tracer stream up to same-instant permutation — across seeds.
3. The relaxed core's actual delivery schedule, recorded at the
   network fabric, is a protocol-safe reordering (deferral included) of
   the exact core's schedule for the same send sequence.
"""

import random

import pytest

from repro.core.config import DgcConfig
from repro.net.kinds import KIND_DGC_MESSAGE, KIND_DGC_RESPONSE
from repro.net.network import Network
from repro.net.reorder import (
    find_violation,
    is_protocol_safe,
    safe_shuffle,
    stream_key,
)
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.sim.kernel import SimKernel
from repro.workloads.torture import run_torture
from tests.equiv import canonical_tracer, outcome_fingerprint


# ----------------------------------------------------------------------
# 1. The predicate
# ----------------------------------------------------------------------

def record(time, source, dest, kind, seq):
    return (time, source, dest, kind, seq)


def rec_key(r):
    return stream_key(r[1], r[2], r[3])


def rec_time(r):
    return r[0]


def rec_ident(r):
    return r[4]


SCHEDULE = [
    record(1.0, "a", "b", "dgc.message", 0),
    record(1.0, "a", "b", "dgc.response", 1),
    record(1.0, "c", "b", "dgc.message", 2),
    record(1.0, "a", "b", "dgc.message", 3),
    record(2.0, "a", "b", "dgc.message", 4),
    record(2.0, "c", "b", "dgc.message", 5),
]


def test_identity_is_protocol_safe():
    assert is_protocol_safe(SCHEDULE, SCHEDULE, key=rec_key, time=rec_time)


def test_cross_stream_same_instant_swap_is_safe():
    swapped = list(SCHEDULE)
    swapped[0], swapped[2] = swapped[2], swapped[0]
    assert is_protocol_safe(swapped, SCHEDULE, key=rec_key, time=rec_time)


def test_fifo_violating_shuffle_is_rejected():
    broken = list(SCHEDULE)
    # Same stream (a -> b, dgc.message), same instant: positions 0 and 3.
    broken[0], broken[3] = broken[3], broken[0]
    violation = find_violation(
        SCHEDULE, broken, key=rec_key, time=rec_time, ident=rec_ident
    )
    assert violation is not None
    assert "FIFO" in violation


def test_delivering_earlier_is_rejected():
    # Stream (c -> b, dgc.message) keeps its order (seq 2 then seq 5),
    # but seq 5 is delivered at 1.0 instead of 2.0: a pure deferral
    # violation with FIFO and global time order intact.
    hasty = [
        SCHEDULE[0], SCHEDULE[1], SCHEDULE[2],
        record(1.0, "c", "b", "dgc.message", 5),
        SCHEDULE[3], SCHEDULE[4],
    ]
    violation = find_violation(
        SCHEDULE, hasty, key=rec_key, time=rec_time, ident=rec_ident
    )
    assert violation is not None
    assert "earlier" in violation


def test_dropping_or_inventing_deliveries_is_rejected():
    assert find_violation(SCHEDULE, SCHEDULE[:-1], key=rec_key) is not None
    moved = list(SCHEDULE)
    moved[0] = record(1.0, "z", "b", "dgc.message", 0)
    assert "stream sets" in find_violation(SCHEDULE, moved, key=rec_key)


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_safe_shuffle_always_satisfies_the_predicate(seed):
    rng = random.Random(seed)
    for _ in range(50):
        schedule = []
        clock = 0.0
        for seq in range(rng.randrange(1, 40)):
            if rng.random() < 0.3:
                clock += rng.choice([0.5, 1.0])
            schedule.append(record(
                clock,
                rng.choice("abc"),
                rng.choice("xy"),
                rng.choice(("dgc.message", "dgc.response", "app.request")),
                seq,
            ))
        shuffled = safe_shuffle(schedule, rng, key=rec_key, time=rec_time)
        assert is_protocol_safe(
            schedule, shuffled, key=rec_key, time=rec_time, ident=rec_ident
        )


# ----------------------------------------------------------------------
# 2. Live schedules: permuted pulses leave the world unchanged
# ----------------------------------------------------------------------

CONFIG = DgcConfig(ttb=2.0, tta=5.0)


def entry_stream(entry):
    """FIFO-stream coordinate of one staged pulse entry."""
    channel, _sink, dest, kind, _item, _payload = entry
    source = channel.source if channel is not None else "local"
    return stream_key(source, dest, kind)


def run_torture_case(shuffle_seed=None, aggregation="exact"):
    reset_id_counter()
    if shuffle_seed is not None:
        rng = random.Random(shuffle_seed)

        def permuter(_delivery_time, entries):
            # One pulse == one delivery instant: every interleaving of
            # the per-stream subsequences is protocol-safe.
            return safe_shuffle(entries, rng, key=entry_stream)

        original_init = Network.__init__

        def patched_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            self.pulse_permuter = permuter

        Network.__init__ = patched_init
    try:
        return run_torture(
            dgc=CONFIG,
            slave_count=24,
            active_duration=40.0,
            topology=uniform_topology(6),
            seed=7,
            sample_period=10.0,
            collect_timeout=4_000.0,
            beat_slots=4,
            aggregation=aggregation,
            trace=True,
            keep_world=True,
        )
    finally:
        if shuffle_seed is not None:
            Network.__init__ = original_init


@pytest.mark.parametrize("shuffle_seed", [11, 23, 47])
def test_protocol_safe_shuffles_collect_identically(shuffle_seed):
    """Random protocol-safe shuffles of every live pulse leave the
    collection outcomes identical, and — while every holder is still
    beating (the active phase, when records cannot expire) — even the
    tracer stream is identical up to same-instant permutation.  Once
    the collapse phase's expiry checks start racing same-instant
    refreshes, instants may shift by a beat; the outcome tier is what
    survives, which is exactly the relaxed tier's contract."""
    baseline = run_torture_case()
    shuffled = run_torture_case(shuffle_seed=shuffle_seed)
    assert baseline.all_collected and shuffled.all_collected
    assert outcome_fingerprint(shuffled) == outcome_fingerprint(baseline)
    assert canonical_tracer(shuffled, until=40.0) == canonical_tracer(
        baseline, until=40.0
    )


# ----------------------------------------------------------------------
# 3. The relaxed core's schedule is protocol-safe against exact's
# ----------------------------------------------------------------------

def fabric(relaxed):
    kernel = SimKernel()
    network = Network(kernel, uniform_topology(2, rtt_s=0.01))
    network.pulse_batching = True
    network.aggregate_site_pairs = True
    if relaxed:
        network.configure_relaxed(1.0)
    deliveries = []

    def register(node):
        def single(kind):
            return lambda item, payload: deliveries.append(
                (kernel.now, "peer", node, kind, item)
            )

        def batch(kind):
            def handler(targets, messages):
                deliveries.extend(
                    (kernel.now, "peer", node, kind, item) for item in targets
                )
            return handler

        network.register_node(
            node, lambda env: None, lambda kind, item, payload: None,
            dgc_sinks={
                KIND_DGC_MESSAGE: (single(KIND_DGC_MESSAGE),
                                   batch(KIND_DGC_MESSAGE)),
                KIND_DGC_RESPONSE: (single(KIND_DGC_RESPONSE),
                                    batch(KIND_DGC_RESPONSE)),
            },
        )

    register("site-0")
    register("site-1")
    return kernel, network, deliveries


def drive(relaxed):
    """One fixed DGC send script: message bursts and responses from
    site-0 to site-1 spread over a few instants."""
    kernel, network, deliveries = fabric(relaxed)
    seq = 0

    def send(kind, count):
        nonlocal seq
        for _ in range(count):
            network.send_dgc_single(
                "site-0", "site-1", kind, 64, f"{kind}#{seq}", None
            )
            seq += 1

    for i, at in enumerate((0.1, 0.4, 0.7, 1.3, 1.9, 2.2, 3.5)):
        kernel.schedule_fire_at(at, send, (KIND_DGC_MESSAGE, 3))
        kernel.schedule_fire_at(at, send, (KIND_DGC_RESPONSE, 1 + i % 2))
    kernel.run()
    return network, deliveries


def test_relaxed_schedule_is_protocol_safe_reordering_of_exact():
    exact_net, exact = drive(relaxed=False)
    relaxed_net, relaxed = drive(relaxed=True)
    violation = find_violation(
        exact, relaxed,
        key=lambda r: stream_key(r[1], r[2], r[3]),
        time=lambda r: r[0],
        ident=lambda r: r[4],
    )
    assert violation is None, violation
    # ... and strictly cheaper: fewer staged entries for the same sends.
    assert relaxed_net.relaxed_flush_count > 0
    assert relaxed_net.staged_entry_count < exact_net.staged_entry_count


def test_relaxed_schedule_reversed_is_rejected():
    _net, exact = drive(relaxed=False)
    backwards = list(reversed(exact))
    assert not is_protocol_safe(
        exact, backwards,
        key=lambda r: stream_key(r[1], r[2], r[3]),
        time=lambda r: r[0],
        ident=lambda r: r[4],
    )
