"""Property-based tests: per-pair FIFO delivery under arbitrary latency
sequences (the ordering guarantee of paper Sec. 3.2)."""

from hypothesis import given, strategies as st

from repro.net.channel import FifoChannel
from repro.net.message import Envelope
from repro.sim.kernel import SimKernel


def envelope(index):
    return Envelope(
        source_node="a",
        dest_node="b",
        kind="app.request",
        size_bytes=1,
        payload=index,
        deliver=lambda p: None,
    )


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=40,
    )
)
def test_fifo_order_for_any_latency_sequence(latencies):
    kernel = SimKernel()
    iterator = iter(latencies)
    channel = FifoChannel(kernel, "a", "b", lambda env: next(iterator))
    received = []
    for index in range(len(latencies)):
        channel.send(envelope(index), lambda env: received.append(env.payload))
    kernel.run()
    assert received == list(range(len(latencies)))


@given(
    st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
            st.floats(min_value=0.0, max_value=5.0, allow_nan=False),
        ),
        min_size=1,
        max_size=30,
    )
)
def test_fifo_order_with_interleaved_send_times(items):
    """Sends spread over simulated time still deliver in send order."""
    kernel = SimKernel()
    channel_latency = {}
    channel = FifoChannel(
        kernel, "a", "b", lambda env: channel_latency[env.payload]
    )
    received = []
    send_time = 0.0
    for index, (gap, latency) in enumerate(items):
        send_time += gap
        channel_latency[index] = latency
        kernel.schedule_at(
            send_time,
            lambda index=index: channel.send(
                envelope(index), lambda env: received.append(env.payload)
            ),
        )
    kernel.run()
    assert received == list(range(len(items)))


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=10.0, allow_nan=False),
        min_size=1,
        max_size=30,
    )
)
def test_delivery_never_before_send(latencies):
    kernel = SimKernel()
    iterator = iter(latencies)
    channel = FifoChannel(kernel, "a", "b", lambda env: next(iterator))
    deliveries = []
    for index in range(len(latencies)):
        channel.send(
            envelope(index),
            lambda env: deliveries.append((env.sent_at, kernel.now)),
        )
    kernel.run()
    for sent_at, delivered_at in deliveries:
        assert delivered_at >= sent_at
