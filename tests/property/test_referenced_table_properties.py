"""Property-based tests on the referenced table under random operation
sequences: the Sec. 3.1 needs_send rule and tag-generation rules can
never be violated regardless of interleaving."""

from hypothesis import given, strategies as st

from repro.core.referenced import ReferencedTable
from repro.runtime.proxy import RemoteRef, StubTag

TARGETS = ["t0", "t1", "t2"]

#: Operations: ("deserialize", target) | ("tag_dead", target) |
#: ("broadcast",) — clears needs_send like a beat does |
#: ("pop",) — pop removable records.
operations = st.lists(
    st.one_of(
        st.tuples(st.just("deserialize"), st.sampled_from(TARGETS)),
        st.tuples(st.just("tag_dead"), st.sampled_from(TARGETS)),
        st.tuples(st.just("broadcast")),
        st.tuples(st.just("pop")),
    ),
    max_size=40,
)


def run_ops(ops):
    table = ReferencedTable()
    generations = {target: 0 for target in TARGETS}
    live_tags = {}
    popped = []
    for op in ops:
        if op[0] == "deserialize":
            target = op[1]
            generations[target] += 1
            tag = StubTag("self", target, generations[target])
            live_tags[target] = tag
            table.on_deserialized(RemoteRef(target, "n0"), tag)
        elif op[0] == "tag_dead":
            target = op[1]
            tag = live_tags.get(target)
            if tag is not None:
                tag.dead = True
                table.on_tag_dead(tag)
        elif op[0] == "broadcast":
            for record in table.records():
                record.messages_sent += 1
                record.needs_send = False
        elif op[0] == "pop":
            popped.extend(table.pop_removable())
    return table, popped


@given(operations)
def test_popped_records_satisfied_needs_send(ops):
    """Nothing is ever removed before its mandatory first send."""
    __, popped = run_ops(ops)
    for record in popped:
        assert not record.needs_send
        assert record.tag_dead


@given(operations)
def test_live_tag_records_never_removable(ops):
    table, __ = run_ops(ops)
    for record in table.records():
        if record.tag is not None and not record.tag.dead:
            assert not record.removable


@given(operations)
def test_at_most_one_record_per_target(ops):
    table, __ = run_ops(ops)
    ids = table.ids()
    assert len(ids) == len(set(ids))


@given(operations)
def test_redeserialized_target_is_alive_again(ops):
    """A deserialization after a tag death resurrects the edge with a
    fresh generation (never wrongly removable)."""
    table, __ = run_ops(ops)
    for record in table.records():
        if record.tag is not None and not record.tag.dead:
            assert not record.tag_dead
