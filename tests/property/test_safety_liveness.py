"""End-to-end property-based tests of the whole DGC:

* **Safety** — under random reference graphs, random work schedules and
  random reference drops, no activity reachable from a non-idle activity
  is ever collected (the world's oracle monitor raises on violation).
* **Liveness** — once the application quiesces and the driver releases
  its stubs, *everything* is eventually collected.

Each example builds a small world, drives it for a bounded simulated
time, then asserts both properties.  hypothesis explores graph shapes
(including self-edges and dense cycles) and schedules.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.workloads.app import Peer, release_all
from repro.world import World

CONFIG = DgcConfig(ttb=1.0, tta=3.0)


@st.composite
def scenarios(draw):
    count = draw(st.integers(min_value=2, max_value=7))
    edges = draw(
        st.sets(
            st.tuples(
                st.integers(0, count - 1), st.integers(0, count - 1)
            ),
            max_size=count * 3,
        )
    )
    work_items = draw(
        st.lists(
            st.tuples(
                st.integers(0, count - 1),
                st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
            ),
            max_size=4,
        )
    )
    if edges:
        drops = draw(
            st.lists(st.sampled_from(sorted(edges)), max_size=3)
        )
    else:
        drops = []
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return count, sorted(edges), work_items, drops, seed


@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(scenarios())
def test_safety_and_liveness_on_random_worlds(scenario):
    count, edges, work_items, drops, seed = scenario
    reset_id_counter()
    world = World(
        uniform_topology(3),
        dgc=CONFIG,
        seed=seed,
        safety_checks=True,  # raises ProtocolError on any wrongful kill
        trace=False,
    )
    driver = world.create_driver()
    peers = [
        driver.context.create(Peer(), name=f"p{index}")
        for index in range(count)
    ]
    for source, target in edges:
        driver.context.call(
            peers[source],
            "hold",
            refs=[peers[target]],
            data=[f"edge{target}"],
        )
    world.run_for(2.0)

    # Random work: busy phases interleaved with the DGC's beats.
    for index, duration in work_items:
        driver.context.call(peers[index], "work", data=duration)
    world.run_for(3.0)

    # Random edge drops (local GC collecting stubs mid-protocol).
    for source, target in drops:
        driver.context.call(
            peers[source], "drop", data=[f"edge{target}"]
        )
    world.run_for(5.0)

    # SAFETY: so far, with the driver still holding every peer, nothing
    # may have been collected at all.
    assert world.stats.collected_total == 0
    assert world.stats.safety_violations == 0

    # The application quiesces; main() returns.
    release_all(driver, peers)

    # LIVENESS: every peer is eventually collected (they are all garbage
    # now — no roots reference them).
    assert world.run_until_collected(300 * CONFIG.tta), (
        f"survivors: {[a.id for a in world.live_non_roots()]}"
    )
    assert world.stats.collected_total == count
    assert world.stats.safety_violations == 0
    assert world.stats.dead_letters == 0


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=2, max_value=6),
    st.integers(min_value=0, max_value=2**16),
)
def test_liveness_on_dense_cycles(size, seed):
    """Fully-connected idle graphs (worst-case cycles) always collapse."""
    reset_id_counter()
    world = World(
        uniform_topology(2),
        dgc=CONFIG,
        seed=seed,
        safety_checks=True,
        trace=False,
    )
    driver = world.create_driver()
    peers = [
        driver.context.create(Peer(), name=f"d{index}")
        for index in range(size)
    ]
    for index, source in enumerate(peers):
        refs = [p for j, p in enumerate(peers) if j != index]
        keys = [f"k{j}" for j in range(size) if j != index]
        driver.context.call(source, "hold", refs=refs, data=keys)
    world.run_for(2.0)
    release_all(driver, peers)
    assert world.run_until_collected(300 * CONFIG.tta)
    assert world.stats.safety_violations == 0


@settings(max_examples=10, deadline=None)
@given(
    st.integers(min_value=1, max_value=5),
    st.integers(min_value=0, max_value=2**16),
)
def test_safety_with_live_pin_on_random_cycle(size, seed):
    """A cycle pinned by the root driver is never collected, no matter
    how long the DGC runs."""
    reset_id_counter()
    world = World(
        uniform_topology(2),
        dgc=CONFIG,
        seed=seed,
        safety_checks=True,
        trace=False,
    )
    driver = world.create_driver()
    peers = [
        driver.context.create(Peer(), name=f"c{index}")
        for index in range(size)
    ]
    for index, source in enumerate(peers):
        target = peers[(index + 1) % size]
        driver.context.call(
            source, "hold", refs=[target], data=["next"]
        )
    world.run_for(2.0)
    release_all(driver, peers[1:])
    world.run_for(30 * CONFIG.tta)
    assert len(world.live_non_roots()) == size
    assert world.stats.collected_total == 0
