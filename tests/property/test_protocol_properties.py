"""Property-based tests on the pure protocol state machine: invariants
that must hold under any sequence of message/response deliveries."""

from hypothesis import given, strategies as st

from repro.core.clock import ActivityClock
from repro.core.protocol import DgcState, process_message, process_response
from repro.core.wire import DgcMessage, DgcResponse
from repro.runtime.proxy import RemoteRef, StubTag

SENDERS = [f"ao-{index}" for index in range(4)]
TARGETS = [f"tgt-{index}" for index in range(3)]

clocks = st.builds(
    ActivityClock,
    st.integers(min_value=0, max_value=20),
    st.sampled_from(SENDERS + TARGETS + ["self"]),
)

messages = st.builds(
    DgcMessage,
    sender=st.sampled_from(SENDERS),
    clock=clocks,
    consensus=st.booleans(),
    sender_ref=st.sampled_from(SENDERS).map(lambda s: RemoteRef(s, "n0")),
)

responses = st.builds(
    DgcResponse,
    responder=st.sampled_from(TARGETS),
    clock=clocks,
    has_parent=st.booleans(),
    consensus_reached=st.just(False),
)

deliveries = st.lists(
    st.one_of(messages, responses), min_size=0, max_size=40
)


def fresh_state():
    state = DgcState(self_id="self", clock=ActivityClock(0, "self"))
    for target in TARGETS:
        tag = StubTag("self", target, 1)
        state.referenced.on_deserialized(RemoteRef(target, "n0"), tag)
    return state


def run_sequence(state, sequence):
    now = 0.0
    for item in sequence:
        now += 1.0
        if isinstance(item, DgcMessage):
            process_message(state, item, now)
        else:
            process_response(state, item)


@given(deliveries)
def test_clock_never_decreases(sequence):
    state = fresh_state()
    previous = state.clock
    now = 0.0
    for item in sequence:
        now += 1.0
        if isinstance(item, DgcMessage):
            process_message(state, item, now)
        else:
            process_response(state, item)
        assert state.clock >= previous
        previous = state.clock


@given(deliveries)
def test_clock_is_max_of_seen_message_clocks(sequence):
    state = fresh_state()
    run_sequence(state, sequence)
    seen = [ActivityClock(0, "self")] + [
        item.clock for item in sequence if isinstance(item, DgcMessage)
    ]
    assert state.clock == max(seen)


@given(deliveries)
def test_parent_is_always_a_referenced_activity_or_none(sequence):
    state = fresh_state()
    run_sequence(state, sequence)
    assert state.parent is None or state.parent in state.referenced


@given(deliveries)
def test_owner_never_has_parent(sequence):
    """The originator is the root of the reverse spanning tree."""
    state = fresh_state()
    now = 0.0
    for item in sequence:
        now += 1.0
        if isinstance(item, DgcMessage):
            process_message(state, item, now)
        else:
            process_response(state, item)
        if state.owns_clock:
            assert state.parent is None


@given(deliveries)
def test_parent_only_with_matching_candidate(sequence):
    """Whenever a parent is adopted, the adopting response proposed
    exactly the current clock."""
    state = fresh_state()
    now = 0.0
    for item in sequence:
        now += 1.0
        if isinstance(item, DgcMessage):
            process_message(state, item, now)
        else:
            before = state.parent
            process_response(state, item)
            if state.parent is not None and before is None:
                assert item.clock == state.clock
                assert item.has_parent


@given(deliveries)
def test_referencer_records_track_last_message(sequence):
    state = fresh_state()
    run_sequence(state, sequence)
    last_by_sender = {}
    for item in sequence:
        if isinstance(item, DgcMessage):
            last_by_sender[item.sender] = item
    for sender, message in last_by_sender.items():
        record = state.referencers.get(sender)
        assert record is not None
        assert record.clock == message.clock
        assert record.consensus == message.consensus


@given(deliveries)
def test_response_never_advances_clock(sequence):
    """Fig. 4 invariant, stated over arbitrary histories: only messages
    (never responses) can advance the activity clock."""
    state = fresh_state()
    now = 0.0
    for item in sequence:
        now += 1.0
        if isinstance(item, DgcMessage):
            process_message(state, item, now)
        else:
            before = state.clock
            process_response(state, item)
            assert state.clock == before
