"""The shard wire codec round-trips staged pulse batches bit-identically.

The cross-shard frame is the columnar pulse made literal: whatever the
egress stages must come back from ``unpack_frame(pack_frame(...))``
field-for-field equal, for every traffic family the fabric routes —
app requests/replies, DGC singles, registry messages, and the site-pair
aggregate columns (flat target/message lists) the relaxed tier emits.
Kinds must come back as the *canonical interned constants* (the columnar
fire loop dispatches on kind identity).  Truncated or corrupted buffers
must raise :class:`WireFormatError`, never return garbage.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ActivityClock
from repro.core.wire import DgcMessage, DgcResponse
from repro.net import kinds
from repro.net.wire import (
    Frame,
    WireFormatError,
    kind_table,
    pack_frame,
    unpack_frame,
)
from repro.runtime.proxy import RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryBind,
    RegistryInvalidate,
    RegistryLookup,
    RegistryPush,
    RegistryRenew,
    RegistryRenewAck,
    RegistryReply,
    Reply,
    ReplyAddress,
    Request,
)

NODES = tuple(f"site-{index}" for index in range(6))
NODE_INDEX = {name: position for position, name in enumerate(NODES)}

AGG_DGC_MESSAGE = kinds.AGGREGATE_KINDS[kinds.KIND_DGC_MESSAGE]
AGG_DGC_RESPONSE = kinds.AGGREGATE_KINDS[kinds.KIND_DGC_RESPONSE]


# ----------------------------------------------------------------------
# Strategies: one per fabric message family
# ----------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=999999).map(
    lambda n: f"ao-{n:08d}:slave{n % 97}"
)
node_names = st.sampled_from(NODES)
clocks = st.builds(
    ActivityClock, st.integers(min_value=0, max_value=1 << 40), ids
)
remote_refs = st.builds(RemoteRef, ids, node_names)
reply_addresses = st.builds(
    ReplyAddress, node_names, ids, st.integers(min_value=1, max_value=1 << 50)
)
plain_data = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(1 << 70), max_value=1 << 70),
        st.floats(allow_nan=False),
        st.text(max_size=12),
        st.binary(max_size=12),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=8,
)

requests = st.builds(
    Request,
    method=st.sampled_from(["do_hold", "do_run", "do_ping"]),
    sender=ids,
    target=ids,
    payload_bytes=st.integers(min_value=0, max_value=1 << 20),
    refs=st.lists(remote_refs, max_size=5).map(tuple),
    data=plain_data,
    reply_to=st.one_of(st.none(), reply_addresses),
    request_id=st.integers(min_value=1, max_value=1 << 40),
)
replies = st.builds(
    Reply,
    future_id=st.integers(min_value=1, max_value=1 << 40),
    target_activity=ids,
    payload_bytes=st.integers(min_value=0, max_value=1 << 20),
    refs=st.lists(remote_refs, max_size=5).map(tuple),
    data=plain_data,
)
dgc_messages = st.builds(
    DgcMessage,
    sender=ids,
    clock=clocks,
    consensus=st.booleans(),
    sender_ref=remote_refs,
    sender_ttb=st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)
dgc_responses = st.builds(
    DgcResponse,
    responder=ids,
    clock=clocks,
    has_parent=st.booleans(),
    consensus_reached=st.booleans(),
    depth=st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
)
registry_items = st.one_of(
    st.builds(
        RegistryLookup,
        name=st.text(max_size=16),
        reply_to=st.one_of(st.none(), reply_addresses),
    ),
    st.builds(
        RegistryReply,
        future_id=st.integers(min_value=1, max_value=1 << 40),
        target_activity=ids,
        name=st.text(max_size=16),
        ref=st.one_of(st.none(), remote_refs),
        lease_s=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    ),
    st.builds(
        RegistryBind,
        name=st.text(max_size=16),
        ref=st.one_of(st.none(), remote_refs),
        reply_to=st.one_of(st.none(), reply_addresses),
    ),
    st.builds(
        RegistryAck,
        future_id=st.integers(min_value=1, max_value=1 << 40),
        target_activity=ids,
        name=st.text(max_size=16),
        ok=st.booleans(),
        error=st.text(max_size=24),
    ),
    st.builds(
        RegistryRenew,
        node=node_names,
        names=st.lists(st.text(max_size=10), max_size=5),
    ),
    st.builds(
        RegistryRenewAck,
        names=st.lists(st.text(max_size=10), max_size=5),
        lease_s=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    ),
    st.builds(
        RegistryInvalidate,
        names=st.lists(st.text(max_size=10), max_size=5),
    ),
    st.builds(
        RegistryPush,
        bindings=st.lists(
            st.tuples(st.text(max_size=10), remote_refs), max_size=5
        ).map(tuple),
    ),
)

deliveries = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def entry_for(kind):
    """A staged-entry strategy whose item/payload match ``kind``'s shape."""
    if kind is kinds.KIND_DGC_MESSAGE:
        item, payload = ids, dgc_messages
    elif kind is kinds.KIND_DGC_RESPONSE:
        item, payload = ids, dgc_responses
    elif kind is AGG_DGC_MESSAGE:
        item = st.lists(ids, min_size=1, max_size=6)
        payload = st.lists(dgc_messages, min_size=1, max_size=6)
    elif kind is AGG_DGC_RESPONSE:
        item = st.lists(ids, min_size=1, max_size=6)
        payload = st.lists(dgc_responses, min_size=1, max_size=6)
    elif kind is kinds.KIND_APP_REQUEST:
        item, payload = requests, st.none()
    elif kind is kinds.KIND_APP_REPLY:
        item, payload = replies, st.none()
    else:
        item, payload = registry_items, st.none()
    return st.tuples(deliveries, node_names, st.just(kind), item, payload)


staged_entries = st.one_of([entry_for(kind) for kind in kind_table()])
staged_batches = st.lists(staged_entries, max_size=12)
stamps = st.tuples(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=1 << 30),
)


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------


@settings(max_examples=200, deadline=None)
@given(batch=staged_batches, stamp=stamps)
def test_roundtrip_bit_identical(batch, stamp):
    shard, seq = stamp
    buf = pack_frame(shard, seq, batch, NODE_INDEX)
    frame = unpack_frame(buf, NODES)
    assert isinstance(frame, Frame)
    assert frame.src_shard == shard
    assert frame.seq == seq
    assert len(frame.entries) == len(batch)
    for original, decoded in zip(batch, frame.entries):
        assert decoded == original
        # Kind identity, not just equality: the columnar fire loop
        # dispatches with ``is`` against the canonical constants.
        assert decoded[2] is original[2]


@settings(max_examples=100, deadline=None)
@given(batch=staged_batches, stamp=stamps)
def test_truncation_always_raises(batch, stamp):
    buf = pack_frame(stamp[0], stamp[1], batch, NODE_INDEX)
    for cut in range(0, len(buf), max(1, len(buf) // 17)):
        if cut == len(buf):
            continue
        with pytest.raises(WireFormatError):
            unpack_frame(buf[:cut], NODES)


def test_every_kind_has_a_column_shape():
    """The strategy table covers every registered kind — a kind added
    without extending the codec test fails here, not silently."""
    covered = {
        kinds.KIND_DGC_MESSAGE,
        kinds.KIND_DGC_RESPONSE,
        AGG_DGC_MESSAGE,
        AGG_DGC_RESPONSE,
        kinds.KIND_APP_REQUEST,
        kinds.KIND_APP_REPLY,
    }
    for kind in kind_table():
        assert kind in covered or kind.startswith("registry."), kind


def test_bad_magic_rejected():
    buf = pack_frame(1, 7, [], NODE_INDEX)
    corrupt = b"\x00\x00" + buf[2:]
    with pytest.raises(WireFormatError, match="magic"):
        unpack_frame(corrupt, NODES)


def test_unknown_tag_rejected():
    entry = (1.0, NODES[0], kinds.KIND_APP_REQUEST,
             Request("do_ping", "ao-1:a", "ao-2:b"), None)
    buf = pack_frame(0, 0, [entry], NODE_INDEX)
    # The first tag byte follows the entry head; stomp it.
    offset = 20 + 11  # header (20) + entry head (11)
    corrupt = buf[:offset] + b"\xff" + buf[offset + 1:]
    with pytest.raises(WireFormatError, match="tag"):
        unpack_frame(corrupt, NODES)


def test_trailing_garbage_rejected():
    buf = pack_frame(0, 0, [], NODE_INDEX)
    with pytest.raises(WireFormatError, match="trailing"):
        unpack_frame(buf + b"\x00", NODES)


def test_unknown_destination_rejected_at_pack():
    entry = (0.0, "mars-0", kinds.KIND_APP_REPLY, Reply(1, "ao-1:a"), None)
    with pytest.raises(WireFormatError, match="topology"):
        pack_frame(0, 0, [entry], NODE_INDEX)


def test_unpicklable_item_rejected_at_pack():
    entry = (0.0, NODES[0], kinds.KIND_APP_REQUEST, object(), None)
    with pytest.raises(WireFormatError, match="encode"):
        pack_frame(0, 0, [entry], NODE_INDEX)
