"""The shard wire codec round-trips staged pulse batches bit-identically.

The cross-shard frame is the columnar pulse made literal: whatever the
egress stages must come back from ``unpack_frame(pack_frame(...))``
field-for-field equal, for every traffic family the fabric routes —
app requests/replies, DGC singles, registry messages, and the site-pair
aggregate columns (flat target/message lists) the relaxed tier emits.
Kinds must come back as the *canonical interned constants* (the columnar
fire loop dispatches on kind identity).  Truncated or corrupted buffers
must raise :class:`WireFormatError`, never return garbage.

Both frame formats are under test: every property holds for v1 and v2,
v1 and v2 packings of the same batch decode to equal entry multisets
(cross-decode parity), and the v2-specific paths — varints, the intern
table and its backrefs, coalesced runs — have targeted corruption
coverage.

v1 preserves staged order exactly.  v2 normalizes it: entries sharing
``(kind, delivery instant, destination)`` coalesce into one run, runs
appear in first-occurrence order, and items keep their staged order
within a run — a deterministic permutation with every value still
bit-identical (the run key uses the delivery's IEEE bits, so -0.0 and
0.0 never merge).  :func:`v2_normalized` is the reference model of
that permutation.
"""

from __future__ import annotations

import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ActivityClock
from repro.core.wire import DgcMessage, DgcResponse
from repro.net import kinds
from repro.net.wire import (
    ChannelDecoder,
    ChannelEncoder,
    Frame,
    WireFormatError,
    frame_stamp,
    frame_version,
    kind_table,
    pack_frame,
    unpack_frame,
)
from repro.runtime.proxy import RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryBind,
    RegistryInvalidate,
    RegistryLookup,
    RegistryPush,
    RegistryRenew,
    RegistryRenewAck,
    RegistryReply,
    Reply,
    ReplyAddress,
    Request,
)

NODES = tuple(f"site-{index}" for index in range(6))
NODE_INDEX = {name: position for position, name in enumerate(NODES)}

AGG_DGC_MESSAGE = kinds.AGGREGATE_KINDS[kinds.KIND_DGC_MESSAGE]
AGG_DGC_RESPONSE = kinds.AGGREGATE_KINDS[kinds.KIND_DGC_RESPONSE]


# ----------------------------------------------------------------------
# Strategies: one per fabric message family
# ----------------------------------------------------------------------

ids = st.integers(min_value=0, max_value=999999).map(
    lambda n: f"ao-{n:08d}:slave{n % 97}"
)
node_names = st.sampled_from(NODES)
clocks = st.builds(
    ActivityClock, st.integers(min_value=0, max_value=1 << 40), ids
)
remote_refs = st.builds(RemoteRef, ids, node_names)
reply_addresses = st.builds(
    ReplyAddress, node_names, ids, st.integers(min_value=1, max_value=1 << 50)
)
plain_data = st.recursive(
    st.one_of(
        st.none(),
        st.booleans(),
        st.integers(min_value=-(1 << 70), max_value=1 << 70),
        st.floats(allow_nan=False),
        st.text(max_size=12),
        st.binary(max_size=12),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.text(max_size=6), children, max_size=4),
    ),
    max_leaves=8,
)

requests = st.builds(
    Request,
    method=st.sampled_from(["do_hold", "do_run", "do_ping"]),
    sender=ids,
    target=ids,
    payload_bytes=st.integers(min_value=0, max_value=1 << 20),
    refs=st.lists(remote_refs, max_size=5).map(tuple),
    data=plain_data,
    reply_to=st.one_of(st.none(), reply_addresses),
    request_id=st.integers(min_value=1, max_value=1 << 40),
)
replies = st.builds(
    Reply,
    future_id=st.integers(min_value=1, max_value=1 << 40),
    target_activity=ids,
    payload_bytes=st.integers(min_value=0, max_value=1 << 20),
    refs=st.lists(remote_refs, max_size=5).map(tuple),
    data=plain_data,
)
dgc_messages = st.builds(
    DgcMessage,
    sender=ids,
    clock=clocks,
    consensus=st.booleans(),
    sender_ref=remote_refs,
    sender_ttb=st.floats(min_value=0.0, max_value=120.0, allow_nan=False),
)
dgc_responses = st.builds(
    DgcResponse,
    responder=ids,
    clock=clocks,
    has_parent=st.booleans(),
    consensus_reached=st.booleans(),
    depth=st.one_of(st.none(), st.integers(min_value=0, max_value=1000)),
)
registry_items = st.one_of(
    st.builds(
        RegistryLookup,
        name=st.text(max_size=16),
        reply_to=st.one_of(st.none(), reply_addresses),
    ),
    st.builds(
        RegistryReply,
        future_id=st.integers(min_value=1, max_value=1 << 40),
        target_activity=ids,
        name=st.text(max_size=16),
        ref=st.one_of(st.none(), remote_refs),
        lease_s=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    ),
    st.builds(
        RegistryBind,
        name=st.text(max_size=16),
        ref=st.one_of(st.none(), remote_refs),
        reply_to=st.one_of(st.none(), reply_addresses),
    ),
    st.builds(
        RegistryAck,
        future_id=st.integers(min_value=1, max_value=1 << 40),
        target_activity=ids,
        name=st.text(max_size=16),
        ok=st.booleans(),
        error=st.text(max_size=24),
    ),
    st.builds(
        RegistryRenew,
        node=node_names,
        names=st.lists(st.text(max_size=10), max_size=5),
    ),
    st.builds(
        RegistryRenewAck,
        names=st.lists(st.text(max_size=10), max_size=5),
        lease_s=st.floats(min_value=0.0, max_value=600.0, allow_nan=False),
    ),
    st.builds(
        RegistryInvalidate,
        names=st.lists(st.text(max_size=10), max_size=5),
    ),
    st.builds(
        RegistryPush,
        bindings=st.lists(
            st.tuples(st.text(max_size=10), remote_refs), max_size=5
        ).map(tuple),
    ),
)

deliveries = st.floats(min_value=0.0, max_value=1e6, allow_nan=False)


def entry_for(kind):
    """A staged-entry strategy whose item/payload match ``kind``'s shape."""
    if kind is kinds.KIND_DGC_MESSAGE:
        item, payload = ids, dgc_messages
    elif kind is kinds.KIND_DGC_RESPONSE:
        item, payload = ids, dgc_responses
    elif kind is AGG_DGC_MESSAGE:
        item = st.lists(ids, min_size=1, max_size=6)
        payload = st.lists(dgc_messages, min_size=1, max_size=6)
    elif kind is AGG_DGC_RESPONSE:
        item = st.lists(ids, min_size=1, max_size=6)
        payload = st.lists(dgc_responses, min_size=1, max_size=6)
    elif kind is kinds.KIND_APP_REQUEST:
        item, payload = requests, st.none()
    elif kind is kinds.KIND_APP_REPLY:
        item, payload = replies, st.none()
    else:
        item, payload = registry_items, st.none()
    return st.tuples(deliveries, node_names, st.just(kind), item, payload)


staged_entries = st.one_of([entry_for(kind) for kind in kind_table()])
staged_batches = st.lists(staged_entries, max_size=12)
stamps = st.tuples(
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=1 << 30),
)


# ----------------------------------------------------------------------
# Round-trip
# ----------------------------------------------------------------------


def _delivery_bits(delivery: float) -> bytes:
    return struct.pack("!d", delivery)


def v2_normalized(entries):
    """The v2 order normalization, modelled independently of the codec:
    group by (kind, delivery IEEE bits, dest) in first-occurrence
    order, entries keeping staged order within a group."""
    groups = {}
    for entry in entries:
        delivery = entry[0]
        if type(delivery) is not float:
            delivery = float(delivery)
        key = (entry[2], _delivery_bits(delivery), entry[1])
        groups.setdefault(key, []).append(
            (delivery, entry[1], entry[2], entry[3], entry[4])
        )
    return [entry for bucket in groups.values() for entry in bucket]


@pytest.mark.parametrize("version", [1, 2])
@settings(max_examples=200, deadline=None)
@given(batch=staged_batches, stamp=stamps)
def test_roundtrip_bit_identical(version, batch, stamp):
    shard, seq = stamp
    buf = pack_frame(shard, seq, batch, NODE_INDEX, version=version)
    assert frame_version(buf) == version
    frame = unpack_frame(buf, NODES)
    assert isinstance(frame, Frame)
    assert frame.src_shard == shard
    assert frame.seq == seq
    assert len(frame.entries) == len(batch)
    expected = batch if version == 1 else v2_normalized(batch)
    for original, decoded in zip(expected, frame.entries):
        assert decoded == original
        # Bit identity for the delivery instant (== conflates ±0.0).
        assert _delivery_bits(decoded[0]) == _delivery_bits(float(original[0]))
        # Kind identity, not just equality: the columnar fire loop
        # dispatches with ``is`` against the canonical constants.
        assert decoded[2] is original[2]


@settings(max_examples=100, deadline=None)
@given(batch=staged_batches, stamp=stamps)
def test_cross_decode_parity(batch, stamp):
    """v1 and v2 packings of one batch decode to the same entries, v2's
    in the normalized order."""
    v1 = unpack_frame(
        pack_frame(stamp[0], stamp[1], batch, NODE_INDEX, version=1), NODES
    )
    v2 = unpack_frame(
        pack_frame(stamp[0], stamp[1], batch, NODE_INDEX, version=2), NODES
    )
    assert v2_normalized(v1.entries) == v2.entries
    for left, right in zip(v2_normalized(v1.entries), v2.entries):
        assert left[2] is right[2]


@pytest.mark.parametrize("version", [1, 2])
@settings(max_examples=100, deadline=None)
@given(batch=staged_batches, stamp=stamps)
def test_truncation_always_raises(version, batch, stamp):
    buf = pack_frame(stamp[0], stamp[1], batch, NODE_INDEX, version=version)
    for cut in range(0, len(buf), max(1, len(buf) // 17)):
        if cut == len(buf):
            continue
        with pytest.raises(WireFormatError):
            unpack_frame(buf[:cut], NODES)


def test_every_kind_has_a_column_shape():
    """The strategy table covers every registered kind — a kind added
    without extending the codec test fails here, not silently."""
    covered = {
        kinds.KIND_DGC_MESSAGE,
        kinds.KIND_DGC_RESPONSE,
        AGG_DGC_MESSAGE,
        AGG_DGC_RESPONSE,
        kinds.KIND_APP_REQUEST,
        kinds.KIND_APP_REPLY,
    }
    for kind in kind_table():
        assert kind in covered or kind.startswith("registry."), kind


def test_bad_magic_rejected():
    buf = pack_frame(1, 7, [], NODE_INDEX)
    corrupt = b"\x00\x00" + buf[2:]
    with pytest.raises(WireFormatError, match="magic"):
        unpack_frame(corrupt, NODES)


def test_unknown_tag_rejected():
    entry = (1.0, NODES[0], kinds.KIND_APP_REQUEST,
             Request("do_ping", "ao-1:a", "ao-2:b"), None)
    buf = pack_frame(0, 0, [entry], NODE_INDEX, version=1)
    # The first tag byte follows the entry head; stomp it.
    offset = 20 + 11  # header (20) + entry head (11)
    corrupt = buf[:offset] + b"\xff" + buf[offset + 1:]
    with pytest.raises(WireFormatError, match="tag"):
        unpack_frame(corrupt, NODES)


# ----------------------------------------------------------------------
# v2-specific paths: varints, intern table, kind runs
# ----------------------------------------------------------------------

_V2_HEADER_SIZE = 20  # shared !HHIId header


def _v2_single_entry_frame():
    """A one-entry v2 frame whose run head is exactly two one-byte
    varints (run length 1, then a kind index < 128), so the first value
    tag sits at a known offset for surgical corruption."""
    entry = (1.0, NODES[0], kinds.KIND_APP_REQUEST,
             Request("do_ping", "ao-1:a", "ao-2:b"), None)
    buf = pack_frame(0, 0, [entry], NODE_INDEX, version=2)
    assert buf[_V2_HEADER_SIZE] == 1  # run length
    assert buf[_V2_HEADER_SIZE + 1] < 0x80  # kind index fits one byte
    return buf


def test_v2_unknown_tag_rejected():
    buf = _v2_single_entry_frame()
    offset = _V2_HEADER_SIZE + 2  # first value tag (the delivery float)
    corrupt = buf[:offset] + b"\xff" + buf[offset + 1:]
    with pytest.raises(WireFormatError, match="tag"):
        unpack_frame(corrupt, NODES)


def test_v2_backref_out_of_range_rejected():
    buf = _v2_single_entry_frame()
    # Replace the delivery float value (tag + 8 bytes) with a backref
    # into the still-empty intern table.
    offset = _V2_HEADER_SIZE + 2
    corrupt = buf[:offset] + b"\x0b\x05" + buf[offset + 9:]
    with pytest.raises(WireFormatError, match="backref"):
        unpack_frame(corrupt, NODES)


def test_v2_non_float_delivery_rejected():
    buf = _v2_single_entry_frame()
    # Replace the delivery float (tag + 8 payload bytes) with _T_NONE.
    offset = _V2_HEADER_SIZE + 2
    corrupt = buf[:offset] + b"\x00" + buf[offset + 9:]
    with pytest.raises(WireFormatError, match="delivery"):
        unpack_frame(corrupt, NODES)


def test_v2_empty_run_rejected():
    buf = _v2_single_entry_frame()
    corrupt = bytearray(buf)
    corrupt[_V2_HEADER_SIZE] = 0  # run length 0
    with pytest.raises(WireFormatError, match="run"):
        unpack_frame(bytes(corrupt), NODES)


def test_v2_run_overflowing_count_rejected():
    buf = _v2_single_entry_frame()
    corrupt = bytearray(buf)
    corrupt[_V2_HEADER_SIZE] = 2  # run claims 2 entries, header says 1
    with pytest.raises(WireFormatError, match="overflows"):
        unpack_frame(bytes(corrupt), NODES)


def test_v2_overlong_varint_rejected():
    buf = _v2_single_entry_frame()
    # An 11-byte all-continuation varint where the run length belongs.
    corrupt = (buf[:_V2_HEADER_SIZE] + b"\x80" * 10 + b"\x01"
               + buf[_V2_HEADER_SIZE + 1:])
    with pytest.raises(WireFormatError, match="varint"):
        unpack_frame(corrupt, NODES)


def test_v2_bad_kind_index_rejected():
    buf = _v2_single_entry_frame()
    corrupt = bytearray(buf)
    corrupt[_V2_HEADER_SIZE + 1] = 0x7F  # kind index 127: out of range
    with pytest.raises(WireFormatError, match="kind index"):
        unpack_frame(bytes(corrupt), NODES)


def test_v2_interning_shares_decoded_objects():
    """A beat's one DgcMessage fanned out across an aggregate's targets
    decodes back to *one* shared object — the in-process sharing the
    fan-out had before it crossed the wire."""
    clock = ActivityClock(3, "ao-00000001:slave1")
    message = DgcMessage(
        sender="ao-00000001:slave1",
        clock=clock,
        consensus=True,
        sender_ref=RemoteRef("ao-00000001:slave1", NODES[1]),
        sender_ttb=5.0,
    )
    targets = [f"ao-{n:08d}:slave{n}" for n in range(8)]
    entries = [
        (7.5, NODES[0], AGG_DGC_MESSAGE, list(targets), [message] * 8),
        (7.5, NODES[2], AGG_DGC_MESSAGE, list(targets), [message] * 8),
    ]
    frame = unpack_frame(
        pack_frame(0, 0, entries, NODE_INDEX, version=2), NODES
    )
    first = frame.entries[0][4][0]
    assert first == message
    for entry in frame.entries:
        assert all(decoded is first for decoded in entry[4])


def test_v2_shrinks_fanout_traffic():
    """The intern table must collapse repeated messages/ids: a sharing-
    heavy aggregate batch packs at least 5x smaller in v2 than v1."""
    clock = ActivityClock(9, "ao-00000042:slave42")
    message = DgcMessage(
        sender="ao-00000042:slave42",
        clock=clock,
        consensus=False,
        sender_ref=RemoteRef("ao-00000042:slave42", NODES[3]),
        sender_ttb=5.0,
    )
    targets = [f"ao-{n:08d}:slave{n % 7}" for n in range(32)]
    entries = [
        (100.25, NODES[index % len(NODES)], AGG_DGC_MESSAGE,
         list(targets), [message] * 32)
        for index in range(16)
    ]
    v1 = pack_frame(0, 0, entries, NODE_INDEX, version=1)
    v2 = pack_frame(0, 0, entries, NODE_INDEX, version=2)
    assert len(v2) * 5 <= len(v1)
    assert (
        v2_normalized(unpack_frame(v1, NODES).entries)
        == unpack_frame(v2, NODES).entries
    )


# ----------------------------------------------------------------------
# Persistent channels: the intern table across frames
# ----------------------------------------------------------------------


@settings(max_examples=100, deadline=None)
@given(batches=st.lists(staged_batches, min_size=1, max_size=4))
def test_channel_roundtrip_across_frames(batches):
    """A ChannelEncoder/ChannelDecoder pair round-trips a whole frame
    stream: every frame decodes to its own normalized batch, values
    bit-identical, regardless of what earlier frames interned."""
    encoder = ChannelEncoder()
    decoder = ChannelDecoder()
    for seq, batch in enumerate(batches):
        buf = pack_frame(3, seq, batch, NODE_INDEX, version=2,
                         channel=encoder)
        assert frame_stamp(buf) == (3, seq)
        frame = unpack_frame(buf, NODES, channel=decoder)
        expected = v2_normalized(batch)
        assert len(frame.entries) == len(batch)
        for original, decoded in zip(expected, frame.entries):
            assert decoded == original
            assert _delivery_bits(decoded[0]) == _delivery_bits(
                float(original[0])
            )
            assert decoded[2] is original[2]


def test_channel_backrefs_carry_across_frames():
    """The second frame of a repetitive stream is almost pure backrefs —
    and decoding it *without* the channel state proves the dependency
    (its backrefs point into a table only frame one built)."""
    clock = ActivityClock(3, "ao-00000001:slave1")
    message = DgcMessage(
        sender="ao-00000001:slave1",
        clock=clock,
        consensus=True,
        sender_ref=RemoteRef("ao-00000001:slave1", NODES[1]),
        sender_ttb=5.0,
    )
    batch = [(7.5, NODES[0], kinds.KIND_DGC_MESSAGE,
              "ao-00000002:slave2", message)]
    encoder = ChannelEncoder()
    first = pack_frame(0, 0, batch, NODE_INDEX, version=2, channel=encoder)
    second = pack_frame(0, 1, batch, NODE_INDEX, version=2, channel=encoder)
    assert len(second) < len(first) - 20  # body shrank to backrefs
    decoder = ChannelDecoder()
    one = unpack_frame(first, NODES, channel=decoder)
    two = unpack_frame(second, NODES, channel=decoder)
    assert one.entries == two.entries
    # Cross-frame sharing: both frames decode to the *same* objects.
    assert one.entries[0][4] is two.entries[0][4]
    assert one.entries[0][3] is two.entries[0][3]
    # Stateless decode of frame two must fail, not fabricate values.
    with pytest.raises(WireFormatError, match="backref"):
        unpack_frame(second, NODES)


def test_channel_skipped_frame_desyncs_loudly():
    """Frames must decode in pack order: skipping one leaves backrefs
    pointing past the decoder's table."""
    encoder = ChannelEncoder()
    batch_of = lambda text: [(1.0, NODES[0], kinds.KIND_APP_REQUEST,
                              Request("do_ping", "ao-1:a", text), None)]
    pack_frame(0, 0, batch_of("ao-2:b"), NODE_INDEX, version=2,
               channel=encoder)
    pack_frame(0, 1, batch_of("ao-3:c"), NODE_INDEX, version=2,
               channel=encoder)
    third = pack_frame(0, 2, batch_of("ao-3:c"), NODE_INDEX, version=2,
                       channel=encoder)
    decoder = ChannelDecoder()
    # Decode frame 0 then frame 2: frame 2's backref to "ao-3:c" points
    # at an index only frame 1 would have registered.
    first = pack_frame(0, 0, batch_of("ao-2:b"), NODE_INDEX, version=2)
    unpack_frame(first, NODES, channel=decoder)
    with pytest.raises(WireFormatError, match="backref"):
        unpack_frame(third, NODES, channel=decoder)


def test_channel_state_is_v2_only():
    entry = (0.0, NODES[0], kinds.KIND_APP_REPLY, Reply(1, "ao-1:a"), None)
    with pytest.raises(WireFormatError, match="channel"):
        pack_frame(0, 0, [entry], NODE_INDEX, version=1,
                   channel=ChannelEncoder())
    v1 = pack_frame(0, 0, [entry], NODE_INDEX, version=1)
    with pytest.raises(WireFormatError, match="channel"):
        unpack_frame(v1, NODES, channel=ChannelDecoder())


def test_frame_stamp_matches_header():
    entry = (2.5, NODES[1], kinds.KIND_APP_REPLY, Reply(4, "ao-9:z"), None)
    for version in (1, 2):
        buf = pack_frame(6, 12345, [entry], NODE_INDEX, version=version)
        assert frame_stamp(buf) == (6, 12345)
    with pytest.raises(WireFormatError, match="truncated"):
        frame_stamp(buf[:10])
    with pytest.raises(WireFormatError, match="magic"):
        frame_stamp(b"\x00\x00" + buf[2:])


def test_trailing_garbage_rejected():
    buf = pack_frame(0, 0, [], NODE_INDEX)
    with pytest.raises(WireFormatError, match="trailing"):
        unpack_frame(buf + b"\x00", NODES)


def test_unknown_destination_rejected_at_pack():
    entry = (0.0, "mars-0", kinds.KIND_APP_REPLY, Reply(1, "ao-1:a"), None)
    with pytest.raises(WireFormatError, match="topology"):
        pack_frame(0, 0, [entry], NODE_INDEX)


def test_unpicklable_item_rejected_at_pack():
    entry = (0.0, NODES[0], kinds.KIND_APP_REQUEST, object(), None)
    with pytest.raises(WireFormatError, match="encode"):
        pack_frame(0, 0, [entry], NODE_INDEX)
