"""The beat-quantized coherence channel stays inside the protocol-safe
reordering class, and its staleness bound holds in live worlds.

Two layers:

1. **Queue mechanics** (pure, no world): for random update sequences,
   the flush schedule is a protocol-safe reordering — in the
   :mod:`repro.net.reorder` sense — of the *surviving* eager schedule
   (the last-writer-wins filter applied per beat window), over the
   registry's natural FIFO streams: one per (destination, name).  A
   receiving shard folds every coherence message into per-name state
   (``replica[name]``, a cache drop), so per-name order is the whole
   ordering contract, exactly as per-referencer order is the DGC's.
   Deliveries only ever *defer* (flush instant >= staging instant) and
   the flush clock is monotone.  A schedule that hands batches out
   earlier than their staging instants is rejected by the same
   predicate — the test has teeth.

2. **Live staleness bound**: in a real world under ``coherence="beat"``
   a cached holder keeps serving an unbound name for at most one lease
   beat plus one propagation delay — the invalidation is staged at
   unbind time and flushed by the next egress beat.
"""

from __future__ import annotations

import random

import pytest

from repro.core.config import RegistryConfig
from repro.net.reorder import find_violation
from repro.runtime.behaviors import Behavior, SinkBehavior
from repro.runtime.registry import CoherenceChannel


# ----------------------------------------------------------------------
# 1. Queue mechanics: flush order is protocol-safe per (dest, name)
# ----------------------------------------------------------------------

AUTHORITY = "auth"
DESTS = ("n1", "n2", "n3")
NAMES = tuple(f"svc-{i}" for i in range(5))
BEAT = 1.0


def _random_ops(rng: random.Random, count: int):
    """A time-ordered random update sequence ``(t, dest, name, ref)``
    (``ref=None`` = invalidate) with frequent same-(dest, name)
    re-stagings so coalescing actually triggers."""
    ops = []
    clock = 0.0
    for seq in range(count):
        clock += rng.random() * 0.3
        ref = None if rng.random() < 0.5 else f"ref#{seq}"
        ops.append((clock, rng.choice(DESTS), rng.choice(NAMES), ref))
    return ops


def _replay(ops, *, flush_at_window_start=False):
    """Drive a :class:`CoherenceChannel` through ``ops`` with a flush
    every ``BEAT``; return ``(survivors, flushed)`` delivery records
    ``(time, dest, name, ref)``.

    ``survivors`` is the last-writer-wins filter of the eager schedule:
    per beat window, only the final update per (dest, name), at its own
    staging instant.  ``flushed`` is what the channel hands to the wire,
    stamped with the flush instant — or, with ``flush_at_window_start``,
    with the *window-opening* instant (an unsafe, hasty schedule used as
    the negative control)."""
    channel = CoherenceChannel()
    survivors = []
    flushed = []
    window = {}  # (dest, name) -> (t, dest, name, ref)
    boundary = BEAT

    def flush(at):
        survivors.extend(
            sorted(window.values(), key=lambda record: record[0])
        )
        window.clear()
        stamp = at - BEAT if flush_at_window_start else at
        for dest, invalidates, pushes in channel.flush():
            for name in invalidates:
                flushed.append((stamp, dest, name, None))
            for name, ref in pushes:
                flushed.append((stamp, dest, name, ref))

    for t, dest, name, ref in ops:
        while t >= boundary:
            flush(boundary)
            boundary += BEAT
        channel.stage(dest, name, ref)
        window[(dest, name)] = (t, dest, name, ref)
    flush(boundary)
    return survivors, flushed


def _check(survivors, flushed):
    return find_violation(
        survivors,
        flushed,
        key=lambda record: (AUTHORITY, record[1], record[2]),
        time=lambda record: record[0],
        ident=lambda record: (record[2], record[3]),
    )


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5, 6, 7])
def test_flush_schedule_is_protocol_safe_per_dest_name_stream(seed):
    rng = random.Random(seed)
    for _ in range(20):
        ops = _random_ops(rng, rng.randrange(1, 60))
        survivors, flushed = _replay(ops)
        violation = _check(survivors, flushed)
        assert violation is None, violation


@pytest.mark.parametrize("seed", [0, 3, 5])
def test_hasty_flush_is_rejected_by_the_same_predicate(seed):
    """Stamping batches with the window-opening instant moves survivors
    *earlier* than their staging time — the predicate must catch it
    whenever a window contains a strictly-later staging."""
    rng = random.Random(seed)
    caught = 0
    for _ in range(20):
        ops = _random_ops(rng, 40)
        survivors, hasty = _replay(ops, flush_at_window_start=True)
        if _check(survivors, hasty) is not None:
            caught += 1
    assert caught > 0


def test_flush_batches_have_disjoint_invalidate_and_push_names():
    channel = CoherenceChannel()
    channel.stage("n1", "a", "ref-1")
    channel.stage("n1", "b", None)
    channel.stage("n1", "a", None)      # bind then unbind: invalidate wins
    channel.stage("n1", "b", "ref-2")   # unbind then rebind: push wins
    ((dest, invalidates, pushes),) = channel.flush()
    assert dest == "n1"
    assert set(invalidates) == {"a"}
    assert pushes == (("b", "ref-2"),)
    assert channel.coalesced == 2
    assert channel.staged == 4
    assert channel.empty


def test_last_writer_wins_within_one_beat():
    """A whole churn burst on one name collapses to its final state."""
    channel = CoherenceChannel()
    for round_ in range(10):
        channel.stage("n1", "hot", None)
        channel.stage("n1", "hot", f"ref#{round_}")
    ((_, invalidates, pushes),) = channel.flush()
    assert invalidates == ()
    assert pushes == (("hot", "ref#9"),)
    assert channel.coalesced == 19


# ----------------------------------------------------------------------
# 2. Live staleness bound: at most one beat + one propagation delay
# ----------------------------------------------------------------------


class _Prober(Behavior):
    """Polls one name on a tight period, recording each hit instant."""

    def __init__(self, name: str, deadline: float) -> None:
        self.name = name
        self.deadline = deadline
        self.hit_times = []

    def on_start(self, ctx):
        while ctx.now < self.deadline:
            yield ctx.sleep(0.1)
            future = ctx.lookup(self.name)
            future.on_resolve(lambda f: self._consume(ctx, f))
        return None

    def _consume(self, ctx, future) -> None:
        proxy = future.value
        if proxy is not None:
            self.hit_times.append(ctx.now)
            ctx.drop(proxy)


LEASE_BEAT = 2.0


@pytest.mark.parametrize("unbind_at", [7.3, 9.0, 11.6])
def test_cached_holder_staleness_bounded_by_one_lease_beat(
    make_world, unbind_at
):
    """After the authority unbinds, a lease-cache holder under beat
    coherence serves the stale entry for at most one lease beat plus
    one propagation delay (the invalidation stages at unbind time and
    flushes by the next egress beat)."""
    world = make_world(
        4,
        dgc=None,
        registry=RegistryConfig(
            lease_ttb=10**6, lease_beat_s=LEASE_BEAT, coherence="beat"
        ),
    )
    nodes = world.topology.nodes
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc", node=nodes[0])
    world.registry.bind("svc", proxy.ref)
    prober = _Prober("svc", deadline=unbind_at + 4 * LEASE_BEAT)
    # The prober lives away from the authority so hits come from its
    # lease cache, not the authoritative table.
    world.create_activity(
        prober, node=nodes[2], name="prober", root=True, dgc_enabled=False
    )
    world.kernel.schedule_fire_at(
        unbind_at, lambda: world.registry.unbind("svc"), ()
    )
    world.run_for(unbind_at + 6 * LEASE_BEAT)

    naming = world.registry
    assert naming.cache_hits > 0, "probe never exercised the lease cache"
    assert naming.coherence_staged > 0
    stale = [t for t in prober.hit_times if t > unbind_at]
    assert stale, "no stale window at all — the bound is vacuous here"
    propagation_slack = 0.5
    bound = unbind_at + LEASE_BEAT + propagation_slack
    assert max(prober.hit_times) <= bound, (
        f"stale hit at {max(prober.hit_times)} exceeds the one-beat bound "
        f"{bound}"
    )
