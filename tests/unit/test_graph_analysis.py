"""Unit tests for graph analysis (h, SCCs, process graph)."""

from repro.graph.analysis import (
    max_tree_height,
    process_graph,
    process_graph_garbage,
    reverse_spanning_tree_height,
    spanning_tree_height,
    strongly_connected_components,
)
from repro.graph.refgraph import ReferenceGraphSnapshot


def snapshot(edges, idle=None, hosting=None):
    all_ids = set(edges)
    for targets in edges.values():
        all_ids.update(targets)
    return ReferenceGraphSnapshot(
        time=0.0,
        edges=edges,
        idle={aid: True for aid in all_ids} if idle is None else idle,
        hosting=hosting or {aid: "p0" for aid in all_ids},
    )


def test_scc_of_ring():
    snap = snapshot({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    components = strongly_connected_components(snap)
    assert components[0] == {"a", "b", "c"}


def test_scc_of_chain_is_singletons():
    snap = snapshot({"a": {"b"}, "b": {"c"}})
    components = strongly_connected_components(snap)
    assert all(len(component) == 1 for component in components)
    assert len(components) == 3


def test_spanning_tree_heights_on_chain():
    snap = snapshot({"a": {"b"}, "b": {"c"}})
    assert spanning_tree_height(snap, "a") == 2
    assert reverse_spanning_tree_height(snap, "c") == 2
    assert spanning_tree_height(snap, "c") == 0


def test_heights_on_ring():
    snap = snapshot({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    assert spanning_tree_height(snap, "a") == 2
    assert reverse_spanning_tree_height(snap, "a") == 2


def test_max_tree_height():
    snap = snapshot({"a": {"b"}, "b": {"c"}, "c": {"a"}})
    assert max_tree_height(snap) == 2


def test_heights_of_unknown_root():
    snap = snapshot({"a": {"b"}})
    assert spanning_tree_height(snap, "zz") == 0


def test_process_graph_coarsening():
    """Sec. 4.1 Eq. 2 check."""
    snap = snapshot(
        {"a": {"b"}, "b": {"c"}},
        hosting={"a": "p0", "b": "p1", "c": "p1"},
    )
    edges = process_graph(snap)
    assert edges == {"p0": {"p1"}, "p1": {"p1"}}


def test_process_graph_garbage_blocks_mixed_processes():
    """A live activity on a process blocks the whole process."""
    snap = snapshot(
        {"a": {"b"}},
        idle={"a": True, "b": True, "live": False},
        hosting={"a": "p0", "b": "p0", "live": "p0"},
    )
    assert process_graph_garbage(snap) == set()


def test_process_graph_garbage_collects_fully_idle_processes():
    snap = snapshot(
        {"a": {"b"}, "b": {"a"}},
        idle={"a": True, "b": True, "live": False},
        hosting={"a": "p0", "b": "p0", "live": "p1"},
    )
    assert process_graph_garbage(snap) == {"p0"}


def test_process_graph_garbage_respects_cross_process_reachability():
    snap = snapshot(
        {"live": {"a"}, "a": {"b"}},
        idle={"a": True, "b": True, "live": False},
        hosting={"live": "p0", "a": "p1", "b": "p2"},
    )
    assert process_graph_garbage(snap) == set()
