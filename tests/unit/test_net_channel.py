"""Unit tests for FIFO channels."""

from repro.net.channel import FifoChannel
from repro.net.message import Envelope
from repro.sim.kernel import SimKernel


def make_envelope(index: int = 0) -> Envelope:
    return Envelope(
        source_node="a",
        dest_node="b",
        kind="app.request",
        size_bytes=10,
        payload=index,
        deliver=lambda payload: None,
    )


def test_delivery_after_latency():
    kernel = SimKernel()
    received = []
    channel = FifoChannel(kernel, "a", "b", lambda env: 0.5)
    channel.send(make_envelope(1), lambda env: received.append(kernel.now))
    kernel.run()
    assert received == [0.5]


def test_fifo_preserved_under_decreasing_latency():
    kernel = SimKernel()
    received = []
    latencies = iter([1.0, 0.1])
    channel = FifoChannel(kernel, "a", "b", lambda env: next(latencies))
    channel.send(make_envelope(1), lambda env: received.append(env.payload))
    channel.send(make_envelope(2), lambda env: received.append(env.payload))
    kernel.run()
    assert received == [1, 2]
    # The second delivery was clamped to the first one's time.
    assert kernel.now == 1.0


def test_negative_latency_clamped_to_zero():
    kernel = SimKernel()
    received = []
    channel = FifoChannel(kernel, "a", "b", lambda env: -5.0)
    channel.send(make_envelope(), lambda env: received.append(kernel.now))
    kernel.run()
    assert received == [0.0]


def test_counters_and_sent_at():
    kernel = SimKernel()
    channel = FifoChannel(kernel, "a", "b", lambda env: 0.25)
    envelope = make_envelope()
    kernel.schedule(1.0, lambda: channel.send(envelope, lambda env: None))
    kernel.run()
    assert channel.sent_count == 1
    assert channel.delivered_count == 1
    assert envelope.sent_at == 1.0


def test_many_messages_keep_order():
    kernel = SimKernel()
    received = []
    rng_latencies = [0.9, 0.1, 0.5, 0.3, 0.7, 0.2]
    latencies = iter(rng_latencies)
    channel = FifoChannel(kernel, "a", "b", lambda env: next(latencies))
    for index in range(len(rng_latencies)):
        channel.send(
            make_envelope(index), lambda env: received.append(env.payload)
        )
    kernel.run()
    assert received == list(range(len(rng_latencies)))


def test_stage_send_n_matches_n_individual_stage_sends():
    def build():
        kernel = SimKernel()
        return kernel, FifoChannel(
            kernel, "a", "b", lambda env: 0.25, base_latency=0.25
        )

    __, one = build()
    times_one = [one.stage_send() for __ in range(5)]
    __, many = build()
    time_many = many.stage_send_n(5)
    assert times_one == [time_many] * 5
    assert one.sent_count == many.sent_count == 5
    assert one._last_delivery_time == many._last_delivery_time
