"""The fabric-invariant analyzer: fixture corpus, self-check, CLI.

The corpus under ``tests/fixtures/analysis/`` annotates every seeded
violation with an ``# expect[RULE-id]`` marker (comma lists for lines
carrying several).  The contract is exact set equality between markers
and findings, so every *unmarked* line doubles as a negative case: a
rule that over-fires breaks the test just as loudly as one that stays
silent.
"""

import json
import re
from pathlib import Path

import pytest

from repro.analysis import all_rule_ids, run_analysis
from repro.analysis.__main__ import main
from repro.analysis.walker import META_PARSE, META_SUPPRESSION

FIXTURES = Path(__file__).resolve().parents[1] / "fixtures" / "analysis"
SRC_REPRO = Path(__file__).resolve().parents[2] / "src" / "repro"

_EXPECT_RE = re.compile(r"expect\[([A-Za-z0-9_,\s-]+)\]")


def _expected_markers():
    """(filename, line, rule) for every ``# expect[...]`` in the corpus."""
    markers = set()
    for path in sorted(FIXTURES.glob("*.py")):
        for lineno, line in enumerate(
            path.read_text(encoding="utf-8").splitlines(), start=1
        ):
            match = _EXPECT_RE.search(line)
            if match is None:
                continue
            for rule in match.group(1).split(","):
                markers.add((path.name, lineno, rule.strip()))
    return markers


def _corpus_findings():
    result = run_analysis([str(FIXTURES)], force_scope=True)
    return result, {(f.path, f.line, f.rule) for f in result.findings}


class TestFixtureCorpus:
    def test_findings_match_expect_markers_exactly(self):
        result, found = _corpus_findings()
        expected = _expected_markers()
        missing = expected - found
        spurious = found - expected
        assert not missing and not spurious, (
            f"marker/finding mismatch:\n"
            f"  expected but not found: {sorted(missing)}\n"
            f"  found but not expected: {sorted(spurious)}\n"
            f"  all findings: "
            f"{[f.location() + ' ' + f.rule for f in result.findings]}"
        )

    def test_corpus_exercises_every_rule(self):
        marker_rules = {rule for (_, _, rule) in _expected_markers()}
        every_rule = set(all_rule_ids()) | {META_PARSE, META_SUPPRESSION}
        assert marker_rules == every_rule, (
            f"corpus gaps: {sorted(every_rule - marker_rules)}; "
            f"unknown markers: {sorted(marker_rules - every_rule)}"
        )

    def test_reasoned_suppressions_are_counted(self):
        result, _ = _corpus_findings()
        # suppress.py silences two findings (trailing + alone-on-line).
        assert result.suppressed_count >= 2

    def test_rule_filter_narrows_the_run(self):
        result = run_analysis(
            [str(FIXTURES)], rules=["DET-entropy"], force_scope=True
        )
        assert result.rules_run == ("DET-entropy",)
        assert {f.rule for f in result.findings} == {"DET-entropy"}
        expected = {
            (name, line)
            for (name, line, rule) in _expected_markers()
            if rule == "DET-entropy"
        }
        assert {(f.path, f.line) for f in result.findings} == expected

    def test_unknown_rule_id_is_rejected(self):
        with pytest.raises(ValueError, match="unknown rule"):
            run_analysis([str(FIXTURES)], rules=["DET-bogus"])


class TestHeadOfTree:
    def test_src_repro_is_clean(self):
        result = run_analysis([str(SRC_REPRO)])
        assert result.clean, (
            "src/repro must analyze clean; findings:\n"
            + "\n".join(
                f"  {f.location()}  {f.rule}  {f.message}"
                for f in result.findings
            )
        )
        assert result.files_scanned > 50
        # The triaged allowances (rng router, reporting-only wall-clock,
        # tracer event names, SPMD ghost arms, Network monkeypatching)
        # are suppressions, not silence.
        assert result.suppressed_count >= 10


class TestCli:
    def test_findings_exit_one_and_name_the_rule(self, capsys):
        code = main([str(FIXTURES / "det_entropy.py"), "--force-scope"])
        captured = capsys.readouterr()
        assert code == 1
        assert "DET-entropy" in captured.out
        assert "det_entropy.py" in captured.out

    def test_json_format_schema(self, capsys):
        code = main(
            [str(FIXTURES / "det_entropy.py"), "--force-scope",
             "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["schema"] == 1
        assert payload["files_scanned"] == 1
        assert payload["counts"]["DET-entropy"] == len(
            [f for f in payload["findings"] if f["rule"] == "DET-entropy"]
        ) > 0

    def test_rule_filter_flag(self, capsys):
        matching = main(
            [str(FIXTURES / "hot_slots.py"), "--force-scope",
             "--rule", "HOT-slots"]
        )
        capsys.readouterr()
        non_matching = main(
            [str(FIXTURES / "hot_slots.py"), "--force-scope",
             "--rule", "DET-entropy"]
        )
        captured = capsys.readouterr()
        assert matching == 1
        assert non_matching == 0
        assert "clean" in captured.out

    def test_unknown_rule_exits_two(self, capsys):
        code = main([str(FIXTURES), "--rule", "DET-bogus"])
        captured = capsys.readouterr()
        assert code == 2
        assert "unknown rule" in captured.err

    def test_missing_path_exits_two(self, capsys):
        code = main([str(FIXTURES / "no_such_file.py")])
        captured = capsys.readouterr()
        assert code == 2
        assert "no such file" in captured.err

    def test_list_rules(self, capsys):
        code = main(["--list-rules"])
        captured = capsys.readouterr()
        assert code == 0
        for rule_id in all_rule_ids():
            assert rule_id in captured.out
        assert META_PARSE in captured.out

    def test_clean_tree_within_budget_exits_zero(self, capsys):
        code = main([str(SRC_REPRO), "--budget-seconds", "10"])
        captured = capsys.readouterr()
        assert code == 0
        assert "clean" in captured.out


class TestHarnessAnalyze:
    """``python -m repro.harness analyze`` delegates to the analyzer."""

    def test_findings_exit_one(self, capsys):
        from repro.harness.__main__ import main as harness_main

        code = harness_main(
            ["analyze", str(FIXTURES / "det_entropy.py"), "--force-scope"]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "DET-entropy" in captured.out

    def test_rule_and_format_filters_pass_through(self, capsys):
        from repro.harness.__main__ import main as harness_main

        code = harness_main(
            ["analyze", str(FIXTURES / "hot_slots.py"), "--force-scope",
             "--rule", "HOT-slots", "--format", "json"]
        )
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["rules_run"] == ["HOT-slots"]
        assert payload["counts"] == {"HOT-slots": 1}

    def test_clean_source_exits_zero(self, capsys):
        from repro.harness.__main__ import main as harness_main

        code = harness_main(["analyze", str(SRC_REPRO)])
        captured = capsys.readouterr()
        assert code == 0
        assert "clean" in captured.out
