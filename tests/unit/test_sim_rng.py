"""Unit tests for deterministic RNG streams."""

import random
from collections import Counter

import pytest

from repro.sim.rng import RngRegistry, ZipfSampler


def test_same_name_returns_same_stream():
    registry = RngRegistry(7)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_reproducible_across_registries():
    first = RngRegistry(7).stream("x").random()
    second = RngRegistry(7).stream("x").random()
    assert first == second


def test_different_names_differ():
    registry = RngRegistry(7)
    assert registry.stream("a").random() != registry.stream("b").random()


def test_different_seeds_differ():
    assert (
        RngRegistry(1).stream("x").random()
        != RngRegistry(2).stream("x").random()
    )


def test_new_consumer_does_not_perturb_existing_stream():
    registry_a = RngRegistry(7)
    registry_a.stream("first").random()
    value_a = registry_a.stream("target").random()

    registry_b = RngRegistry(7)
    registry_b.stream("first").random()
    registry_b.stream("unrelated-extra").random()
    value_b = registry_b.stream("target").random()
    assert value_a == value_b


def test_fork_is_deterministic_and_distinct():
    parent = RngRegistry(7)
    child_a = parent.fork("run1")
    child_b = RngRegistry(7).fork("run1")
    assert child_a.stream("x").random() == child_b.stream("x").random()
    assert child_a.root_seed != parent.root_seed


def test_zipf_is_deterministic_for_equal_streams():
    sampler = ZipfSampler(1000, 1.1)
    stream_a = RngRegistry(7).stream("zipf")
    stream_b = RngRegistry(7).stream("zipf")
    draws_a = [sampler.sample(stream_a) for _ in range(500)]
    draws_b = [sampler.sample(stream_b) for _ in range(500)]
    assert draws_a == draws_b


def test_zipf_draws_stay_in_range():
    sampler = ZipfSampler(17, 1.3)
    rng = random.Random(3)
    draws = [sampler.sample(rng) for _ in range(2000)]
    assert min(draws) >= 0
    assert max(draws) < 17


def test_zipf_tail_shape_is_head_heavy():
    # With s=1 over 100 ranks, rank 0 carries ~1/H_100 ~= 19% of the
    # mass and the top 10 ranks a clear majority; the uniform draw puts
    # 1% / 10% there.  Use wide empirical margins: this is a shape test,
    # not a goodness-of-fit test.
    sampler = ZipfSampler(100, 1.0)
    rng = random.Random(11)
    counts = Counter(sampler.sample(rng) for _ in range(20000))
    head = counts[0] / 20000
    top10 = sum(counts[rank] for rank in range(10)) / 20000
    assert 0.15 < head < 0.25
    assert top10 > 0.45
    # The analytic weights agree with the harmonic normalization.
    assert sampler.weight(0) == pytest.approx(
        1.0 / sum(1.0 / k for k in range(1, 101))
    )
    assert sum(sampler.weight(rank) for rank in range(100)) == pytest.approx(1.0)


def test_zipf_s_zero_is_uniform():
    sampler = ZipfSampler(8, 0.0)
    for rank in range(8):
        assert sampler.weight(rank) == pytest.approx(1.0 / 8)
    rng = random.Random(5)
    counts = Counter(sampler.sample(rng) for _ in range(16000))
    for rank in range(8):
        assert counts[rank] / 16000 == pytest.approx(1.0 / 8, abs=0.02)


def test_zipf_rejects_invalid_params():
    with pytest.raises(ValueError):
        ZipfSampler(0, 1.0)
    with pytest.raises(ValueError):
        ZipfSampler(10, -0.5)
