"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngRegistry


def test_same_name_returns_same_stream():
    registry = RngRegistry(7)
    assert registry.stream("a") is registry.stream("a")


def test_streams_are_reproducible_across_registries():
    first = RngRegistry(7).stream("x").random()
    second = RngRegistry(7).stream("x").random()
    assert first == second


def test_different_names_differ():
    registry = RngRegistry(7)
    assert registry.stream("a").random() != registry.stream("b").random()


def test_different_seeds_differ():
    assert (
        RngRegistry(1).stream("x").random()
        != RngRegistry(2).stream("x").random()
    )


def test_new_consumer_does_not_perturb_existing_stream():
    registry_a = RngRegistry(7)
    registry_a.stream("first").random()
    value_a = registry_a.stream("target").random()

    registry_b = RngRegistry(7)
    registry_b.stream("first").random()
    registry_b.stream("unrelated-extra").random()
    value_b = registry_b.stream("target").random()
    assert value_a == value_b


def test_fork_is_deterministic_and_distinct():
    parent = RngRegistry(7)
    child_a = parent.fork("run1")
    child_b = RngRegistry(7).fork("run1")
    assert child_a.stream("x").random() == child_b.stream("x").random()
    assert child_a.root_seed != parent.root_seed
