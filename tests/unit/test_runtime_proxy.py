"""Unit tests for stubs, tags and the per-activity proxy table."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.proxy import ProxyTable, RemoteRef


def make_table(holder="ao-h"):
    return ProxyTable(holder)


def ref(target="ao-t", node="n0"):
    return RemoteRef(target, node)


def test_acquire_creates_proxy_with_tag():
    table = make_table()
    proxy = table.acquire(ref())
    assert proxy.activity_id == "ao-t"
    assert proxy.tag.holder == "ao-h"
    assert proxy.tag.target == "ao-t"
    assert table.holds("ao-t")


def test_same_target_shares_tag():
    """Sec. 2.2: all stubs for the same remote object owned by the same
    local activity share one tag."""
    table = make_table()
    first = table.acquire(ref())
    second = table.acquire(ref())
    assert first.tag is second.tag
    assert table.live_count("ao-t") == 2


def test_release_last_stub_reports_tag_death():
    table = make_table()
    first = table.acquire(ref())
    second = table.acquire(ref())
    assert table.release(first) is False
    assert table.release(second) is True
    assert not table.holds("ao-t")


def test_double_release_rejected():
    table = make_table()
    proxy = table.acquire(ref())
    table.release(proxy)
    with pytest.raises(RuntimeModelError):
        table.release(proxy)


def test_reacquisition_mints_new_generation():
    table = make_table()
    first = table.acquire(ref())
    table.release(first)
    second = table.acquire(ref())
    assert second.tag is not first.tag
    assert second.tag.generation == first.tag.generation + 1


def test_release_of_stale_generation_is_harmless():
    table = make_table()
    first = table.acquire(ref())
    dead_tags = table.release_all()
    assert [tag.target for tag in dead_tags] == ["ao-t"]
    # first's tag generation was retired wholesale; a later individual
    # release must not touch the new generation.
    second = table.acquire(ref())
    assert table.release(first) is False
    assert table.holds("ao-t")
    assert second.tag.generation == 2


def test_release_all_clears_table():
    table = make_table()
    table.acquire(ref("ao-1"))
    table.acquire(ref("ao-2"))
    dead = table.release_all()
    assert len(dead) == 2
    assert table.targets() == []


def test_distinct_targets_distinct_tags():
    table = make_table()
    one = table.acquire(ref("ao-1"))
    two = table.acquire(ref("ao-2"))
    assert one.tag is not two.tag
    assert sorted(table.targets()) == ["ao-1", "ao-2"]


def test_ref_for():
    table = make_table()
    table.acquire(ref("ao-1", "node-7"))
    assert table.ref_for("ao-1").node == "node-7"
    assert table.ref_for("ao-none") is None
