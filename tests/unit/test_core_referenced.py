"""Unit tests for the referenced table (needs_send / tag-death rules)."""

from repro.core.referenced import ReferencedTable
from repro.core.wire import DgcResponse
from repro.core.clock import ActivityClock
from repro.runtime.proxy import RemoteRef, StubTag


def make_ref(target="ao-t", node="n0"):
    return RemoteRef(target, node)


def make_tag(holder="ao-h", target="ao-t", generation=1):
    return StubTag(holder, target, generation)


def test_deserialization_creates_record_with_needs_send():
    table = ReferencedTable()
    record = table.on_deserialized(make_ref(), make_tag())
    assert record.needs_send is True
    assert record.tag_dead is False
    assert "ao-t" in table


def test_redeserialization_rearms_needs_send():
    table = ReferencedTable()
    tag = make_tag()
    record = table.on_deserialized(make_ref(), tag)
    record.needs_send = False
    table.on_deserialized(make_ref(), tag)
    assert record.needs_send is True


def test_tag_death_marks_record():
    table = ReferencedTable()
    tag = make_tag()
    table.on_deserialized(make_ref(), tag)
    record = table.on_tag_dead(tag)
    assert record is not None
    assert record.tag_dead is True


def test_stale_tag_death_ignored_after_regeneration():
    """The Sec. 2.2 generation rule: a newer tag supersedes the old one."""
    table = ReferencedTable()
    old_tag = make_tag(generation=1)
    table.on_deserialized(make_ref(), old_tag)
    new_tag = make_tag(generation=2)
    table.on_deserialized(make_ref(), new_tag)
    assert table.on_tag_dead(old_tag) is None
    record = table.get("ao-t")
    assert record.tag_dead is False


def test_not_removable_until_first_send():
    """Sec. 3.1: 'one DGC message must be sent anyway'."""
    table = ReferencedTable()
    tag = make_tag()
    record = table.on_deserialized(make_ref(), tag)
    table.on_tag_dead(tag)
    assert record.removable is False
    assert table.pop_removable() == []
    record.needs_send = False
    assert record.removable is True
    assert table.pop_removable() == [record]
    assert "ao-t" not in table


def test_not_removable_while_tag_alive():
    table = ReferencedTable()
    record = table.on_deserialized(make_ref(), make_tag())
    record.needs_send = False
    assert record.removable is False
    assert table.pop_removable() == []


def test_unknown_tag_death_returns_none():
    table = ReferencedTable()
    assert table.on_tag_dead(make_tag(target="ao-unknown")) is None


def test_last_response_storage():
    table = ReferencedTable()
    record = table.on_deserialized(make_ref(), make_tag())
    response = DgcResponse("ao-t", ActivityClock(1, "ao-t"), True)
    record.last_response = response
    assert table.get("ao-t").last_response is response


def test_records_and_ids():
    table = ReferencedTable()
    table.on_deserialized(make_ref("ao-1"), make_tag(target="ao-1"))
    table.on_deserialized(make_ref("ao-2"), make_tag(target="ao-2"))
    assert sorted(table.ids()) == ["ao-1", "ao-2"]
    assert len(table.records()) == 2
    assert len(table) == 2
