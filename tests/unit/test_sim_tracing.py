"""Unit tests for the tracer."""

from repro.sim.tracing import Tracer


def test_record_and_filter_by_kind():
    tracer = Tracer()
    tracer.record(1.0, "a", "x")
    tracer.record(2.0, "b", "x")
    tracer.record(3.0, "a", "y")
    assert len(tracer) == 3
    assert [event.time for event in tracer.events(kind="a")] == [1.0, 3.0]


def test_filter_by_subject_and_kind():
    tracer = Tracer()
    tracer.record(1.0, "a", "x")
    tracer.record(2.0, "a", "y")
    events = tracer.events(kind="a", subject="y")
    assert len(events) == 1
    assert events[0].time == 2.0


def test_first_and_last():
    tracer = Tracer()
    tracer.record(1.0, "k", "x")
    tracer.record(2.0, "k", "y")
    assert tracer.first("k").subject == "x"
    assert tracer.last("k").subject == "y"
    assert tracer.first("missing") is None
    assert tracer.last("missing") is None


def test_count():
    tracer = Tracer()
    for __ in range(4):
        tracer.record(0.0, "k", "s")
    assert tracer.count("k") == 4
    assert tracer.count("other") == 0


def test_disabled_tracer_records_nothing():
    tracer = Tracer(enabled=False)
    tracer.record(1.0, "k", "s")
    assert len(tracer) == 0


def test_details_payload():
    tracer = Tracer()
    tracer.record(1.0, "k", "s", reason="because", value=3)
    event = tracer.events(kind="k")[0]
    assert event.details == {"reason": "because", "value": 3}


def test_subscribe_listener():
    tracer = Tracer()
    seen = []
    tracer.subscribe(seen.append)
    tracer.record(1.0, "k", "s")
    assert len(seen) == 1
    assert seen[0].kind == "k"
