"""Unit tests for the registry and root pinning."""

import pytest

from repro.errors import RegistryError
from repro.runtime.behaviors import SinkBehavior


@pytest.fixture
def world(make_world):
    return make_world(2, dgc=None)


def test_bind_marks_activity_as_root(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    activity = world.find_activity(proxy.activity_id)
    assert not activity.is_root
    world.registry.bind("service", proxy.ref)
    assert activity.is_root


def test_lookup_returns_bound_ref(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("service", proxy.ref)
    assert world.registry.lookup("service").activity_id == proxy.activity_id


def test_unbind_releases_root_pin(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("service", proxy.ref)
    world.registry.unbind("service")
    activity = world.find_activity(proxy.activity_id)
    assert not activity.is_root


def test_double_binding_same_activity_keeps_pin(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("one", proxy.ref)
    world.registry.bind("two", proxy.ref)
    world.registry.unbind("one")
    activity = world.find_activity(proxy.activity_id)
    assert activity.is_root
    world.registry.unbind("two")
    assert not activity.is_root


def test_aliased_unbind_order_does_not_matter(world):
    """The same ref bound under two names: whichever alias is unbound
    last releases the pin (refcounted, not last-writer-wins)."""
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    activity = world.find_activity(proxy.activity_id)
    world.registry.bind("one", proxy.ref)
    world.registry.bind("two", proxy.ref)
    world.registry.unbind("two")  # reverse order of binding
    assert activity.is_root
    world.registry.unbind("one")
    assert not activity.is_root
    # Rebinding re-pins from a clean slate.
    world.registry.bind("again", proxy.ref)
    assert activity.is_root


def test_unbind_dead_activity_does_not_raise_and_frees_name(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("service", proxy.ref)
    world.find_activity(proxy.activity_id).terminate("explicit")
    world.registry.unbind("service")  # must not raise
    assert world.registry.resolve("service") is None
    # The released name is immediately rebindable.
    fresh = driver.context.create(SinkBehavior(), name="svc2")
    world.registry.bind("service", fresh.ref)
    assert world.find_activity(fresh.activity_id).is_root


def test_aliased_dead_activity_unbind_keeps_books_consistent(world):
    """Dead target bound under two aliases: both unbinds succeed and the
    pin refcount drains to zero without touching the dead activity."""
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    activity_id = proxy.activity_id
    world.registry.bind("one", proxy.ref)
    world.registry.bind("two", proxy.ref)
    world.find_activity(activity_id).terminate("explicit")
    world.registry.unbind("one")
    world.registry.unbind("two")
    assert world.registry.pin_count(activity_id) == 0
    assert world.registry.names() == []


def test_bind_duplicate_name_rejected(world):
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    world.registry.bind("x", a.ref)
    with pytest.raises(RegistryError):
        world.registry.bind("x", b.ref)


def test_lookup_missing_rejected(world):
    with pytest.raises(RegistryError):
        world.registry.lookup("ghost")


def test_unbind_missing_rejected(world):
    with pytest.raises(RegistryError):
        world.registry.unbind("ghost")


def test_bind_dead_activity_rejected(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="a")
    world.find_activity(proxy.activity_id).terminate("explicit")
    with pytest.raises(RegistryError):
        world.registry.bind("x", proxy.ref)


def test_names_sorted(world):
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    world.registry.bind("zeta", a.ref)
    world.registry.bind("alpha", b.ref)
    assert world.registry.names() == ["alpha", "zeta"]


# ----------------------------------------------------------------------
# Registry lookups over the fabric (registry.lookup / registry.reply)
# ----------------------------------------------------------------------


def test_lookup_via_fabric_resolves_future_with_proxy(world):
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    driver_activity = world.find_activity(driver.id)
    future = driver_activity.context.lookup("service")
    assert not future.resolved
    world.run_for(1.0)
    assert future.resolved
    proxy = future.value
    assert proxy.activity_id == svc.activity_id
    # The stub was acquired through the deserialization hook: the DGC
    # edge exists and the proxy is held by the looker-up.
    assert driver_activity.proxies.holds(svc.activity_id)


def test_lookup_via_fabric_is_accounted_as_registry_traffic(world):
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    driver_activity = world.find_activity(driver.id)
    driver_activity.context.lookup("service")
    world.run_for(1.0)
    sizes = world.wire_sizes
    assert world.accountant.registry_bytes == (
        sizes.registry_lookup_size() + sizes.registry_reply_size(True)
    )


def test_lookup_via_fabric_unbound_name_resolves_none(world):
    driver = world.create_driver(node="site-1")
    driver_activity = world.find_activity(driver.id)
    future = driver_activity.context.lookup("nothing-here")
    world.run_for(1.0)
    assert future.resolved
    assert future.value is None


def test_ctx_lookup_from_registry_home_node_is_free(world):
    """A lookup from the registry's own node is intra-node traffic:
    resolved at the same instant, not accounted."""
    driver = world.create_driver(node=world.registry_node)
    svc = driver.context.create(SinkBehavior(), node="site-1", name="svc")
    world.registry.bind("service", svc.ref)
    future = world.find_activity(driver.id).context.lookup("service")
    world.run_for(0.1)
    assert future.resolved
    assert world.accountant.registry_bytes == 0


def test_lookup_reply_to_terminated_caller_is_dead_lettered(world):
    driver = world.create_driver(node="site-1")
    looker = driver.context.create(SinkBehavior(), node="site-1", name="lk")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    looker_activity = world.find_activity(looker.activity_id)
    future = looker_activity.context.lookup("service")
    looker_activity.terminate("explicit")
    world.run_for(1.0)
    assert not future.resolved
    assert world.nodes["site-1"].dead_letter_count >= 1
