"""Unit tests for the registry and root pinning."""

import pytest

from repro.errors import RegistryError
from repro.runtime.behaviors import SinkBehavior


@pytest.fixture
def world(make_world):
    return make_world(2, dgc=None)


def test_bind_marks_activity_as_root(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    activity = world.find_activity(proxy.activity_id)
    assert not activity.is_root
    world.registry.bind("service", proxy.ref)
    assert activity.is_root


def test_lookup_returns_bound_ref(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("service", proxy.ref)
    assert world.registry.lookup("service").activity_id == proxy.activity_id


def test_unbind_releases_root_pin(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("service", proxy.ref)
    world.registry.unbind("service")
    activity = world.find_activity(proxy.activity_id)
    assert not activity.is_root


def test_double_binding_same_activity_keeps_pin(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="svc")
    world.registry.bind("one", proxy.ref)
    world.registry.bind("two", proxy.ref)
    world.registry.unbind("one")
    activity = world.find_activity(proxy.activity_id)
    assert activity.is_root
    world.registry.unbind("two")
    assert not activity.is_root


def test_bind_duplicate_name_rejected(world):
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    world.registry.bind("x", a.ref)
    with pytest.raises(RegistryError):
        world.registry.bind("x", b.ref)


def test_lookup_missing_rejected(world):
    with pytest.raises(RegistryError):
        world.registry.lookup("ghost")


def test_unbind_missing_rejected(world):
    with pytest.raises(RegistryError):
        world.registry.unbind("ghost")


def test_bind_dead_activity_rejected(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="a")
    world.find_activity(proxy.activity_id).terminate("explicit")
    with pytest.raises(RegistryError):
        world.registry.bind("x", proxy.ref)


def test_names_sorted(world):
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    world.registry.bind("zeta", a.ref)
    world.registry.bind("alpha", b.ref)
    assert world.registry.names() == ["alpha", "zeta"]
