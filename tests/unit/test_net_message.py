"""Unit tests for envelopes and the wire-size model."""

from repro.net.message import Envelope, WireSizeModel


def test_envelope_is_slotted_and_lightweight():
    # One envelope per simulated transmission: no per-instance __dict__
    # (slots) and no global id counter on the hot path.
    envelope = Envelope("a", "b", "k", 1, None, lambda p: None)
    assert not hasattr(envelope, "__dict__")
    assert not hasattr(envelope, "envelope_id")
    assert envelope.sent_at == 0.0


def test_request_size_includes_references():
    model = WireSizeModel()
    base = model.request_size(0, 0)
    with_refs = model.request_size(0, 3)
    assert with_refs - base == 3 * model.reference_bytes


def test_request_size_includes_payload():
    model = WireSizeModel()
    assert model.request_size(1000, 0) - model.request_size(0, 0) == 1000


def test_reply_size():
    model = WireSizeModel()
    assert (
        model.reply_size(10, 1)
        == model.reply_header_bytes + 10 + model.reference_bytes
    )


def test_dgc_sizes_are_fixed_constants():
    model = WireSizeModel()
    assert model.dgc_message_bytes > 0
    assert model.dgc_response_bytes > 0


def test_custom_model_overrides():
    model = WireSizeModel(dgc_message_bytes=2048, reference_bytes=64)
    assert model.dgc_message_bytes == 2048
    assert model.request_size(0, 2) == model.request_header_bytes + 128
