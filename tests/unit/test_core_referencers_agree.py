"""The O(1) incremental agreement counter vs the naive scan.

The counter in :class:`ReferencerTable` must stay exact through every
mutation path: message updates (:meth:`update`), referencer expiry
(:meth:`expire`), explicit removal (:meth:`forget`), consensus-flag
flips, and clock changes (which re-key the tracked clock).  Each test
cross-checks against :meth:`agree_scan`, the kept naive implementation.
"""

from __future__ import annotations

import random

from repro.core.clock import ActivityClock
from repro.core.referencers import ReferencerTable


def clock(value, owner="owner"):
    return ActivityClock(value, owner)


def assert_consistent(table, clocks):
    """The incremental answer equals the naive scan for every clock."""
    for candidate in clocks:
        assert table.agree(candidate) == table.agree_scan(candidate), (
            f"agree() diverged from the scan for {candidate}"
        )


def test_empty_table_agrees_vacuously():
    table = ReferencerTable()
    assert table.agree(clock(1)) is True
    assert table.agree_scan(clock(1)) is True


def test_agree_counts_consensus_and_clock():
    table = ReferencerTable()
    c1 = clock(1)
    table.update("a", c1, True, now=0.0)
    table.update("b", c1, True, now=0.0)
    assert table.agree(c1) is True
    table.update("b", c1, False, now=1.0)
    assert table.agree(c1) is False
    assert_consistent(table, [c1])


def test_consensus_flag_flips_update_the_counter():
    table = ReferencerTable()
    c1 = clock(1)
    assert table.agree(c1) is True  # start tracking c1 on the empty table
    table.update("a", c1, False, now=0.0)
    assert table.agree(c1) is False
    table.update("a", c1, True, now=1.0)
    assert table.agree(c1) is True
    table.update("a", c1, True, now=2.0)  # no-op flip stays consistent
    assert table.agree(c1) is True
    assert_consistent(table, [c1])


def test_clock_change_rekeys_the_tracked_clock():
    table = ReferencerTable()
    c1, c2 = clock(1), clock(2)
    table.update("a", c1, True, now=0.0)
    assert table.agree(c1) is True
    # The activity adopts a newer clock: the cached count is for c1 and
    # must be rebuilt for c2, not reused.
    assert table.agree(c2) is False
    table.update("a", c2, True, now=1.0)
    assert table.agree(c2) is True
    # Asking about the stale clock again also rebuilds correctly.
    assert table.agree(c1) is False
    assert_consistent(table, [c1, c2])


def test_same_value_different_owner_is_a_different_clock():
    table = ReferencerTable()
    ours, theirs = clock(3, "us"), clock(3, "them")
    table.update("a", ours, True, now=0.0)
    assert table.agree(ours) is True
    assert table.agree(theirs) is False
    assert_consistent(table, [ours, theirs])


def test_expiry_removes_agreement():
    table = ReferencerTable()
    c1 = clock(1)
    table.update("old", c1, True, now=0.0)
    table.update("new", c1, True, now=10.0)
    assert table.agree(c1) is True
    lost = table.expire(now=12.0, tta=5.0)
    assert lost == ["old"]
    assert table.agree(c1) is True  # the survivor still agrees
    table.update("new", c1, False, now=13.0)
    assert table.agree(c1) is False
    assert_consistent(table, [c1])


def test_expire_fast_path_skips_scan_but_stays_exact():
    table = ReferencerTable()
    c1 = clock(1)
    for index in range(16):
        table.update(f"r{index}", c1, True, now=float(index))
    # Nothing can have expired yet: the fast path must report no losses.
    assert table.expire(now=10.0, tta=100.0) == []
    assert len(table) == 16
    assert table.agree(c1) is True
    # Move far enough that the oldest half expires.
    lost = table.expire(now=107.5, tta=100.0)
    assert sorted(lost) == [f"r{index}" for index in range(8)]
    assert table.agree(c1) is True
    assert_consistent(table, [c1])


def test_forget_updates_counter():
    table = ReferencerTable()
    c1 = clock(1)
    table.update("a", c1, True, now=0.0)
    table.update("b", c1, False, now=0.0)
    assert table.agree(c1) is False
    table.forget("b")  # the only dissenter is gone
    assert table.agree(c1) is True
    table.forget("a")
    assert table.agree(c1) is True  # vacuous again
    table.forget("missing")  # no-op must not corrupt the count
    assert table.agree(c1) is True
    assert_consistent(table, [c1])


def test_property_random_mutation_storm_matches_naive_scan():
    """Property test: any interleaving of update/expire/forget/agree
    keeps the incremental counter identical to the naive scan."""
    rng = random.Random(1234)
    owners = ["p", "q", "r"]
    referencers = [f"ref{index}" for index in range(12)]
    for trial in range(60):
        table = ReferencerTable()
        now = 0.0
        clocks = [clock(value, rng.choice(owners)) for value in range(1, 4)]
        for __ in range(120):
            now += rng.uniform(0.0, 3.0)
            op = rng.random()
            if op < 0.55:
                table.update(
                    rng.choice(referencers),
                    rng.choice(clocks),
                    rng.random() < 0.5,
                    now,
                    sender_ttb=rng.choice([0.0, 5.0]),
                )
            elif op < 0.75:
                table.expire(
                    now,
                    rng.choice([4.0, 10.0]),
                    base_ttb=1.0,
                    honor_sender_ttb=rng.random() < 0.5,
                )
            elif op < 0.85:
                table.forget(rng.choice(referencers))
            else:
                candidate = rng.choice(clocks)
                assert table.agree(candidate) == table.agree_scan(candidate)
        assert_consistent(table, clocks)


def test_property_expire_matches_expire_scan():
    """The fast-path expire drops exactly what the full scan would."""
    rng = random.Random(99)
    for trial in range(40):
        fast = ReferencerTable()
        slow = ReferencerTable()
        c1 = clock(1)
        now = 0.0
        for __ in range(80):
            now += rng.uniform(0.0, 2.0)
            if rng.random() < 0.7:
                name = f"ref{rng.randrange(10)}"
                consensus = rng.random() < 0.5
                ttb = rng.choice([0.0, 4.0])
                fast.update(name, c1, consensus, now, ttb)
                slow.update(name, c1, consensus, now, ttb)
            else:
                tta = rng.choice([3.0, 8.0])
                honor = rng.random() < 0.5
                lost_fast = fast.expire(
                    now, tta, base_ttb=1.0, honor_sender_ttb=honor
                )
                lost_slow = slow.expire_scan(
                    now, tta, base_ttb=1.0, honor_sender_ttb=honor
                )
                assert sorted(lost_fast) == sorted(lost_slow)
        assert sorted(fast.ids()) == sorted(slow.ids())
        assert fast.agree(c1) == slow.agree_scan(c1)
