"""Unit tests for the fault plan (delay rules and partitions)."""

from repro.net.faults import FaultPlan
from repro.net.message import Envelope


def envelope(kind="app.request", src="a", dst="b"):
    return Envelope(
        source_node=src,
        dest_node=dst,
        kind=kind,
        size_bytes=1,
        payload=None,
        deliver=lambda p: None,
    )


def test_no_rules_no_delay():
    plan = FaultPlan()
    assert plan.extra_delay(envelope(), now=0.0) == 0.0


def test_delay_filters_by_source_dest_kind():
    plan = FaultPlan()
    plan.add_delay(1.0, source="a", dest="b", kind="app.request")
    assert plan.extra_delay(envelope(), now=0.0) == 1.0
    assert plan.extra_delay(envelope(src="x"), now=0.0) == 0.0
    assert plan.extra_delay(envelope(dst="x"), now=0.0) == 0.0
    assert plan.extra_delay(envelope(kind="dgc.message"), now=0.0) == 0.0


def test_delay_window():
    plan = FaultPlan()
    plan.add_delay(2.0, start=10.0, end=20.0)
    assert plan.extra_delay(envelope(), now=5.0) == 0.0
    assert plan.extra_delay(envelope(), now=10.0) == 2.0
    assert plan.extra_delay(envelope(), now=19.99) == 2.0
    assert plan.extra_delay(envelope(), now=20.0) == 0.0


def test_delays_accumulate():
    plan = FaultPlan()
    plan.add_delay(1.0)
    plan.add_delay(0.5, kind="app.request")
    assert plan.extra_delay(envelope(), now=0.0) == 1.5


def test_custom_predicate():
    plan = FaultPlan()
    plan.add_delay(3.0, predicate=lambda env: env.size_bytes == 1)
    assert plan.extra_delay(envelope(), now=0.0) == 3.0


def test_may_delay_matches_only_the_filtered_stream():
    plan = FaultPlan()
    plan.add_delay(1.0, source="a", dest="b", kind="dgc.message")
    assert plan.may_delay("a", "b", "dgc.message")
    assert not plan.may_delay("a", "b", "app.request")
    assert not plan.may_delay("a", "b", "dgc.response")
    assert not plan.may_delay("x", "b", "dgc.message")
    assert not plan.may_delay("a", "x", "dgc.message")


def test_may_delay_ignores_time_windows():
    # A currently-dormant rule still forces per-envelope evaluation —
    # that is what honours the window exactly once it opens.
    plan = FaultPlan()
    plan.add_delay(1.0, kind="dgc.message", start=100.0, end=200.0)
    assert plan.may_delay("a", "b", "dgc.message")
    assert not plan.may_delay("a", "b", "app.request")


def test_may_delay_is_conservative_for_opaque_predicates():
    plan = FaultPlan()
    plan.add_delay(1.0, predicate=lambda env: env.size_bytes > 10)
    assert plan.may_delay("a", "b", "dgc.message")
    assert plan.may_delay("x", "y", "app.reply")
    # Static filters still prune even with a predicate attached.
    plan2 = FaultPlan()
    plan2.add_delay(1.0, kind="dgc.message",
                    predicate=lambda env: env.size_bytes > 10)
    assert plan2.may_delay("a", "b", "dgc.message")
    assert not plan2.may_delay("a", "b", "app.request")


def test_kind_filtered_rule_keeps_other_kinds_on_the_batched_path():
    """A single kind-filtered delay rule used to force the envelope-only
    per-event path for *all* traffic on the channel; unmatched kinds
    must keep riding the pulse."""
    from repro.net.network import Network
    from repro.net.topology import uniform_topology
    from repro.sim.kernel import SimKernel

    def build():
        plan = FaultPlan()
        kernel = SimKernel()
        network = Network(
            kernel, uniform_topology(2, rtt_s=0.01), fault_plan=plan
        )
        network.pulse_batching = True
        delivered = []
        network.register_node("site-0", lambda env: None,
                              lambda kind, item, payload: None)
        network.register_node(
            "site-1", lambda env: delivered.append(("env", env.kind)),
            lambda kind, item, payload: delivered.append(("pulse", kind)),
        )
        return plan, kernel, network, delivered

    # Baseline: everything pulses.
    plan, kernel, network, delivered = build()
    plan.add_delay(0.5, kind="dgc.message")
    network.send_typed("site-0", "site-1", "app.request", 10, "r1", None)
    network.send_typed("site-0", "site-1", "dgc.message", 10, "m1", None)
    kernel.run()
    assert ("pulse", "app.request") in delivered
    assert ("env", "dgc.message") in delivered
    # The matched kind went per-envelope and took the extra delay with
    # it; the unmatched kind was not slowed down.
    assert network.pulse_event_count > 0


def test_partition_is_bidirectional_and_healable():
    plan = FaultPlan()
    plan.partition("a", "b")
    assert plan.is_partitioned("a", "b")
    assert plan.is_partitioned("b", "a")
    assert not plan.is_partitioned("a", "c")
    plan.heal("b", "a")
    assert not plan.is_partitioned("a", "b")
