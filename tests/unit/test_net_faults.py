"""Unit tests for the fault plan (delay rules and partitions)."""

from repro.net.faults import FaultPlan
from repro.net.message import Envelope


def envelope(kind="app.request", src="a", dst="b"):
    return Envelope(
        source_node=src,
        dest_node=dst,
        kind=kind,
        size_bytes=1,
        payload=None,
        deliver=lambda p: None,
    )


def test_no_rules_no_delay():
    plan = FaultPlan()
    assert plan.extra_delay(envelope(), now=0.0) == 0.0


def test_delay_filters_by_source_dest_kind():
    plan = FaultPlan()
    plan.add_delay(1.0, source="a", dest="b", kind="app.request")
    assert plan.extra_delay(envelope(), now=0.0) == 1.0
    assert plan.extra_delay(envelope(src="x"), now=0.0) == 0.0
    assert plan.extra_delay(envelope(dst="x"), now=0.0) == 0.0
    assert plan.extra_delay(envelope(kind="dgc.message"), now=0.0) == 0.0


def test_delay_window():
    plan = FaultPlan()
    plan.add_delay(2.0, start=10.0, end=20.0)
    assert plan.extra_delay(envelope(), now=5.0) == 0.0
    assert plan.extra_delay(envelope(), now=10.0) == 2.0
    assert plan.extra_delay(envelope(), now=19.99) == 2.0
    assert plan.extra_delay(envelope(), now=20.0) == 0.0


def test_delays_accumulate():
    plan = FaultPlan()
    plan.add_delay(1.0)
    plan.add_delay(0.5, kind="app.request")
    assert plan.extra_delay(envelope(), now=0.0) == 1.5


def test_custom_predicate():
    plan = FaultPlan()
    plan.add_delay(3.0, predicate=lambda env: env.size_bytes == 1)
    assert plan.extra_delay(envelope(), now=0.0) == 3.0


def test_partition_is_bidirectional_and_healable():
    plan = FaultPlan()
    plan.partition("a", "b")
    assert plan.is_partitioned("a", "b")
    assert plan.is_partitioned("b", "a")
    assert not plan.is_partitioned("a", "c")
    plan.heal("b", "a")
    assert not plan.is_partitioned("a", "b")
