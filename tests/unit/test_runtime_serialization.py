"""Unit tests for reference (de)serialization hooks."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.behaviors import SinkBehavior
from repro.runtime.proxy import RemoteRef
from repro.runtime.serialization import deserialize_refs, serialize_refs


def test_serialize_mixed_proxies_and_refs(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="t")
    bare = RemoteRef("ao-x", "site-1")
    wire = serialize_refs([proxy, bare])
    assert wire[0] == proxy.ref
    assert wire[1] == bare


def test_serialize_released_proxy_rejected(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="t")
    driver.context.drop(proxy)
    with pytest.raises(RuntimeModelError):
        serialize_refs([proxy])


def test_serialize_garbage_rejected():
    with pytest.raises(RuntimeModelError):
        serialize_refs(["not-a-ref"])


def test_deserialize_registers_in_proxy_table(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    receiver_proxy = driver.context.create(SinkBehavior(), name="r")
    receiver = world.find_activity(receiver_proxy.activity_id)
    proxies = deserialize_refs(receiver, [target.ref, target.ref])
    assert len(proxies) == 2
    assert receiver.proxies.live_count(target.activity_id) == 2
    assert proxies[0].tag is proxies[1].tag


def test_deserialize_notifies_collector(make_world):
    class Spy:
        def __init__(self):
            self.seen = []

        def on_reference_deserialized(self, proxy):
            self.seen.append(proxy.activity_id)

    world = make_world(2, dgc=None)
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    receiver_proxy = driver.context.create(SinkBehavior(), name="r")
    receiver = world.find_activity(receiver_proxy.activity_id)
    spy = Spy()
    receiver.collector = spy
    deserialize_refs(receiver, [target.ref])
    assert spy.seen == [target.activity_id]


def test_self_reference_deserializes(make_world):
    world = make_world(1, dgc=None)
    driver = world.create_driver()
    target_proxy = driver.context.create(SinkBehavior(), name="t")
    target = world.find_activity(target_proxy.activity_id)
    self_proxy = deserialize_refs(
        target, [RemoteRef(target.id, target.node.name)]
    )[0]
    assert self_proxy.activity_id == target.id
    assert target.proxies.holds(target.id)
