"""Unit tests for the central traffic-kind registry."""

import pytest

from repro.net import kinds, message


def test_all_kinds_are_unique_and_orderd_dgc_first():
    assert len(set(kinds.ALL_KINDS)) == len(kinds.ALL_KINDS)
    assert kinds.ALL_KINDS[0] == kinds.KIND_DGC_MESSAGE
    assert kinds.ALL_KINDS[1] == kinds.KIND_DGC_RESPONSE


def test_registry_family_contains_all_naming_kinds():
    assert set(kinds.REGISTRY_KINDS) == {
        "registry.lookup",
        "registry.reply",
        "registry.bind",
        "registry.invalidate",
        "registry.renew",
        "registry.push",
    }
    assert set(kinds.APP_KINDS) == {"app.request", "app.reply"}
    assert set(kinds.DGC_KINDS) == {"dgc.message", "dgc.response"}


def test_paired_kinds_are_exactly_the_dgc_ones():
    assert kinds.PAIRED_PAYLOAD_KINDS == frozenset(
        {kinds.KIND_DGC_MESSAGE, kinds.KIND_DGC_RESPONSE}
    )
    assert set(kinds.AGGREGATE_KINDS) == set(kinds.PAIRED_PAYLOAD_KINDS)


def test_message_module_reexports_the_registry():
    # Back-compat: the historical import site still works and agrees.
    assert message.ALL_KINDS == kinds.ALL_KINDS
    assert message.KIND_REGISTRY_BIND == "registry.bind"
    assert message.AGGREGATE_KINDS is kinds.AGGREGATE_KINDS


def test_register_kind_rejects_duplicates():
    with pytest.raises(ValueError):
        kinds.register_kind(kinds.KIND_APP_REQUEST)


def test_register_kind_extends_family_and_order():
    before = kinds.ALL_KINDS
    try:
        kinds.register_kind("registry.gossip")
        assert kinds.ALL_KINDS[-1] == "registry.gossip"
        assert "registry.gossip" in kinds.REGISTRY_KINDS
    finally:
        # Undo: the registry rebinding is append-only by design; restore
        # the module state so other tests see the built-ins only.
        kinds.ALL_KINDS = before
        kinds.REGISTRY_KINDS = tuple(
            k for k in kinds.REGISTRY_KINDS if k != "registry.gossip"
        )


def test_describe_traffic_is_greppable_by_kind():
    line = kinds.describe_traffic("registry.renew", "site-1", "site-0", 56)
    assert line == "registry.renew site-1->site-0 56B"
