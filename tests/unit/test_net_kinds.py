"""Unit tests for the central traffic-kind registry."""

import pytest

from repro.net import kinds, message


def test_all_kinds_are_unique_and_orderd_dgc_first():
    assert len(set(kinds.ALL_KINDS)) == len(kinds.ALL_KINDS)
    assert kinds.ALL_KINDS[0] == kinds.KIND_DGC_MESSAGE
    assert kinds.ALL_KINDS[1] == kinds.KIND_DGC_RESPONSE


def test_registry_family_contains_all_naming_kinds():
    assert set(kinds.REGISTRY_KINDS) == {
        "registry.lookup",
        "registry.reply",
        "registry.bind",
        "registry.invalidate",
        "registry.renew",
        "registry.push",
    }
    assert set(kinds.APP_KINDS) == {"app.request", "app.reply"}
    assert set(kinds.DGC_KINDS) == {"dgc.message", "dgc.response"}


def test_paired_kinds_are_exactly_the_dgc_ones():
    assert kinds.PAIRED_PAYLOAD_KINDS == frozenset(
        {kinds.KIND_DGC_MESSAGE, kinds.KIND_DGC_RESPONSE}
    )
    assert set(kinds.AGGREGATE_KINDS) == set(kinds.PAIRED_PAYLOAD_KINDS)


def test_message_module_reexports_the_registry():
    # Back-compat: the historical import site still works and agrees.
    assert message.ALL_KINDS == kinds.ALL_KINDS
    assert message.KIND_REGISTRY_BIND == "registry.bind"
    assert message.AGGREGATE_KINDS is kinds.AGGREGATE_KINDS


def test_register_kind_rejects_duplicates():
    with pytest.raises(ValueError):
        kinds.register_kind(kinds.KIND_APP_REQUEST)


def test_register_kind_extends_family_and_order():
    before = kinds.ALL_KINDS
    try:
        kinds.register_kind("registry.gossip")
        assert kinds.ALL_KINDS[-1] == "registry.gossip"
        assert "registry.gossip" in kinds.REGISTRY_KINDS
    finally:
        # Undo: the registry rebinding is append-only by design; restore
        # the module state so other tests see the built-ins only.
        kinds.ALL_KINDS = before
        kinds.REGISTRY_KINDS = tuple(
            k for k in kinds.REGISTRY_KINDS if k != "registry.gossip"
        )


def test_describe_traffic_is_greppable_by_kind():
    line = kinds.describe_traffic("registry.renew", "site-1", "site-0", 56)
    assert line == "registry.renew site-1->site-0 56B"


def test_dispatch_shapes_are_bound_by_network_and_node():
    # Importing the fabric (done above through repro.net.message's
    # consumers in other suites, and unconditionally here) records the
    # binders that snapshot PAIRED_PAYLOAD_KINDS/AGGREGATE_KINDS.
    import repro.net.network  # noqa: F401
    import repro.runtime.node  # noqa: F401

    assert "repro.net.network" in kinds._DISPATCH_SHAPE_BINDERS
    assert "repro.runtime.node" in kinds._DISPATCH_SHAPE_BINDERS


def test_late_paired_registration_raises_without_mutating_registry():
    import repro.net.network  # noqa: F401  (ensures a binder is recorded)

    before_all = kinds.ALL_KINDS
    before_paired = kinds.PAIRED_PAYLOAD_KINDS
    before_agg = dict(kinds.AGGREGATE_KINDS)
    with pytest.raises(RuntimeError, match="dispatch-shape"):
        kinds.register_kind("dgc.late", paired=True)
    with pytest.raises(RuntimeError, match="dispatch-shape"):
        kinds.register_kind("dgc.late", aggregate="dgc.late[]")
    # The failed registrations left no trace.
    assert kinds.ALL_KINDS == before_all
    assert kinds.PAIRED_PAYLOAD_KINDS == before_paired
    assert kinds.AGGREGATE_KINDS == before_agg


def test_late_plain_registration_stays_legal_after_binding():
    import repro.runtime.node  # noqa: F401  (ensures a binder is recorded)

    before = kinds.ALL_KINDS
    try:
        kinds.register_kind("registry.late_plain")
        assert kinds.ALL_KINDS[-1] == "registry.late_plain"
    finally:
        kinds.ALL_KINDS = before
        kinds.REGISTRY_KINDS = tuple(
            k for k in kinds.REGISTRY_KINDS if k != "registry.late_plain"
        )


def test_paired_registration_allowed_before_any_binder(monkeypatch):
    # Simulate the pre-import world: no binder recorded yet.
    monkeypatch.setattr(kinds, "_DISPATCH_SHAPE_BINDERS", ())
    before_all = kinds.ALL_KINDS
    before_paired = kinds.PAIRED_PAYLOAD_KINDS
    try:
        kinds.register_kind("dgc.early", paired=True, aggregate="dgc.early[]")
        assert "dgc.early" in kinds.PAIRED_PAYLOAD_KINDS
        assert kinds.AGGREGATE_KINDS["dgc.early"] == "dgc.early[]"
    finally:
        kinds.ALL_KINDS = before_all
        kinds.PAIRED_PAYLOAD_KINDS = before_paired
        kinds.AGGREGATE_KINDS.pop("dgc.early", None)
        kinds.DGC_KINDS = tuple(
            k for k in kinds.DGC_KINDS if k != "dgc.early"
        )


def test_size_sources_manifest_is_total_and_priced():
    # Every registered kind is priced, by a real WireSizeModel attribute.
    assert set(message.KIND_SIZE_SOURCES) == set(kinds.ALL_KINDS)
    model = message.WireSizeModel()
    for kind, attr in message.KIND_SIZE_SOURCES.items():
        assert hasattr(model, attr), (kind, attr)


def test_payload_types_manifest_is_total():
    from repro.net import wire

    assert set(wire.KIND_PAYLOAD_TYPES) == set(kinds.ALL_KINDS)
    for kind, types in wire.KIND_PAYLOAD_TYPES.items():
        assert types, kind
        for payload_type in types:
            assert isinstance(payload_type, type), (kind, payload_type)
