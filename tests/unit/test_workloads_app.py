"""Unit tests for the Peer behavior and graph helpers."""

import pytest

from repro.workloads.app import Peer, link, links_settled, release_all, unlink
from repro.workloads.synthetic import (
    build_chain,
    build_complete_graph,
    build_random_graph,
    build_ring,
    create_peers,
)


@pytest.fixture
def world(make_world):
    return make_world(3, dgc=None)


def held_targets(world, proxy):
    activity = world.find_activity(proxy.activity_id)
    return set(activity.proxies.targets())


def test_hold_stores_under_key(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b, key="friend")
    world.run_for(1.0)
    behavior = world.find_activity(a.activity_id).behavior
    assert "friend" in behavior.held
    assert b.activity_id in held_targets(world, a)


def test_hold_replaces_same_key(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    c = driver.context.create(Peer(), name="c")
    link(driver, a, b, key="slot")
    world.run_for(1.0)
    link(driver, a, c, key="slot")
    world.run_for(1.0)
    targets = held_targets(world, a)
    assert c.activity_id in targets
    assert b.activity_id not in targets


def test_drop_releases_reference(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b, key="x")
    world.run_for(1.0)
    unlink(driver, a, key="x")
    world.run_for(1.0)
    assert b.activity_id not in held_targets(world, a)


def test_drop_unknown_key_is_harmless(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    unlink(driver, a, key="ghost")
    world.run_for(1.0)


def test_drop_all(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    c = driver.context.create(Peer(), name="c")
    link(driver, a, b, key="1")
    link(driver, a, c, key="2")
    world.run_for(1.0)
    driver.context.call(a, "drop_all")
    world.run_for(1.0)
    assert held_targets(world, a) == set()


def test_forward_passes_reference(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    c = driver.context.create(Peer(), name="c")
    link(driver, a, b, key="to")
    link(driver, a, c, key="payload")
    world.run_for(1.0)
    driver.context.call(a, "forward", data=("to", "payload", "gift"))
    world.run_for(1.0)
    assert c.activity_id in held_targets(world, b)
    behavior_b = world.find_activity(b.activity_id).behavior
    assert "gift" in behavior_b.held


def test_work_keeps_busy(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    driver.context.call(a, "work", data=5.0)
    world.run_for(1.0)
    assert not world.find_activity(a.activity_id).is_idle()
    world.run_for(10.0)
    assert world.find_activity(a.activity_id).is_idle()


def test_release_all_skips_released(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    driver.context.drop(a)
    release_all(driver, [a])  # no error on already-released


def test_links_settled(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    assert not links_settled(world)
    world.run_for(1.0)
    assert links_settled(world)


def test_build_ring_edges(world):
    driver = world.create_driver()
    ring = build_ring(world, driver, 4)
    world.run_for(1.0)
    for index, proxy in enumerate(ring):
        expected = ring[(index + 1) % 4].activity_id
        assert expected in held_targets(world, proxy)


def test_build_chain_edges(world):
    driver = world.create_driver()
    chain = build_chain(world, driver, 3)
    world.run_for(1.0)
    assert chain[1].activity_id in held_targets(world, chain[0])
    assert held_targets(world, chain[2]) == set()


def test_build_complete_graph_edges(world):
    driver = world.create_driver()
    peers = build_complete_graph(world, driver, 4)
    world.run_for(1.0)
    for index, proxy in enumerate(peers):
        others = {
            p.activity_id for j, p in enumerate(peers) if j != index
        }
        assert held_targets(world, proxy) == others


def test_build_random_graph_reproducible(world, make_world):
    import random

    world_b = make_world(3, dgc=None)
    driver_a = world.create_driver()
    driver_b = world_b.create_driver()
    peers_a = build_random_graph(world, driver_a, 5, 0.4, random.Random(1))
    peers_b = build_random_graph(world_b, driver_b, 5, 0.4, random.Random(1))
    world.run_for(1.0)
    world_b.run_for(1.0)
    edges_a = [
        sorted(held_targets(world, proxy) - {p.activity_id for p in peers_a[:0]})
        for proxy in peers_a
    ]
    # Compare shapes by index (ids differ between worlds).
    def shape(world_x, peers):
        index_of = {p.activity_id: i for i, p in enumerate(peers)}
        return [
            sorted(
                index_of[t]
                for t in held_targets(world_x, proxy)
                if t in index_of
            )
            for proxy in peers
        ]

    assert shape(world, peers_a) == shape(world_b, peers_b)


def test_create_peers_names(world):
    driver = world.create_driver()
    peers = create_peers(world, driver, 2, name_prefix="zed")
    assert all("zed" in proxy.activity_id for proxy in peers)
