"""Unit tests for the bandwidth accountant."""

from repro.net.accounting import BandwidthAccountant
from repro.net.message import (
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    Envelope,
)


def make_envelope(kind: str, size: int, src="a", dst="b") -> Envelope:
    return Envelope(
        source_node=src,
        dest_node=dst,
        kind=kind,
        size_bytes=size,
        payload=None,
        deliver=lambda payload: None,
    )


def test_totals_by_kind():
    accountant = BandwidthAccountant()
    accountant.observe(make_envelope(KIND_APP_REQUEST, 100))
    accountant.observe(make_envelope(KIND_APP_REPLY, 50))
    accountant.observe(make_envelope(KIND_DGC_MESSAGE, 64))
    accountant.observe(make_envelope(KIND_DGC_RESPONSE, 48))
    assert accountant.app_bytes == 150
    assert accountant.dgc_bytes == 112
    assert accountant.total_bytes == 262
    assert accountant.total_messages == 4


def test_bytes_and_messages_for_specific_kind():
    accountant = BandwidthAccountant()
    for __ in range(3):
        accountant.observe(make_envelope(KIND_DGC_MESSAGE, 64))
    assert accountant.bytes_for(KIND_DGC_MESSAGE) == 192
    assert accountant.messages_for(KIND_DGC_MESSAGE) == 3
    assert accountant.bytes_for("unknown") == 0
    assert accountant.messages_for("unknown") == 0


def test_megabytes_uses_decimal_mb():
    accountant = BandwidthAccountant()
    accountant.observe(make_envelope(KIND_APP_REQUEST, 2_000_000))
    assert accountant.megabytes() == 2.0


def test_summary_is_a_copy():
    accountant = BandwidthAccountant()
    accountant.observe(make_envelope(KIND_APP_REQUEST, 10))
    summary = accountant.summary()
    summary[KIND_APP_REQUEST].bytes = 999
    assert accountant.bytes_for(KIND_APP_REQUEST) == 10


def test_describe_reports_kinds_uniformly_across_sinks():
    """Typed and envelope sinks account with the same kind constants, in
    the fabric's canonical order — the summary stays greppable by kind."""
    from repro.net.message import KIND_APP_REQUEST, KIND_DGC_MESSAGE

    accountant = BandwidthAccountant()
    # One observation through the envelope form, one through the typed
    # (pre-sized) form, one unknown extension kind.
    accountant.observe(make_envelope(kind=KIND_APP_REQUEST, size=100))
    accountant.observe_sized(KIND_DGC_MESSAGE, 64, ("a", "b"))
    accountant.observe_sized("custom.kind", 10, ("a", "b"))
    lines = accountant.describe().splitlines()
    # Canonical ALL_KINDS order (DGC first), unknown kinds last.
    assert lines == [
        "dgc.message: 1 msgs, 64 B",
        "app.request: 1 msgs, 100 B",
        "custom.kind: 1 msgs, 10 B",
    ]


def test_envelope_repr_uses_the_uniform_traffic_description():
    from repro.net.message import describe_traffic

    envelope = make_envelope(kind="dgc.message", size=64)
    assert describe_traffic("dgc.message", envelope.source_node,
                            envelope.dest_node, 64) in repr(envelope)


def test_observe_run_matches_n_observe_sized_calls():
    one = BandwidthAccountant()
    for __ in range(4):
        one.observe_sized("dgc.message", 64, ("a", "b"))
    many = BandwidthAccountant()
    many.observe_run("dgc.message", 64, ("a", "b"), 4)
    assert one.bytes_for("dgc.message") == many.bytes_for("dgc.message") == 256
    assert one.messages_for("dgc.message") == many.messages_for("dgc.message") == 4
    assert one.pair_bytes(("a", "b")) == many.pair_bytes(("a", "b")) == 256
    assert one.total_bytes == many.total_bytes


def test_pair_box_is_live_and_shared_with_observers():
    accountant = BandwidthAccountant()
    box = accountant.pair_box(("a", "b"))
    assert accountant.pair_bytes(("a", "b")) == 0
    accountant.observe_sized("app.request", 100, ("a", "b"))
    assert box[0] == 100
    box[0] += 50  # a hot sender bumping its lent box
    assert accountant.pair_bytes(("a", "b")) == 150
