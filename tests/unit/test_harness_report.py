"""Unit tests for report rendering."""

from repro.harness.experiment import Aggregate, aggregate, overhead_percent
from repro.harness.report import render_series, render_table


def test_render_table_alignment():
    text = render_table(
        ["Kernel", "MB"],
        [["CG", "194351.81"], ["EP", "69.75"]],
        title="T",
    )
    lines = text.splitlines()
    assert lines[0] == "T"
    assert lines[1].startswith("| Kernel")
    assert all(line.startswith("|") for line in lines[1:])
    widths = {len(line) for line in lines[1:]}
    assert len(widths) == 1  # every row same width


def test_render_table_pads_missing_cells():
    text = render_table(["a", "b"], [["only-a"]])
    assert "only-a" in text


def test_render_series_plots_points():
    series = [(0.0, 0, 0), (50.0, 10, 0), (100.0, 0, 10)]
    text = render_series(series, title="fig")
    assert text.splitlines()[0] == "fig"
    assert "." in text
    assert "#" in text


def test_render_series_empty():
    assert "empty" in render_series([], title="x")


def test_aggregate_mean_std():
    agg = aggregate([1.0, 2.0, 3.0])
    assert agg.mean == 2.0
    assert agg.std > 0
    assert agg.count == 3


def test_aggregate_single_value_zero_std():
    agg = aggregate([5.0])
    assert agg.mean == 5.0
    assert agg.std == 0.0


def test_aggregate_empty_is_nan():
    agg = aggregate([])
    assert agg.count == 0
    assert agg.mean != agg.mean  # NaN


def test_overhead_percent():
    assert overhead_percent(115.0, 100.0) == 15.0
    assert overhead_percent(100.0, 0.0) == float("inf")
    assert overhead_percent(90.0, 100.0) == -10.0


def test_aggregate_str():
    assert "±" in str(aggregate([1.0, 2.0]))
