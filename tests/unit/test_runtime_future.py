"""Unit tests for futures."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.future import Future


def test_unresolved_value_read_rejected():
    future = Future()
    with pytest.raises(RuntimeModelError):
        __ = future.value
    with pytest.raises(RuntimeModelError):
        __ = future.refs


def test_resolve_sets_value_and_refs():
    future = Future()
    future.resolve(42, refs=("proxy",))
    assert future.resolved
    assert future.value == 42
    assert future.refs == ("proxy",)


def test_double_resolve_rejected():
    future = Future()
    future.resolve(1)
    with pytest.raises(RuntimeModelError):
        future.resolve(2)


def test_callback_after_resolution_runs_immediately():
    future = Future()
    future.resolve("x")
    seen = []
    future.on_resolve(lambda f: seen.append(f.value))
    assert seen == ["x"]


def test_callbacks_run_in_registration_order():
    future = Future()
    seen = []
    future.on_resolve(lambda f: seen.append(1))
    future.on_resolve(lambda f: seen.append(2))
    future.resolve(None)
    assert seen == [1, 2]


def test_future_ids_unique():
    assert Future().future_id != Future().future_id
