"""Per-channel lookahead: the plan's latency matrix, its shortest-path
closure, and the coordinator's float-safe arrival bounds.

The matrix generalizes the old scalar lookahead — one conservative
window per ``(src_shard, dst_shard)`` channel instead of the plan-wide
minimum — and the closure (:attr:`ShardPlan.horizon_matrix`) is the
exact-arithmetic form of the per-shard horizons the coordinator
grants.  The coordinator itself relaxes over the raw matrix with
left-folded float additions (:func:`_arrival_bounds`); these tests pin
both the exact values and the fold-order property that makes the float
bound safe.
"""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.net.topology import Site, Topology, metro_wan_topology
from repro.shard.coordinator import _arrival_bounds
from repro.shard.plan import ShardPlan, _closure, make_plan

INF = math.inf


# ----------------------------------------------------------------------
# The lookahead matrix built by make_plan
# ----------------------------------------------------------------------


def test_metro_wan_plan_matrix_two_shards():
    # 4 sites paired into metros; a 2-shard split lands the boundary
    # between the metros, so every cross-shard channel is WAN-wide.
    topo = metro_wan_topology(
        16, site_count=4, intra_rtt_s=0.001, metro_rtt_s=0.5, wan_rtt_s=2.0
    )
    plan = make_plan(topo, 2)
    assert plan.lookahead == pytest.approx(1.0)
    assert plan.lookahead_matrix == ((INF, 1.0), (1.0, INF))
    # Closure: direct hops off the diagonal, round trips on it.
    assert plan.horizon_matrix == ((2.0, 1.0), (1.0, 2.0))


def test_metro_wan_plan_matrix_four_shards():
    # One shard per site: metro channels are narrow, WAN channels wide
    # — the scalar lookahead collapses to the metro latency but the
    # matrix keeps the WAN channels at their true width.
    topo = metro_wan_topology(
        16, site_count=4, intra_rtt_s=0.001, metro_rtt_s=0.5, wan_rtt_s=2.0
    )
    plan = make_plan(topo, 4)
    assert plan.lookahead == pytest.approx(0.25)
    matrix = plan.lookahead_matrix
    for i in range(4):
        for j in range(4):
            if i == j:
                assert matrix[i][j] == INF
            elif i // 2 == j // 2:
                assert matrix[i][j] == pytest.approx(0.25)
            else:
                assert matrix[i][j] == pytest.approx(1.0)
    # The WAN channel is still cheaper than chaining two metro hops
    # through the far metro, so the closure keeps it direct; the cycle
    # diagonal is the metro round trip.
    assert plan.horizon_matrix[0][2] == pytest.approx(1.0)
    assert plan.horizon_matrix[0][0] == pytest.approx(0.5)


def test_boundary_inside_a_site_collapses_that_channel_only():
    # Three shards over two sites: the a/a boundary channel is the
    # intra-site latency, the cross-site channels keep the wide one.
    topo = Topology(
        [Site("a", 4, intra_rtt_s=0.01), Site("b", 2, intra_rtt_s=0.01)],
        {("a", "b"): 1.0},
    )
    plan = make_plan(topo, 3)  # blocks: a0-a1 | a2-a3 | b0-b1
    assert plan.nodes_of(2) == ["b-0", "b-1"]
    matrix = plan.lookahead_matrix
    assert matrix[0][1] == pytest.approx(0.005)
    assert matrix[1][0] == pytest.approx(0.005)
    assert matrix[0][2] == pytest.approx(0.5)
    assert matrix[2][1] == pytest.approx(0.5)
    assert plan.lookahead == pytest.approx(0.005)


def test_single_shard_matrix_is_all_inf():
    plan = make_plan(metro_wan_topology(4), 1)
    assert plan.lookahead == INF
    assert plan.lookahead_matrix == ((INF,),)
    assert plan.horizon_matrix == ((INF,),)


def test_direct_construction_defaults_matrices():
    # ShardPlan built without a matrix (older call sites, tests) gets
    # the all-inf matrix and its trivial closure.
    plan = ShardPlan(
        shard_count=2, node_names=("x", "y"), assignment=(0, 1),
        lookahead=0.5,
    )
    assert plan.lookahead_matrix == ((INF, INF), (INF, INF))
    assert plan.horizon_matrix == ((INF, INF), (INF, INF))


# ----------------------------------------------------------------------
# The shortest-path closure
# ----------------------------------------------------------------------


def test_closure_asymmetric_chains_and_cycles():
    # Hand-checked: 0->2 is cheaper via 1 (1+1) than direct (10);
    # 1->0 via 2 (1+1) than direct (5); every cheapest cycle is 3.
    matrix = (
        (INF, 1.0, 10.0),
        (5.0, INF, 1.0),
        (1.0, 3.0, INF),
    )
    assert _closure(matrix) == (
        (3.0, 1.0, 2.0),
        (2.0, 3.0, 1.0),
        (1.0, 2.0, 3.0),
    )


def test_closure_two_shards_is_direct_plus_round_trip():
    assert _closure(((INF, 0.25), (0.5, INF))) == (
        (0.75, 0.25),
        (0.5, 0.75),
    )


# ----------------------------------------------------------------------
# The coordinator's arrival bounds
# ----------------------------------------------------------------------


def test_arrival_bounds_match_closure_on_exact_values():
    matrix = (
        (INF, 1.0, 10.0),
        (5.0, INF, 1.0),
        (1.0, 3.0, INF),
    )
    closure = _closure(matrix)
    bids = [7.0, 9.0, 30.0]
    arrive = _arrival_bounds(bids, matrix)
    for j in range(3):
        expected = bids[j] + closure[j][j]
        for i in range(3):
            if i != j:
                expected = min(expected, bids[i] + closure[i][j])
        assert arrive[j] == pytest.approx(expected)


def test_idle_shard_widens_neighbour_horizons():
    # Symmetric two-shard channel: with both shards busy the horizon
    # tracks the global minimum, but when shard 1 has nothing to send
    # (bid inf) shard 0 is bounded only by its own echo — the
    # "no pending output" report buys the neighbourhood a far wider
    # window than the scalar protocol's M + L ever could.
    matrix = ((INF, 0.25), (0.25, INF))
    busy = _arrival_bounds([10.0, 10.5], matrix)
    assert busy[0] == pytest.approx(10.5)    # own echo: 10 + 0.25 + 0.25
    assert busy[1] == pytest.approx(10.25)   # shard 0's output
    idle = _arrival_bounds([10.0, INF], matrix)
    assert idle == busy  # the echo already bounded shard 0 here
    wide = _arrival_bounds([INF, 10.5], matrix)
    assert wide[0] == pytest.approx(10.75)   # only shard 1 can act
    assert wide[1] == pytest.approx(11.0)    # shard 1's own echo
    assert _arrival_bounds([INF, INF], matrix) == [INF, INF]


def test_asymmetric_channels_bound_each_direction_separately():
    # 0 -> 1 is fast (0.1), 1 -> 0 is slow (2.0): shard 0 may run far
    # ahead (its only inbound channel is slow) while shard 1 stays on
    # the short leash of the fast channel.
    matrix = ((INF, 0.1), (2.0, INF))
    arrive = _arrival_bounds([5.0, 5.0], matrix)
    assert arrive[0] == pytest.approx(7.0)
    assert arrive[1] == pytest.approx(5.1)


def test_arrival_bounds_fold_left_like_a_real_chain():
    # The float-safety property itself: the bound for a two-hop echo
    # must be the left-folded (bid + L1) + L2, which can differ from
    # bid + (L1 + L2) by an ULP — the latter would overshoot the real
    # chain's arrival and trip the late-injection guard.
    bid, l1, l2 = 3.396975044115336, 0.05, 0.001
    folded = (bid + l1) + l2
    presummed = bid + (l1 + l2)
    assert folded < presummed  # this triple genuinely exercises the gap
    arrive = _arrival_bounds([bid, INF], ((INF, l1), (l2, INF)))
    assert arrive[0] == folded


# ----------------------------------------------------------------------
# The workers' last line of defence
# ----------------------------------------------------------------------


def test_late_injection_still_raises():
    # Per-channel horizons or not, a delivery before the local clock
    # means the conservative bound was violated somewhere — the worker
    # refuses it rather than silently reordering.
    from repro.core.config import DgcConfig
    from repro.shard.worker import WorkerSpec, build_shard_world

    topo = Topology(
        [Site("a", 2, intra_rtt_s=0.002), Site("b", 2, intra_rtt_s=0.002)],
        {("a", "b"): 0.1},
    )
    spec = WorkerSpec(
        shard=0,
        plan=make_plan(topo, 2),
        topology=topo,
        workload="torture",
        params=dict(slave_count=2, active_duration=1.0),
        dgc=DgcConfig(ttb=1.0, tta=3.0),
    )
    world, _ = build_shard_world(spec)
    world.kernel.advance(5.0)
    with pytest.raises(NetworkError, match="late cross-shard entry"):
        world.network.inject_remote_entries(
            [(4.9, "a-0", "dgc.message", None, "late")]
        )
    # At or after the clock is fine.
    world.network.inject_remote_entries(
        [(5.0, "a-0", "dgc.message", None, "on-time")]
    )
