"""The perf subsystem: Stopwatch, PerfReport, and naive-mode patching."""

from __future__ import annotations

import json

import pytest

from repro.core.clock import ActivityClock
from repro.core.config import DgcConfig
from repro.core.referencers import ReferencerTable
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch, naive_mode
from repro.sim.kernel import SimKernel
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_ring
from repro.world import World


def test_stopwatch_measures_and_splits():
    watch = Stopwatch()
    with watch:
        watch.split("early")
    assert watch.elapsed >= 0.0
    assert "early" in watch.splits
    assert watch.splits["early"] <= watch.elapsed
    assert not watch.running


def test_stopwatch_stop_before_start_raises():
    with pytest.raises(RuntimeError):
        Stopwatch().stop()


def _git(repo, *argv):
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@t", "-c", "user.name=t", *argv],
        cwd=repo, check=True, capture_output=True,
    )


def test_current_git_sha_marks_dirty_trees(tmp_path):
    """Artifacts measured on uncommitted code must say so: the short SHA
    gains a ``-dirty`` suffix when tracked files are modified — but not
    for merely untracked files, which cannot affect imported code."""
    from repro.perf.stopwatch import current_git_sha

    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    tracked = repo / "code.py"
    tracked.write_text("x = 1\n")
    _git(repo, "add", "code.py")
    _git(repo, "commit", "-q", "-m", "seed")

    clean = current_git_sha(repo)
    assert clean != "unknown"
    assert not clean.endswith("-dirty")

    (repo / "scratch.txt").write_text("untracked\n")
    assert current_git_sha(repo) == clean

    tracked.write_text("x = 2\n")
    assert current_git_sha(repo) == clean + "-dirty"


def test_current_git_sha_outside_a_repo_is_unknown(tmp_path):
    from repro.perf.stopwatch import current_git_sha

    assert current_git_sha(tmp_path) == "unknown"


def test_perf_report_roundtrip(tmp_path):
    report = PerfReport(meta={"scale": "test"})
    report.add(
        PerfMeasurement(
            name="demo",
            wall_time_s=2.0,
            events_fired=100,
            peak_pending_events=7,
            sim_time_s=50.0,
            extra={"note": "hello"},
        )
    )
    path = report.write(tmp_path / "bench.json")
    payload = json.loads(path.read_text())
    assert payload["schema"] == PerfReport.SCHEMA
    assert payload["meta"]["scale"] == "test"
    demo = payload["benchmarks"]["demo"]
    assert demo["events_per_second"] == 50.0
    assert demo["peak_pending_events"] == 7
    assert demo["note"] == "hello"


def test_perf_report_measure_reads_kernel_counters():
    kernel = SimKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    report = PerfReport()
    watch = Stopwatch().start()
    watch.stop()
    measurement = report.measure("run", watch, kernel)
    assert measurement.events_fired == 1
    assert measurement.sim_time_s == 1.0


def test_naive_mode_patches_and_restores():
    optimized_agree = ReferencerTable.agree
    optimized_expire = ReferencerTable.expire
    with naive_mode():
        assert ReferencerTable.agree is not optimized_agree
        assert ReferencerTable.expire is not optimized_expire
        # The naive implementations still compute the same answers.
        table = ReferencerTable()
        c1 = ActivityClock(1, "x")
        table.update("a", c1, True, 0.0)
        assert table.agree(c1) is True
    assert ReferencerTable.agree is optimized_agree
    assert ReferencerTable.expire is optimized_expire


def test_naive_mode_restores_after_exceptions():
    optimized_agree = ReferencerTable.agree
    with pytest.raises(RuntimeError):
        with naive_mode():
            raise RuntimeError("boom")
    assert ReferencerTable.agree is optimized_agree


def test_naive_and_optimized_cores_agree_on_a_small_world():
    """End-to-end determinism probe at unit scale: one ring collected by
    both cores must produce identical stats."""
    config = DgcConfig(ttb=1.0, tta=3.0)

    def outcome():
        from repro.runtime.ids import reset_id_counter

        reset_id_counter()
        world = World(uniform_topology(2), dgc=config, seed=7)
        driver = world.create_driver()
        ring = build_ring(world, driver, 4)
        world.run_for(2.0)
        release_all(driver, ring)
        assert world.run_until_collected(100 * config.tta)
        return (
            world.stats.collected_acyclic,
            world.stats.collected_cyclic,
            max(world.stats.collected_by_id.values()),
        )

    fast = outcome()
    with naive_mode():
        slow = outcome()
    assert fast == slow
