"""Unit tests for the World facade: placement, stats, in-flight pins."""

import pytest

from repro.core.config import DgcConfig
from repro.errors import ConfigurationError
from repro.runtime.behaviors import Behavior, SinkBehavior
from repro.workloads.app import Peer, link
from repro.world import World
from repro.net.topology import uniform_topology


def test_default_topology():
    world = World(dgc=None)
    assert len(world.nodes) == 4


def test_stats_created_counter(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    for index in range(3):
        driver.context.create(SinkBehavior(), name=f"x{index}")
    assert world.stats.created == 4  # driver included


def test_live_non_roots_excludes_driver(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    driver.context.create(SinkBehavior(), name="x")
    assert len(world.live_activities()) == 2
    assert len(world.live_non_roots()) == 1
    assert not world.all_collected()


def test_all_collected_after_explicit_termination(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="x")
    world.find_activity(proxy.activity_id).terminate("explicit")
    assert world.all_collected()
    assert world.stats.terminated_explicit == 1


def test_inflight_wakeup_pins(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    target = driver.context.create(Peer(), name="t")
    driver.context.call(target, "ping")
    assert target.activity_id in world.inflight_pinned()
    world.run_for(1.0)
    assert target.activity_id not in world.inflight_pinned()


def test_inflight_reference_pins(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    assert b.activity_id in world.inflight_pinned()
    world.run_for(1.0)
    assert b.activity_id not in world.inflight_pinned()


def test_reply_reference_pins(make_world):
    class Giver(Behavior):
        def __init__(self, ref):
            self.ref = ref

        def do_give(self, ctx, request, proxies):
            from repro.runtime.node import ReplyPayload

            return ReplyPayload("here", refs=[self.ref])

    world = make_world(2, dgc=None)
    driver = world.create_driver()
    precious = driver.context.create(Peer(), name="precious")
    giver_proxy = world.create_activity(
        Giver(precious.ref), name="giver", creator=driver
    )
    future = driver.context.call(giver_proxy, "give", expect_reply=True)
    world.run_for(0.002)  # request delivered, reply in flight
    # At *some* point before resolution the precious id must be pinned;
    # after resolution the pin is gone.
    world.run_for(2.0)
    assert future.resolved
    assert world.inflight_pinned() == set()


def test_dgc_config_validated_against_topology():
    with pytest.raises(ConfigurationError):
        World(
            uniform_topology(2, rtt_s=10.0),
            dgc=DgcConfig(ttb=1.0, tta=3.0),
        )


def test_collector_factory_overrides_dgc(make_world):
    created = []

    class Fake:
        def __init__(self, activity):
            created.append(activity.id)

        def on_became_idle(self):
            pass

        def on_reference_deserialized(self, proxy):
            pass

        def on_reference_dropped(self, tag):
            pass

        def on_terminated(self):
            pass

    world = make_world(2, collector_factory=Fake)
    driver = world.create_driver()
    driver.context.create(SinkBehavior(), name="x")
    assert len(created) == 2


def test_run_until_collected_times_out(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    driver.context.create(SinkBehavior(), name="immortal")
    assert not world.run_until_collected(5.0)


def test_collected_by_id_times_recorded(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    driver.context.drop(a)
    world.run_until_collected(30 * fast_dgc.tta)
    assert a.activity_id in world.stats.collected_by_id
    assert world.stats.collected_by_id[a.activity_id] > 0


def test_dgc_disabled_activity_has_no_collector_and_must_be_root(make_world):
    from repro.errors import ConfigurationError

    world = make_world(2)
    external = world.create_activity(
        SinkBehavior(), name="external", root=True, dgc_enabled=False
    )
    assert external.collector is None
    assert external.is_root
    # A collector-less non-root could never be collected, so it would
    # wedge run_until_collected: rejected at creation.
    import pytest

    with pytest.raises(ConfigurationError):
        world.create_activity(SinkBehavior(), name="bad", dgc_enabled=False)
