"""Unit tests for Algorithms 1-4 (pure protocol functions).

These tests mirror the paper's pseudo-code line by line, including the
glyph restorations documented in DESIGN.md Sec. 3.
"""

from repro.core.clock import ActivityClock
from repro.core.protocol import (
    DgcState,
    acyclic_timeout_expired,
    consensus_flag_for,
    cyclic_consensus_made,
    process_message,
    process_response,
)
from repro.core.wire import DgcMessage, DgcResponse
from repro.runtime.proxy import RemoteRef, StubTag


def make_state(self_id="ao-s", value=0, owner=None):
    owner = owner if owner is not None else self_id
    return DgcState(self_id=self_id, clock=ActivityClock(value, owner))


def add_referenced(state, target="ao-t", node="n0"):
    tag = StubTag(state.self_id, target, 1)
    return state.referenced.on_deserialized(RemoteRef(target, node), tag)


def message(sender="ao-r", clock=None, consensus=False, node="n1"):
    return DgcMessage(
        sender=sender,
        clock=clock if clock is not None else ActivityClock(0, sender),
        consensus=consensus,
        sender_ref=RemoteRef(sender, node),
    )


# ----------------------------------------------------------------------
# Acyclic timeout (Algorithm 2, first branch)
# ----------------------------------------------------------------------

def test_acyclic_timeout_strictly_greater_than_tta():
    state = make_state()
    state.last_message_timestamp = 10.0
    assert not acyclic_timeout_expired(state, now=13.0, tta=3.0)
    assert acyclic_timeout_expired(state, now=13.01, tta=3.0)


# ----------------------------------------------------------------------
# Cyclic consensus (Algorithm 2, second branch)
# ----------------------------------------------------------------------

def test_cyclic_requires_clock_ownership():
    state = make_state(owner="ao-other")
    state.referencers.update("ao-r", state.clock, True, now=0.0)
    assert not cyclic_consensus_made(state)


def test_cyclic_requires_nonempty_referencers():
    """DESIGN.md Sec. 3 clarification: no vacuous self-consensus."""
    state = make_state()
    assert not cyclic_consensus_made(state)


def test_cyclic_requires_all_referencers_agree():
    state = make_state(value=3)
    state.referencers.update("ao-a", state.clock, True, now=0.0)
    state.referencers.update("ao-b", state.clock, False, now=0.0)
    assert not cyclic_consensus_made(state)
    state.referencers.update("ao-b", state.clock, True, now=0.0)
    assert cyclic_consensus_made(state)


def test_cyclic_rejects_stale_referencer_clock():
    state = make_state(value=3)
    state.referencers.update(
        "ao-a", ActivityClock(2, state.self_id), True, now=0.0
    )
    assert not cyclic_consensus_made(state)


# ----------------------------------------------------------------------
# Consensus flag in outgoing messages (Algorithm 2, loop body)
# ----------------------------------------------------------------------

def test_consensus_flag_false_when_busy():
    state = make_state()
    record = add_referenced(state)
    record.last_response = DgcResponse("ao-t", state.clock, True)
    assert not consensus_flag_for(state, record, is_idle=False)


def test_consensus_flag_requires_matching_last_response():
    state = make_state()
    record = add_referenced(state)
    assert not consensus_flag_for(state, record, is_idle=True)
    record.last_response = DgcResponse(
        "ao-t", ActivityClock(99, "ao-z"), True
    )
    assert not consensus_flag_for(state, record, is_idle=True)
    record.last_response = DgcResponse("ao-t", state.clock, True)
    assert consensus_flag_for(state, record, is_idle=True)


def test_consensus_flag_requires_originator_connection():
    """Non-owner without a parent cannot claim agreement."""
    state = make_state(owner="ao-other")
    record = add_referenced(state)
    record.last_response = DgcResponse("ao-t", state.clock, True)
    assert not consensus_flag_for(state, record, is_idle=True)
    state.parent = "ao-t"
    # Parent == destination: needs referencers' agreement (vacuous here).
    assert consensus_flag_for(state, record, is_idle=True)


def test_consensus_to_parent_is_conjunction_of_referencers():
    state = make_state(owner="ao-other")
    record = add_referenced(state, target="ao-parent")
    record.last_response = DgcResponse("ao-parent", state.clock, True)
    state.parent = "ao-parent"
    state.referencers.update("ao-r", state.clock, False, now=0.0)
    assert not consensus_flag_for(state, record, is_idle=True)
    state.referencers.update("ao-r", state.clock, True, now=0.0)
    assert consensus_flag_for(state, record, is_idle=True)


def test_consensus_to_non_parent_is_local_agreement_only():
    state = make_state(owner="ao-other")
    parent_record = add_referenced(state, target="ao-parent")
    other_record = add_referenced(state, target="ao-other-ref")
    parent_record.last_response = DgcResponse("ao-parent", state.clock, True)
    other_record.last_response = DgcResponse("ao-other-ref", state.clock, True)
    state.parent = "ao-parent"
    # A disagreeing referencer blocks the parent edge but not the others.
    state.referencers.update("ao-r", ActivityClock(9, "ao-x"), False, now=0.0)
    assert not consensus_flag_for(state, parent_record, is_idle=True)
    assert consensus_flag_for(state, other_record, is_idle=True)


# ----------------------------------------------------------------------
# Algorithm 3 — reception of a DGC message
# ----------------------------------------------------------------------

def test_message_with_newer_clock_is_adopted_and_parent_reset():
    state = make_state()
    state.parent = "ao-old-parent"
    newer = ActivityClock(5, "ao-r")
    response = process_message(state, message(clock=newer), now=1.0)
    assert state.clock == newer
    assert state.parent is None
    assert response.clock == newer


def test_message_with_older_clock_not_adopted():
    state = make_state(value=9)
    old = ActivityClock(1, "ao-r")
    process_message(state, message(clock=old), now=1.0)
    assert state.clock == ActivityClock(9, "ao-s")


def test_message_updates_referencer_record_and_timestamp():
    state = make_state()
    process_message(state, message(sender="ao-r", consensus=True), now=7.5)
    record = state.referencers.get("ao-r")
    assert record.consensus is True
    assert state.last_message_timestamp == 7.5


def test_response_has_parent_when_owner():
    state = make_state()  # owns its clock
    response = process_message(state, message(), now=0.0)
    assert response.has_parent is True


def test_response_has_parent_when_parent_set():
    state = make_state(owner="ao-other")
    # A message with our exact clock (no adoption, parent preserved).
    state.parent = "ao-p"
    response = process_message(state, message(clock=state.clock), now=0.0)
    assert response.has_parent is True


def test_response_has_no_parent_when_orphan_non_owner():
    state = make_state(owner="ao-other")
    response = process_message(state, message(clock=state.clock), now=0.0)
    assert response.has_parent is False


# ----------------------------------------------------------------------
# Algorithm 4 — reception of a DGC response
# ----------------------------------------------------------------------

def test_parent_adopted_on_matching_response():
    state = make_state(owner="ao-other")
    add_referenced(state, target="ao-t")
    response = DgcResponse("ao-t", state.clock, has_parent=True)
    assert process_response(state, response) is True
    assert state.parent == "ao-t"


def test_owner_never_adopts_parent():
    state = make_state()  # owner of its clock
    add_referenced(state, target="ao-t")
    response = DgcResponse("ao-t", state.clock, has_parent=True)
    assert process_response(state, response) is False
    assert state.parent is None


def test_parent_not_adopted_without_has_parent():
    state = make_state(owner="ao-other")
    add_referenced(state, target="ao-t")
    response = DgcResponse("ao-t", state.clock, has_parent=False)
    process_response(state, response)
    assert state.parent is None


def test_parent_not_adopted_on_clock_mismatch():
    state = make_state(owner="ao-other")
    add_referenced(state, target="ao-t")
    response = DgcResponse("ao-t", ActivityClock(99, "ao-z"), has_parent=True)
    process_response(state, response)
    assert state.parent is None


def test_existing_parent_not_replaced():
    state = make_state(owner="ao-other")
    add_referenced(state, target="ao-t")
    add_referenced(state, target="ao-u")
    state.parent = "ao-t"
    response = DgcResponse("ao-u", state.clock, has_parent=True)
    process_response(state, response)
    assert state.parent == "ao-t"


def test_stale_response_for_removed_edge_ignored():
    state = make_state(owner="ao-other")
    response = DgcResponse("ao-gone", state.clock, has_parent=True)
    assert process_response(state, response) is False
    assert state.parent is None


def test_response_clock_never_merged_into_state():
    """Fig. 4: the clock in a response must never update the activity
    clock, only serve as a consensus candidate."""
    state = make_state(value=1)
    add_referenced(state, target="ao-t")
    response = DgcResponse("ao-t", ActivityClock(42, "ao-t"), has_parent=True)
    process_response(state, response)
    assert state.clock == ActivityClock(1, "ao-s")


# ----------------------------------------------------------------------
# Clock increment helper
# ----------------------------------------------------------------------

def test_increment_clock_takes_ownership_and_clears_parent():
    state = make_state(owner="ao-other", value=4)
    state.parent = "ao-p"
    state.increment_clock()
    assert state.clock == ActivityClock(5, "ao-s")
    assert state.parent is None
    assert state.owns_clock
