"""Unit tests for topologies and latency models."""

import pytest

from repro.errors import ConfigurationError
from repro.net.topology import Site, Topology, grid5000_topology, uniform_topology


def test_uniform_topology_node_names_and_count():
    topology = uniform_topology(3)
    assert topology.nodes == ["site-0", "site-1", "site-2"]


def test_self_latency_is_zero():
    topology = uniform_topology(2, rtt_s=0.01)
    assert topology.one_way_latency("site-0", "site-0") == 0.0


def test_intra_site_latency_is_half_rtt():
    topology = uniform_topology(2, rtt_s=0.01)
    assert topology.one_way_latency("site-0", "site-1") == pytest.approx(0.005)


def test_grid5000_sites_and_counts():
    topology = grid5000_topology()
    by_name = {site.name: site for site in topology.sites}
    assert by_name["bordeaux"].node_count == 49
    assert by_name["sophia"].node_count == 39
    assert by_name["rennes"].node_count == 40
    assert len(topology.nodes) == 128


def test_grid5000_inter_site_rtts():
    topology = grid5000_topology()
    assert topology.one_way_latency(
        "rennes-0", "bordeaux-0"
    ) == pytest.approx(0.004)
    assert topology.one_way_latency(
        "bordeaux-0", "sophia-0"
    ) == pytest.approx(0.005)
    assert topology.one_way_latency(
        "rennes-0", "sophia-0"
    ) == pytest.approx(0.010)


def test_grid5000_latency_is_symmetric():
    topology = grid5000_topology()
    assert topology.one_way_latency(
        "sophia-3", "rennes-1"
    ) == topology.one_way_latency("rennes-1", "sophia-3")


def test_grid5000_scaling_keeps_sites():
    topology = grid5000_topology(scale=0.1)
    assert len(topology.sites) == 3
    assert all(site.node_count >= 1 for site in topology.sites)
    assert len(topology.nodes) < 20


def test_scale_must_be_positive():
    with pytest.raises(ConfigurationError):
        grid5000_topology(scale=0.0)


def test_max_one_way_latency_matches_worst_pair():
    topology = grid5000_topology()
    assert topology.max_one_way_latency() == pytest.approx(0.010)


def test_unknown_node_rejected():
    topology = uniform_topology(1)
    with pytest.raises(ConfigurationError):
        topology.one_way_latency("site-0", "nowhere")


def test_missing_inter_site_rtt_rejected():
    topology = Topology(
        [Site("a", 1, 0.001), Site("b", 1, 0.001)], {}
    )
    with pytest.raises(ConfigurationError):
        topology.one_way_latency("a-0", "b-0")


def test_empty_topology_rejected():
    with pytest.raises(ConfigurationError):
        Topology([], {})


def test_site_of():
    topology = grid5000_topology()
    assert topology.site_of("sophia-5").name == "sophia"
