"""Unit tests for activity id minting."""

from repro.runtime.ids import make_activity_id, reset_id_counter


def test_ids_are_unique():
    ids = {make_activity_id() for __ in range(100)}
    assert len(ids) == 100


def test_lexicographic_order_matches_creation_order():
    first = make_activity_id()
    second = make_activity_id()
    assert first < second


def test_name_suffix_embedded():
    assert make_activity_id("worker").endswith(":worker")


def test_order_holds_even_with_names():
    first = make_activity_id("zzz")
    second = make_activity_id("aaa")
    assert first < second  # numeric prefix dominates


def test_reset_restarts_counter():
    reset_id_counter()
    first = make_activity_id()
    reset_id_counter()
    again = make_activity_id()
    assert first == again
