"""Unit tests for the beat-bucket scheduler (the timer wheel)."""

import pytest

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.kernel import SimKernel


def wheel_of(kernel):
    return kernel.beat_wheel


def test_members_sharing_period_and_phase_share_one_bucket_event():
    kernel = SimKernel()
    fired = []
    for name in ("a", "b", "c"):
        kernel.schedule_periodic(
            2.0,
            (lambda n: (lambda: fired.append((kernel.now, n))))(name),
            first_delay=1.0,
        )
    kernel.run(until=4.0)
    # Three members, two ticks each — but only one bucket event per
    # beat period ever hit the kernel heap.
    assert fired == [
        (1.0, "a"), (1.0, "b"), (1.0, "c"),
        (3.0, "a"), (3.0, "b"), (3.0, "c"),
    ]
    assert wheel_of(kernel).bucket_event_count == 3  # t=1, t=3, t=5 armed
    assert wheel_of(kernel).registered_count == 3


def test_intra_bucket_order_is_registration_order():
    kernel = SimKernel()
    order = []
    kernel.schedule_periodic(1.0, lambda: order.append("first"))
    kernel.schedule_periodic(1.0, lambda: order.append("second"))
    kernel.schedule_periodic(1.0, lambda: order.append("third"))
    kernel.run(until=1.0)
    assert order == ["first", "second", "third"]


def test_different_phases_use_different_buckets():
    kernel = SimKernel()
    fired = []
    kernel.schedule_periodic(2.0, lambda: fired.append(("a", kernel.now)),
                             first_delay=0.5)
    kernel.schedule_periodic(2.0, lambda: fired.append(("b", kernel.now)),
                             first_delay=1.5)
    kernel.run(until=3.0)
    assert fired == [("a", 0.5), ("b", 1.5), ("a", 2.5)]
    assert wheel_of(kernel).live_bucket_count == 2


def test_deregister_is_o1_and_leaves_no_heap_garbage():
    kernel = SimKernel()
    fired = []
    handle = kernel.schedule_periodic(1.0, lambda: fired.append("x"))
    keeper = kernel.schedule_periodic(1.0, lambda: fired.append("y"))
    kernel.run(until=1.5)
    handle.stop()
    assert handle.stopped
    assert handle.next_fire_time is None
    kernel.run(until=3.5)
    assert fired == ["x", "y", "y", "y"]
    # The shared bucket keeps ticking for the survivor; no cancelled
    # events pile up (the wheel never allocates cancellable events).
    assert keeper.ticks == 3
    assert wheel_of(kernel).member_count() == 1


def test_emptied_bucket_dies_without_rearming():
    kernel = SimKernel()
    handle = kernel.schedule_periodic(1.0, lambda: None)
    handle.stop()
    kernel.run(until=5.0)
    assert wheel_of(kernel).live_bucket_count == 0
    # Only the first bucket event was ever scheduled.
    assert wheel_of(kernel).bucket_event_count == 1


def test_stop_from_own_callback_cancels_next_tick():
    kernel = SimKernel()
    box = {}

    def callback():
        box["handle"].stop()

    box["handle"] = kernel.schedule_periodic(1.0, callback)
    kernel.run(until=10.0)
    assert box["handle"].ticks == 1


def test_member_can_stop_a_later_member_of_the_same_bucket():
    kernel = SimKernel()
    fired = []
    box = {}

    def stopper():
        fired.append("stopper")
        box["victim"].stop()

    kernel.schedule_periodic(1.0, stopper)
    box["victim"] = kernel.schedule_periodic(
        1.0, lambda: fired.append("victim")
    )
    kernel.run(until=1.0)
    # The victim was registered after the stopper, shares its bucket,
    # and must not fire once stopped mid-bucket.
    assert fired == ["stopper"]


def test_set_period_rebuckets_at_next_fire():
    kernel = SimKernel()
    times = []
    handle = kernel.schedule_periodic(1.0, lambda: times.append(kernel.now))
    kernel.run(until=1.5)
    handle.set_period(2.0)
    assert handle.period == 2.0
    kernel.run(until=7.0)
    # The already-armed tick at t=2 fires on the old schedule; the new
    # period applies from its re-arm (PeriodicTimer semantics).
    assert times == [1.0, 2.0, 4.0, 6.0]


def test_rebucketed_member_joins_existing_bucket():
    kernel = SimKernel()
    fired = []
    kernel.schedule_periodic(2.0, lambda: fired.append("slow"))
    fast = kernel.schedule_periodic(1.0, lambda: fired.append("fast"))
    kernel.run(until=1.5)
    fast.set_period(2.0)
    kernel.run(until=6.5)
    # fast re-arms at 2, then every 2 — phase-aligned with slow at even
    # times; both keep firing (coalesced into one bucket from t=4 on).
    assert fired == [
        "fast", "slow", "fast", "slow", "fast", "slow", "fast",
    ]
    assert wheel_of(kernel).live_bucket_count == 1


def test_registration_during_bucket_fire_joins_future_bucket():
    kernel = SimKernel()
    fired = []
    box = {}

    def parent():
        fired.append(("parent", kernel.now))
        if "child" not in box:
            box["child"] = kernel.schedule_periodic(
                1.0, lambda: fired.append(("child", kernel.now))
            )

    kernel.schedule_periodic(1.0, parent)
    kernel.run(until=2.0)
    assert fired == [
        ("parent", 1.0), ("parent", 2.0), ("child", 2.0),
    ]


def test_invalid_arguments_rejected():
    kernel = SimKernel()
    with pytest.raises(SimulationError):
        kernel.schedule_periodic(0.0, lambda: None)
    with pytest.raises(SchedulingInPastError):
        kernel.schedule_periodic(1.0, lambda: None, first_delay=-0.5)
    handle = kernel.schedule_periodic(1.0, lambda: None)
    with pytest.raises(SimulationError):
        handle.set_period(-1.0)


def test_failing_member_does_not_silence_bucket_mates():
    kernel = SimKernel()
    fired = []

    def bad():
        raise RuntimeError("boom")

    kernel.schedule_periodic(1.0, bad)
    survivor = kernel.schedule_periodic(1.0, lambda: fired.append(kernel.now))
    with pytest.raises(RuntimeError):
        kernel.run(until=1.0)
    # The survivor fired this tick despite its bucket mate's crash, and
    # both members were re-armed for the next beat.
    assert fired == [1.0]
    assert survivor.next_fire_time == 2.0


def test_double_stop_is_idempotent():
    kernel = SimKernel()
    handle = kernel.schedule_periodic(1.0, lambda: None)
    handle.stop()
    handle.stop()
    assert handle.stopped


def test_bucket_events_are_o_buckets_not_o_members():
    kernel = SimKernel()
    members = 50
    counts = [0] * members
    for index in range(members):
        def make(i):
            return lambda: counts.__setitem__(i, counts[i] + 1)

        kernel.schedule_periodic(1.0, make(index), first_delay=0.5)
    kernel.run(until=10.0)
    assert all(count == 10 for count in counts)
    # 50 members x 10 ticks = 500 member fires, but only 10 bucket
    # events (plus the one pending re-arm) ever touched the heap.
    assert wheel_of(kernel).bucket_event_count == 11


# ----------------------------------------------------------------------
# SlotController (adaptive beat_slots="auto")
# ----------------------------------------------------------------------


def test_slot_controller_targets_occupancy_with_power_of_two_grids():
    from repro.sim.beats import SlotController

    controller = SlotController(
        min_slots=4, max_slots=64, activities_per_slot=8
    )
    # Quiet node: clamped to the floor.
    assert controller.slots_for(1) == 4
    assert controller.slots_for(32) == 4
    # Growing population: next power of two of count/8.
    assert controller.slots_for(33) == 8
    assert controller.slots_for(64) == 8
    assert controller.slots_for(100) == 16
    # Paper-scale node (6401/128 ≈ 50 activities) still lands low.
    assert controller.slots_for(50) == 8
    # Huge node: clamped to the ceiling.
    assert controller.slots_for(100_000) == 64


def test_slot_controller_is_monotone_and_deterministic():
    from repro.sim.beats import SlotController

    controller = SlotController()
    grids = [controller.slots_for(count) for count in range(1, 2_000)]
    assert grids == sorted(grids)
    assert grids == [controller.slots_for(count) for count in range(1, 2_000)]
    # Powers of two only: coarse grids nest inside finer ones, so beats
    # quantized under different population epochs can share buckets.
    assert all(grid & (grid - 1) == 0 for grid in grids)


def test_slot_controller_rejects_bad_bounds():
    from repro.sim.beats import SlotController

    with pytest.raises(SimulationError):
        SlotController(min_slots=0)
    with pytest.raises(SimulationError):
        SlotController(min_slots=16, max_slots=8)
    with pytest.raises(SimulationError):
        SlotController(activities_per_slot=0)
