"""Unit tests for node-level dispatch, replies and dead letters."""

import pytest

from repro.errors import NoSuchActivityError, RuntimeModelError
from repro.runtime.behaviors import Behavior, SinkBehavior


class Echo(Behavior):
    def do_echo(self, ctx, request, proxies):
        return request.data


@pytest.fixture
def world(make_world):
    return make_world(3, dgc=None)


def test_round_robin_placement(world):
    driver = world.create_driver()  # takes the first slot
    proxies = [
        driver.context.create(SinkBehavior(), name=f"p{i}") for i in range(3)
    ]
    nodes = [proxy.node for proxy in proxies]
    assert nodes == ["site-1", "site-2", "site-0"]


def test_explicit_placement(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), node="site-2", name="x")
    assert proxy.node == "site-2"


def test_get_activity_raises_for_unknown(world):
    node = world.nodes["site-0"]
    with pytest.raises(NoSuchActivityError):
        node.get_activity("ao-nope")


def test_cross_node_call_reply_roundtrip(world):
    driver = world.create_driver()
    target = driver.context.create(Echo(), node="site-2", name="echo")
    future = driver.context.call(
        target, "echo", data="hello", expect_reply=True
    )
    world.run_for(1.0)
    assert future.resolved
    assert future.value == "hello"


def test_reply_to_terminated_caller_is_dropped(world):
    class SlowEcho(Behavior):
        def do_echo(self, ctx, request, proxies):
            yield ctx.sleep(2.0)
            return request.data

    driver = world.create_driver()
    caller = driver.context.create(SinkBehavior(), name="caller")
    caller_activity = world.find_activity(caller.activity_id)
    target = driver.context.create(SlowEcho(), node="site-2", name="echo")
    target_proxy = caller_activity.node.deserialize_ref(
        caller_activity, target.ref
    )
    caller_activity.send_call(target_proxy, "echo", data="x", expect_reply=True)
    world.run_for(1.0)
    caller_activity.terminate("explicit")
    world.run_for(5.0)
    # Reply arrived after the caller died: dropped, counted, no crash.
    assert world.nodes[caller_activity.node.name].dead_letter_count >= 1


def test_calling_through_released_proxy_rejected(world):
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    driver.context.drop(target)
    with pytest.raises(RuntimeModelError):
        driver.context.call(target, "anything")


def test_sending_released_proxy_as_ref_rejected(world):
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    driver.context.drop(b)
    with pytest.raises(RuntimeModelError):
        driver.context.call(a, "hold", refs=[b])


def test_dgc_message_to_missing_activity_is_silently_dropped(world):
    from repro.runtime.proxy import RemoteRef

    node = world.nodes["site-0"]
    node.send_dgc_message(RemoteRef("ao-ghost", "site-1"), object())
    world.run_for(1.0)  # no exception


def test_request_refs_are_deserialized_for_receiver(world):
    held = {}

    class Keep(Behavior):
        def do_take(self, ctx, request, proxies):
            held["proxy"] = ctx.keep(proxies[0])
            return None

    driver = world.create_driver()
    receiver = driver.context.create(Keep(), node="site-1", name="r")
    passed = driver.context.create(SinkBehavior(), node="site-2", name="p")
    driver.context.call(receiver, "take", refs=[passed])
    world.run_for(1.0)
    receiver_activity = world.find_activity(receiver.activity_id)
    assert receiver_activity.proxies.holds(passed.activity_id)
    assert held["proxy"].node == "site-2"
