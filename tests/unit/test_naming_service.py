"""Unit tests for the naming service: config validation, placement
routing, the lease cache, root-pin refcounting, and the beat-quantized
coherence channel's egress lifecycle."""

import pytest

from repro.core.config import (
    COHERENCE_BEAT,
    PLACEMENT_HASHED,
    PLACEMENT_REPLICATED,
    RegistryConfig,
)
from repro.errors import ConfigurationError, RegistryError
from repro.runtime.behaviors import SinkBehavior
from repro.runtime.registry import LeaseCache


# ----------------------------------------------------------------------
# RegistryConfig
# ----------------------------------------------------------------------


def test_registry_config_defaults_are_static_home_uncached():
    config = RegistryConfig()
    assert config.placement == "home"
    assert not config.caching


def test_registry_config_rejects_unknown_placement():
    with pytest.raises(ConfigurationError):
        RegistryConfig(placement="gossip")


def test_registry_config_rejects_negative_lease():
    with pytest.raises(ConfigurationError):
        RegistryConfig(lease_ttb=-1)
    with pytest.raises(ConfigurationError):
        RegistryConfig(cache_size=-1)
    with pytest.raises(ConfigurationError):
        RegistryConfig(lease_beat_s=0.0)


def test_caching_needs_both_lease_and_capacity():
    assert RegistryConfig(lease_ttb=4).caching
    assert not RegistryConfig(lease_ttb=4, cache_size=0).caching
    assert not RegistryConfig(lease_ttb=0).caching
    # Replicated placement keeps coherent replicas instead of leases.
    assert not RegistryConfig(
        placement=PLACEMENT_REPLICATED, lease_ttb=4
    ).caching


def test_with_overrides_is_functional():
    base = RegistryConfig()
    cached = base.with_overrides(lease_ttb=8)
    assert base.lease_ttb == 0
    assert cached.lease_ttb == 8


def test_registry_config_coherence_defaults_to_eager():
    assert RegistryConfig().coherence == "eager"
    assert RegistryConfig(coherence=COHERENCE_BEAT).coherence == "beat"


def test_registry_config_rejects_unknown_coherence():
    with pytest.raises(ConfigurationError):
        RegistryConfig(coherence="gossip")


# ----------------------------------------------------------------------
# Placement routing
# ----------------------------------------------------------------------


def test_home_placement_routes_everything_to_home(make_world):
    world = make_world(4)
    naming = world.registry
    assert naming.home_node == world.topology.nodes[0]
    for name in ("a", "b", "c", "zeta"):
        assert naming.authority_node(name) == naming.home_node


def test_home_node_override_must_exist(make_world):
    with pytest.raises(RegistryError):
        make_world(2, registry=RegistryConfig(home_node="nowhere"))


def test_home_node_override_is_honoured(make_world):
    nodes = make_world(4).topology.nodes
    world = make_world(4, registry=RegistryConfig(home_node=nodes[2]))
    assert world.registry_node == nodes[2]
    assert world.registry.authority_node("x") == nodes[2]


def test_hashed_placement_spreads_authorities(make_world):
    world = make_world(8, registry=RegistryConfig(placement=PLACEMENT_HASHED))
    naming = world.registry
    authorities = {naming.authority_node(f"svc-{i}") for i in range(32)}
    assert len(authorities) > 1
    # Stable: the same name always hashes to the same node.
    assert naming.authority_node("svc-0") == naming.authority_node("svc-0")


def test_hashed_placement_is_deterministic_across_worlds(make_world):
    a = make_world(8, registry=RegistryConfig(placement=PLACEMENT_HASHED))
    b = make_world(8, registry=RegistryConfig(placement=PLACEMENT_HASHED))
    for i in range(16):
        name = f"svc-{i}"
        assert a.registry.authority_node(name) == b.registry.authority_node(name)


# ----------------------------------------------------------------------
# LeaseCache
# ----------------------------------------------------------------------


def test_lease_cache_hit_requires_live_lease():
    cache = LeaseCache(capacity=4)
    cache.put("a", "ref-a", expires_at=10.0)
    assert cache.get("a", now=5.0) == "ref-a"
    assert cache.get("a", now=10.0) is None  # lapsed exactly at expiry
    assert cache.get("missing", now=0.0) is None


def test_lease_cache_get_marks_used_for_the_sweep():
    cache = LeaseCache(capacity=4)
    cache.put("a", "ref-a", expires_at=10.0)
    assert cache.entries["a"][2] is False
    cache.get("a", now=1.0)
    assert cache.entries["a"][2] is True


def test_lease_cache_capacity_evicts_fifo():
    cache = LeaseCache(capacity=2)
    cache.put("a", "ref-a", 10.0)
    cache.put("b", "ref-b", 10.0)
    cache.put("c", "ref-c", 10.0)
    assert "a" not in cache.entries
    assert cache.get("b", 0.0) == "ref-b"
    assert cache.get("c", 0.0) == "ref-c"
    assert cache.capacity_evictions == 1


def test_lease_cache_put_updates_in_place_without_eviction():
    cache = LeaseCache(capacity=2)
    cache.put("a", "ref-a", 10.0)
    cache.put("b", "ref-b", 10.0)
    cache.put("a", "ref-a2", 20.0)
    assert len(cache) == 2
    assert cache.get("a", 15.0) == "ref-a2"


def test_lease_cache_extend_only_extends():
    cache = LeaseCache(capacity=2)
    cache.put("a", "ref-a", 10.0)
    cache.extend("a", 20.0)
    assert cache.entries["a"][1] == 20.0
    cache.extend("a", 5.0)  # never shortens
    assert cache.entries["a"][1] == 20.0
    cache.extend("ghost", 30.0)  # unknown names are ignored


# ----------------------------------------------------------------------
# Root-pin refcounting (the authoritative shard owns the pin)
# ----------------------------------------------------------------------


def _spawn(world, name="svc"):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name=name)
    return world.find_activity(proxy.activity_id), proxy


def test_pin_count_tracks_bindings(make_world):
    world = make_world(2, dgc=None)
    activity, proxy = _spawn(world)
    assert world.registry.pin_count(activity.id) == 0
    world.registry.bind("one", proxy.ref)
    world.registry.bind("two", proxy.ref)
    assert world.registry.pin_count(activity.id) == 2
    world.registry.unbind("one")
    assert world.registry.pin_count(activity.id) == 1
    assert activity.is_root
    world.registry.unbind("two")
    assert world.registry.pin_count(activity.id) == 0
    assert not activity.is_root


def test_aliasing_across_hashed_authorities_keeps_pin(make_world):
    """The same activity bound under names owned by *different*
    authoritative shards stays pinned until the last unbind — the pin
    refcount is world-level, not per-shard."""
    world = make_world(8, dgc=None,
                       registry=RegistryConfig(placement=PLACEMENT_HASHED))
    naming = world.registry
    activity, proxy = _spawn(world)
    # Find two names with distinct authorities.
    names = [f"alias-{i}" for i in range(64)]
    first = names[0]
    second = next(
        n for n in names
        if naming.authority_node(n) != naming.authority_node(first)
    )
    naming.bind(first, proxy.ref)
    naming.bind(second, proxy.ref)
    assert activity.is_root
    naming.unbind(first)
    assert activity.is_root, "pin dropped while an alias is still bound"
    naming.unbind(second)
    assert not activity.is_root


# ----------------------------------------------------------------------
# Beat-coherence egress: queues drain, the sweep stops itself
# ----------------------------------------------------------------------


BEAT_REPLICATED = RegistryConfig(
    placement=PLACEMENT_REPLICATED, coherence="beat", lease_beat_s=2.0
)


def test_beat_egress_flushes_and_stops_when_drained(make_world):
    world = make_world(4, dgc=None, registry=BEAT_REPLICATED)
    naming = world.registry
    nodes = world.topology.nodes
    _activity, proxy = _spawn(world)
    naming.bind("svc", proxy.ref)
    shard = naming.shard(naming.home_node)
    # Staged to every other node, nothing on the wire yet, beat running.
    assert naming.coherence_staged == len(nodes) - 1
    assert shard.channel.pending() == len(nodes) - 1
    assert shard.egress_handle is not None
    for node in nodes[1:]:
        assert "svc" not in naming.shard(node).replica
    # One beat: the queues flush as one registry.push per destination.
    world.run_for(2.1)
    assert shard.channel.empty
    assert naming.pushes_sent == len(nodes) - 1
    assert naming.coherence_messages_sent == len(nodes) - 1
    assert naming.coherence_names_sent == len(nodes) - 1
    for node in nodes[1:]:
        assert naming.shard(node).replica["svc"] is proxy.ref
    # A second idle beat: the sweep sees empty queues and stops itself.
    world.run_for(2.1)
    assert shard.egress_handle is None
    # New traffic lazily re-registers it.
    naming.unbind("svc")
    assert shard.egress_handle is not None
    world.run_for(2.1)
    assert naming.invalidations_sent == len(nodes) - 1
    for node in nodes[1:]:
        assert "svc" not in naming.shard(node).replica


def test_beat_coherence_coalesces_rebind_to_single_push(make_world):
    """Unbind + rebind inside one beat must cross the wire as one push
    of the surviving ref — never an invalidate that could drop the
    replica after the rebind."""
    world = make_world(3, dgc=None, registry=BEAT_REPLICATED)
    naming = world.registry
    nodes = world.topology.nodes
    _activity, proxy = _spawn(world)
    naming.bind("svc", proxy.ref)
    world.run_for(2.1)  # initial push lands everywhere
    before_invalidates = naming.invalidations_sent
    naming.unbind("svc")
    naming.bind("svc", proxy.ref)
    world.run_for(2.1)
    assert naming.invalidations_sent == before_invalidates
    assert naming.coherence_coalesced == len(nodes) - 1
    for node in nodes[1:]:
        assert naming.shard(node).replica["svc"] is proxy.ref


def test_eager_default_never_touches_the_channel(make_world):
    world = make_world(
        3, dgc=None,
        registry=RegistryConfig(placement=PLACEMENT_REPLICATED),
    )
    naming = world.registry
    _activity, proxy = _spawn(world)
    naming.bind("svc", proxy.ref)
    naming.unbind("svc")
    world.run_for(1.0)
    assert naming.coherence_staged == 0
    assert naming.coherence_messages_sent == 0
    assert naming.shard(naming.home_node).egress_handle is None


def test_unbind_of_dead_activity_releases_cleanly(make_world):
    """Unbinding a name whose target already terminated must remove the
    binding and the pin book-keeping without raising."""
    world = make_world(2, dgc=None)
    activity, proxy = _spawn(world)
    world.registry.bind("svc", proxy.ref)
    activity.terminate("explicit")
    world.registry.unbind("svc")
    assert world.registry.resolve("svc") is None
    assert world.registry.pin_count(activity.id) == 0
    # And the name is rebindable afterwards.
    other, other_proxy = _spawn(world, name="svc2")
    world.registry.bind("svc", other_proxy.ref)
    assert other.is_root
