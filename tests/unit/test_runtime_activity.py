"""Unit tests for the activity service loop (through a real world)."""

import pytest

from repro.errors import RuntimeModelError
from repro.runtime.activeobject import ActivityState
from repro.runtime.behaviors import Behavior, FunctionBehavior, SinkBehavior
from repro.runtime.node import ReplyPayload


class Recorder(Behavior):
    def __init__(self):
        self.calls = []

    def do_note(self, ctx, request, proxies):
        self.calls.append((ctx.now, request.data))
        return None

    def do_slow(self, ctx, request, proxies):
        yield ctx.sleep(5.0)
        self.calls.append(("slow-done", ctx.now))
        return "result"

    def do_ask(self, ctx, request, proxies):
        future = ctx.call(
            proxies[0], "slow", expect_reply=True
        )
        value = yield future
        self.calls.append(("reply", value.value))
        return None


@pytest.fixture
def world(make_world):
    return make_world(2, dgc=None)


def test_activity_starts_idle_after_on_start(world):
    activity = world.create_activity(SinkBehavior(), name="a")
    assert activity.state is ActivityState.IDLE
    assert activity.is_idle()


def test_root_is_never_idle(world):
    driver = world.create_driver()
    assert driver.state is ActivityState.IDLE
    assert not driver.is_idle()


def test_requests_served_in_fifo_order(world):
    behavior = Recorder()
    driver = world.create_driver()
    target = driver.context.create(behavior, name="t")
    for index in range(3):
        driver.context.call(target, "note", data=index)
    world.run_for(1.0)
    assert [data for __, data in behavior.calls] == [0, 1, 2]


def test_busy_while_sleeping(world):
    behavior = Recorder()
    driver = world.create_driver()
    target = driver.context.create(behavior, name="t")
    driver.context.call(target, "slow")
    world.run_for(1.0)
    activity = world.find_activity(target.activity_id)
    assert activity.state is ActivityState.BUSY
    assert not activity.is_idle()
    world.run_for(10.0)
    assert activity.is_idle()


def test_waiting_on_future_keeps_activity_busy(world):
    """Paper Sec. 4.1: an activity waiting for a future is busy."""
    asker_behavior = Recorder()
    server_behavior = Recorder()
    driver = world.create_driver()
    asker = driver.context.create(asker_behavior, name="asker")
    server = driver.context.create(server_behavior, name="server")
    driver.context.call(asker, "ask", refs=[server])
    world.run_for(1.0)
    asker_activity = world.find_activity(asker.activity_id)
    assert asker_activity.state is ActivityState.BUSY
    world.run_for(10.0)
    assert asker_activity.is_idle()
    assert ("reply", "result") in asker_behavior.calls


def test_reply_payload_controls_reply(world):
    driver = world.create_driver()

    def serve(ctx, request, proxies):
        return ReplyPayload("data", payload_bytes=500)

    target = driver.context.create(FunctionBehavior(serve), name="t")
    future = driver.context.call(target, "anything", expect_reply=True)
    world.run_for(1.0)
    assert future.resolved
    assert future.value == "data"


def test_unknown_method_raises(world):
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    # SinkBehavior accepts everything; use a Behavior without the handler.
    target2 = driver.context.create(Recorder(), name="t2")
    driver.context.call(target2, "missing_method")
    with pytest.raises(RuntimeModelError):
        world.run_for(1.0)


def test_unkept_request_proxies_are_auto_released(world):
    class Inspect(Behavior):
        def do_take(self, ctx, request, proxies):
            return None

    driver = world.create_driver()
    a = driver.context.create(Inspect(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    driver.context.call(a, "take", refs=[b])
    world.run_for(1.0)
    activity = world.find_activity(a.activity_id)
    assert not activity.proxies.holds(b.activity_id)


def test_kept_request_proxies_survive(world):
    class Take(Behavior):
        def do_take(self, ctx, request, proxies):
            ctx.keep(proxies[0])
            return None

    driver = world.create_driver()
    a = driver.context.create(Take(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    driver.context.call(a, "take", refs=[b])
    world.run_for(1.0)
    activity = world.find_activity(a.activity_id)
    assert activity.proxies.holds(b.activity_id)


def test_terminated_activity_ignores_requests(world):
    behavior = Recorder()
    driver = world.create_driver()
    target = driver.context.create(behavior, name="t")
    activity = world.find_activity(target.activity_id)
    activity.terminate("explicit")
    driver.context.call(target, "note", data=1)
    world.run_for(1.0)
    assert behavior.calls == []
    assert world.nodes[activity.node.name].dead_letter_count == 1


def test_terminate_is_idempotent(world):
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    activity = world.find_activity(target.activity_id)
    activity.terminate("explicit")
    activity.terminate("explicit")
    assert world.stats.terminated_explicit == 1


def test_queue_length_visible(world):
    behavior = Recorder()
    driver = world.create_driver()
    target = driver.context.create(behavior, name="t")
    driver.context.call(target, "slow")
    driver.context.call(target, "note", data=1)
    driver.context.call(target, "note", data=2)
    world.run_for(1.0)
    activity = world.find_activity(target.activity_id)
    assert activity.queue_length == 2


def test_long_queue_of_instant_requests_no_recursion(world):
    """Regression: draining hundreds of queued no-op requests must not
    blow the Python stack (the pump loop is iterative)."""
    behavior = Recorder()
    driver = world.create_driver()
    target = driver.context.create(behavior, name="t")
    driver.context.call(target, "slow")
    for index in range(2000):
        driver.context.call(target, "note", data=index)
    world.run_for(30.0)
    assert len(behavior.calls) == 2001


def test_on_idle_listener_fires_on_transition(world):
    driver = world.create_driver()
    target = driver.context.create(Recorder(), name="t")
    activity = world.find_activity(target.activity_id)
    transitions = []
    activity.on_idle(lambda a: transitions.append(world.kernel.now))
    driver.context.call(target, "slow")
    world.run_for(10.0)
    assert len(transitions) == 1
