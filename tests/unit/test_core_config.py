"""Unit tests for DGC configuration and the TTA safety margin."""

import pytest

from repro.core.config import (
    DgcConfig,
    NAS_CONFIG,
    TORTURE_FAST_CONFIG,
    TORTURE_SLOW_CONFIG,
)
from repro.errors import ConfigurationError


def test_defaults_are_papers_nas_settings():
    assert NAS_CONFIG.ttb == 30.0
    assert NAS_CONFIG.tta == 61.0


def test_torture_presets():
    assert (TORTURE_FAST_CONFIG.ttb, TORTURE_FAST_CONFIG.tta) == (30.0, 150.0)
    assert (TORTURE_SLOW_CONFIG.ttb, TORTURE_SLOW_CONFIG.tta) == (300.0, 1500.0)


def test_margin_accepts_valid_configuration():
    DgcConfig(ttb=30.0, tta=61.0).validate_against(max_comm=0.5)


def test_margin_rejects_tta_equal_to_bound():
    config = DgcConfig(ttb=30.0, tta=60.0)
    with pytest.raises(ConfigurationError):
        config.validate_against(max_comm=0.0)


def test_margin_accounts_for_max_comm():
    config = DgcConfig(ttb=30.0, tta=61.0)
    with pytest.raises(ConfigurationError):
        config.validate_against(max_comm=1.0)
    assert not config.satisfies_margin(1.0)
    assert config.satisfies_margin(0.5)


def test_nonpositive_parameters_rejected():
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=0.0, tta=10.0)
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=1.0, tta=-1.0)


def test_with_overrides_returns_new_config():
    config = DgcConfig(ttb=1.0, tta=3.0)
    variant = config.with_overrides(consensus_propagation=False)
    assert variant.consensus_propagation is False
    assert config.consensus_propagation is True
    assert variant.ttb == 1.0


def test_paper_options_default_on():
    config = DgcConfig(ttb=1.0, tta=3.0)
    assert config.consensus_propagation
    assert config.increment_on_referencer_loss
    assert config.increment_on_referenced_loss


def test_beat_slots_accepts_auto():
    from repro.core.config import AUTO_BEAT_SLOTS

    config = DgcConfig(ttb=1.0, tta=3.0, beat_slots=AUTO_BEAT_SLOTS)
    assert config.beat_slots == "auto"


def test_beat_slots_rejects_other_strings_and_negatives():
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=1.0, tta=3.0, beat_slots="adaptive")
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=1.0, tta=3.0, beat_slots=-1)
