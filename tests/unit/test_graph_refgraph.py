"""Unit tests for reference-graph snapshots."""

import pytest

from repro.graph.refgraph import ReferenceGraphSnapshot, snapshot_reference_graph
from repro.runtime.behaviors import SinkBehavior
from repro.workloads.app import Peer, link


def test_snapshot_captures_edges_and_idleness(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(1.0)
    snapshot = snapshot_reference_graph(world)
    assert b.activity_id in snapshot.referenced_by(a.activity_id)
    assert snapshot.idle[a.activity_id] is True
    assert snapshot.idle[driver.id] is False  # root
    assert driver.id in snapshot.roots


def test_referencers_of(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(1.0)
    referencers = snapshot_reference_graph(world).referencers_of(b.activity_id)
    assert a.activity_id in referencers
    assert driver.id in referencers


def test_transitive_referencers_includes_self_and_chain():
    snapshot = ReferenceGraphSnapshot(
        time=0.0,
        edges={"a": {"b"}, "b": {"c"}},
        idle={"a": True, "b": True, "c": True},
    )
    closure = snapshot.transitive_referencers("c")
    assert closure == {"a", "b", "c"}


def test_transitive_referencers_handles_cycles():
    snapshot = ReferenceGraphSnapshot(
        time=0.0,
        edges={"a": {"b"}, "b": {"a"}},
        idle={"a": True, "b": True},
    )
    assert snapshot.transitive_referencers("a") == {"a", "b"}


def test_edge_list_sorted_per_source():
    snapshot = ReferenceGraphSnapshot(
        time=0.0,
        edges={"a": {"c", "b"}},
        idle={"a": True, "b": True, "c": True},
    )
    assert snapshot.edge_list() == [("a", "b"), ("a", "c")]


def test_hosting_recorded(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), node="site-2", name="x")
    snapshot = snapshot_reference_graph(world)
    assert snapshot.hosting[proxy.activity_id] == "site-2"
