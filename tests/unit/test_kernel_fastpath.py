"""Kernel hot-path additions: maintained pending counter, the
fire-and-forget fast path, and the event-driven stop."""

from __future__ import annotations

import pytest

from repro.net.topology import uniform_topology
from repro.runtime.behaviors import SinkBehavior
from repro.sim.kernel import SimKernel
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_ring
from repro.world import World


def test_pending_count_is_maintained_through_fire_and_cancel():
    kernel = SimKernel()
    assert kernel.pending_count == 0
    first = kernel.schedule(1.0, lambda: None)
    second = kernel.schedule(2.0, lambda: None)
    kernel.schedule_fire_at(3.0, lambda: None)
    assert kernel.pending_count == 3
    assert kernel.peak_pending_count == 3
    second.cancel()
    assert kernel.pending_count == 2
    second.cancel()  # double-cancel must not double-decrement
    assert kernel.pending_count == 2
    kernel.run()
    assert kernel.pending_count == 0
    assert kernel.fired_count == 2
    assert kernel.peak_pending_count == 3
    assert first.cancelled is False


def test_cancel_after_fire_does_not_corrupt_pending_count():
    kernel = SimKernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.run(until=2.0)
    assert kernel.pending_count == 0
    event.cancel()  # post-fire cancel must be a no-op
    assert kernel.pending_count == 0
    # Same through step().
    stepped = kernel.schedule(3.0, lambda: None)
    assert kernel.step()
    stepped.cancel()
    assert kernel.pending_count == 0


def test_schedule_fire_at_orders_with_regular_events():
    kernel = SimKernel()
    order = []
    kernel.schedule(1.0, order.append, "event")
    kernel.schedule_fire_at(1.0, order.append, ("fast",))
    kernel.schedule_fire_at(0.5, order.append, ("early",))
    kernel.run()
    assert order == ["early", "event", "fast"]


def test_schedule_fire_at_rejects_past_times():
    kernel = SimKernel()
    kernel.schedule(1.0, lambda: None)
    kernel.run()
    from repro.errors import SchedulingInPastError

    with pytest.raises(SchedulingInPastError):
        kernel.schedule_fire_at(0.5, lambda: None)


def test_request_stop_halts_run_at_the_stopping_event():
    kernel = SimKernel()
    fired = []

    def stopper():
        fired.append("stopper")
        kernel.request_stop()

    kernel.schedule(1.0, stopper)
    kernel.schedule(2.0, fired.append, "later")
    kernel.run(until=10.0)
    assert fired == ["stopper"]
    # The clock stays at the stopping event, not the run deadline.
    assert kernel.now == 1.0
    # A fresh run proceeds normally.
    kernel.run(until=10.0)
    assert fired == ["stopper", "later"]
    assert kernel.now == 10.0


def test_run_until_collected_is_event_driven_on_sim_kernel(fast_dgc):
    world = World(uniform_topology(2), dgc=fast_dgc, seed=3)
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.live_non_root_count == 3
    assert world.run_until_collected(100 * fast_dgc.tta)
    assert world.all_collected()
    assert world.live_non_root_count == 0
    # The kernel stopped at the exact instant of the last termination.
    assert world.kernel.now == max(world.stats.collected_by_id.values())


def test_live_non_root_count_tracks_creation_and_termination(fast_dgc):
    world = World(uniform_topology(2), dgc=fast_dgc, seed=4)
    assert world.live_non_root_count == 0
    driver = world.create_driver()
    assert world.live_non_root_count == 0  # roots are not counted
    driver.context.create(SinkBehavior())
    assert world.live_non_root_count == 1
    world.run_for(1.0)
    assert world.live_non_root_count == len(world.live_non_roots())
