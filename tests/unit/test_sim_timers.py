"""Unit tests for periodic timers."""

import pytest

from repro.errors import SimulationError
from repro.sim.kernel import SimKernel
from repro.sim.timers import PeriodicTimer


def test_fires_every_period():
    kernel = SimKernel()
    times = []
    PeriodicTimer(kernel, 2.0, lambda: times.append(kernel.now))
    kernel.run(until=7.0)
    assert times == [2.0, 4.0, 6.0]


def test_initial_delay_overrides_first_fire():
    kernel = SimKernel()
    times = []
    PeriodicTimer(
        kernel, 2.0, lambda: times.append(kernel.now), initial_delay=0.5
    )
    kernel.run(until=5.0)
    assert times == [0.5, 2.5, 4.5]


def test_stop_halts_firing():
    kernel = SimKernel()
    times = []
    timer = PeriodicTimer(kernel, 1.0, lambda: times.append(kernel.now))
    kernel.run(until=2.5)
    timer.stop()
    kernel.run(until=10.0)
    assert times == [1.0, 2.0]
    assert timer.stopped


def test_stop_from_callback():
    kernel = SimKernel()
    timer_box = {}

    def callback():
        timer_box["timer"].stop()

    timer_box["timer"] = PeriodicTimer(kernel, 1.0, callback)
    kernel.run(until=10.0)
    assert timer_box["timer"].ticks == 1


def test_tick_counter():
    kernel = SimKernel()
    timer = PeriodicTimer(kernel, 1.0, lambda: None)
    kernel.run(until=5.5)
    assert timer.ticks == 5


def test_zero_period_rejected():
    kernel = SimKernel()
    with pytest.raises(SimulationError):
        PeriodicTimer(kernel, 0.0, lambda: None)


def test_zero_initial_delay_fires_immediately():
    kernel = SimKernel()
    times = []
    PeriodicTimer(
        kernel, 3.0, lambda: times.append(kernel.now), initial_delay=0.0
    )
    kernel.run(until=4.0)
    assert times == [0.0, 3.0]
