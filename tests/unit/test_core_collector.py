"""Unit tests for the per-activity DGC engine (clock occasions, doomed
state, message counters) on minimal worlds."""

import pytest

from repro.core import events
from repro.core.config import DgcConfig
from repro.runtime.behaviors import Behavior, SinkBehavior
from repro.workloads.app import Peer, link


@pytest.fixture
def world(make_world):
    return make_world(2)


def get(world, proxy):
    return world.find_activity(proxy.activity_id)


def test_every_activity_gets_a_collector(world):
    driver = world.create_driver()
    proxy = driver.context.create(SinkBehavior(), name="a")
    assert get(world, proxy).collector is not None
    assert driver.collector is not None


def test_clock_increments_on_becoming_idle(world):
    class Work(Behavior):
        def do_work(self, ctx, request, proxies):
            yield ctx.sleep(1.0)

    driver = world.create_driver()
    proxy = driver.context.create(Work(), name="a")
    collector = get(world, proxy).collector
    value_before = collector.clock.value
    driver.context.call(proxy, "work")
    world.run_for(3.0)
    assert collector.clock.value == value_before + 1
    assert collector.clock.owner == proxy.activity_id


def test_deserialization_creates_referenced_record(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(0.5)
    collector = get(world, a).collector
    assert b.activity_id in collector.state.referenced


def test_needs_send_satisfied_by_first_broadcast(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(0.2)
    record = get(world, a).collector.state.referenced.get(b.activity_id)
    world.run_for(2 * fast_dgc.ttb)
    assert record.needs_send is False
    assert record.messages_sent >= 1


def test_referencer_learned_from_heartbeat(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(2 * fast_dgc.ttb)
    b_collector = get(world, b).collector
    assert a.activity_id in b_collector.state.referencers


def test_clock_increment_on_referenced_loss(world):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(3.0)
    a_collector = get(world, a).collector
    value_before = a_collector.clock.value
    driver.context.call(a, "drop", data=[b.activity_id])
    world.run_for(4.0)
    assert b.activity_id not in a_collector.state.referenced
    increments = world.tracer.events(
        kind=events.DGC_CLOCK_INCREMENT, subject=a.activity_id
    )
    reasons = [event.details["reason"] for event in increments]
    assert "referenced_loss" in reasons
    assert a_collector.clock.value > value_before


def test_clock_increment_on_referencer_loss(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(3 * fast_dgc.ttb)
    b_collector = get(world, b).collector
    # a vanishes without protocol (explicit termination).
    get(world, a).terminate("explicit")
    world.run_for(3 * fast_dgc.tta)
    increments = world.tracer.events(
        kind=events.DGC_CLOCK_INCREMENT, subject=b.activity_id
    )
    reasons = [event.details["reason"] for event in increments]
    assert "referencer_loss" in reasons
    assert a.activity_id not in b_collector.state.referencers


def test_doomed_activity_stops_heartbeating(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    link(driver, a, a, key="self")
    world.run_for(1.0)
    driver.context.drop(a)
    a_collector = get(world, a).collector

    # Wait until it becomes doomed (1-cycle consensus with itself).
    deadline = 30 * fast_dgc.ttb
    world.kernel.run_until_quiescent(
        lambda: a_collector.doomed or get(world, a) is None, 0.5, deadline
    )
    assert a_collector.doomed
    sent_at_doom = a_collector.messages_sent
    world.run_for(fast_dgc.ttb * 2)
    assert a_collector.messages_sent == sent_at_doom


def test_doomed_terminates_after_tta(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    link(driver, a, a, key="self")
    world.run_for(1.0)
    driver.context.drop(a)
    a_collector = get(world, a).collector
    world.kernel.run_until_quiescent(
        lambda: a_collector.doomed, 0.5, 30 * fast_dgc.ttb
    )
    world.kernel.run_until_quiescent(
        lambda: get(world, a) is None, 0.2, 3 * fast_dgc.tta
    )
    doomed_event = world.tracer.last(events.DGC_DOOMED)
    terminated_event = world.tracer.last(events.ACTIVITY_TERMINATED)
    assert terminated_event.details["reason"] == "cyclic"
    assert terminated_event.time == pytest.approx(
        doomed_event.time + fast_dgc.tta
    )


def test_collector_counters_increase(world, fast_dgc):
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(4 * fast_dgc.ttb)
    a_collector = get(world, a).collector
    b_collector = get(world, b).collector
    assert a_collector.messages_sent >= 2
    assert b_collector.messages_received >= 2
    assert a_collector.responses_received >= 2


def test_start_jitter_desynchronises_beats(make_world):
    config = DgcConfig(ttb=1.0, tta=3.0, start_jitter=True)
    world = make_world(2, dgc=config)
    driver = world.create_driver()
    proxies = [driver.context.create(Peer(), name=f"p{i}") for i in range(8)]
    delays = set()
    for proxy in proxies:
        collector = world.find_activity(proxy.activity_id).collector
        delays.add(round(collector._timer.next_fire_time, 6))
    assert len(delays) > 1


def test_no_start_jitter_when_disabled(make_world):
    config = DgcConfig(ttb=1.0, tta=3.0, start_jitter=False)
    world = make_world(2, dgc=config)
    driver = world.create_driver()
    proxies = [driver.context.create(Peer(), name=f"p{i}") for i in range(4)]
    delays = {
        world.find_activity(p.activity_id).collector._timer.next_fire_time
        for p in proxies
    }
    assert len(delays) == 1
