"""Unit tests for the network fabric."""

import pytest

from repro.errors import UnknownDestinationError
from repro.net.faults import FaultPlan
from repro.net.message import (
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    Envelope,
)
from repro.net.network import Network
from repro.net.topology import uniform_topology
from repro.sim.kernel import SimKernel


def make_network(node_count=2, rtt=0.01, fault_plan=None):
    kernel = SimKernel()
    network = Network(
        kernel, uniform_topology(node_count, rtt_s=rtt), fault_plan=fault_plan
    )
    return kernel, network


def make_envelope(src, dst, kind=KIND_APP_REQUEST, size=100):
    return Envelope(
        source_node=src,
        dest_node=dst,
        kind=kind,
        size_bytes=size,
        payload="data",
        deliver=lambda payload: None,
    )


def test_cross_node_delivery_and_accounting():
    kernel, network = make_network()
    received = []
    network.register_node("site-0", lambda env: None)
    network.register_node("site-1", lambda env: received.append(kernel.now))
    network.send(make_envelope("site-0", "site-1"))
    kernel.run()
    assert received == [pytest.approx(0.005)]
    assert network.accountant.total_bytes == 100


def test_intra_node_delivery_is_not_accounted():
    kernel, network = make_network()
    received = []
    network.register_node("site-0", lambda env: received.append(env))
    network.register_node("site-1", lambda env: None)
    network.send(make_envelope("site-0", "site-0"))
    kernel.run()
    assert len(received) == 1
    assert network.accountant.total_bytes == 0


def test_unknown_destination_raises():
    kernel, network = make_network()
    network.register_node("site-0", lambda env: None)
    with pytest.raises(UnknownDestinationError):
        network.send(make_envelope("site-0", "nowhere"))


def test_partition_drops_messages():
    plan = FaultPlan()
    kernel, network = make_network(fault_plan=plan)
    received = []
    network.register_node("site-0", lambda env: None)
    network.register_node("site-1", lambda env: received.append(env))
    plan.partition("site-0", "site-1")
    network.send(make_envelope("site-0", "site-1"))
    kernel.run()
    assert received == []
    assert plan.dropped_count == 1
    assert network.accountant.total_bytes == 0


def test_heal_restores_delivery():
    plan = FaultPlan()
    kernel, network = make_network(fault_plan=plan)
    received = []
    network.register_node("site-0", lambda env: None)
    network.register_node("site-1", lambda env: received.append(env))
    plan.partition("site-0", "site-1")
    plan.heal("site-0", "site-1")
    network.send(make_envelope("site-0", "site-1"))
    kernel.run()
    assert len(received) == 1


def test_fault_plan_extra_delay_applies_to_matching_kind():
    plan = FaultPlan()
    plan.add_delay(1.0, kind=KIND_DGC_MESSAGE)
    kernel, network = make_network(fault_plan=plan)
    times = {}
    network.register_node("site-0", lambda env: None)
    network.register_node(
        "site-1", lambda env: times.setdefault(env.kind, kernel.now)
    )
    network.send(make_envelope("site-0", "site-1", kind=KIND_DGC_MESSAGE))
    kernel.run()
    # Delayed DGC message arrives 1s + latency later.
    assert times[KIND_DGC_MESSAGE] == pytest.approx(1.005)


def test_fifo_between_same_pair_with_mixed_kinds():
    kernel, network = make_network()
    received = []
    network.register_node("site-0", lambda env: None)
    network.register_node("site-1", lambda env: received.append(env.kind))
    network.send(make_envelope("site-0", "site-1", kind=KIND_APP_REQUEST))
    network.send(make_envelope("site-0", "site-1", kind=KIND_DGC_MESSAGE))
    kernel.run()
    assert received == [KIND_APP_REQUEST, KIND_DGC_MESSAGE]


def test_max_comm_reflects_topology():
    __, network = make_network(rtt=0.02)
    assert network.max_comm() == pytest.approx(0.01)


def test_delivery_to_vanished_node_is_dropped():
    kernel, network = make_network()
    network.register_node("site-0", lambda env: None)
    sink_calls = []
    network.register_node("site-1", lambda env: sink_calls.append(env))
    network.send(make_envelope("site-0", "site-1"))
    # Simulate the destination node disappearing mid-flight.
    network._sinks.pop("site-1")
    kernel.run()
    assert sink_calls == []
    assert network.fault_plan.dropped_count == 1


# ----------------------------------------------------------------------
# The unified typed fabric (send_typed)
# ----------------------------------------------------------------------


def make_typed_network(node_count=2, batching=True):
    kernel, network = make_network(node_count)
    network.pulse_batching = batching
    received = {}
    for index in range(node_count):
        name = f"site-{index}"

        def typed_sink(kind, item, payload, _name=name):
            received.setdefault(_name, []).append((kind, item, payload))

        network.register_node(name, lambda env: None, typed_sink)
    return kernel, network, received


def test_send_typed_delivers_through_typed_sink_and_accounts():
    kernel, network, received = make_typed_network()
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 123, "req")
    kernel.run()
    assert received["site-1"] == [(KIND_APP_REQUEST, "req", None)]
    assert network.accountant.bytes_for(KIND_APP_REQUEST) == 123


def test_send_typed_batches_same_instant_into_one_pulse_event():
    kernel, network, received = make_typed_network()
    for index in range(10):
        network.send_typed(
            "site-0", "site-1", KIND_APP_REQUEST, 10, f"req{index}"
        )
    kernel.run()
    assert [item for __, item, __ in received["site-1"]] == [
        f"req{index}" for index in range(10)
    ]
    # Ten messages share one delivery instant: one kernel pulse event.
    assert network.pulse_event_count == 1


def test_send_typed_intra_node_is_unaccounted_and_same_tick():
    kernel, network, received = make_typed_network()
    network.send_typed("site-0", "site-0", KIND_APP_REPLY, 99, "reply")
    kernel.run()
    assert received["site-0"] == [(KIND_APP_REPLY, "reply", None)]
    assert network.accountant.total_bytes == 0


def test_send_typed_falls_back_to_envelopes_without_batching():
    kernel, network, __ = make_typed_network(batching=False)
    envelopes = []
    network.register_node("site-1", envelopes.append)
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 50, "req")
    network.send_typed(
        "site-0", "site-1", KIND_DGC_MESSAGE, 64, "ao-1", "beat"
    )
    kernel.run()
    assert [env.kind for env in envelopes] == [
        KIND_APP_REQUEST, KIND_DGC_MESSAGE
    ]
    # Paired kinds (DGC) wrap (item, payload); the rest carry the item.
    assert envelopes[0].payload == "req"
    assert envelopes[1].payload == ("ao-1", "beat")


def test_send_typed_falls_back_for_envelope_only_destination():
    kernel, network = make_network()
    network.pulse_batching = True
    typed, envelopes = [], []
    network.register_node(
        "site-0", lambda env: None, lambda *args: typed.append(args)
    )
    network.register_node("site-1", envelopes.append)  # no typed sink
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 10, "req")
    kernel.run()
    assert typed == []
    assert len(envelopes) == 1 and envelopes[0].payload == "req"


def test_send_typed_respects_partitions():
    plan = FaultPlan()
    kernel, network = make_network(fault_plan=plan)
    network.pulse_batching = True
    received = []
    network.register_node("site-0", lambda env: None, lambda *a: None)
    network.register_node(
        "site-1", lambda env: None, lambda *args: received.append(args)
    )
    plan.partition("site-0", "site-1")
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 10, "req")
    kernel.run()
    assert received == []
    assert plan.dropped_count == 1
    assert network.accountant.total_bytes == 0


def test_send_typed_to_vanished_node_is_dropped():
    kernel, network, received = make_typed_network()
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 10, "req")
    network._typed_sinks.pop("site-1")
    kernel.run()
    assert received.get("site-1") is None
    assert network.fault_plan.dropped_count == 1


def test_typed_and_envelope_traffic_share_channel_fifo():
    kernel, network, received = make_typed_network()
    order = []
    network.register_node(
        "site-1",
        lambda env: order.append(("envelope", env.kind)),
        lambda kind, item, payload: order.append(("typed", kind)),
    )
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 10, "first")
    network.send(make_envelope("site-0", "site-1", kind=KIND_DGC_MESSAGE))
    network.send_typed("site-0", "site-1", KIND_APP_REPLY, 10, "third")
    kernel.run()
    assert order == [
        ("typed", KIND_APP_REQUEST),
        ("envelope", KIND_DGC_MESSAGE),
        ("typed", KIND_APP_REPLY),
    ]


# ----------------------------------------------------------------------
# The aggregated columnar core (send_dgc_single / send_dgc_run)
# ----------------------------------------------------------------------


def make_aggregated_network(node_count=3):
    kernel, network = make_network(node_count)
    network.pulse_batching = True
    network.aggregate_site_pairs = True
    typed, singles, batches = [], [], []
    for index in range(node_count):
        name = f"site-{index}"

        def typed_sink(kind, item, payload, _name=name):
            typed.append((_name, kind, item, payload))

        def single(target, message, _name=name):
            singles.append((_name, target, message))

        def batch(targets, messages, _name=name):
            batches.append((_name, list(targets), list(messages)))

        network.register_node(
            name, lambda env: None, typed_sink,
            dgc_sinks={
                KIND_DGC_MESSAGE: (single, batch),
                "dgc.response": (single, batch),
            },
        )
    return kernel, network, typed, singles, batches


def test_adjacent_same_channel_dgc_sends_merge_into_one_aggregate():
    kernel, network, typed, singles, batches = make_aggregated_network()
    message = object()
    for index in range(5):
        network.send_dgc_single(
            "site-0", "site-1", KIND_DGC_MESSAGE, 64, f"ao-{index}", message
        )
    kernel.run()
    # One batch-sink call carrying the flat columns, in send order.
    assert singles == []
    assert batches == [
        ("site-1", [f"ao-{i}" for i in range(5)], [message] * 5)
    ]
    assert network.aggregated_message_count == 4
    # Accounting charges each constituent at its modeled size.
    assert network.accountant.messages_for(KIND_DGC_MESSAGE) == 5
    assert network.accountant.bytes_for(KIND_DGC_MESSAGE) == 5 * 64
    assert network.accountant.pair_bytes(("site-0", "site-1")) == 5 * 64


def test_interleaved_traffic_breaks_the_run_and_keeps_order():
    kernel, network, typed, singles, batches = make_aggregated_network()
    message = object()
    order = []
    # Re-register site-1 sinks that record global arrival order.
    network.register_node(
        "site-1", lambda env: None,
        lambda kind, item, payload: order.append(("typed", item)),
        dgc_sinks={
            KIND_DGC_MESSAGE: (
                lambda t, m: order.append(("single", t)),
                lambda ts, ms: order.extend(("batch", t) for t in ts),
            ),
            "dgc.response": (
                lambda t, m: order.append(("single", t)),
                lambda ts, ms: order.extend(("batch", t) for t in ts),
            ),
        },
    )
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "a", message)
    network.send_typed("site-0", "site-1", KIND_APP_REQUEST, 10, "req")
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "b", message)
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "c", message)
    kernel.run()
    # The app request broke the run: "a" stays single, "b"/"c" merged —
    # and the global sequence is exactly the send sequence.
    assert order == [
        ("single", "a"), ("typed", "req"), ("batch", "b"), ("batch", "c"),
    ]


def test_send_dgc_run_stages_one_entry_and_counts_constituents():
    kernel, network, typed, singles, batches = make_aggregated_network()
    message = object()
    network.send_dgc_run(
        "site-0", "site-2", KIND_DGC_MESSAGE, 64,
        ["x", "y", "z"], [message, message, message],
    )
    kernel.run()
    assert batches == [("site-2", ["x", "y", "z"], [message] * 3)]
    channel = network._channels[("site-0", "site-2")]
    assert channel.sent_count == 3
    assert channel.delivered_count == 3
    assert network.accountant.messages_for(KIND_DGC_MESSAGE) == 3


def test_send_dgc_run_falls_back_per_message_without_aggregation():
    kernel, network, typed, singles, batches = make_aggregated_network()
    network.aggregate_site_pairs = False
    network.send_dgc_run(
        "site-0", "site-1", KIND_DGC_MESSAGE, 64, ["x", "y"], ["m", "m"]
    )
    kernel.run()
    assert batches == []
    assert [item for __, kind, item, __ in typed
            if kind == KIND_DGC_MESSAGE] == ["x", "y"]


def test_send_dgc_single_respects_partitions_and_counts_drops():
    plan = FaultPlan()
    kernel, network = make_network(2, fault_plan=plan)
    network.pulse_batching = True
    network.aggregate_site_pairs = True
    received = []
    network.register_node(
        "site-0", lambda env: None, lambda *a: None,
        dgc_sinks={KIND_DGC_MESSAGE: (lambda t, m: None, lambda ts, ms: None)},
    )
    network.register_node(
        "site-1", lambda env: None, lambda *a: received.append(a),
        dgc_sinks={
            KIND_DGC_MESSAGE: (
                lambda t, m: received.append(t), lambda ts, ms: None
            ),
        },
    )
    plan.partition("site-0", "site-1")
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "a", "m")
    network.send_dgc_run(
        "site-0", "site-1", KIND_DGC_MESSAGE, 64, ["b", "c"], ["m", "m"]
    )
    kernel.run()
    assert received == []
    assert plan.dropped_count == 3
    assert network.accountant.total_bytes == 0


def test_aggregated_pulse_records_are_pooled_and_recycled():
    kernel, network, typed, singles, batches = make_aggregated_network()
    assert network._pulse_pool == []
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "a", "m")
    kernel.run()
    assert len(network._pulse_pool) == 1
    recycled = network._pulse_pool[0]
    assert recycled == []
    network.send_dgc_single("site-0", "site-1", KIND_DGC_MESSAGE, 64, "b", "m")
    # The recycled record was reused, not a new allocation.
    assert network._pulse_pool == []
    assert len(network._pulses) == 1 and next(iter(network._pulses.values())) is recycled
    kernel.run()
