"""Unit tests for the simulated local GC (tag-death notification)."""

import pytest

from repro.runtime.behaviors import Behavior, SinkBehavior


class CollectorSpy:
    """Stands in for a DGC collector; records dropped tags."""

    def __init__(self):
        self.dropped = []

    def on_reference_dropped(self, tag):
        self.dropped.append(tag)

    def on_reference_deserialized(self, proxy):
        pass

    def on_became_idle(self):
        pass

    def on_terminated(self):
        pass


def test_tag_death_notifies_collector(make_world):
    world = make_world(1, dgc=None)
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    spy = CollectorSpy()
    driver.collector = spy
    driver.context.drop(target)
    world.run_for(1.0)
    assert len(spy.dropped) == 1
    assert spy.dropped[0].target == target.activity_id


def test_no_notification_while_other_stubs_alive(make_world):
    world = make_world(1, dgc=None)
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    duplicate = driver.context.acquire(target.ref)
    spy = CollectorSpy()
    driver.collector = spy
    driver.context.drop(target)
    world.run_for(1.0)
    assert spy.dropped == []
    driver.context.drop(duplicate)
    world.run_for(1.0)
    assert len(spy.dropped) == 1


def test_gc_delay_defers_notification(make_world):
    world = make_world(1, dgc=None, gc_delay=5.0)
    driver = world.create_driver()
    target = driver.context.create(SinkBehavior(), name="t")
    spy = CollectorSpy()
    driver.collector = spy
    driver.context.drop(target)
    world.run_for(1.0)
    assert spy.dropped == []
    world.run_for(10.0)
    assert len(spy.dropped) == 1


def test_notifications_for_terminated_holder_are_skipped(make_world):
    world = make_world(1, dgc=None, gc_delay=2.0)
    driver = world.create_driver()
    holder = driver.context.create(SinkBehavior(), name="h")
    target = driver.context.create(SinkBehavior(), name="t")
    holder_activity = world.find_activity(holder.activity_id)
    proxy = holder_activity.node.deserialize_ref(holder_activity, target.ref)
    spy = CollectorSpy()
    holder_activity.collector = spy
    holder_activity.release_proxy(proxy)
    holder_activity.terminate("explicit")
    world.run_for(5.0)
    assert spy.dropped == []


def test_collected_tags_counter(make_world):
    world = make_world(1, dgc=None)
    driver = world.create_driver()
    targets = [
        driver.context.create(SinkBehavior(), name=f"t{i}") for i in range(3)
    ]
    for proxy in targets:
        driver.context.drop(proxy)
    world.run_for(1.0)
    assert world.nodes[driver.node.name].local_gc.collected_tags == 3
