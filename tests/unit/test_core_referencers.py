"""Unit tests for the referencer table (paper Algorithm 1 substrate)."""

from repro.core.clock import ActivityClock
from repro.core.referencers import ReferencerTable


def clock(value=0, owner="ao-x"):
    return ActivityClock(value, owner)


def test_update_registers_new_referencer():
    table = ReferencerTable()
    assert table.update("ao-a", clock(), True, now=1.0) is True
    assert "ao-a" in table
    assert len(table) == 1


def test_update_existing_referencer_returns_false():
    table = ReferencerTable()
    table.update("ao-a", clock(), True, now=1.0)
    assert table.update("ao-a", clock(1), False, now=2.0) is False
    record = table.get("ao-a")
    assert record.clock == clock(1)
    assert record.consensus is False
    assert record.last_message_time == 2.0


def test_agree_vacuously_true_when_empty():
    assert ReferencerTable().agree(clock()) is True


def test_agree_requires_matching_clock():
    table = ReferencerTable()
    table.update("ao-a", clock(1), True, now=0.0)
    assert table.agree(clock(1)) is True
    assert table.agree(clock(2)) is False


def test_agree_requires_consensus_flag():
    table = ReferencerTable()
    table.update("ao-a", clock(1), True, now=0.0)
    table.update("ao-b", clock(1), False, now=0.0)
    assert table.agree(clock(1)) is False


def test_agree_requires_same_owner_in_clock():
    table = ReferencerTable()
    table.update("ao-a", ActivityClock(1, "ao-x"), True, now=0.0)
    assert table.agree(ActivityClock(1, "ao-y")) is False


def test_expire_removes_silent_referencers():
    table = ReferencerTable()
    table.update("ao-a", clock(), True, now=0.0)
    table.update("ao-b", clock(), True, now=5.0)
    lost = table.expire(now=8.1, tta=8.0)
    assert lost == ["ao-a"]
    assert "ao-a" not in table
    assert "ao-b" in table


def test_expire_boundary_is_strict():
    table = ReferencerTable()
    table.update("ao-a", clock(), True, now=0.0)
    assert table.expire(now=8.0, tta=8.0) == []


def test_forget():
    table = ReferencerTable()
    table.update("ao-a", clock(), True, now=0.0)
    table.forget("ao-a")
    assert len(table) == 0
    table.forget("ao-missing")  # no error


def test_ids():
    table = ReferencerTable()
    table.update("ao-a", clock(), True, now=0.0)
    table.update("ao-b", clock(), True, now=0.0)
    assert sorted(table.ids()) == ["ao-a", "ao-b"]
