"""Unit tests for the ground-truth garbage oracle (Eq. 1)."""

from repro.graph.oracle import compute_garbage, garbage_of_snapshot, is_garbage
from repro.graph.refgraph import ReferenceGraphSnapshot
from repro.runtime.behaviors import Behavior
from repro.workloads.app import Peer, link, release_all


def snapshot(edges, idle):
    return ReferenceGraphSnapshot(time=0.0, edges=edges, idle=idle)


def test_busy_activity_is_not_garbage():
    garbage = garbage_of_snapshot(
        snapshot({}, {"a": False})
    )
    assert garbage == set()


def test_idle_unreferenced_activity_is_garbage():
    garbage = garbage_of_snapshot(snapshot({}, {"a": True}))
    assert garbage == {"a"}


def test_idle_cycle_is_garbage():
    garbage = garbage_of_snapshot(
        snapshot({"a": {"b"}, "b": {"a"}}, {"a": True, "b": True})
    )
    assert garbage == {"a", "b"}


def test_cycle_referenced_by_busy_is_live():
    garbage = garbage_of_snapshot(
        snapshot(
            {"r": {"a"}, "a": {"b"}, "b": {"a"}},
            {"r": False, "a": True, "b": True},
        )
    )
    assert garbage == set()


def test_orientation_busy_referenced_does_not_pin_idle_referencer():
    """Fig. 4: an idle cycle referencing a busy one is still garbage."""
    garbage = garbage_of_snapshot(
        snapshot(
            {"c1a": {"c1b"}, "c1b": {"c1a", "c2a"}, "c2a": {"c2b"},
             "c2b": {"c2a"}},
            {"c1a": True, "c1b": True, "c2a": False, "c2b": True},
        )
    )
    assert garbage == {"c1a", "c1b"}


def test_pinned_activities_are_not_garbage():
    garbage = garbage_of_snapshot(
        snapshot({}, {"a": True, "b": True}), pinned={"a"}
    )
    assert garbage == {"b"}


def test_pin_propagates_through_edges():
    garbage = garbage_of_snapshot(
        snapshot({"a": {"b"}}, {"a": True, "b": True}), pinned={"a"}
    )
    assert garbage == set()


def test_pin_of_dead_activity_ignored():
    garbage = garbage_of_snapshot(
        snapshot({}, {"a": True}), pinned={"ghost"}
    )
    assert garbage == {"a"}


def test_world_level_oracle_with_inflight_pins(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)  # in flight right now
    # Before delivery, b is pinned by the in-flight reference and a by the
    # in-flight wakeup.
    assert a.activity_id not in compute_garbage(world)
    assert b.activity_id not in compute_garbage(world)
    world.run_for(1.0)
    release_all(driver, [a, b])
    world.run_for(1.0)
    assert is_garbage(world, a.activity_id)
    assert is_garbage(world, b.activity_id)


def test_oracle_eq1_equivalence_on_snapshot():
    """Cross-check the forward-closure implementation against a direct
    evaluation of Eq. 1 via transitive referencers."""
    edges = {
        "r": {"a"},
        "a": {"b"},
        "b": {"c", "a"},
        "c": set(),
        "d": {"d"},
    }
    idle = {"r": False, "a": True, "b": True, "c": True, "d": True}
    snap = snapshot(edges, idle)
    garbage = garbage_of_snapshot(snap)
    for activity in idle:
        closure = snap.transitive_referencers(activity)
        eq1 = all(idle[y] for y in closure)
        assert (activity in garbage) == eq1
