"""Unit tests for the Sec. 7.1 heterogeneous-parameters expiry rules."""

from repro.core.clock import ActivityClock
from repro.core.referencers import ReferencerTable


def clock():
    return ActivityClock(0, "ao-x")


def test_declared_ttb_stretches_deadline():
    table = ReferencerTable()
    table.update("slow", clock(), True, now=0.0, sender_ttb=5.0)
    # Plain TTA=3, base TTB=1: stretched deadline = 3 + 2*(5-1) = 11.
    assert table.expire(10.9, 3.0, base_ttb=1.0, honor_sender_ttb=True) == []
    assert table.expire(11.1, 3.0, base_ttb=1.0, honor_sender_ttb=True) == [
        "slow"
    ]


def test_declared_ttb_ignored_without_flag():
    table = ReferencerTable()
    table.update("slow", clock(), True, now=0.0, sender_ttb=5.0)
    assert table.expire(3.1, 3.0, base_ttb=1.0, honor_sender_ttb=False) == [
        "slow"
    ]


def test_faster_sender_not_stretched():
    table = ReferencerTable()
    table.update("fast", clock(), True, now=0.0, sender_ttb=0.5)
    assert table.expire(3.1, 3.0, base_ttb=1.0, honor_sender_ttb=True) == [
        "fast"
    ]


def test_undeclared_sender_uses_plain_tta():
    table = ReferencerTable()
    table.update("legacy", clock(), True, now=0.0)  # sender_ttb=0
    assert table.expire(3.1, 3.0, base_ttb=1.0, honor_sender_ttb=True) == [
        "legacy"
    ]


def test_max_declared_ttb():
    table = ReferencerTable()
    assert table.max_declared_ttb() == 0.0
    table.update("a", clock(), True, now=0.0, sender_ttb=2.0)
    table.update("b", clock(), True, now=0.0, sender_ttb=7.0)
    assert table.max_declared_ttb() == 7.0


def test_redeclaration_updates_ttb():
    table = ReferencerTable()
    table.update("a", clock(), True, now=0.0, sender_ttb=7.0)
    table.update("a", clock(), True, now=1.0, sender_ttb=2.0)
    assert table.max_declared_ttb() == 2.0
