"""Unit tests for latency metrics."""

import math

import pytest

from repro.harness.metrics import (
    CollectionReport,
    LatencySummary,
    collection_report,
    percentile,
)
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_chain, build_ring


def test_percentile_interpolates():
    data = [1.0, 2.0, 3.0, 4.0]
    assert percentile(data, 0.0) == 1.0
    assert percentile(data, 100.0) == 4.0
    assert percentile(data, 50.0) == 2.5


def test_percentile_single_sample():
    assert percentile([7.0], 99.0) == 7.0


def test_percentile_empty_rejected():
    with pytest.raises(ValueError):
        percentile([], 50.0)


def test_summary_of_samples():
    summary = LatencySummary.of([3.0, 1.0, 2.0])
    assert summary.count == 3
    assert summary.minimum == 1.0
    assert summary.maximum == 3.0
    assert summary.p50 == 2.0
    assert summary.mean == 2.0


def test_summary_empty_is_nan():
    summary = LatencySummary.of([])
    assert summary.count == 0
    assert math.isnan(summary.mean)


def test_collection_report_from_world(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    chain = build_chain(world, driver, 2)
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    released_at = world.kernel.now
    release_all(driver, chain + ring)
    assert world.run_until_collected(100 * fast_dgc.tta)
    report = collection_report(world, released_at)
    assert report.summary().count == 5
    acyclic = report.summary("acyclic")
    cyclic = report.summary("cyclic")
    assert acyclic.count + cyclic.count == 5
    assert cyclic.count >= 2
    # Every latency is positive and bounded by the run length.
    for latency in report.all_latencies:
        assert 0 < latency <= world.kernel.now - released_at


def test_collection_report_ignores_prior_terminations(make_world, fast_dgc):
    from repro.workloads.app import Peer

    world = make_world()
    driver = world.create_driver()
    victim = driver.context.create(Peer(), name="early")
    world.find_activity(victim.activity_id).terminate("explicit")
    world.run_for(1.0)
    report = collection_report(world, released_at=world.kernel.now)
    assert report.summary().count == 0
