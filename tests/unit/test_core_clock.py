"""Unit tests for the named Lamport activity clock."""

import pytest

from repro.core.clock import ActivityClock


def test_increment_takes_ownership():
    clock = ActivityClock(5, "ao-b")
    incremented = clock.incremented("ao-a")
    assert incremented.value == 6
    assert incremented.owner == "ao-a"


def test_increment_returns_new_object():
    clock = ActivityClock(0, "ao-a")
    assert clock.incremented("ao-a") is not clock
    assert clock.value == 0


def test_immutability():
    clock = ActivityClock(1, "ao-a")
    with pytest.raises(AttributeError):
        clock.value = 2


def test_order_by_value_first():
    assert ActivityClock(1, "ao-z") < ActivityClock(2, "ao-a")


def test_order_by_owner_on_tie():
    assert ActivityClock(3, "ao-a") < ActivityClock(3, "ao-b")


def test_total_order_is_strict():
    a = ActivityClock(1, "x")
    b = ActivityClock(1, "x")
    assert a == b
    assert not a < b
    assert not a > b
    assert a <= b and a >= b


def test_equality_and_hash():
    assert ActivityClock(2, "ao") == ActivityClock(2, "ao")
    assert hash(ActivityClock(2, "ao")) == hash(ActivityClock(2, "ao"))
    assert ActivityClock(2, "ao") != ActivityClock(2, "other")
    assert ActivityClock(2, "ao") != ActivityClock(3, "ao")


def test_eq_against_other_types():
    assert ActivityClock(1, "a") != "a:1"
    assert not (ActivityClock(1, "a") == 42)


def test_merge_keeps_greater():
    small = ActivityClock(1, "z")
    big = ActivityClock(2, "a")
    assert small.merge(big) is big
    assert big.merge(small) is big


def test_merge_idempotent():
    clock = ActivityClock(4, "a")
    assert clock.merge(clock) is clock


def test_increment_always_exceeds_previous():
    clock = ActivityClock(7, "ao-zzz")
    assert clock.incremented("ao-aaa") > clock


def test_repr_is_owner_colon_value():
    assert repr(ActivityClock(9, "ao-x")) == "ao-x:9"
