"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.kernel import SimKernel


def test_initial_time_is_zero():
    assert SimKernel().now == 0.0


def test_schedule_and_fire_in_time_order():
    kernel = SimKernel()
    fired = []
    kernel.schedule(2.0, fired.append, "b")
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(3.0, fired.append, "c")
    kernel.run()
    assert fired == ["a", "b", "c"]
    assert kernel.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    kernel = SimKernel()
    fired = []
    for label in "abcde":
        kernel.schedule(1.0, fired.append, label)
    kernel.run()
    assert fired == list("abcde")


def test_negative_delay_rejected():
    kernel = SimKernel()
    with pytest.raises(SchedulingInPastError):
        kernel.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    kernel = SimKernel()
    kernel.schedule(5.0, lambda: None)
    kernel.run()
    with pytest.raises(SchedulingInPastError):
        kernel.schedule_at(4.0, lambda: None)


def test_cancel_prevents_firing():
    kernel = SimKernel()
    fired = []
    event = kernel.schedule(1.0, fired.append, "x")
    event.cancel()
    kernel.run()
    assert fired == []


def test_run_until_stops_before_later_events():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(10.0, fired.append, "b")
    kernel.run(until=5.0)
    assert fired == ["a"]
    assert kernel.now == 5.0
    kernel.run()
    assert fired == ["a", "b"]


def test_run_until_advances_clock_even_without_events():
    kernel = SimKernel()
    kernel.run(until=42.0)
    assert kernel.now == 42.0


def test_max_events_bound():
    kernel = SimKernel()
    fired = []
    for index in range(10):
        kernel.schedule(float(index + 1), fired.append, index)
    kernel.run(max_events=3)
    assert fired == [0, 1, 2]


def test_step_fires_exactly_one_event():
    kernel = SimKernel()
    fired = []
    kernel.schedule(1.0, fired.append, "a")
    kernel.schedule(2.0, fired.append, "b")
    assert kernel.step() is True
    assert fired == ["a"]
    assert kernel.step() is True
    assert kernel.step() is False


def test_events_scheduled_during_run_are_executed():
    kernel = SimKernel()
    fired = []

    def reschedule():
        fired.append(kernel.now)
        if len(fired) < 3:
            kernel.schedule(1.0, reschedule)

    kernel.schedule(1.0, reschedule)
    kernel.run()
    assert fired == [1.0, 2.0, 3.0]


def test_counters():
    kernel = SimKernel()
    event = kernel.schedule(1.0, lambda: None)
    kernel.schedule(2.0, lambda: None)
    event.cancel()
    assert kernel.scheduled_count == 2
    assert kernel.pending_count == 1
    kernel.run()
    assert kernel.fired_count == 1


def test_run_is_not_reentrant():
    kernel = SimKernel()
    errors = []

    def nested():
        try:
            kernel.run()
        except SimulationError as exc:
            errors.append(exc)

    kernel.schedule(1.0, nested)
    kernel.run()
    assert len(errors) == 1


def test_run_until_quiescent_returns_on_predicate():
    kernel = SimKernel()
    state = {"done": False}
    kernel.schedule(3.0, lambda: state.update(done=True))
    assert kernel.run_until_quiescent(lambda: state["done"], 1.0, 10.0)
    assert kernel.now <= 10.0


def test_run_until_quiescent_times_out():
    kernel = SimKernel()
    assert not kernel.run_until_quiescent(lambda: False, 1.0, 5.0)
