"""Shared fixtures for the repro test-suite."""

from __future__ import annotations

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.world import World


@pytest.fixture(autouse=True)
def _fresh_ids():
    """Reset the global activity-id counter so ids (and hence named-clock
    tie-breaks) are deterministic per test."""
    reset_id_counter()
    yield
    reset_id_counter()


@pytest.fixture
def fast_dgc() -> DgcConfig:
    """A DGC configuration fast enough for tests: TTB=1s, TTA=3s
    (satisfies TTA > 2*TTB + MaxComm for the test topologies)."""
    return DgcConfig(ttb=1.0, tta=3.0)


@pytest.fixture
def make_world(fast_dgc):
    """Factory for small worlds with safety checking enabled."""

    def factory(
        node_count: int = 4,
        *,
        dgc: DgcConfig = fast_dgc,
        seed: int = 0,
        **kwargs,
    ) -> World:
        kwargs.setdefault("safety_checks", True)
        return World(
            uniform_topology(node_count), dgc=dgc, seed=seed, **kwargs
        )

    return factory
