"""Shared equivalence-fingerprint helpers for the integration suites.

Three tiers of equivalence, strongest first:

* **Exact** (:func:`world_fingerprint`) — the full
  :class:`~repro.world.WorldStats` block (including every per-activity
  collection instant) plus the raw tracer stream, event for event.  The
  per-entry batched and exact-order aggregated cores are gated on this
  tier against the per-event baseline: pure mechanics changes, nothing
  the world can observe.
* **Permutation-tolerant** (:func:`canonical_tracer`) — the tracer
  stream up to reordering of same-instant events.  Protocol-safe
  shuffles (per-stream FIFO kept, delivery clock untouched — see
  :mod:`repro.net.reorder`) permute only within an instant, so two
  streams are shuffle-equivalent iff their canonical forms are equal.
* **Outcome** (:func:`outcome_fingerprint`) — what the relaxed
  coalescing tier guarantees: the *reachability verdicts*.  Same
  activities created, the same set collected, same explicit
  terminations, zero dead letters and zero safety violations.  Instants,
  the acyclic/cyclic classification (an artifact of which detection path
  fired first) and traffic totals (a function of run length) may shift
  within the deferral bound and are deliberately excluded — see the
  relaxed-tier section of PERFORMANCE.md for why nothing stronger can
  hold once deliveries are deferred across instants.
"""

import dataclasses


def stats_fingerprint(result):
    """The full stats block, per-activity collection instants included.

    ``result`` is any workload result carrying ``world`` (run with
    ``keep_world=True``)."""
    return dataclasses.asdict(result.world.stats)


def tracer_fingerprint(result):
    """The raw tracer stream as a comparable tuple, in emission order."""
    return tuple(
        (event.time, event.kind, event.subject,
         tuple(sorted(event.details.items())))
        for event in result.world.tracer
    )


def world_fingerprint(result):
    """Everything observable about one run: the stats block (with every
    per-activity collection instant) and the raw tracer stream."""
    return stats_fingerprint(result), tracer_fingerprint(result)


def canonical_tracer(result, until=None):
    """The tracer stream up to protocol-safe *same-instant* permutation.

    Event times are part of each record and global time order is a
    protocol-safe invariant, so sorting canonicalizes exactly the free
    axis: the order of distinct streams within one delivery instant.

    ``until`` truncates the stream at a simulated instant.  Two
    protocol-safe-shuffled runs agree on this canonical form for as
    long as no referencer record expires (while every holder keeps
    beating, same-instant processing order cannot change collector
    state); once the collapse phase's expiry checks start racing
    same-instant refreshes, only the outcome tier
    (:func:`outcome_fingerprint`) is guaranteed."""
    events = tracer_fingerprint(result)
    if until is not None:
        events = (event for event in events if event[0] <= until)
    return tuple(sorted(events))


def outcome_fingerprint(result):
    """The relaxed tier's contract: reachability verdicts only.

    Activity ids are process-global, so callers must reset the id
    counter (:func:`repro.runtime.ids.reset_id_counter`) before each run
    for the collected-id sets to align."""
    stats = result.world.stats
    return {
        "created": stats.created,
        "terminated_explicit": stats.terminated_explicit,
        "collected_total": len(stats.collected_by_id),
        "collected_ids": tuple(sorted(stats.collected_by_id)),
        "dead_letters": stats.dead_letters,
        "safety_violations": stats.safety_violations,
    }


def bandwidth_fingerprint(result):
    """Per-kind traffic totals (bytes, messages) from the accountant —
    bit-comparable between exact cores; the relaxed tier only bounds
    them (deferral stretches the collapse phase by up to the extra
    detection latency, and heartbeats keep flowing while it lasts)."""
    return {
        kind: (category.bytes, category.messages)
        for kind, category in
        result.world.network.accountant.summary().items()
    }
