"""Seeded META-parse violation: the analyzer reports syntax errors as
findings instead of crashing."""


def broken(:  # expect[META-parse]
    return None
