"""Seeded DET-wallclock violations: wall-clock reads in core code."""

import time
from datetime import datetime

from time import monotonic, sleep  # expect[DET-wallclock]


def stamp(kernel):
    started = time.monotonic()  # expect[DET-wallclock]
    wall = time.time()  # expect[DET-wallclock]
    born = datetime.now()  # expect[DET-wallclock]
    virtual = kernel.now  # negative: the kernel's virtual clock is the law
    return started, wall, born, virtual, monotonic, sleep
