"""Fixture wire-size manifest: plays the role of ``repro/net/message.py``."""

from dataclasses import dataclass

from kinds_reg import (
    KIND_FAB_ALIEN,
    KIND_FAB_LOST,
    KIND_FAB_MUTE,
    KIND_FAB_PAIR,
    KIND_FAB_PING,
    KIND_FAB_RETIRED,
)


@dataclass(frozen=True, slots=True)
class WireSizeModel:
    fab_ping_bytes: int = 32
    fab_bytes: int = 16

    def fab_pair_size(self, count):
        return self.fab_bytes * count


KIND_SIZE_SOURCES = {
    KIND_FAB_PING: "fab_ping_bytes",
    KIND_FAB_LOST: "fab_bytes",
    KIND_FAB_MUTE: "fab_bytes",
    KIND_FAB_PAIR: "missing_attr",  # expect[KIND-price]
    KIND_FAB_ALIEN: "fab_bytes",
    KIND_FAB_GHOST: "fab_bytes",  # expect[KIND-price]
    KIND_FAB_RETIRED: "fab_bytes",  # expect[KIND-price]
}
