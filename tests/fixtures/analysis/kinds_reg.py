"""Fixture kind registry: declares the ``fab`` family.

The file plays the role of ``repro/net/kinds.py`` — it *defines*
``register_kind`` and makes the top-level built-in registrations, so
registrations here are in the defining file and (when top-level) legal
for paired kinds.
"""

KIND_FAB_PING = "fab.ping"
KIND_FAB_PONG = "fab.pong"
KIND_FAB_LOST = "fab.lost"
KIND_FAB_MUTE = "fab.mute"
KIND_FAB_PAIR = "fab.pair"
KIND_FAB_ALIEN = "fab.alien"
KIND_FAB_RETIRED = "fab.retired"  # expect[KIND-literal]


def register_kind(kind, *, paired=False, aggregate=None, family=None):
    return kind


register_kind(KIND_FAB_PING)  # negative: priced, codec'd and sunk
register_kind(KIND_FAB_PONG)  # expect[KIND-price]
register_kind(KIND_FAB_LOST)  # expect[KIND-sink]
register_kind(KIND_FAB_MUTE)  # expect[KIND-codec]


def _register_after_import():
    register_kind(KIND_FAB_PAIR, paired=True, aggregate="fab.pair[]")  # expect[KIND-late-paired]
