"""Seeded DET-unordered-iter violations: set iteration feeding order."""


def fan_out(targets, spares, send):
    for target in {"a", "b", "c"}:  # expect[DET-unordered-iter]
        send(target)
    for target in targets.union(spares):  # expect[DET-unordered-iter]
        send(target)
    order = [t for t in set(targets)]  # expect[DET-unordered-iter]
    for target in sorted(targets):  # negative: sorted() fixes the order
        send(target)
    for target in order:  # negative: lists are insertion-ordered
        send(target)
    return order
