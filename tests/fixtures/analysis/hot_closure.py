"""Seeded HOT-closure violations: closure allocation inside loops."""


def fire_all(entries, schedule):
    callbacks = []
    for entry in entries:
        callbacks.append(lambda: entry)  # expect[HOT-closure]

        def deliver():  # expect[HOT-closure]
            return entry

        callbacks.append(deliver)
    hoisted = make_noop()  # negative: allocation hoisted out of the loop
    while entries:
        schedule(lambda: None)  # expect[HOT-closure]
        entries.pop()
    return callbacks, hoisted


def make_noop():
    return None
