"""Fixture shard codec: plays the role of ``repro/net/wire.py``.

Defines the four codec functions the symmetric-coverage check keys on
(v1 encode/decode, the v2 encoder's ``value`` method, v2 decode) plus
the ``KIND_PAYLOAD_TYPES`` manifest.
"""

from kinds_reg import (
    KIND_FAB_ALIEN,
    KIND_FAB_LOST,
    KIND_FAB_PAIR,
    KIND_FAB_PING,
    KIND_FAB_PONG,
    KIND_FAB_RETIRED,
)


class FabPing:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class FabPong:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class FabLost:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class FabPair:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class FabAlien:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


class FabAsym:
    __slots__ = ("a",)

    def __init__(self, a):
        self.a = a


def _encode_value(out, value):
    cls = value.__class__
    if cls is FabPing:
        out.append(1)
    elif cls is FabPong:
        out.append(2)
    elif cls is FabLost:
        out.append(3)
    elif cls is FabPair:
        out.append(4)
    elif cls is FabAlien:
        out.append(5)
    elif cls is FabAsym:  # expect[KIND-codec]
        out.append(6)
    out.append(value.a)


class _V2Encoder:
    __slots__ = ("out",)

    def __init__(self):
        self.out = []

    def value(self, value):
        cls = value.__class__
        if cls is FabPing:
            self.out.append(1)
        elif cls is FabPong:
            self.out.append(2)
        elif cls is FabLost:
            self.out.append(3)
        elif cls is FabPair:
            self.out.append(4)
        elif cls is FabAlien:
            self.out.append(5)
        self.out.append(value.a)


def _decode_value(tag, body):
    if tag == 1:
        return FabPing(body)
    if tag == 2:
        return FabPong(body)
    if tag == 3:
        return FabLost(body)
    if tag == 4:
        return FabPair(body)
    return FabAlien(body)


def _decode_value_v2(tag, body):
    if tag == 1:
        return FabPing(body)
    if tag == 2:
        return FabPong(body)
    if tag == 3:
        return FabLost(body)
    if tag == 4:
        return FabPair(body)
    return FabAlien(body)


KIND_PAYLOAD_TYPES = {
    KIND_FAB_PING: (FabPing,),
    KIND_FAB_PONG: (FabPong, FabOrphan),  # expect[KIND-codec]
    KIND_FAB_LOST: (FabLost,),
    KIND_FAB_PAIR: (FabPair,),
    KIND_FAB_ALIEN: (FabAlien,),
    KIND_FAB_RETIRED: (FabPing,),  # expect[KIND-codec]
}
