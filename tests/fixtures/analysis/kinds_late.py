"""Fixture late registration: a paired kind declared outside the
registry module — the dispatch-shape snapshot in network/node will
never include it."""

from kinds_reg import KIND_FAB_ALIEN, register_kind

register_kind(KIND_FAB_ALIEN, paired=True)  # expect[KIND-late-paired]
