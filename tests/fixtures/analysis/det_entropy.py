"""Seeded DET-entropy violations: process entropy in core code.

Each ``expect[...]`` marker names the finding the analyzer must raise
on that line; lines without a marker must stay silent.
"""

import os

import random  # expect[DET-entropy]
import secrets  # expect[DET-entropy]
from random import Random  # sanctioned: seeded Random instances are fine


def draw():
    token = os.urandom(8)  # expect[DET-entropy]
    roll = random.random()  # expect[DET-entropy]
    pick = secrets.choice([1, 2])  # expect[DET-entropy]
    rng = Random(42)  # negative: explicit seed, no process entropy
    return token, roll, pick, rng.getrandbits(8)
