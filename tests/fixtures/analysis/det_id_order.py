"""Seeded DET-id-order violations: ordering by object address."""


def stable_order(items):
    ranked = sorted(items, key=id)  # expect[DET-id-order]
    worst = max(items, key=lambda item: id(item))  # expect[DET-id-order]
    if id(items[0]) < id(items[1]):  # expect[DET-id-order]
        return worst
    named = sorted(items, key=lambda item: item.name)  # negative: stable key
    return ranked, named
