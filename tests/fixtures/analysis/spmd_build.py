"""Seeded SPMD-locality violations: shard-dependent construction.

The PR-8 bug class: id-minting or activity construction under a branch
only some shards take skews the process-global id counter between a
shard and its ghosts.
"""


def build(ctx, world, make_activity_id):
    activity = None
    for name in ("svc-0", "svc-1"):
        if ctx.is_local(name):
            activity = world.create_activity(name)  # expect[SPMD-locality]
    if ctx.shard == 0:
        seed = ctx.rng.sample()  # expect[SPMD-locality]
    else:
        seed = None
    ghost = make_activity_id if ctx.is_local("svc-2") else None  # negative: no call in either arm
    minted = [make_activity_id(name) for name in ("a", "b")]  # negative: unconditional on every shard
    return activity, seed, ghost, minted
