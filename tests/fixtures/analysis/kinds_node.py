"""Fixture node sink table: plays the role of ``repro/runtime/node.py``.

``fab.lost`` is deliberately missing from the handler table — the
``KIND-sink`` finding lands on its registration line in the registry
fixture, not here.
"""

from kinds_reg import (
    KIND_FAB_ALIEN,
    KIND_FAB_MUTE,
    KIND_FAB_PAIR,
    KIND_FAB_PING,
    KIND_FAB_PONG,
)


class FabNode:
    __slots__ = ("_kind_handlers",)

    def __init__(self):
        self._kind_handlers = {
            KIND_FAB_PING: self._on_item,
            KIND_FAB_PONG: self._on_item,
            KIND_FAB_MUTE: self._on_item,
            KIND_FAB_PAIR: self._on_item,
            KIND_FAB_ALIEN: self._on_item,
        }

    def _on_item(self, item):
        return item
