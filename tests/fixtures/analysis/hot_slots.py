"""Seeded HOT-slots violations: unslotted classes on the hot path."""

from dataclasses import dataclass


class PulseRecord:  # expect[HOT-slots]
    def __init__(self, instant):
        self.instant = instant


class SlottedRecord:  # negative: declares __slots__
    __slots__ = ("instant",)

    def __init__(self, instant):
        self.instant = instant


@dataclass(slots=True)
class Columns:  # negative: dataclass(slots=True) generates the slots
    items: tuple


class FixtureError(ValueError):  # negative: exception classes are exempt
    pass
