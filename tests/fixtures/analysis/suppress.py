"""Suppression model fixture: reasons are mandatory, ids must be known,
coverage is per-line."""

import uuid  # repro: allow[DET-entropy] fixture: a reasoned suppression silences the finding


def entropy(namespace):
    token = uuid.uuid4()  # expect[DET-entropy] # repro: allow[DET-wallclock] a different rule's suppression does not cover this
    raw = uuid.uuid1()  # expect[DET-entropy,META-suppression] # repro: allow[DET-entropy]
    # repro: allow[DET-entropy] fixture: an alone-on-line suppression covers the next line
    nonce = uuid.uuid3(namespace, "x")
    return token, raw, nonce


def unknown():
    value = 1  # expect[META-suppression] # repro: allow[NOT-a-rule] unknown rule ids are flagged
    return value
