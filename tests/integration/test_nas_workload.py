"""NAS skeleton workload: small-scale end-to-end checks."""

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.workloads.nas import KERNELS, run_nas_kernel
from repro.workloads.nas.patterns import cg_pattern, ep_pattern, ft_pattern

FAST = DgcConfig(ttb=2.0, tta=6.0)


def small(name, count=8):
    return KERNELS[name].scaled(count)


def test_ep_all_collected_with_dgc():
    result = run_nas_kernel(
        small("EP"),
        dgc=FAST,
        topology=uniform_topology(4),
        seed=1,
        safety_checks=True,
    )
    assert result.dgc_enabled
    assert result.collected_cyclic + result.collected_acyclic == 8
    assert result.dead_letters == 0
    assert result.dgc_time_s > 0


def test_ep_without_dgc_uses_explicit_termination():
    result = run_nas_kernel(
        small("EP"), dgc=None, topology=uniform_topology(4), seed=1
    )
    assert not result.dgc_enabled
    assert result.dgc_time_s == 0.0
    assert result.dgc_bandwidth_mb == 0.0


def test_dgc_bandwidth_is_pure_overhead():
    with_dgc = run_nas_kernel(
        small("FT"), dgc=FAST, topology=uniform_topology(4), seed=1
    )
    without = run_nas_kernel(
        small("FT"), dgc=None, topology=uniform_topology(4), seed=1
    )
    assert with_dgc.app_bandwidth_mb == pytest.approx(
        without.app_bandwidth_mb, rel=0.01
    )
    assert with_dgc.bandwidth_mb > without.bandwidth_mb


def test_app_time_unaffected_by_dgc():
    """Fig. 9's point: the DGC does not slow the application down (in the
    simulator the compute model is unchanged, so times are equal)."""
    with_dgc = run_nas_kernel(
        small("CG"), dgc=FAST, topology=uniform_topology(4), seed=1
    )
    without = run_nas_kernel(
        small("CG"), dgc=None, topology=uniform_topology(4), seed=1
    )
    assert with_dgc.app_time_s == pytest.approx(without.app_time_s, rel=0.05)


def test_ep_overhead_dominates_cg_overhead():
    """The Fig. 8 ordering: EP's relative bandwidth overhead is orders of
    magnitude above CG's."""
    results = {}
    for name in ("EP", "CG"):
        with_dgc = run_nas_kernel(
            small(name), dgc=FAST, topology=uniform_topology(4), seed=1
        )
        without = run_nas_kernel(
            small(name), dgc=None, topology=uniform_topology(4), seed=1
        )
        results[name] = (
            (with_dgc.bandwidth_mb - without.bandwidth_mb)
            / without.bandwidth_mb
        )
    assert results["EP"] > 5 * results["CG"]


def test_patterns_shapes():
    cg = cg_pattern(1000)
    sends = cg(3, 8, 0)
    assert (4, 1000) in sends and (2, 1000) in sends
    # Reduction every 5th iteration for non-zero workers.
    assert any(target == 0 for target, __ in cg(3, 8, 4))
    assert not any(target == 0 for target, __ in cg(3, 8, 0))

    ep = ep_pattern()
    assert ep(0, 8, 0) == []
    assert ep(5, 8, 0) == [(0, 256)]

    ft = ft_pattern(500)
    sends = ft(2, 5, 0)
    assert len(sends) == 4
    assert all(target != 2 for target, __ in sends)


def test_kernel_specs_scale():
    spec = KERNELS["CG"].scaled(16)
    assert spec.ao_count == 16
    assert spec.name == "CG"
    assert spec.iterations == KERNELS["CG"].iterations
