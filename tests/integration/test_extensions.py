"""Sec. 7 future-work extensions: per-activity/dynamic parameters and
breadth-first spanning-tree election."""

import pytest

from repro.core.config import DgcConfig
from repro.errors import ConfigurationError
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_ring


# ----------------------------------------------------------------------
# Per-activity TTB/TTA (Sec. 7.1, first improvement)
# ----------------------------------------------------------------------

def test_per_activity_config_attaches(make_world, fast_dgc):
    world = make_world(dgc=fast_dgc.with_overrides(heterogeneous_params=True))
    driver = world.create_driver()
    slow_config = DgcConfig(
        ttb=4.0, tta=12.0, heterogeneous_params=True
    )
    fast_proxy = driver.context.create(Peer(), name="fast")
    slow_proxy = world.create_activity(
        Peer(), name="slow", creator=driver, dgc_config=slow_config
    )
    fast_collector = world.find_activity(fast_proxy.activity_id).collector
    slow_collector = world.find_activity(slow_proxy.activity_id).collector
    assert fast_collector.config.ttb == 1.0
    assert slow_collector.config.ttb == 4.0


def test_slow_referencer_does_not_lose_fast_referenced(make_world):
    """A slow-beating referencer keeps its referenced alive: the
    referenced honours the declared sender TTB when expiring records."""
    shared = dict(heterogeneous_params=True, start_jitter=True)
    world = make_world(dgc=DgcConfig(ttb=1.0, tta=3.0, **shared))
    driver = world.create_driver()
    slow_config = DgcConfig(ttb=5.0, tta=15.0, **shared)
    holder = world.create_activity(
        Peer(), name="holder", creator=driver, dgc_config=slow_config
    )
    precious = driver.context.create(Peer(), name="precious")
    link(driver, holder, precious)
    world.run_for(3.0)
    release_all(driver, [precious])
    # The holder beats only every 5s while precious's own TTA is 3s: with
    # heterogeneous_params, precious stretches the deadline and survives.
    world.run_for(120.0)
    assert world.find_activity(precious.activity_id) is not None
    assert world.stats.safety_violations == 0


def test_without_heterogeneous_flag_slow_beat_is_unsafe(make_world):
    """Negative control: the same mixed-beat world *without* the
    extension wrongfully collects — demonstrating why the paper couples
    per-activity parameters with known-to-all values."""
    from repro.errors import ProtocolError

    world = make_world(dgc=DgcConfig(ttb=1.0, tta=3.0))
    driver = world.create_driver()
    slow_config = DgcConfig(ttb=5.0, tta=15.0)
    holder = world.create_activity(
        Peer(), name="holder", creator=driver, dgc_config=slow_config
    )
    precious = driver.context.create(Peer(), name="precious")
    link(driver, holder, precious)
    world.run_for(3.0)
    release_all(driver, [precious])
    with pytest.raises(ProtocolError, match="wrongful"):
        world.run_for(120.0)


# ----------------------------------------------------------------------
# Dynamic TTB (Sec. 7.1, second improvement)
# ----------------------------------------------------------------------

def test_dynamic_ttb_accelerates_on_suspected_garbage(make_world):
    config = DgcConfig(
        ttb=2.0, tta=6.0, dynamic_ttb=True, heterogeneous_params=True
    )
    world = make_world(dgc=config)
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring)
    world.run_for(8 * config.ttb)
    accelerated = [
        world.find_activity(p.activity_id).collector.current_ttb
        for p in ring
        if world.find_activity(p.activity_id) is not None
    ]
    # At least one member suspected garbage and sped up (or everything
    # already collapsed, which is acceleration at work too).
    assert not accelerated or min(accelerated) < config.ttb


def test_dynamic_ttb_collects_faster_than_static(make_world):
    def run(dynamic: bool) -> float:
        config = DgcConfig(
            ttb=4.0,
            tta=12.0,
            dynamic_ttb=dynamic,
            heterogeneous_params=True,
        )
        world = make_world(dgc=config, seed=7)
        driver = world.create_driver()
        ring = build_ring(world, driver, 4)
        world.run_for(2.0)
        start = world.kernel.now
        release_all(driver, ring)
        assert world.run_until_collected(200 * config.tta)
        return max(world.stats.collected_by_id.values()) - start

    assert run(dynamic=True) < run(dynamic=False)


def test_dynamic_ttb_relaxes_when_not_suspicious(make_world):
    config = DgcConfig(
        ttb=2.0, tta=6.0, dynamic_ttb=True, heterogeneous_params=True
    )
    world = make_world(dgc=config)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(10 * config.ttb)
    collector = world.find_activity(a.activity_id).collector
    # Held by the driver, no consensus anywhere: beat stays at base.
    assert collector.current_ttb == config.ttb


def test_dynamic_config_validation():
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=1.0, tta=3.0, dynamic_accel=0.0)
    with pytest.raises(ConfigurationError):
        DgcConfig(ttb=1.0, tta=3.0, dynamic_min_ttb_factor=2.0)


# ----------------------------------------------------------------------
# Breadth-first spanning tree (Sec. 7.2)
# ----------------------------------------------------------------------

def test_bfs_election_still_safe_and_live(make_world):
    config = DgcConfig(ttb=1.0, tta=3.0, bfs_parent_election=True)
    world = make_world(dgc=config, seed=9)
    driver = world.create_driver()
    ring = build_ring(world, driver, 6)
    # Add chords so shallow parents exist.
    link(driver, ring[0], ring[3], key="chord")
    link(driver, ring[2], ring[5], key="chord")
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(200 * config.tta)
    assert world.stats.collected_total == 6
    assert world.stats.safety_violations == 0


def test_bfs_election_prefers_shallower_parent(make_world):
    """Direct protocol-level check through the pure functions."""
    from repro.core.clock import ActivityClock
    from repro.core.protocol import DgcState, process_response
    from repro.core.wire import DgcResponse
    from repro.runtime.proxy import RemoteRef, StubTag

    state = DgcState(self_id="self", clock=ActivityClock(3, "owner"))
    for target in ("deep", "shallow"):
        state.referenced.on_deserialized(
            RemoteRef(target, "n0"), StubTag("self", target, 1)
        )
    deep = DgcResponse("deep", state.clock, has_parent=True, depth=5)
    shallow = DgcResponse("shallow", state.clock, has_parent=True, depth=1)
    assert process_response(state, deep, bfs=True)
    assert state.parent == "deep"
    assert state.depth == 6
    # A shallower candidate replaces the parent under BFS election...
    assert process_response(state, shallow, bfs=True)
    assert state.parent == "shallow"
    assert state.depth == 2
    # ...but a deeper one never does.
    assert not process_response(state, deep, bfs=True)
    assert state.parent == "shallow"


def test_without_bfs_first_parent_sticks(make_world):
    from repro.core.clock import ActivityClock
    from repro.core.protocol import DgcState, process_response
    from repro.core.wire import DgcResponse
    from repro.runtime.proxy import RemoteRef, StubTag

    state = DgcState(self_id="self", clock=ActivityClock(3, "owner"))
    for target in ("deep", "shallow"):
        state.referenced.on_deserialized(
            RemoteRef(target, "n0"), StubTag("self", target, 1)
        )
    deep = DgcResponse("deep", state.clock, has_parent=True, depth=5)
    shallow = DgcResponse("shallow", state.clock, has_parent=True, depth=1)
    process_response(state, deep)
    process_response(state, shallow)
    assert state.parent == "deep"


def test_owner_advertises_depth_zero():
    from repro.core.clock import ActivityClock
    from repro.core.protocol import DgcState

    state = DgcState(self_id="self", clock=ActivityClock(1, "self"))
    assert state.current_depth() == 0
