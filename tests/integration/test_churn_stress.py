"""Stress: sustained reference churn under safety + invariant monitors.

A moderately sized population continuously rewires its reference graph
(holds, replacements, drops, forwards, bursts of work) while the DGC
runs with an aggressive TTA.  The run must finish with zero wrongful
collections, zero invariant violations, and — after quiescence — full
collection of everything the driver released.
"""

import pytest

from repro.core.config import DgcConfig
from repro.core.invariants import install_invariant_monitor
from repro.workloads.app import Peer, release_all
from repro.workloads.synthetic import create_peers


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_churn_stress(make_world, seed):
    config = DgcConfig(ttb=1.0, tta=3.0)
    world = make_world(4, dgc=config, seed=seed)
    monitor = install_invariant_monitor(world, period=2.0)
    driver = world.create_driver()
    peers = create_peers(world, driver, 12, name_prefix="churn")
    rng = world.rng_registry.stream("churn.test")
    world.run_for(2.0)

    # 60 seconds of randomized churn.
    for step in range(60):
        action = rng.random()
        source = rng.choice(peers)
        target = rng.choice(peers)
        if action < 0.45:
            driver.context.call(
                source,
                "hold",
                refs=[target],
                data=[f"slot{rng.randrange(4)}"],
            )
        elif action < 0.65:
            driver.context.call(
                source, "drop", data=[f"slot{rng.randrange(4)}"]
            )
        elif action < 0.85:
            driver.context.call(source, "work", data=rng.uniform(0.5, 2.5))
        else:
            driver.context.call(
                source,
                "forward",
                data=(f"slot{rng.randrange(4)}", f"slot{rng.randrange(4)}",
                      f"slot{rng.randrange(4)}"),
            )
        world.run_for(1.0)

    # Nothing was collectable during churn: the driver held every peer.
    assert world.stats.collected_total == 0
    assert world.stats.safety_violations == 0

    # Quiesce and release: everything must go.
    world.run_for(10.0)
    release_all(driver, peers)
    assert world.run_until_collected(500 * config.tta), (
        f"survivors: {[a.id for a in world.live_non_roots()]}"
    )
    assert world.stats.collected_total == 12
    assert world.stats.dead_letters == 0
    assert monitor.checks > 20
    monitor.stop()


def test_churn_with_heterogeneous_and_dynamic_beats(make_world):
    """The Sec. 7.1 extensions under churn: mixed per-activity beats with
    dynamic acceleration, still safe and live."""
    shared = dict(heterogeneous_params=True, dynamic_ttb=True)
    world = make_world(4, dgc=DgcConfig(ttb=1.0, tta=3.0, **shared), seed=5)
    driver = world.create_driver()
    fast_peers = create_peers(world, driver, 4, name_prefix="fast")
    slow_config = DgcConfig(ttb=3.0, tta=9.0, **shared)
    slow_peers = [
        world.create_activity(
            Peer(), name=f"slow{index}", creator=driver,
            dgc_config=slow_config,
        )
        for index in range(4)
    ]
    peers = fast_peers + slow_peers
    rng = world.rng_registry.stream("churn.hetero")
    world.run_for(2.0)
    for step in range(30):
        source = rng.choice(peers)
        target = rng.choice(peers)
        driver.context.call(
            source, "hold", refs=[target], data=[f"s{rng.randrange(3)}"]
        )
        world.run_for(1.0)
    world.run_for(10.0)
    assert world.stats.collected_total == 0
    release_all(driver, peers)
    assert world.run_until_collected(500 * 9.0)
    assert world.stats.collected_total == 8
    assert world.stats.safety_violations == 0
