"""Baseline collectors: behavioural contracts from the related work.

* RMI-style: collects acyclic garbage; **cannot** collect cycles.
* Veiga-Ferreira-style: collects cycles, but CDM size grows with the
  cycle.
* Le Fessant-style sketch: collects quiescent cycles via mark
  propagation.
"""

import pytest

from repro.baselines.lefessant import LeFessantConfig, lefessant_collector_factory
from repro.baselines.rmi import RmiDgcConfig, rmi_collector_factory
from repro.baselines.veiga import VeigaConfig, veiga_collector_factory
from repro.net.topology import uniform_topology
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_chain, build_ring
from repro.world import World


def make_baseline_world(factory, seed=0):
    return World(
        uniform_topology(4),
        dgc=None,
        collector_factory=factory,
        seed=seed,
    )


# ----------------------------------------------------------------------
# RMI
# ----------------------------------------------------------------------

RMI = RmiDgcConfig(lease_s=4.0)


def test_rmi_collects_acyclic_chain():
    world = make_baseline_world(rmi_collector_factory(RMI))
    driver = world.create_driver()
    chain = build_chain(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, chain)
    assert world.run_until_collected(40 * RMI.lease_s)
    assert world.stats.collected_acyclic == 3


def test_rmi_keeps_referenced_activities_alive():
    world = make_baseline_world(rmi_collector_factory(RMI))
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(2.0)
    driver.context.drop(b)
    world.run_for(30 * RMI.lease_s)
    assert world.find_activity(b.activity_id) is not None


def test_rmi_cannot_collect_cycles():
    """The headline incompleteness the paper fixes (Sec. 1)."""
    world = make_baseline_world(rmi_collector_factory(RMI))
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring)
    world.run_for(50 * RMI.lease_s)
    assert len(world.live_non_roots()) == 3
    assert world.stats.collected_total == 0


# ----------------------------------------------------------------------
# Veiga & Ferreira CDMs
# ----------------------------------------------------------------------

VEIGA = VeigaConfig(
    heartbeat_s=1.0, alone_after_s=3.0, suspect_after_s=2.0
)


def test_veiga_collects_cycles():
    world = make_baseline_world(veiga_collector_factory(VEIGA))
    driver = world.create_driver()
    ring = build_ring(world, driver, 4)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(60 * VEIGA.alone_after_s)
    assert world.stats.collected_cyclic >= 1
    assert world.stats.collected_total == 4


def test_veiga_collects_acyclic_garbage_too():
    world = make_baseline_world(veiga_collector_factory(VEIGA))
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    driver.context.drop(a)
    assert world.run_until_collected(40 * VEIGA.alone_after_s)
    assert world.stats.collected_acyclic == 1


def test_veiga_spares_live_cycles():
    world = make_baseline_world(veiga_collector_factory(VEIGA))
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring[1:])  # driver keeps ring[0]
    world.run_for(30 * VEIGA.alone_after_s)
    assert len(world.live_non_roots()) == 3


def test_veiga_cdm_size_grows_with_cycle():
    """The paper's space-complexity criticism (Sec. 6): the detection
    message names every visited/pending activity."""
    sizes = {}
    for cycle_size in (3, 9):
        world = make_baseline_world(veiga_collector_factory(VEIGA))
        driver = world.create_driver()
        ring = build_ring(world, driver, cycle_size)
        world.run_for(2.0)
        release_all(driver, ring)
        assert world.run_until_collected(80 * VEIGA.alone_after_s)
        max_ids = 0
        # Collectors are gone with their activities; read the counters
        # from the traffic: CDM bytes scale with ids.  Easiest: re-run
        # tracking the max over live collectors before collection -
        # instead we use the accountant's biggest DGC envelope proxy:
        sizes[cycle_size] = world.accountant.bytes_for("dgc.message")
    assert sizes[9] > sizes[3]


# ----------------------------------------------------------------------
# Le Fessant sketch
# ----------------------------------------------------------------------

LF = LeFessantConfig(heartbeat_s=1.0, alone_after_s=3.0)


def test_lefessant_collects_quiescent_cycle():
    world = make_baseline_world(lefessant_collector_factory(LF))
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(80 * LF.alone_after_s)
    assert world.stats.collected_total == 3


def test_lefessant_spares_cycle_referenced_by_root():
    world = make_baseline_world(lefessant_collector_factory(LF))
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring[1:])
    world.run_for(30 * LF.alone_after_s)
    assert len(world.live_non_roots()) == 3
