"""Sec. 4.1 — the process-graph fallback.

When the no-sharing property is unavailable, only the graph of address
spaces is observable, limiting cycle collection to whole processes: "a
garbage cycle spanning some processes where some active objects are
still live will not be collected if only the process graph is
available".  These tests verify the coarsening on live worlds.
"""

from repro.graph.analysis import process_graph, process_graph_garbage
from repro.graph.refgraph import snapshot_reference_graph
from repro.workloads.app import Peer, link, release_all


def test_process_graph_lifts_all_activity_edges(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver()
    a = driver.context.create(Peer(), node="site-0", name="a")
    b = driver.context.create(Peer(), node="site-1", name="b")
    c = driver.context.create(Peer(), node="site-1", name="c")
    link(driver, a, b)
    link(driver, b, c)
    world.run_for(1.0)
    edges = process_graph(snapshot_reference_graph(world))
    # a->b crosses site-0 -> site-1; b->c is intra site-1; plus the
    # driver's stubs from its own node.
    assert "site-1" in edges["site-0"]
    assert "site-1" in edges["site-1"]


def test_dead_process_collectable_only_when_fully_idle(make_world):
    """A cross-process cycle with one live member poisons *both*
    processes under the coarse graph, even though the activity-level
    oracle would collect the dead part."""
    from repro.graph.oracle import compute_garbage

    world = make_world(2, dgc=None)
    driver = world.create_driver()
    # Cycle across processes: a (site-0) <-> b (site-1).
    a = driver.context.create(Peer(), node="site-0", name="a")
    b = driver.context.create(Peer(), node="site-1", name="b")
    link(driver, a, b)
    link(driver, b, a)
    # An unrelated live spinner on site-1.
    spinner = driver.context.create(Peer(), node="site-1", name="spin")
    world.run_for(1.0)
    driver.context.call(spinner, "work", data=60.0)
    release_all(driver, [a, b])
    world.run_for(2.0)

    snapshot = snapshot_reference_graph(world)
    # Activity-level: the a<->b cycle is garbage (the spinner does not
    # reference it)...
    garbage = compute_garbage(world)
    assert a.activity_id in garbage and b.activity_id in garbage
    # ...but process-level: site-1 hosts the busy spinner, so neither
    # process is collectable, and site-0's cycle half is reachable from
    # the uncollectable site-1.
    assert process_graph_garbage(snapshot) == set()


def test_fully_idle_process_pair_collectable(make_world):
    world = make_world(3, dgc=None)
    # Keep the never-idle root driver on its own process.
    driver = world.create_driver(node="site-2")
    a = driver.context.create(Peer(), node="site-0", name="a")
    b = driver.context.create(Peer(), node="site-1", name="b")
    link(driver, a, b)
    link(driver, b, a)
    world.run_for(1.0)
    release_all(driver, [a, b])
    world.run_for(1.0)
    snapshot = snapshot_reference_graph(world)
    garbage = process_graph_garbage(snapshot)
    assert {"site-0", "site-1"} <= garbage
    assert "site-2" not in garbage
