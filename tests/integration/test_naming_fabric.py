"""Integration tests for the naming service as a fabric subsystem:
bind/unbind over the wire, lease caching with explicit invalidation and
renewal, replica pushes, hashed authorities, and the in-flight-miss
semantics of ``ctx.lookup``.
"""

import pytest

from repro.core.config import RegistryConfig
from repro.net.kinds import (
    KIND_REGISTRY_BIND,
    KIND_REGISTRY_INVALIDATE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_RENEW,
)
from repro.runtime.behaviors import Behavior, SinkBehavior
from repro.workloads.app import release_all


CACHED = RegistryConfig(lease_ttb=10, lease_beat_s=1.0)


# ----------------------------------------------------------------------
# bind/unbind over the fabric
# ----------------------------------------------------------------------


def test_fabric_bind_pins_root_at_authority(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-2", name="svc")
    future = driver.context.bind("service", svc)
    assert not future.resolved  # the authority is remote
    world.run_for(1.0)
    assert future.value is True
    assert world.find_activity(svc.activity_id).is_root
    assert world.registry.resolve("service").activity_id == svc.activity_id
    assert world.accountant.bytes_for(KIND_REGISTRY_BIND) > 0


def test_fabric_bind_conflict_is_nacked(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver(node="site-1")
    a = driver.context.create(SinkBehavior(), node="site-2", name="a")
    b = driver.context.create(SinkBehavior(), node="site-2", name="b")
    first = driver.context.bind("service", a)
    second = driver.context.bind("service", b)
    world.run_for(1.0)
    assert first.value is True
    assert second.value is False
    assert not world.find_activity(b.activity_id).is_root


def test_fabric_unbind_releases_pin_and_unknown_name_is_nacked(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-2", name="svc")
    bind = driver.context.bind("service", svc)
    world.run_for(1.0)
    assert bind.value is True
    unbind = driver.context.unbind("service")
    ghost = driver.context.unbind("ghost")
    world.run_for(1.0)
    assert unbind.value is True
    assert ghost.value is False
    assert not world.find_activity(svc.activity_id).is_root


def test_fabric_bind_from_authority_node_is_free_and_immediate(make_world):
    world = make_world(3, dgc=None)
    driver = world.create_driver(node=world.registry_node)
    svc = driver.context.create(SinkBehavior(), node="site-2", name="svc")
    future = driver.context.bind("service", svc)
    assert future.resolved and future.value is True
    assert world.accountant.bytes_for(KIND_REGISTRY_BIND) == 0


# ----------------------------------------------------------------------
# In-flight misses (a name bound after the lookup is issued)
# ----------------------------------------------------------------------


def test_lookup_sees_bind_that_lands_before_serving(make_world):
    """Lookups are served against shard state at *serve* time: a bind
    applied while the lookup is still in flight resolves it."""
    world = make_world(2, dgc=None)
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    future = driver.context.lookup("service")          # issued first...
    world.registry.bind("service", svc.ref)            # ...bound at once
    world.run_for(1.0)                                 # served after bind
    assert future.value.activity_id == svc.activity_id


def test_lookup_served_before_bind_is_a_negative_reply_and_retry_wins(
    make_world,
):
    """A name bound only *after* the authority served the lookup yields
    a negative reply (the future resolves ``None``, it is never held
    open); the caller retries and the retry resolves."""
    world = make_world(2, dgc=None)
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    future = driver.context.lookup("service")
    world.run_for(1.0)                                 # served: unbound
    assert future.resolved and future.value is None
    world.registry.bind("service", svc.ref)
    retry = driver.context.lookup("service")
    world.run_for(1.0)
    assert retry.value.activity_id == svc.activity_id


class RetryingLooker(Behavior):
    """A behavior-level retry loop over negative replies."""

    def __init__(self, period: float = 0.5) -> None:
        self.period = period
        self.attempts = 0
        self.found = None

    def do_find(self, ctx, request, proxies):
        while self.found is None:
            self.attempts += 1
            future = ctx.lookup("service")
            yield future
            if future.value is not None:
                self.found = ctx.keep(future.value)
                return None
            yield ctx.sleep(self.period)
        return None


def test_behavior_retry_loop_converges_after_late_bind(make_world):
    world = make_world(2, dgc=None)
    driver = world.create_driver(node="site-0")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    looker_behavior = RetryingLooker()
    looker = driver.context.create(
        looker_behavior, node="site-1", name="looker"
    )
    driver.context.call(looker, "find")
    world.run_for(2.0)                                 # several misses
    assert looker_behavior.attempts >= 2
    assert looker_behavior.found is None
    world.registry.bind("service", svc.ref)
    world.run_for(2.0)
    assert looker_behavior.found is not None
    looker_activity = world.find_activity(looker.activity_id)
    assert looker_activity.proxies.holds(svc.activity_id)


# ----------------------------------------------------------------------
# Lease caching: hits, explicit invalidation, expiry, renewal
# ----------------------------------------------------------------------


def test_cache_hit_serves_locally_and_invalidation_restores_misses(
    make_world,
):
    world = make_world(2, dgc=None, registry=CACHED)
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    ctx = world.find_activity(driver.id).context

    first = ctx.lookup("service")                      # remote warm-up
    world.run_for(0.5)
    assert first.value.activity_id == svc.activity_id
    lookup_bytes = world.accountant.bytes_for(KIND_REGISTRY_LOOKUP)

    second = ctx.lookup("service")                     # leased cache hit
    assert second.resolved                             # immediate
    assert second.value.activity_id == svc.activity_id
    assert world.registry.cache_hits == 1
    assert world.accountant.bytes_for(KIND_REGISTRY_LOOKUP) == lookup_bytes

    world.registry.unbind("service")
    # The invalidation is in flight: a resolve in this window is a stale
    # hit — the documented lease-consistency window (at most one
    # propagation delay).
    stale = ctx.lookup("service")
    assert stale.resolved and stale.value is not None
    world.run_for(0.5)                                 # invalidate lands
    assert world.accountant.bytes_for(KIND_REGISTRY_INVALIDATE) > 0
    after = ctx.lookup("service")
    assert not after.resolved                          # cache was dropped
    world.run_for(0.5)
    assert after.value is None


def test_unused_lease_expires_without_renewal(make_world):
    world = make_world(
        2, dgc=None, registry=RegistryConfig(lease_ttb=2, lease_beat_s=1.0)
    )
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    ctx = world.find_activity(driver.id).context
    warm = ctx.lookup("service")
    world.run_for(0.5)
    assert warm.value is not None
    assert len(world.registry.shard("site-1").cache) == 1
    world.run_for(4.0)                                 # > lease, unused
    assert len(world.registry.shard("site-1").cache) == 0
    assert world.registry.renew_messages_sent == 0
    assert world.registry.lease_expiries == 1
    # The next resolve goes remote again.
    again = ctx.lookup("service")
    assert not again.resolved


def test_used_lease_renews_through_the_beat_wheel(make_world):
    world = make_world(
        2, dgc=None, registry=RegistryConfig(lease_ttb=2, lease_beat_s=1.0)
    )
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    ctx = world.find_activity(driver.id).context
    warm = ctx.lookup("service")
    world.run_for(0.4)
    assert warm.value is not None
    # Keep using the entry across several lease periods: the sweeps
    # batch renewals and the entry never lapses.
    for _ in range(10):
        hit = ctx.lookup("service")
        assert hit.resolved and hit.value is not None
        world.run_for(0.6)
    assert world.registry.renew_messages_sent >= 3
    assert world.accountant.bytes_for(KIND_REGISTRY_RENEW) > 0
    assert world.registry.lease_expiries == 0
    assert len(world.registry.shard("site-1").cache) == 1


def test_renewal_of_vanished_name_comes_back_as_invalidation(make_world):
    world = make_world(
        2, dgc=None, registry=RegistryConfig(lease_ttb=2, lease_beat_s=1.0)
    )
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    ctx = world.find_activity(driver.id).context
    warm = ctx.lookup("service")
    world.run_for(0.4)
    assert warm.value is not None
    # Drop the authority's lease book entry silently (as if the holder
    # set was forgotten), then unbind: no push-invalidation reaches the
    # client, so its next *renewal* must be answered with one.
    world.registry.shard("site-0").lease_holders.clear()
    world.registry.unbind("service")
    for _ in range(4):
        ctx.lookup("service")                          # keep the entry used
        world.run_for(0.6)
    assert world.accountant.bytes_for(KIND_REGISTRY_INVALIDATE) > 0
    assert len(world.registry.shard("site-1").cache) == 0


# ----------------------------------------------------------------------
# Replicated and hashed placements
# ----------------------------------------------------------------------


def test_replicated_resolves_locally_after_push(make_world):
    world = make_world(
        3, dgc=None, registry=RegistryConfig(placement="replicated")
    )
    driver = world.create_driver(node="site-1")
    svc = driver.context.create(SinkBehavior(), node="site-2", name="svc")
    ctx = world.find_activity(driver.id).context

    early = ctx.lookup("service")                      # before the bind
    assert early.resolved and early.value is None      # local replica miss
    world.registry.bind("service", svc.ref)
    world.run_for(0.5)                                 # replica push lands
    hit = ctx.lookup("service")
    assert hit.resolved and hit.value.activity_id == svc.activity_id
    assert world.registry.replica_hits == 1
    assert world.registry.local_misses == 1   # the pre-bind resolve
    # No lookup ever crossed the wire; only bind pushes did.
    assert world.accountant.bytes_for(KIND_REGISTRY_LOOKUP) == 0
    assert world.accountant.bytes_for(KIND_REGISTRY_BIND) > 0

    world.registry.unbind("service")
    world.run_for(0.5)                                 # invalidations land
    gone = ctx.lookup("service")
    assert gone.resolved and gone.value is None
    assert world.accountant.bytes_for(KIND_REGISTRY_INVALIDATE) > 0


def test_hashed_lookup_routes_to_hash_authority(make_world):
    world = make_world(
        4, dgc=None, registry=RegistryConfig(placement="hashed")
    )
    naming = world.registry
    driver = world.create_driver(node="site-0")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    # Pick a name whose authority is *not* the client's node.
    name = next(
        f"svc-{i}" for i in range(64)
        if naming.authority_node(f"svc-{i}") != "site-0"
    )
    naming.bind(name, svc.ref)
    assert world.find_activity(svc.activity_id).is_root
    future = world.find_activity(driver.id).context.lookup(name)
    assert not future.resolved
    world.run_for(0.5)
    assert future.value.activity_id == svc.activity_id
    assert world.accountant.bytes_for(KIND_REGISTRY_LOOKUP) > 0


# ----------------------------------------------------------------------
# Cache hits are real DGC edges
# ----------------------------------------------------------------------


class Keeper(Behavior):
    def do_find(self, ctx, request, proxies):
        future = ctx.lookup("service")
        yield future
        self.found = ctx.keep(future.value)
        return None

    def do_forget(self, ctx, request, proxies):
        ctx.drop(self.found)
        return None


def test_cache_hit_creates_live_dgc_edge(make_world, fast_dgc):
    """A resolve served from the lease cache must create the same
    reference-graph edge a remote reply would: the service survives on
    the cached holder's edge alone, well past unbind and TTA."""
    world = make_world(2, registry=CACHED)
    driver = world.create_driver(node="site-0")
    svc = driver.context.create(SinkBehavior(), node="site-0", name="svc")
    world.registry.bind("service", svc.ref)
    warm = driver.context.create(Keeper(), node="site-1", name="warm")
    holder_behavior = Keeper()
    holder = driver.context.create(holder_behavior, node="site-1", name="hold")
    driver.context.call(warm, "find")                  # remote warm-up
    world.run_for(1.0)
    driver.context.call(holder, "find")                # leased cache hit
    world.run_for(1.0)
    assert world.registry.cache_hits >= 1
    assert world.find_activity(holder.activity_id).proxies.holds(
        svc.activity_id
    )
    driver.context.call(warm, "forget")
    world.run_for(1.0)
    world.registry.unbind("service")
    release_all(driver, [svc])
    world.run_for(20 * fast_dgc.tta)
    # Alive purely through the cache-hit edge.
    assert world.find_activity(svc.activity_id) is not None
    driver.context.call(holder, "forget")
    world.run_for(1.0)
    release_all(driver, [warm, holder])
    assert world.run_until_collected(60 * fast_dgc.tta)
