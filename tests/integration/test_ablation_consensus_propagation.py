"""Sec. 4.3 optimisation ablation: propagating the consensus verdict.

"When a consensus is made ... it gives DGC responses indicating that a
consensus has been reached ... otherwise the acquired knowledge is
partially dropped and the consensus process must start again for the
sub-cycles."

With the optimisation: one consensus collects the whole compound cycle.
Without it: only the originator dies per consensus round; sub-cycles
restart, so collection takes several extra rounds (and strictly longer).
"""

from repro.core.config import DgcConfig
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_compound_cycles, build_ring


def run_collection(make_world, *, propagation: bool, size=4):
    config = DgcConfig(ttb=1.0, tta=3.0, consensus_propagation=propagation)
    world = make_world(dgc=config, seed=3)
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, size, size)
    world.run_for(2.0)
    start = world.kernel.now
    release_all(driver, ring_a + ring_b)
    assert world.run_until_collected(400 * config.tta), (
        f"propagation={propagation}: survivors "
        f"{[a.id for a in world.live_non_roots()]}"
    )
    last = max(world.stats.collected_by_id.values())
    return world, last - start


def test_both_variants_complete(make_world):
    world_with, time_with = run_collection(make_world, propagation=True)
    world_without, time_without = run_collection(make_world, propagation=False)
    assert world_with.stats.collected_total == 8
    assert world_without.stats.collected_total == 8
    assert world_with.stats.safety_violations == 0
    assert world_without.stats.safety_violations == 0


def test_optimisation_collects_strictly_faster(make_world):
    __, time_with = run_collection(make_world, propagation=True)
    __, time_without = run_collection(make_world, propagation=False)
    assert time_with < time_without


def test_without_optimisation_multiple_consensus_rounds(make_world):
    from repro.core import events

    world_with, __ = run_collection(make_world, propagation=True)
    world_without, __ = run_collection(make_world, propagation=False)
    rounds_with = world_with.tracer.count(events.DGC_CONSENSUS)
    rounds_without = world_without.tracer.count(events.DGC_CONSENSUS)
    # Without propagation every consensus kills a single activity, so the
    # compound structure needs several rounds.
    assert rounds_without > rounds_with


def test_simple_ring_collapses_in_one_tta_window_with_optimisation(
    make_world, fast_dgc
):
    world = make_world(seed=4)
    driver = world.create_driver()
    ring = build_ring(world, driver, 5)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(100 * fast_dgc.tta)
    times = sorted(
        world.stats.collected_by_id[p.activity_id] for p in ring
    )
    # With propagation, all five die within roughly one TTA+h*TTB window
    # of each other, not one consensus round apart each.
    spread = times[-1] - times[0]
    assert spread <= fast_dgc.tta + 5 * fast_dgc.ttb
