"""Fig. 6: the loss of a referenced must be detected, otherwise live
cycles can be *wrongfully* collected.

Paper graph: a cycle through A kept live by a busy external referencer D
(D -> C), with C's reverse-spanning-tree parent being A.  C tells A that
the consensus is rejected, but tells E (not its parent) only its local
agreement.  If the C -> A edge disappears and C keeps its foreign final
activity clock and dangling parent, the rejection never reaches A, and A
wrongfully concludes a consensus via E.

The protection is the clock increment on the loss of a referenced (plus
the loss-of-referencer increment at A); the test falsifies the naive
protocol with both rules ablated and verifies the paper's protocol stays
safe under the same schedule.
"""

import pytest

from repro.core.config import DgcConfig
from repro.errors import ProtocolError
from repro.workloads.app import Peer, link, release_all


class Spinner(Peer):
    def do_spin(self, ctx, request, proxies):
        while ctx.now < 10_000.0:
            yield ctx.sleep(2.0)


def build_fig6(world, driver):
    """A -> B -> C -> A cycle; C -> E; E -> A; busy D -> C."""
    a = driver.context.create(Peer(), name="A")
    b = driver.context.create(Peer(), name="B")
    c = driver.context.create(Peer(), name="C")
    e = driver.context.create(Peer(), name="E")
    d = driver.context.create(Spinner(), name="D")
    link(driver, a, b, key="next")
    link(driver, b, c, key="next")
    link(driver, c, a, key="back")
    link(driver, c, e, key="side")
    link(driver, e, a, key="up")
    link(driver, d, c, key="watch")
    return a, b, c, d, e


def drive_schedule(world, driver, a, b, c, d, e, *, horizon):
    """The schedule that tricks the naive protocol."""
    world.run_for(2.0)
    driver.context.call(d, "spin")
    # A becomes idle last (two spaced work items), so A strictly owns the
    # final activity clock.
    driver.context.call(a, "work", data=6.0)
    world.run_for(10.0)
    driver.context.call(a, "work", data=6.0)
    world.run_for(10.0)
    c_activity = world.find_activity(c.activity_id)
    release_all(driver, [a, b, c, d, e])
    world.run_for(20.0)
    # The C -> A reference disappears *silently*: the local GC collects
    # C's last stub for A without any request being served (no idle
    # transition, hence no clock increment even in the paper protocol —
    # only the explicit loss rules can react).
    back_proxy = c_activity.behavior.held.pop("back")
    c_activity.release_proxy(back_proxy)
    world.run_for(horizon)


def test_naive_protocol_wrongfully_collects(make_world):
    """Both Sec. 3.2 loss rules ablated: the safety monitor must catch a
    wrongful collection of the live cycle."""
    naive = DgcConfig(
        ttb=1.0,
        tta=3.0,
        increment_on_referencer_loss=False,
        increment_on_referenced_loss=False,
    )
    world = make_world(dgc=naive)
    driver = world.create_driver()
    a, b, c, d, e = build_fig6(world, driver)
    with pytest.raises(ProtocolError, match="wrongful"):
        drive_schedule(world, driver, a, b, c, d, e, horizon=80.0)


def test_paper_protocol_stays_safe_on_same_schedule(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a, b, c, d, e = build_fig6(world, driver)
    drive_schedule(world, driver, a, b, c, d, e, horizon=80.0)
    assert world.stats.safety_violations == 0
    # D is busy and transitively references A via C -> E -> A: the cycle
    # members A, B, E must all still be alive.  (B is reachable from D
    # via A; only nothing references... A -> B, so B lives too.)
    for proxy in (a, b, e):
        assert world.find_activity(proxy.activity_id) is not None, proxy


def test_referenced_loss_increments_clock(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(3 * fast_dgc.ttb)
    collector = world.find_activity(a.activity_id).collector
    before = collector.clock.value
    driver.context.call(a, "drop", data=[b.activity_id])
    world.run_for(3 * fast_dgc.ttb)
    assert collector.clock.value > before
    assert collector.clock.owner == a.activity_id


def test_referenced_loss_rule_disabled_keeps_clock(make_world):
    config = DgcConfig(ttb=1.0, tta=3.0, increment_on_referenced_loss=False)
    world = make_world(dgc=config)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(3.0)
    collector = world.find_activity(a.activity_id).collector
    # Freeze: capture clock after the last idle transition settles.
    before = collector.clock
    driver.context.call(a, "drop", data=[b.activity_id])
    world.run_for(3.0)
    # One increment happened for the idle transition of serving "drop",
    # but none for the referenced loss itself.
    increments = [
        event
        for event in world.tracer.events(kind="dgc.clock_increment",
                                         subject=a.activity_id)
        if event.details["reason"] == "referenced_loss"
    ]
    assert increments == []
