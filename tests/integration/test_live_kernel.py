"""LiveKernel unit coverage alongside the live runtime suite.

Three concerns:

* **stats parity with SimKernel** — ``pending_count`` /
  ``peak_pending_count`` / ``fired_count`` / ``scheduled_count`` follow
  the same accounting rules (increment on schedule, decrement on fire
  and on cancel), so ``PerfReport`` and the benchmarks read either
  kernel uniformly;
* **virtual-time mode** — the caller-driven mode the shard workers run
  in: ``advance(horizon)`` fires strictly-before-horizon events inline
  and ``now`` tracks the virtual clock;
* **teardown** — ``shutdown`` drains the beat wheel, so a stopped
  shard's kernel never fires a periodic callback into a torn-down
  world (regression for the beat-wheel teardown bug).
"""

import threading
import time

import pytest

from repro.errors import SchedulingInPastError, SimulationError
from repro.live import LiveKernel
from repro.sim.kernel import SimKernel


def parity_script(kernel, start):
    """Drive identical scheduling traffic through either kernel and
    return the counter snapshots taken at the same protocol points."""
    fired = []
    keep = kernel.schedule_at(start + 0.01, fired.append, "a")
    doomed = kernel.schedule_at(start + 0.02, fired.append, "b")
    kernel.schedule_fire_at(start + 0.03, fired.append, ("c",))
    after_schedule = (kernel.pending_count, kernel.peak_pending_count,
                      kernel.scheduled_count, kernel.fired_count)
    doomed.cancel()
    after_cancel = (kernel.pending_count, kernel.peak_pending_count)
    return keep, fired, after_schedule, after_cancel


def test_stats_parity_with_sim_kernel():
    sim = SimKernel()
    live = LiveKernel(virtual_time=True)
    _, sim_fired, sim_sched, sim_cancel = parity_script(sim, sim.now)
    _, live_fired, live_sched, live_cancel = parity_script(live, live.now)
    assert live_sched == sim_sched == (3, 3, 3, 0)
    assert live_cancel == sim_cancel == (2, 3)
    sim.run(until=1.0)
    live.advance(1.0)
    assert sim_fired == live_fired == ["a", "c"]
    for kernel in (sim, live):
        assert kernel.pending_count == 0
        assert kernel.peak_pending_count == 3
        assert kernel.fired_count == 2
        assert kernel.scheduled_count == 3


def test_wall_clock_counters_drain():
    kernel = LiveKernel()
    try:
        done = threading.Event()
        kernel.schedule(0.0, done.set)
        assert done.wait(2.0)
        deadline = time.monotonic() + 2.0
        while kernel.pending_count and time.monotonic() < deadline:
            time.sleep(0.001)
        assert kernel.pending_count == 0
        assert kernel.fired_count >= 1
        assert kernel.peak_pending_count >= 1
    finally:
        kernel.shutdown()


# ----------------------------------------------------------------------
# Virtual-time mode
# ----------------------------------------------------------------------


def test_virtual_advance_is_exclusive_and_sets_clock():
    kernel = LiveKernel(virtual_time=True)
    times = []
    kernel.schedule_at(1.0, lambda: times.append(kernel.now))
    kernel.schedule_at(2.0, lambda: times.append(kernel.now))
    assert kernel.next_event_time() == 1.0
    # The horizon is exclusive: the event at exactly 2.0 must hold.
    assert kernel.advance(2.0) == 1
    assert times == [1.0]
    assert kernel.now == 2.0
    assert kernel.next_event_time() == 2.0
    assert kernel.advance(2.5) == 1
    assert times == [1.0, 2.0]
    assert kernel.next_event_time() is None


def test_virtual_advance_runs_nested_schedules_in_window():
    kernel = LiveKernel(virtual_time=True)
    order = []

    def first():
        order.append(("first", kernel.now))
        kernel.schedule(0.5, second)

    def second():
        order.append(("second", kernel.now))

    kernel.schedule_at(1.0, first)
    assert kernel.advance(3.0) == 2
    assert order == [("first", 1.0), ("second", 1.5)]


def test_virtual_mode_rejects_thread_apis_and_rewind():
    kernel = LiveKernel(virtual_time=True)
    with pytest.raises(SimulationError):
        kernel.run(until=1.0)
    with pytest.raises(SimulationError):
        kernel.run_until_quiescent(lambda: True, 0.1, 1.0)
    kernel.advance(5.0)
    with pytest.raises(SchedulingInPastError):
        kernel.advance(4.0)


def test_wall_clock_mode_rejects_advance():
    kernel = LiveKernel()
    try:
        with pytest.raises(SimulationError):
            kernel.advance(1.0)
    finally:
        kernel.shutdown()


# ----------------------------------------------------------------------
# Teardown (regression: beat wheel must not outlive the kernel)
# ----------------------------------------------------------------------


def test_shutdown_drains_live_periodic_timers():
    kernel = LiveKernel()
    ticks = []
    kernel.schedule_periodic(0.005, lambda: ticks.append(1), first_delay=0.0)
    kernel.schedule_periodic(10.0, lambda: ticks.append(2))
    deadline = time.monotonic() + 2.0
    while not ticks and time.monotonic() < deadline:
        time.sleep(0.001)
    assert ticks, "fast timer never ticked"
    kernel.shutdown()
    # Every registered member is stopped and every bucket dropped: the
    # joined scheduler thread plus the drained wheel mean no callback
    # can ever reach a torn-down world.
    assert kernel.beat_wheel.member_count() == 0
    assert kernel.beat_wheel.live_bucket_count == 0
    count = len(ticks)
    time.sleep(0.05)
    assert len(ticks) == count


def test_drained_bucket_event_is_inert():
    # Virtual mode makes the race deterministic: the bucket's kernel
    # event is still in the heap when the wheel drains; firing it must
    # be a no-op instead of a KeyError or a zombie callback.
    kernel = LiveKernel(virtual_time=True)
    ticks = []
    handle = kernel.schedule_periodic(1.0, lambda: ticks.append(kernel.now))
    assert kernel.beat_wheel.drain() == 1
    assert handle.stopped
    kernel.advance(5.0)
    assert ticks == []
