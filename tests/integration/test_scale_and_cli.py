"""Half-paper-scale NAS run and the harness CLI plumbing."""

import pytest

from repro.core.config import NAS_CONFIG
from repro.harness.__main__ import main as harness_main
from repro.net.topology import uniform_topology
from repro.workloads.nas import KERNELS, run_nas_kernel


def test_ep_at_128_workers_collects_everything():
    """Half the paper's worker count, full complete-graph reference
    structure (16 256 edges), paper TTB/TTA."""
    spec = KERNELS["EP"].scaled(128)
    result = run_nas_kernel(
        spec,
        dgc=NAS_CONFIG,
        topology=uniform_topology(64),
        seed=1,
    )
    assert result.collected_cyclic + result.collected_acyclic == 128
    assert result.dead_letters == 0
    # Collection within the paper's ballpark: a small number of beats.
    assert result.dgc_time_s <= 25 * NAS_CONFIG.ttb


def test_cli_fig8(capsys):
    code = harness_main(
        [
            "fig8",
            "--ao-count", "8",
            "--runs", "1",
            "--nodes", "4",
            "--kernels", "EP",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 8" in output
    assert "EP" in output
    assert "%" in output


def test_cli_fig10(capsys):
    code = harness_main(
        [
            "fig10",
            "--slaves", "10",
            "--duration", "30",
            "--nodes", "4",
            "--skip-slow",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "Fig. 10(a)" in output
    assert "Total bandwidth" in output


def test_cli_run_nas_workload(capsys):
    code = harness_main(
        [
            "run",
            "--workload", "nas:ep",
            "--ao-count", "8",
            "--nodes", "4",
            "--ttb", "2",
            "--tta", "6",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "NAS EP — 8 workers" in output
    assert "kernel events fired" in output


def test_cli_run_nas_payload_and_iteration_knobs(capsys):
    code = harness_main(
        [
            "run",
            "--workload", "nas:ft",
            "--ao-count", "6",
            "--iterations", "2",
            "--payload-bytes", "500",
            "--iter-time", "2.0",
            "--nodes", "3",
            "--ttb", "2",
            "--tta", "6",
            "--beat-slots", "auto",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "NAS FT — 6 workers" in output


def test_cli_run_torture_per_event(capsys):
    code = harness_main(
        [
            "run",
            "--workload", "torture",
            "--slaves", "8",
            "--duration", "30",
            "--nodes", "4",
            "--ttb", "2",
            "--tta", "6",
            "--per-event-beats",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "torture — 8 slaves" in output


def test_cli_run_naming_workload(capsys):
    code = harness_main(
        [
            "run",
            "--workload", "naming",
            "--nodes", "6",
            "--clients", "8",
            "--services", "4",
            "--duration", "60",
            "--ttb", "5",
            "--tta", "15",
            "--registry-placement", "replicated",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "naming (replicated) — 8 clients" in output
    assert "registry.bind" in output


def test_cli_run_naming_with_leases(capsys):
    code = harness_main(
        [
            "run",
            "--workload", "naming",
            "--nodes", "6",
            "--clients", "8",
            "--services", "4",
            "--duration", "60",
            "--ttb", "5",
            "--tta", "15",
            "--lease-ttb", "4",
            "--lookup-period", "2",
        ]
    )
    assert code == 0
    output = capsys.readouterr().out
    assert "naming (home + leases) — 8 clients" in output


def test_cli_run_rejects_bad_beat_slots():
    with pytest.raises(SystemExit):
        harness_main(
            ["run", "--workload", "torture", "--beat-slots", "sometimes"]
        )


def test_cli_requires_command():
    with pytest.raises(SystemExit):
        harness_main([])
