"""The sharded multi-process world: outcome equivalence, determinism,
and configuration guards.

Each equivalence test runs the same SPMD workload twice — once
partitioned over worker processes (:class:`repro.shard.ShardedWorld`),
once single-process through the identical builder
(:func:`repro.shard.replay_single_process`) — and asserts the outcome
signatures match: same activities created, same explicit terminations,
the exact same set of collected activity ids.  Scales are kept small;
the full-size comparison lives in ``benchmarks/test_perf_live.py``.
"""

from __future__ import annotations

import pytest

from repro.core.config import DgcConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.topology import Site, Topology
from repro.shard import ShardedWorld, make_plan, replay_single_process


def two_site_topology() -> Topology:
    return Topology(
        [Site("a", 2, intra_rtt_s=0.002), Site("b", 2, intra_rtt_s=0.002)],
        {("a", "b"): 0.1},
    )


def small_dgc() -> DgcConfig:
    return DgcConfig(ttb=1.0, tta=3.0)


TORTURE_PARAMS = dict(slave_count=8, active_duration=6.0, initial_pool=3)


# ----------------------------------------------------------------------
# Outcome equivalence: sharded vs. single-process replay
# ----------------------------------------------------------------------


def test_torture_sharded_matches_replay():
    topo = two_site_topology()
    result = ShardedWorld(
        topo, 2, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3,
    ).run()
    world, _, signature = replay_single_process(
        topo, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3,
    )
    assert result.outcome_signature() == signature
    assert result.created == 2 + TORTURE_PARAMS["slave_count"]
    assert result.live_non_root == 0
    assert result.safety_violations == 0
    assert result.collected_total == world.stats.collected_total
    # Cross-shard traffic actually flowed through the wire frames.
    assert result.frame_count > 0
    assert result.frame_bytes > 0
    assert result.egress_messages > 0
    assert result.injected_entries > 0
    # Every frame's entries were counted; only post-outcome frames may
    # die undelivered, so the packed total bounds the injected total.
    assert result.frame_entries >= result.injected_entries > 0
    # The events split adds up, and coordination work is real but not
    # the whole story.
    assert (
        result.events_workload + result.events_coordination
        == result.events_fired
    )
    assert 0 < result.events_coordination < result.events_fired


def test_wire_version_knob():
    topo = two_site_topology()
    v2 = ShardedWorld(
        topo, 2, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3,
    ).run()
    v1 = ShardedWorld(
        topo, 2, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3, wire_version=1,
    ).run()
    # Same run either way — only the frame encoding differs.
    assert v1.outcome_signature() == v2.outcome_signature()
    assert v1.rounds == v2.rounds
    assert v1.frame_count == v2.frame_count
    assert v1.frame_entries == v2.frame_entries
    assert (v1.wire_version, v2.wire_version) == (1, 2)
    # The v2 diet genuinely shrinks the same entry stream.
    assert v2.frame_bytes < v1.frame_bytes
    with pytest.raises(ConfigurationError, match="wire version"):
        ShardedWorld(
            topo, 2, workload="torture", params=TORTURE_PARAMS,
            dgc=small_dgc(), wire_version=3,
        )


def test_metro_wan_sharded_matches_replay():
    """The per-channel lookahead machinery on the topology it exists
    for: metro pairs bridged by a WAN, one shard per site, so the
    matrix holds two genuinely different channel widths."""
    from repro.net.topology import metro_wan_topology

    topo = metro_wan_topology(
        8, site_count=4, intra_rtt_s=0.002, metro_rtt_s=0.1, wan_rtt_s=0.4
    )
    params = dict(slave_count=8, active_duration=6.0, initial_pool=3)
    result = ShardedWorld(
        topo, 4, workload="torture", params=params, dgc=small_dgc(), seed=3,
    ).run()
    _, _, signature = replay_single_process(
        topo, workload="torture", params=params, dgc=small_dgc(), seed=3,
    )
    assert result.outcome_signature() == signature
    assert result.safety_violations == 0
    assert result.frame_count > 0
    # And two identical runs stay byte-identical under per-shard
    # horizons and selective advance.
    again = ShardedWorld(
        topo, 4, workload="torture", params=params, dgc=small_dgc(), seed=3,
    ).run()
    assert again.frame_digest == result.frame_digest
    assert again.rounds == result.rounds


def test_naming_sharded_matches_replay():
    topo = two_site_topology()
    params = dict(
        client_count=6, service_count=3, duration=8.0,
        lookup_period=1.0, lookup_burst=2,
    )
    result = ShardedWorld(
        topo, 2, workload="naming", params=params, dgc=small_dgc(), seed=5,
    ).run()
    _, env, signature = replay_single_process(
        topo, workload="naming", params=params, dgc=small_dgc(), seed=5,
    )
    assert result.outcome_signature() == signature
    # Per-shard workload results sum to the single-process totals: every
    # client resolved somewhere, exactly once.
    merged = {
        key: sum(shard[key] for shard in result.workload_results)
        for key in ("resolves_issued", "resolves_completed", "hits", "misses")
    }
    replay = env.results()
    for key, value in merged.items():
        assert value == replay[key], key
    assert merged["resolves_issued"] == merged["resolves_completed"]


def test_naming_beat_coherence_sharded_matches_replay():
    """The beat-quantized coherence channel composes with the sharded
    world: a naming run with ``coherence="beat"`` (plus the bind-heavy
    knobs — aliased names, Zipf-skewed draws, churn bursts) over two
    shards matches its single-process replay's outcome signature, and
    the coherence counters merge across workers."""
    from repro.core.config import RegistryConfig

    topo = two_site_topology()
    params = dict(
        client_count=6, service_count=3, name_count=9, zipf_s=1.1,
        churn_burst=2, duration=8.0, lookup_period=1.0, lookup_burst=2,
        churn_period=2.0,
    )
    registry = RegistryConfig(
        placement="replicated", coherence="beat", lease_beat_s=1.0
    )
    result = ShardedWorld(
        topo, 2, workload="naming", params=params, dgc=small_dgc(),
        registry=registry, seed=5,
    ).run()
    world, env, signature = replay_single_process(
        topo, workload="naming", params=params, dgc=small_dgc(),
        registry=registry, seed=5,
    )
    assert result.outcome_signature() == signature
    assert result.safety_violations == 0
    merged = {
        key: sum(shard[key] for shard in result.workload_results)
        for key in ("resolves_issued", "resolves_completed", "hits", "misses")
    }
    replay = env.results()
    for key, value in merged.items():
        assert value == replay[key], key
    # The channel actually carried coherence traffic on the shards, and
    # the summed counters match the single-process run's.
    assert result.registry["coherence_staged"] > 0
    assert result.registry["coherence_messages_sent"] > 0
    assert (
        result.registry["coherence_staged"]
        == world.registry.coherence_staged
    )


def test_nas_sharded_matches_replay():
    topo = two_site_topology()
    params = dict(
        kernel="ft", ao_count=4, iterations=3, iter_time_s=0.5,
        payload_bytes=1000,
    )
    result = ShardedWorld(
        topo, 2, workload="nas", params=params, dgc=small_dgc(), seed=7,
    ).run()
    _, _, signature = replay_single_process(
        topo, workload="nas", params=params, dgc=small_dgc(), seed=7,
    )
    assert result.outcome_signature() == signature
    # The phased protocol completed settle -> run -> drain in order.
    assert len(result.phase_times) == 3
    assert result.phase_times == sorted(result.phase_times)


def test_single_shard_degenerates_to_one_worker():
    topo = two_site_topology()
    result = ShardedWorld(
        topo, 1, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3,
    ).run()
    _, _, signature = replay_single_process(
        topo, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=3,
    )
    assert result.outcome_signature() == signature
    # One shard, no shard boundary: nothing ever crosses the wire.
    assert result.frame_count == 0
    assert result.frame_bytes == 0


# ----------------------------------------------------------------------
# Determinism: identical runs produce byte-identical frame streams
# ----------------------------------------------------------------------


def run_recorded(seed: int) -> "ShardedRunResult":
    return ShardedWorld(
        two_site_topology(), 2, workload="torture", params=TORTURE_PARAMS,
        dgc=small_dgc(), seed=seed, trace=True, record_frames=True,
    ).run()


def test_frame_stream_is_deterministic():
    first = run_recorded(seed=3)
    second = run_recorded(seed=3)
    assert first.frame_digest == second.frame_digest
    assert first.frame_count == second.frame_count
    assert first.frame_bytes == second.frame_bytes
    assert first.rounds == second.rounds
    assert first.outcome_signature() == second.outcome_signature()
    # The recorded logs match frame-for-frame: same route, same bytes.
    assert first.frames == second.frames
    # And the merged trace streams are identical event-for-event.
    assert first.trace == second.trace


def test_different_seed_changes_frames_not_structure():
    first = run_recorded(seed=3)
    other = run_recorded(seed=4)
    assert first.frame_digest != other.frame_digest
    assert first.created == other.created  # same SPMD build plan


def test_merged_trace_is_time_ordered():
    result = run_recorded(seed=3)
    assert result.trace, "trace=True must produce a merged stream"
    times = [event[0] for event in result.trace]
    assert times == sorted(times)
    assert result.frames, "record_frames=True must keep the raw log"
    for src, dest, buf in result.frames:
        assert src != dest
        assert isinstance(buf, bytes) and buf


# ----------------------------------------------------------------------
# Configuration guards
# ----------------------------------------------------------------------


def test_requires_dgc_config():
    with pytest.raises(ConfigurationError, match="DgcConfig"):
        ShardedWorld(two_site_topology(), 2, workload="torture")


def test_rejects_per_event_core():
    with pytest.raises(ConfigurationError, match="batched"):
        ShardedWorld(
            two_site_topology(), 2, workload="torture",
            dgc=DgcConfig(ttb=1.0, tta=3.0, batched_beats=False),
        )


def test_rejects_unknown_workload():
    with pytest.raises(ConfigurationError, match="unknown shard workload"):
        ShardedWorld(
            two_site_topology(), 2, workload="mystery", dgc=small_dgc(),
        )


def test_shard_count_bounds():
    topo = two_site_topology()  # 4 nodes
    with pytest.raises(ConfigurationError):
        make_plan(topo, 0)
    with pytest.raises(ConfigurationError):
        make_plan(topo, 5)


def test_zero_lookahead_rejected():
    # Two shards split a zero-latency site: no safe advance window.
    topo = Topology([Site("fast", 4, intra_rtt_s=0.0)], {})
    with pytest.raises(ConfigurationError, match="lookahead"):
        make_plan(topo, 2)
    # The same nodes on one shard are fine (lookahead unused).
    plan = make_plan(topo, 1)
    assert plan.shard_count == 1


def test_nas_reply_barrier_rejected():
    with pytest.raises(ConfigurationError, match="reply-barrier"):
        replay_single_process(
            two_site_topology(), workload="nas",
            params=dict(kernel="ft", ao_count=4, reply_barrier=True),
            dgc=small_dgc(),
        )
    # In the multi-process arm the worker fails at build; the
    # coordinator surfaces it instead of hanging.
    with pytest.raises(SimulationError, match="reply-barrier"):
        ShardedWorld(
            two_site_topology(), 2, workload="nas",
            params=dict(kernel="ft", ao_count=4, reply_barrier=True),
            dgc=small_dgc(),
        ).run()


def test_plan_partitions_nodes_contiguously():
    topo = Topology(
        [Site("a", 3, intra_rtt_s=0.001), Site("b", 2, intra_rtt_s=0.001)],
        {("a", "b"): 0.2},
    )
    plan = make_plan(topo, 2)
    assert plan.shard_count == 2
    all_nodes = [name for s in range(2) for name in plan.nodes_of(s)]
    assert all_nodes == list(plan.node_names)
    for shard in range(2):
        for name in plan.nodes_of(shard):
            assert plan.shard_of(name) == shard
    # Lookahead is the minimum cross-shard one-way latency.
    assert plan.lookahead == pytest.approx(0.1)
    with pytest.raises(ConfigurationError):
        plan.shard_of("nowhere-0")
