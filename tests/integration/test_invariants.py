"""The invariant monitor: healthy runs stay clean; corrupted state is
caught within one scan period."""

import pytest

from repro.core.invariants import (
    InvariantViolation,
    check_world_invariants,
    install_invariant_monitor,
)
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_compound_cycles, build_ring


def test_healthy_cycle_collection_has_no_violations(make_world, fast_dgc):
    world = make_world()
    monitor = install_invariant_monitor(world, period=0.5)
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 3, 2)
    world.run_for(2.0)
    release_all(driver, ring_a + ring_b)
    assert world.run_until_collected(100 * fast_dgc.tta)
    assert monitor.checks > 10
    monitor.stop()


def test_healthy_busy_workload_has_no_violations(make_world, fast_dgc):
    world = make_world()
    monitor = install_invariant_monitor(world, period=0.5)
    driver = world.create_driver()
    ring = build_ring(world, driver, 4)
    world.run_for(2.0)
    for proxy in ring:
        driver.context.call(proxy, "work", data=3.0)
    world.run_for(20.0)
    assert check_world_invariants(world) == []
    monitor.stop()


def test_corrupted_parent_detected(make_world):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    collector = world.find_activity(a.activity_id).collector
    collector.state.parent = "ao-ghost"
    problems = check_world_invariants(world)
    assert any("ao-ghost" in problem for problem in problems)


def test_corrupted_needs_send_detected(make_world):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(0.2)
    collector = world.find_activity(a.activity_id).collector
    record = collector.state.referenced.get(b.activity_id)
    if record.messages_sent == 0:
        record.needs_send = False
        problems = check_world_invariants(world)
        assert any("needs_send" in problem for problem in problems)


def test_monitor_raises_on_violation(make_world):
    world = make_world()
    install_invariant_monitor(world, period=0.5)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    collector = world.find_activity(a.activity_id).collector
    collector.state.parent = "ao-ghost"
    with pytest.raises(InvariantViolation):
        world.run_for(1.0)


def test_future_timestamp_detected(make_world):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    collector = world.find_activity(a.activity_id).collector
    collector.state.last_message_timestamp = world.kernel.now + 100.0
    problems = check_world_invariants(world)
    assert any("future" in problem for problem in problems)
