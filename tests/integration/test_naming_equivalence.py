"""Naming-service equivalence suites (the PR's acceptance gates).

Two independent claims:

1. **Delivery-mode equivalence, per placement mode** — the naming
   service is ordinary fabric traffic: for each placement (``home`` with
   leases, ``replicated``, ``hashed`` with leases) a fixed-seed naming
   run is bit-identical (full :class:`~repro.world.WorldStats` including
   per-activity collection instants, the complete tracer stream, and the
   bandwidth split) between the batched pulse transport and the
   per-event envelope baseline.

2. **Cache-transparency equivalence** — when leases never lapse mid-run,
   turning the lease cache on changes *where* resolves are served (and
   how many registry bytes cross the wire) but nothing the world can
   observe: ``WorldStats`` and the tracer stream are bit-identical
   between cached and uncached runs.  This holds because resolution is
   DGC-silent by construction on this workload: lookup clients hold no
   collector (external lookers pinned to services by the registry's
   root pin, not by reference edges) and every acquired stub is dropped
   inside the resolving kernel event — see
   :mod:`repro.workloads.naming`.
"""

import pytest

from repro.core.config import DgcConfig, RegistryConfig
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.workloads.naming import run_naming
from tests.equiv import outcome_fingerprint, world_fingerprint

CONFIG = DgcConfig(ttb=2.0, tta=6.0)
NODES = 6
CLIENTS = 9
SERVICES = 5
DURATION = 50.0

PLACEMENTS = {
    "home": RegistryConfig(lease_ttb=3, lease_beat_s=2.0),
    "replicated": RegistryConfig(placement="replicated"),
    "hashed": RegistryConfig(placement="hashed", lease_ttb=3,
                             lease_beat_s=2.0),
}


def run(registry: RegistryConfig, seed: int, batched: bool = True,
        aggregation: str = None):
    reset_id_counter()
    return run_naming(
        dgc=CONFIG,
        registry=registry,
        client_count=CLIENTS,
        service_count=SERVICES,
        duration=DURATION,
        lookup_period=3.0,
        lookup_burst=2,
        churn_period=6.0,
        topology=uniform_topology(NODES),
        seed=seed,
        batched_beats=None if aggregation else batched,
        aggregate_site_pairs=None if aggregation else batched,
        aggregation=aggregation,
        trace=True,
        keep_world=True,
    )


def traffic_fingerprint(result):
    return (
        round(result.registry_bandwidth_mb, 9),
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        result.resolves_issued,
        result.resolves_completed,
        result.hits,
        result.misses,
        round(result.mean_resolve_latency_s, 12),
        result.cache_hits,
        result.replica_hits,
        result.local_misses,
        result.remote_lookups,
        result.dead_letters,
    )


@pytest.mark.parametrize("seed", [1, 7, 23])
@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_placement_modes_bit_identical_batched_vs_per_event(placement, seed):
    registry = PLACEMENTS[placement]
    batched = run(registry, seed, batched=True)
    per_event = run(registry, seed, batched=False)
    assert batched.all_collected and per_event.all_collected
    assert world_fingerprint(batched) == world_fingerprint(per_event)
    assert traffic_fingerprint(batched) == traffic_fingerprint(per_event)
    # The run exercised the mode's resolution machinery.
    if placement == "replicated":
        assert batched.replica_hits > 0
        assert batched.remote_lookups == 0
    else:
        assert batched.cache_hits > 0
        assert batched.remote_lookups > 0
    assert batched.resolves_completed == batched.resolves_issued > 0


@pytest.mark.parametrize("seed", [1, 7])
@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_relaxed_core_matches_per_event_outcomes(placement, seed):
    """Registry traffic rides exact pulses even under the relaxed tier
    (only DGC kinds are deferred), so the whole resolution story — not
    just the reachability verdicts — must match the per-event baseline."""
    registry = PLACEMENTS[placement]
    relaxed = run(registry, seed, aggregation="relaxed")
    per_event = run(registry, seed, aggregation="per-event")
    assert relaxed.all_collected and per_event.all_collected
    assert outcome_fingerprint(relaxed) == outcome_fingerprint(per_event)
    assert relaxed.resolves_issued == per_event.resolves_issued
    assert relaxed.resolves_completed == per_event.resolves_completed
    assert relaxed.hits == per_event.hits
    assert relaxed.misses == per_event.misses
    assert relaxed.binds_applied == per_event.binds_applied
    assert relaxed.unbinds_applied == per_event.unbinds_applied
    assert relaxed.world.network.relaxed_flush_count > 0


@pytest.mark.parametrize("seed", [3, 11, 29])
def test_cached_vs_uncached_bit_identical_when_leases_outlive_run(seed):
    # One lease beat's TTL covers the whole run: nothing lapses mid-run.
    cached = run(
        RegistryConfig(lease_ttb=10**6, lease_beat_s=2.0), seed, batched=True
    )
    uncached = run(RegistryConfig(), seed, batched=True)
    assert cached.all_collected and uncached.all_collected
    assert world_fingerprint(cached) == world_fingerprint(uncached)
    # Same resolves, same outcomes — served from different places...
    assert cached.resolves_issued == uncached.resolves_issued
    assert cached.hits == uncached.hits
    assert cached.misses == uncached.misses
    assert cached.cache_hits > 0
    assert uncached.cache_hits == 0
    # ...which is the whole point: fewer bytes, lower resolve latency.
    assert cached.registry_bandwidth_mb < uncached.registry_bandwidth_mb
    assert (
        cached.mean_resolve_latency_s < uncached.mean_resolve_latency_s
    )


@pytest.mark.parametrize("seed", [1, 7, 23])
@pytest.mark.parametrize("placement", sorted(PLACEMENTS))
def test_eager_vs_beat_coherence_world_identical(placement, seed):
    """The beat-quantized coherence channel changes only the registry's
    wire story.  Because resolution is DGC-silent on this workload and
    bind/unbind acks ride the same path in both modes, the equivalence
    is the *strongest* tier — full ``WorldStats`` (every collection
    instant) plus the raw tracer stream — not just outcomes, across
    every placement mode.  Client-visible hit/miss splits may differ
    inside the documented staleness window (replicated lookups can miss
    while a push is queued), so resolution counters are compared as
    issued/completed totals only."""
    eager = run(PLACEMENTS[placement], seed, batched=True)
    beat = run(
        PLACEMENTS[placement].with_overrides(coherence="beat"), seed,
        batched=True,
    )
    assert eager.all_collected and beat.all_collected
    assert world_fingerprint(beat) == world_fingerprint(eager)
    assert outcome_fingerprint(beat) == outcome_fingerprint(eager)
    assert beat.world.stats.safety_violations == 0
    assert beat.resolves_issued == eager.resolves_issued
    assert beat.resolves_completed == eager.resolves_completed
    assert beat.binds_applied == eager.binds_applied
    assert beat.unbinds_applied == eager.unbinds_applied
    # The channel actually carried the coherence fan-out...
    assert beat.coherence_staged > 0
    assert beat.coherence_messages_sent > 0
    assert eager.coherence_staged == 0
    # ...in strictly fewer messages than the eager fan-out (batching +
    # coalescing): eager sends one invalidate per (name, holder) and,
    # in replicated placement, one replica push per (bind, node).
    eager_messages = eager.invalidations_sent
    if placement == "replicated":
        eager_messages += eager.binds_applied * (NODES - 1)
    assert beat.coherence_messages_sent < eager_messages
    assert beat.registry_bandwidth_mb <= eager.registry_bandwidth_mb


@pytest.mark.parametrize("seed", [5])
def test_replicated_vs_uncached_same_world_outcomes(seed):
    """Replication changes the wire story, not the world's: same
    collection outcomes and dead-letter counts as the static-home run
    (instants may differ — binder acks travel different distances — so
    only the outcome counters are compared)."""
    replicated = run(PLACEMENTS["replicated"], seed, batched=True)
    home = run(RegistryConfig(), seed, batched=True)
    for result in (replicated, home):
        assert result.all_collected
        assert result.dead_letters == 0
        assert result.collected_acyclic == SERVICES
    assert replicated.registry_bandwidth_mb < home.registry_bandwidth_mb
    assert replicated.mean_resolve_latency_s < home.mean_resolve_latency_s
