"""Delayed local GC races and the Grid'5000 topology end to end.

The paper's construction observes stub death through weak references,
which a real JVM reports *eventually*, not instantly.  A non-zero
``gc_delay`` models that lag; safety must hold regardless, and the
Figs. 5/6 loss rules must still fire (just later).

The Grid'5000 test runs a complete cycle-collection scenario on the
paper's actual 3-site topology with its published RTTs.
"""

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import grid5000_topology
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_ring
from repro.world import World


@pytest.mark.parametrize("gc_delay", [0.0, 0.5, 2.0])
def test_cycle_collection_safe_under_gc_delay(make_world, fast_dgc, gc_delay):
    world = make_world(gc_delay=gc_delay)
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(100 * fast_dgc.tta)
    assert world.stats.collected_total == 3
    assert world.stats.safety_violations == 0


def test_edge_loss_detected_despite_gc_delay(make_world, fast_dgc):
    world = make_world(gc_delay=2.0)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(3.0)
    collector = world.find_activity(a.activity_id).collector
    driver.context.call(a, "drop", data=[b.activity_id])
    # Before the delayed sweep the edge is still there...
    world.run_for(1.0)
    assert b.activity_id in collector.state.referenced
    # ...after it the record is gone (possibly pending its last beat).
    world.run_for(4 * fast_dgc.ttb + 3.0)
    assert b.activity_id not in collector.state.referenced


def test_rapid_drop_reacquire_with_gc_delay_is_safe(make_world, fast_dgc):
    """Drop and immediately re-acquire the same target: the delayed
    death of the *old* tag generation must not kill the new edge."""
    world = make_world(gc_delay=1.5)
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b, key="slot")
    world.run_for(3.0)
    # Replace under the same key: old stub released, new stub acquired.
    link(driver, a, b, key="slot")
    world.run_for(3.0)
    collector = world.find_activity(a.activity_id).collector
    record = collector.state.referenced.get(b.activity_id)
    assert record is not None
    assert not record.tag_dead
    # b survives as long as a holds it.
    world.run_for(20 * fast_dgc.tta)
    assert world.find_activity(b.activity_id) is not None
    assert world.stats.safety_violations == 0


def test_full_collection_on_grid5000_topology():
    topology = grid5000_topology(scale=0.08)  # 4+3+3 nodes, real RTTs
    world = World(
        topology,
        dgc=DgcConfig(ttb=2.0, tta=6.0),
        seed=11,
        safety_checks=True,
    )
    driver = world.create_driver()
    ring = build_ring(world, driver, 9)  # spread over all three sites
    world.run_for(4.0)
    sites = {
        world.find_activity(proxy.activity_id).node.name.split("-")[0]
        for proxy in ring
    }
    assert sites == {"bordeaux", "sophia", "rennes"}
    release_all(driver, ring)
    assert world.run_until_collected(600.0)
    assert world.stats.collected_total == 9
    assert world.stats.safety_violations == 0
    # Cross-site latency actually mattered (messages crossed sites).
    assert world.accountant.dgc_bytes > 0
