"""Integration tests: cyclic garbage (Sec. 3.2 consensus path)."""

import pytest

from repro.core import events
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import (
    build_complete_graph,
    build_compound_cycles,
    build_ring,
)


@pytest.mark.parametrize("size", [1, 2, 3, 7])
def test_ring_collected(make_world, fast_dgc, size):
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, size)
    world.run_for(2.0)
    release_all(driver, ring)
    assert world.run_until_collected(60 * fast_dgc.tta)
    # The consensus detects the cycle; in long rings the tail members may
    # fall out *acyclically* once their doomed referencer stops beating
    # (Sec. 4.3: a doomed activity "stops sending DGC messages as it does
    # not need anymore to keep its referenced active objects alive").
    assert world.stats.collected_total == size
    assert world.stats.collected_cyclic >= min(size, 2)
    assert world.stats.safety_violations == 0


def test_live_ring_survives(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    # Driver keeps one stub: the whole cycle stays reachable from a root.
    release_all(driver, ring[1:])
    world.run_for(40 * fast_dgc.tta)
    assert len(world.live_non_roots()) == 3
    assert world.stats.collected_total == 0


def test_ring_collected_after_root_releases_late(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    world.run_for(2.0)
    release_all(driver, ring[1:])
    world.run_for(10 * fast_dgc.tta)
    assert len(world.live_non_roots()) == 3
    release_all(driver, ring[:1])
    assert world.run_until_collected(60 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 3


def test_cycle_with_acyclic_tail(make_world, fast_dgc):
    """A chain hanging off a cycle: cycle collects by consensus, the tail
    then loses its referencer and collects acyclically."""
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    tail = driver.context.create(Peer(), name="tail")
    link(driver, ring[0], tail, key="tail")
    world.run_for(2.0)
    release_all(driver, ring + [tail])
    assert world.run_until_collected(80 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 3
    assert world.stats.collected_acyclic == 1


def test_compound_cycles_collected_together(make_world, fast_dgc):
    """Fig. 7's garbage compound cycle: sub-cycles must not require
    separate consensus rounds thanks to the propagation optimisation."""
    world = make_world()
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 3, 3)
    world.run_for(2.0)
    release_all(driver, ring_a + ring_b)
    assert world.run_until_collected(80 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 6
    assert world.stats.safety_violations == 0


def test_complete_graph_collected(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    peers = build_complete_graph(world, driver, 6)
    world.run_for(2.0)
    release_all(driver, peers)
    assert world.run_until_collected(80 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 6


def test_consensus_owner_is_in_cycle(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, 3)
    ring_ids = {proxy.activity_id for proxy in ring}
    world.run_for(2.0)
    release_all(driver, ring)
    world.run_until_collected(60 * fast_dgc.tta)
    consensus = world.tracer.first(events.DGC_CONSENSUS)
    assert consensus is not None
    assert consensus.subject in ring_ids
    # The detecting owner owns the final activity clock.
    assert consensus.details["clock"].startswith(consensus.subject)


def test_cycle_busy_member_blocks_collection(make_world, fast_dgc):
    class Worker(Peer):
        def do_spin(self, ctx, request, proxies):
            while ctx.now < 60.0:
                yield ctx.sleep(1.0)

    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Worker(), name="a")
    b = driver.context.create(Worker(), name="b")
    link(driver, a, b)
    link(driver, b, a)
    world.run_for(2.0)
    driver.context.call(a, "spin")
    release_all(driver, [a, b])
    world.run_for(30.0)
    assert len(world.live_non_roots()) == 2
    # After the worker quiesces, the cycle is garbage and collapses.
    assert world.run_until_collected(100.0 + 60 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 2
    assert world.stats.safety_violations == 0


def test_two_disjoint_rings_collect_independently(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring_a = build_ring(world, driver, 3, name_prefix="ra")
    ring_b = build_ring(world, driver, 4, name_prefix="rb")
    world.run_for(2.0)
    release_all(driver, ring_a)
    assert world.kernel.run_until_quiescent(
        lambda: world.stats.collected_cyclic == 3, 1.0, 60 * fast_dgc.tta
    )
    assert len(world.live_non_roots()) == 4
    release_all(driver, ring_b)
    assert world.run_until_collected(60 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 7


def test_doomed_propagation_traced(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring = build_ring(world, driver, 4)
    world.run_for(2.0)
    release_all(driver, ring)
    world.run_until_collected(60 * fast_dgc.tta)
    doomed = world.tracer.events(kind=events.DGC_DOOMED)
    assert len(doomed) == 4
    origins = [event for event in doomed if not event.details["propagated"]]
    propagated = [event for event in doomed if event.details["propagated"]]
    assert len(origins) >= 1
    assert len(propagated) >= 1
