"""The live (wall-clock) kernel: the identical protocol stack collects
real garbage in real time.

Timings are kept small (TTB of tens of milliseconds) so the whole module
runs in a few seconds; assertions use generous timeouts because wall
clocks jitter.
"""

import pytest

from repro.core.config import DgcConfig
from repro.live import LiveKernel
from repro.net.topology import uniform_topology
from repro.workloads.app import Peer, link, release_all
from repro.world import World

LIVE = DgcConfig(ttb=0.05, tta=0.25)


@pytest.fixture
def live_world():
    kernel = LiveKernel()
    world = World(
        uniform_topology(2),
        dgc=LIVE,
        kernel=kernel,
        seed=1,
        safety_checks=True,
    )
    yield world
    kernel.shutdown()


def test_live_acyclic_collection(live_world):
    world = live_world
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(0.2)
    driver.context.drop(a)
    assert world.run_until_collected(10.0, check_interval=0.05)
    assert world.stats.collected_acyclic == 1
    assert world.stats.safety_violations == 0


def test_live_cycle_collection(live_world):
    world = live_world
    driver = world.create_driver()
    ring = [driver.context.create(Peer(), name=f"r{i}") for i in range(3)]
    for index, source in enumerate(ring):
        link(driver, source, ring[(index + 1) % 3], key="next")
    world.run_for(0.3)
    release_all(driver, ring)
    assert world.run_until_collected(20.0, check_interval=0.05)
    assert world.stats.collected_total == 3
    assert world.stats.collected_cyclic >= 2
    assert world.stats.safety_violations == 0


def test_live_referenced_activity_survives(live_world):
    world = live_world
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(0.3)
    driver.context.drop(b)
    world.run_for(2.0)  # many TTA periods of real time
    assert world.find_activity(a.activity_id) is not None
    assert world.find_activity(b.activity_id) is not None
    assert world.stats.safety_violations == 0


def test_live_requests_and_replies():
    kernel = LiveKernel()
    try:
        world = World(
            uniform_topology(2), dgc=LIVE, kernel=kernel, seed=2
        )
        driver = world.create_driver()

        from repro.runtime.behaviors import Behavior

        class Doubler(Behavior):
            def do_double(self, ctx, request, proxies):
                yield ctx.sleep(0.05)
                return request.data * 2

        target = driver.context.create(Doubler(), name="doubler")
        future = driver.context.call(
            target, "double", data=21, expect_reply=True
        )
        assert kernel.run_until_quiescent(
            lambda: future.resolved, 0.02, 5.0
        )
        assert future.value == 42
    finally:
        kernel.shutdown()


def test_live_kernel_interface():
    kernel = LiveKernel()
    try:
        fired = []
        kernel.schedule(0.02, fired.append, "x")
        assert kernel.run_until_quiescent(lambda: bool(fired), 0.01, 2.0)
        assert fired == ["x"]
        assert kernel.fired_count >= 1
        assert kernel.scheduled_count >= 1
        event = kernel.schedule(0.2, fired.append, "never")
        event.cancel()
        kernel.run(until=kernel.now + 0.3)
        assert "never" not in fired
    finally:
        kernel.shutdown()


def test_live_kernel_fire_at_is_event_less():
    """``schedule_fire_at`` honours its event-less contract: no
    cancellable Event is allocated, the callback simply fires."""
    kernel = LiveKernel()
    try:
        fired = []
        handle = kernel.schedule_fire_at(kernel.now + 0.02, fired.append, ("x",))
        assert handle is None
        assert kernel.run_until_quiescent(lambda: bool(fired), 0.01, 2.0)
        assert fired == ["x"]
    finally:
        kernel.shutdown()


def test_live_kernel_request_stop_wakes_run():
    """The event-driven quiescence path: ``request_stop`` (fired from
    the scheduler thread) wakes a blocked ``run`` through the condition
    variable, long before the timeout."""
    import time as _time

    kernel = LiveKernel()
    try:
        kernel.schedule(0.05, kernel.request_stop)
        start = _time.monotonic()
        kernel.run(until=kernel.now + 30.0)
        assert _time.monotonic() - start < 5.0
    finally:
        kernel.shutdown()


def test_live_kernel_schedule_periodic_beats():
    """The live kernel implements the beat-wheel protocol on its
    scheduler thread."""
    kernel = LiveKernel()
    try:
        fired = []
        handles = [
            kernel.schedule_periodic(
                0.03, (lambda i: lambda: fired.append(i))(index),
                first_delay=0.03,
            )
            for index in range(3)
        ]
        assert kernel.run_until_quiescent(lambda: len(fired) >= 9, 0.01, 5.0)
        for handle in handles:
            handle.stop()
        settled = len(fired)
        kernel.run(until=kernel.now + 0.15)
        assert len(fired) <= settled + 3  # at most one in-flight bucket
        # Registration order is preserved within each beat.
        assert fired[:3] == [0, 1, 2]
    finally:
        kernel.shutdown()


def test_live_world_run_until_collected_is_event_driven(live_world):
    """``World.run_until_collected`` returns promptly on the live
    kernel (no polling fallback): the termination hook stops the run
    through the kernel's condition variable."""
    import time as _time

    world = live_world
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(0.2)
    driver.context.drop(a)
    start = _time.monotonic()
    # Generous timeout: a polling-free return must not need it.
    assert world.run_until_collected(60.0)
    assert _time.monotonic() - start < 30.0
    assert world.stats.collected_acyclic == 1


def test_live_kernel_rejects_negative_delay():
    from repro.errors import SchedulingInPastError

    kernel = LiveKernel()
    try:
        with pytest.raises(SchedulingInPastError):
            kernel.schedule(-1.0, lambda: None)
    finally:
        kernel.shutdown()


def test_live_kernel_shutdown_rejects_new_work():
    from repro.errors import SimulationError

    kernel = LiveKernel()
    kernel.shutdown()
    with pytest.raises(SimulationError):
        kernel.schedule(0.01, lambda: None)
