"""The unified fabric is a pure delivery-mechanism change: pulse-batched
typed delivery and per-event envelope delivery must produce bit-identical
simulations on **app-traffic-dominated** workloads, not just DGC beats.

Property checked across seeds and NAS kernels on fixed-seed runs: the
full :class:`~repro.world.WorldStats` (including the per-activity
collection instants) and the complete tracer event stream agree between
the two delivery modes.  This mirrors
``tests/integration/test_beat_equivalence.py`` (which drives the torture
workload) on the request/reply-heavy NAS patterns — CG's neighbour
exchanges + reductions, EP's final reduction, FT's all-to-all transpose.
"""

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.workloads.nas import kernel_spec, run_nas_kernel
from tests.equiv import (
    outcome_fingerprint,
    stats_fingerprint,
    tracer_fingerprint,
)

CONFIG = DgcConfig(ttb=2.0, tta=5.0)
WORKERS = 10
NODES = 4

#: Short kernels whose traffic is dominated by app requests/replies.
SPECS = {
    "CG": dict(iterations=8, iter_time_s=3.0, payload_bytes=5_000),
    "EP": dict(iterations=1, iter_time_s=2.0),
    "FT": dict(iterations=5, iter_time_s=3.0, payload_bytes=1_200),
}


def run(kernel: str, seed: int, batched: bool = True,
        aggregated: bool = False, reply_barrier: bool = False,
        aggregation: str = None):
    reset_id_counter()
    return run_nas_kernel(
        kernel_spec(kernel, ao_count=WORKERS, reply_barrier=reply_barrier,
                    **SPECS[kernel]),
        dgc=CONFIG,
        topology=uniform_topology(NODES),
        seed=seed,
        collect_timeout=4_000.0,
        batched_beats=None if aggregation else batched,
        aggregate_site_pairs=None if aggregation else aggregated,
        aggregation=aggregation,
        trace=True,
        keep_world=True,
    )


def nas_outcome(result):
    """The NAS-specific observables stacked onto the stats/tracer pair."""
    return (
        result.app_time_s,
        result.dgc_time_s,
        round(result.bandwidth_mb, 9),
        round(result.app_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        result.dead_letters,
    )


def world_fingerprint(result):
    """Everything observable about one run: the stats block (with every
    per-activity collection instant), the raw tracer stream and the
    NAS run summary."""
    return (
        stats_fingerprint(result),
        tracer_fingerprint(result),
        nas_outcome(result),
    )


@pytest.mark.parametrize("seed", [0, 5, 17])
@pytest.mark.parametrize("kernel", sorted(SPECS))
def test_all_three_cores_are_bit_identical_on_app_traffic(kernel, seed):
    aggregated = run(kernel, seed, batched=True, aggregated=True)
    batched = run(kernel, seed, batched=True)
    per_event = run(kernel, seed, batched=False)
    a_stats, a_events, a_outcome = world_fingerprint(aggregated)
    b_stats, b_events, b_outcome = world_fingerprint(batched)
    p_stats, p_events, p_outcome = world_fingerprint(per_event)
    assert b_outcome == p_outcome
    assert b_stats == p_stats
    assert len(b_events) == len(p_events)
    assert b_events == p_events
    assert a_outcome == b_outcome
    assert a_stats == b_stats
    assert a_events == b_events
    # NAS workers hold complete graphs: site-pair runs must merge.
    assert aggregated.world.network.aggregated_message_count > 0


@pytest.mark.parametrize("seed", [0, 5])
@pytest.mark.parametrize("kernel", sorted(SPECS))
def test_relaxed_core_matches_per_event_outcomes(kernel, seed):
    """On app-dominated NAS traffic the relaxed tier defers only the
    DGC sideband, so beyond the reachability verdicts even the app
    phase is untouched: same completion time, same app bandwidth."""
    relaxed = run(kernel, seed, aggregation="relaxed")
    per_event = run(kernel, seed, aggregation="per-event")
    assert outcome_fingerprint(relaxed) == outcome_fingerprint(per_event)
    assert relaxed.app_time_s == per_event.app_time_s
    assert relaxed.app_bandwidth_mb == per_event.app_bandwidth_mb
    assert relaxed.dead_letters == per_event.dead_letters == 0
    assert relaxed.world.network.relaxed_flush_count > 0


@pytest.mark.parametrize("seed", [2, 11])
def test_reply_barrier_is_bit_identical_across_cores(seed):
    """The synchronous NAS variant (driver-mediated iteration barriers,
    one reply future per worker per iteration) exercises the
    future/reply path; its outcomes must be identical under aggregated,
    per-entry batched and per-event delivery."""
    aggregated = run("FT", seed, batched=True, aggregated=True,
                     reply_barrier=True)
    batched = run("FT", seed, batched=True, reply_barrier=True)
    per_event = run("FT", seed, batched=False, reply_barrier=True)
    assert world_fingerprint(aggregated) == world_fingerprint(batched)
    assert world_fingerprint(batched) == world_fingerprint(per_event)
    # The barrier actually rode the reply path: one reply per worker
    # per iteration was delivered on top of the async variant's.
    plain = run("FT", seed, batched=True, aggregated=True)
    assert (
        aggregated.app_bandwidth_mb > plain.app_bandwidth_mb
    ), "reply traffic missing"
    assert aggregated.collected_acyclic + aggregated.collected_cyclic == WORKERS


@pytest.mark.parametrize("kernel", sorted(SPECS))
def test_batched_runs_do_less_heap_traffic(kernel):
    """The structural claim: typed pulses cost O(distinct delivery
    instants) kernel events, per-event delivery O(messages)."""
    batched = run(kernel, seed=3, batched=True)
    per_event = run(kernel, seed=3, batched=False)
    assert batched.events_fired < per_event.events_fired


def test_auto_beat_slots_collects_and_stays_equivalent():
    """``beat_slots="auto"`` resolves the same adaptive grid under both
    delivery modes, so equivalence holds exactly as for a pinned int."""
    reset_id_counter()
    kwargs = dict(
        dgc=CONFIG,
        topology=uniform_topology(NODES),
        seed=9,
        collect_timeout=4_000.0,
        beat_slots="auto",
        trace=True,
        keep_world=True,
    )
    spec = kernel_spec("FT", ao_count=WORKERS, **SPECS["FT"])
    batched = run_nas_kernel(spec, batched_beats=True, **kwargs)
    reset_id_counter()
    per_event = run_nas_kernel(spec, batched_beats=False, **kwargs)
    assert batched.collected_cyclic + batched.collected_acyclic == WORKERS
    assert world_fingerprint(batched) == world_fingerprint(per_event)
