"""Fig. 4: reference orientation.

"Activity clocks are not propagated in DGC responses, otherwise C2 would
prevent C1 from being garbage collected until C2 is garbage too."  An
idle cycle C1 referencing a busy cycle C2 must be collected; the busy
cycle's clock churn must never leak *backwards* into C1.
"""

import pytest

from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_ring, build_two_oriented_cycles


class Churner(Peer):
    """A cycle member that keeps working (and hence incrementing clocks)."""

    def do_spin(self, ctx, request, proxies):
        while ctx.now < 1_000.0:
            yield ctx.sleep(2.0)


def test_idle_cycle_referencing_busy_cycle_is_collected(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    c1, c2 = build_two_oriented_cycles(world, driver, 3)
    c2_ids = {proxy.activity_id for proxy in c2}
    world.run_for(2.0)
    # Make one member of C2 churn forever.
    spinner = world.find_activity(c2[0].activity_id)
    driver.context.call(c2[0], "work", data=5.0)
    release_all(driver, c1 + c2)
    # C1 (idle, references busy C2) must be collected...
    assert world.kernel.run_until_quiescent(
        lambda: all(
            world.find_activity(proxy.activity_id) is None for proxy in c1
        ),
        1.0,
        60 * fast_dgc.tta,
    )
    # ...while C2 still contains its (recently) busy member and survives
    # as long as it is busy; here it quiesced, so eventually it collapses
    # too — but strictly after C1.
    assert world.stats.safety_violations == 0


def test_busy_referenced_does_not_block_idle_referencer_chain(
    make_world, fast_dgc
):
    """Simplest orientation case: idle a -> busy b; a (unreferenced) must
    be collected even though b never goes idle."""
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Churner(), name="b")
    link(driver, a, b)
    world.run_for(2.0)
    driver.context.call(b, "spin")
    release_all(driver, [a, b])
    assert world.kernel.run_until_quiescent(
        lambda: world.find_activity(a.activity_id) is None,
        1.0,
        60 * fast_dgc.tta,
    )
    # b is busy: still alive.
    assert world.find_activity(b.activity_id) is not None
    assert world.stats.safety_violations == 0


def test_busy_cycle_keeps_its_referenced_idle_cycle_alive(
    make_world, fast_dgc
):
    """The other orientation: busy C1 references idle C2; C2 must NOT be
    collected (C1 could activate it at any time)."""
    world = make_world()
    driver = world.create_driver()
    c1 = build_ring(world, driver, 2, name_prefix="c1")
    c2 = build_ring(world, driver, 2, name_prefix="c2")
    link(driver, c1[0], c2[0], key="down")
    world.run_for(2.0)
    # C1 member churns; C1 -> C2 edge exists.
    class_behavior = world.find_activity(c1[0].activity_id).behavior
    driver.context.call(c1[0], "work", data=30.0)
    release_all(driver, c1 + c2)
    world.run_for(25.0)
    # While C1 is busy, C2 must be fully alive.
    assert all(
        world.find_activity(proxy.activity_id) is not None for proxy in c2
    )
    assert world.stats.safety_violations == 0
