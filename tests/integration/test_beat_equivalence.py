"""Beat batching is a pure scheduling change: wheel-batched and
per-event scheduling must produce bit-identical simulations.

Property checked across seeds and slot counts on fixed-seed torture
runs: the full :class:`~repro.world.WorldStats` (including the
per-activity collection instants) and the complete tracer event stream
agree between the two schedulers.  The wheel changes *heap traffic*
(one kernel event per bucket per tick, one per delivery instant), never
*behaviour* (event times, callback order, message contents).
"""

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.runtime.ids import reset_id_counter
from repro.workloads.torture import run_torture
from tests.equiv import (
    outcome_fingerprint,
    stats_fingerprint,
    tracer_fingerprint,
)

SLAVES = 24
NODES = 6
ACTIVE = 40.0
CONFIG = DgcConfig(ttb=2.0, tta=5.0)


def run(seed: int, slots: int, batched: bool = True, aggregated: bool = False,
        aggregation: str = None):
    reset_id_counter()
    return run_torture(
        dgc=CONFIG,
        slave_count=SLAVES,
        active_duration=ACTIVE,
        topology=uniform_topology(NODES),
        seed=seed,
        sample_period=10.0,
        collect_timeout=4_000.0,
        beat_slots=slots,
        batched_beats=None if aggregation else batched,
        aggregate_site_pairs=None if aggregation else aggregated,
        aggregation=aggregation,
        trace=True,
        keep_world=True,
    )


def world_fingerprint(result):
    """Everything observable about one run: the stats block (with every
    per-activity collection instant), the raw tracer stream and the
    sampled Fig. 10 series."""
    return (
        stats_fingerprint(result),
        tracer_fingerprint(result),
        tuple(result.series),
    )


@pytest.mark.parametrize("seed", [0, 1, 7, 23])
@pytest.mark.parametrize("slots", [0, 4])
def test_all_three_cores_are_bit_identical(seed, slots):
    """Aggregated columnar, per-entry batched and per-event delivery
    are pure mechanics changes: same stats, same series, same tracer
    stream, event for event."""
    aggregated = run(seed, slots, batched=True, aggregated=True)
    batched = run(seed, slots, batched=True)
    per_event = run(seed, slots, batched=False)
    assert aggregated.all_collected
    assert batched.all_collected and per_event.all_collected
    a_stats, a_events, a_series = world_fingerprint(aggregated)
    b_stats, b_events, b_series = world_fingerprint(batched)
    p_stats, p_events, p_series = world_fingerprint(per_event)
    assert b_stats == p_stats
    assert b_series == p_series
    assert len(b_events) == len(p_events)
    assert b_events == p_events
    assert a_stats == b_stats
    assert a_series == b_series
    assert a_events == b_events
    # The aggregated core actually merged site-pair runs on this graph.
    assert aggregated.world.network.aggregated_message_count > 0


@pytest.mark.parametrize("seed", [0, 1, 7, 23])
def test_relaxed_core_matches_per_event_outcomes(seed):
    """The relaxed coalescing tier defers DGC deliveries (never by more
    than one flush period, never reordering a stream, never earlier),
    so instants shift — but every reachability verdict must agree with
    the per-event baseline: same activities created, the same set
    collected, zero dead letters, zero safety violations."""
    relaxed = run(seed, slots=4, aggregation="relaxed")
    per_event = run(seed, slots=4, aggregation="per-event")
    assert relaxed.all_collected and per_event.all_collected
    assert outcome_fingerprint(relaxed) == outcome_fingerprint(per_event)
    network = relaxed.world.network
    # The tier actually coalesced across instants on this graph.
    assert network.relaxed_flush_count > 0
    assert network.aggregated_message_count > 0


def test_relaxed_core_defers_but_stays_bounded():
    """Deferral inflates DGC traffic only by the extra detection
    latency (the collapse phase stretches by up to ~2 flush periods per
    protocol round-trip while heartbeats keep flowing) — not by an
    unbounded amount."""
    relaxed = run(3, slots=4, aggregation="relaxed")
    exact = run(3, slots=4, aggregation="exact")
    assert relaxed.all_collected and exact.all_collected
    assert relaxed.dgc_bandwidth_mb < exact.dgc_bandwidth_mb * 1.5


def test_quantized_phases_change_schedule_but_not_liveness():
    """Sanity companion: slot quantization (same scheduler) is allowed
    to shift collection instants, but never breaks collection."""
    continuous = run(3, 0, batched=True)
    quantized = run(3, 8, batched=True)
    assert continuous.all_collected and quantized.all_collected
    assert continuous.world.stats.safety_violations == 0
    assert quantized.world.stats.safety_violations == 0
