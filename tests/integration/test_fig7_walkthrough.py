"""Fig. 7 walkthrough: the two cycle-detection examples.

(1) A garbage *compound* cycle (two joined rings) collects entirely.
(2) The same compound with one live (busy) member is not collected at
    all; once the live member quiesces, everything collapses.
"""

from repro.core import events
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_compound_cycles


class Spinner(Peer):
    def do_spin_until(self, ctx, request, proxies):
        while ctx.now < request.data:
            yield ctx.sleep(1.0)


def test_garbage_compound_cycle_collected(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 3, 2)
    world.run_for(2.0)
    release_all(driver, ring_a + ring_b)
    assert world.run_until_collected(80 * fast_dgc.tta)
    assert world.stats.collected_total == 5
    assert world.stats.safety_violations == 0
    # Exactly one consensus originator; the rest learnt by propagation or
    # fell out acyclically after their doomed referencers went silent.
    consensus_events = world.tracer.events(kind=events.DGC_CONSENSUS)
    assert len(consensus_events) >= 1


def test_single_live_object_blocks_compound_cycle(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(
        world, driver, 3, 2, name_prefix="live"
    )
    # Replace one member's behaviour by recreating the structure with a
    # spinner inside ring A.
    spinner = driver.context.create(Spinner(), name="spinny")
    link(driver, ring_a[1], spinner, key="spin-ref")
    link(driver, spinner, ring_a[2], key="back-in")
    world.run_for(2.0)
    quiesce_at = world.kernel.now + 40.0
    driver.context.call(spinner, "spin_until", data=quiesce_at)
    release_all(driver, ring_a + ring_b + [spinner])
    world.run_for(30.0)
    # While the spinner is busy, nothing in its forward closure dies:
    # spinner -> ring_a[2] -> ... -> whole compound stays alive.
    assert len(world.live_non_roots()) == 6
    assert world.stats.collected_total == 0
    # After it quiesces, the whole structure is garbage and collapses.
    assert world.run_until_collected(100.0 + 80 * fast_dgc.tta)
    assert world.stats.collected_total == 6
    assert world.stats.safety_violations == 0


def test_consensus_steps_visible_in_trace(make_world, fast_dgc):
    """The three unsynchronised steps of Sec. 4.3 leave trace marks:
    clock increments (step 1 inputs), a consensus (after steps 1-3), then
    doomed propagation (step 4)."""
    world = make_world()
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 2, 2)
    world.run_for(2.0)
    release_all(driver, ring_a + ring_b)
    world.run_until_collected(80 * fast_dgc.tta)
    consensus = world.tracer.first(events.DGC_CONSENSUS)
    doomed = world.tracer.events(kind=events.DGC_DOOMED)
    increments = world.tracer.events(kind=events.DGC_CLOCK_INCREMENT)
    assert increments and consensus and doomed
    assert min(event.time for event in increments) < consensus.time
    assert consensus.time <= min(event.time for event in doomed)
