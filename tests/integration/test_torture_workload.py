"""Torture-test workload: small-scale end-to-end checks (Fig. 10)."""

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.workloads.torture import run_torture

FAST = DgcConfig(ttb=2.0, tta=10.0)


@pytest.fixture(scope="module")
def torture_result():
    return run_torture(
        dgc=FAST,
        slave_count=24,
        active_duration=60.0,
        topology=uniform_topology(8),
        seed=2,
        sample_period=5.0,
        safety_checks=True,
    )


def test_everything_collected(torture_result):
    assert torture_result.all_collected
    assert (
        torture_result.collected_cyclic + torture_result.collected_acyclic
        == torture_result.ao_count
    )


def test_no_dead_letters(torture_result):
    assert torture_result.dead_letters == 0


def test_nothing_collected_during_active_phase(torture_result):
    for time, __, collected in torture_result.series:
        if time < torture_result.active_duration_s:
            assert collected == 0


def test_idle_wave_then_collapse(torture_result):
    # During the active phase most activities are busy.
    mid_phase = [
        idle
        for time, idle, __ in torture_result.series
        if 10.0 <= time <= torture_result.active_duration_s * 0.8
    ]
    assert mid_phase and min(mid_phase) < torture_result.ao_count / 2
    # Eventually the collected count reaches the total.
    final_time, final_idle, final_collected = torture_result.series[-1]
    assert final_collected == torture_result.ao_count
    assert final_idle == 0


def test_dgc_traffic_dominates_app_traffic(torture_result):
    """Sec. 5.3: 'the only data exchanged ... consists in the remote
    references, so the communication overhead of the DGC is
    predominant'."""
    assert (
        torture_result.dgc_bandwidth_mb > torture_result.app_bandwidth_mb
    )


def test_no_dgc_run_keeps_survivors():
    result = run_torture(
        dgc=None,
        slave_count=12,
        active_duration=40.0,
        topology=uniform_topology(4),
        seed=3,
        sample_period=5.0,
    )
    assert not result.all_collected
    assert result.last_collected_s is None
    assert result.dgc_bandwidth_mb == 0.0


def test_larger_ttb_collects_later():
    fast = run_torture(
        dgc=DgcConfig(ttb=2.0, tta=10.0),
        slave_count=12,
        active_duration=40.0,
        topology=uniform_topology(4),
        seed=4,
    )
    slow = run_torture(
        dgc=DgcConfig(ttb=8.0, tta=40.0),
        slave_count=12,
        active_duration=40.0,
        topology=uniform_topology(4),
        seed=4,
    )
    assert fast.all_collected and slow.all_collected
    assert slow.last_collected_s > fast.last_collected_s
