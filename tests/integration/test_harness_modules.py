"""Integration tests for the harness extras (complexity, ablation,
baseline comparison) — small parameters so they run fast."""

import pytest

from repro.baselines.comparison import run_all_probes, run_probe
from repro.harness.ablation import (
    compare_bfs_election,
    compare_consensus_propagation,
    sweep_ttb_tta,
)
from repro.harness.complexity import (
    collection_overhead,
    detection_bound_factor,
    measure_ring,
    sweep_ring_heights,
)


def test_measure_ring_basic():
    point = measure_ring(4)
    assert point.height == 3
    assert point.detection_s > 0
    assert point.collection_s >= point.detection_s
    assert point.detection_beats > 0


def test_detection_grows_with_height():
    points = sweep_ring_heights(sizes=(2, 8))
    assert points[1].detection_s > points[0].detection_s


def test_detection_within_constant_factor_of_bound():
    """Sec. 4.3: detection is O(h * TTB) — allow a small constant."""
    for point in sweep_ring_heights(sizes=(4, 8)):
        assert detection_bound_factor(point) < 8.0


def test_collection_adds_roughly_tta():
    point = measure_ring(4)
    overhead = collection_overhead(point)
    assert overhead >= point.tta * 0.8
    assert overhead <= point.tta * 3 + 6 * point.ttb


def test_ttb_sweep_tradeoff():
    points = sweep_ttb_tta(ttb_values=(0.5, 2.0), ring_size=4)
    fast, slow = points
    # Larger TTB: slower reclamation...
    assert slow.reclamation_s > fast.reclamation_s
    # ...but (for the same simulated horizon per object) cheaper beats:
    # bandwidth here is per-run; the ring with the slow beat sends fewer
    # messages per second, so its total until collection stays in the
    # same ballpark — assert the latency side strictly and cost loosely.
    assert slow.dgc_bandwidth_mb < fast.dgc_bandwidth_mb * 10


def test_consensus_propagation_ablation():
    comparison = compare_consensus_propagation(cycle_size=3)
    assert comparison.enabled_s < comparison.disabled_s
    assert (
        comparison.disabled_consensus_rounds
        > comparison.enabled_consensus_rounds
    )
    assert comparison.speedup > 1.0


def test_bfs_election_not_slower():
    with_bfs, without_bfs = compare_bfs_election(ring_size=8)
    # On chord-rich graphs BFS election should not hurt detection.
    assert with_bfs <= without_bfs * 1.5


def test_probe_paper_collects_everything():
    outcome = run_probe("paper")
    assert outcome.chain_collected
    assert outcome.ring_collected


def test_probe_rmi_incomplete():
    outcome = run_probe("rmi")
    assert outcome.chain_collected
    assert not outcome.ring_collected


def test_all_probes_chain_collected():
    outcomes = run_all_probes()
    assert {o.name for o in outcomes} == {
        "paper", "rmi", "veiga", "lefessant"
    }
    for outcome in outcomes:
        assert outcome.chain_collected, outcome.name
    cyclic = {o.name: o.ring_collected for o in outcomes}
    assert cyclic["paper"] and cyclic["veiga"] and cyclic["lefessant"]
    assert not cyclic["rmi"]
