"""Roots (Sec. 4.1): registered activities and dummy referencers are
never collected; unbinding releases them to the collector."""

from repro.workloads.app import Peer, link, release_all


def test_registered_activity_survives_unreferenced(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    service = driver.context.create(Peer(), name="service")
    world.registry.bind("svc", service.ref)
    world.run_for(1.0)
    release_all(driver, [service])
    world.run_for(40 * fast_dgc.tta)
    assert world.find_activity(service.activity_id) is not None


def test_unbound_activity_becomes_collectable(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    service = driver.context.create(Peer(), name="service")
    world.registry.bind("svc", service.ref)
    world.run_for(1.0)
    release_all(driver, [service])
    world.run_for(10 * fast_dgc.tta)
    world.registry.unbind("svc")
    assert world.run_until_collected(40 * fast_dgc.tta)
    assert world.stats.collected_acyclic == 1


def test_registered_root_keeps_its_cycle_alive(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    link(driver, b, a)
    world.registry.bind("svc", a.ref)
    world.run_for(2.0)
    release_all(driver, [a, b])
    world.run_for(40 * fast_dgc.tta)
    assert len(world.live_non_roots()) == 1  # b, pinned via root a
    assert world.find_activity(b.activity_id) is not None
    world.registry.unbind("svc")
    assert world.run_until_collected(60 * fast_dgc.tta)
    assert world.stats.collected_cyclic == 2


def test_driver_is_a_dummy_root(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    world.run_for(40 * fast_dgc.tta)
    assert world.find_activity(driver.id) is not None
    assert not driver.is_idle()


def test_lookup_then_acquire_creates_edge(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    service = driver.context.create(Peer(), name="service")
    world.registry.bind("svc", service.ref)
    release_all(driver, [service])
    # A different party looks the service up and holds it.
    client_proxy = driver.context.create(Peer(), name="client")
    client = world.find_activity(client_proxy.activity_id)
    looked_up = client.context.acquire(world.registry.lookup("svc"))
    assert client.proxies.holds(service.activity_id)
    world.registry.unbind("svc")
    world.run_for(40 * fast_dgc.tta)
    # Still alive: the client (held by the root driver) references it.
    assert world.find_activity(service.activity_id) is not None


def test_lookup_over_fabric_creates_live_dgc_edge(make_world, fast_dgc):
    """A behavior yields ``ctx.lookup(name)``; the acquired stub is a
    real reference-graph edge the DGC honours: the service stays alive
    while held and collects after the holder drops it and unbinds."""
    from repro.runtime.behaviors import Behavior

    class LookerUp(Behavior):
        def do_find(self, ctx, request, proxies):
            future = ctx.lookup("svc")
            yield future
            self.found = ctx.keep(future.value)
            return None

        def do_forget(self, ctx, request, proxies):
            ctx.drop(self.found)
            return None

    world = make_world()
    driver = world.create_driver()
    service = driver.context.create(Peer(), node="site-1", name="service")
    world.registry.bind("svc", service.ref)
    looker = driver.context.create(LookerUp(), node="site-2", name="looker")
    driver.context.call(looker, "find")
    world.run_for(2.0)
    world.registry.unbind("svc")
    release_all(driver, [service])
    # Held through the looked-up stub (the looker stays pinned by the
    # driver): the service survives well past TTA.
    world.run_for(20 * fast_dgc.tta)
    assert world.find_activity(service.activity_id) is not None
    driver.context.call(looker, "forget")
    world.run_for(1.0)
    release_all(driver, [looker])
    assert world.run_until_collected(60 * fast_dgc.tta)
    assert world.accountant.registry_bytes > 0
