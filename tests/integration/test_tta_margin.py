"""Sec. 3.1: the TTA safety margin ``TTA > 2*TTB + MaxComm``.

* configurations violating the margin are rejected up front;
* with validation bypassed *and* the paper's worst-case schedule (a
  reference handed over right around the broadcast instants, with the
  original stub collected immediately), a too-small TTA wrongfully
  collects a live activity;
* the compliant configuration survives the same adversarial schedule.
"""

import pytest

from repro.core.config import DgcConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.net.faults import FaultPlan
from repro.net.message import KIND_APP_REQUEST
from repro.workloads.app import Peer, link, release_all


def test_world_rejects_unsafe_config(make_world):
    with pytest.raises(ConfigurationError):
        make_world(dgc=DgcConfig(ttb=1.0, tta=2.0))


def test_validation_bypass_allows_unsafe_config(make_world):
    world = make_world(
        dgc=DgcConfig(ttb=1.0, tta=2.0), validate_dgc_config=False
    )
    assert world.dgc_config.tta == 2.0


def build_handoff(world, driver):
    """Driver -> A holds B; A will hand B to C and drop its own stub."""

    class HandOver(Peer):
        def do_handoff(self, ctx, request, proxies):
            target = self.held.get("to")
            ref = self.held.get("payload")
            ctx.call(target, "hold", refs=[ref], data=["kept"])
            self._discard(ctx, "payload")
            return None

    a = driver.context.create(HandOver(), name="A")
    b = driver.context.create(Peer(), name="B")
    c = driver.context.create(Peer(), name="C")
    link(driver, a, b, key="payload")
    link(driver, a, c, key="to")
    return a, b, c


def run_adversarial_handoff(world, driver, a, b, c, *, delay_app: float):
    world.run_for(3.0)
    if delay_app:
        # Delay the handoff request carrying B's reference to C: the
        # effective communication time exceeds the assumed MaxComm, which
        # is exactly the paper's worst case (Sec. 3.1): B hears nothing
        # between A's last beat and C's first.
        world.network.fault_plan.add_delay(
            delay_app,
            kind=KIND_APP_REQUEST,
            predicate=lambda env: env.payload.target == c.activity_id
            and env.payload.method == "hold",
        )
    driver.context.call(a, "handoff")
    release_all(driver, [a, b])
    world.run_for(60.0)


def test_insufficient_tta_wrongfully_collects(make_world):
    # TTA barely above 2*TTB: any communication slower than 0.05s breaks
    # the margin.
    unsafe = DgcConfig(ttb=2.0, tta=4.05, start_jitter=True)
    world = make_world(
        dgc=unsafe, validate_dgc_config=False, seed=5
    )
    driver = world.create_driver()
    a, b, c = build_handoff(world, driver)
    with pytest.raises(ProtocolError, match="wrongful"):
        run_adversarial_handoff(world, driver, a, b, c, delay_app=7.0)


def test_sufficient_tta_survives_same_schedule(make_world):
    # TTA > 2*TTB + the 7s adversarial communication time: safe again.
    safe = DgcConfig(ttb=2.0, tta=12.0, start_jitter=True)
    world = make_world(dgc=safe, validate_dgc_config=False, seed=5)
    driver = world.create_driver()
    a, b, c = build_handoff(world, driver)
    run_adversarial_handoff(world, driver, a, b, c, delay_app=7.0)
    # B is now held by C (and kept alive); the handoff must not have
    # killed it.
    assert world.find_activity(b.activity_id) is not None
    assert world.stats.safety_violations == 0
    assert world.stats.dead_letters == 0


def test_margin_formula_matches_network_max_comm(make_world):
    from repro.net.topology import grid5000_topology
    from repro.world import World

    world = World(grid5000_topology(scale=0.05), dgc=DgcConfig(30.0, 61.0))
    assert world.dgc_config.satisfies_margin(world.network.max_comm())
