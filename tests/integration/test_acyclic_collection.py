"""Integration tests: acyclic garbage (Sec. 3.1 heartbeat/TTA path)."""

import pytest

from repro.core import events
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_chain, create_peers


def test_single_unreferenced_activity_collected(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    driver.context.drop(a)
    assert world.run_until_collected(20 * fast_dgc.tta)
    assert world.stats.collected_acyclic == 1
    assert world.stats.collected_cyclic == 0


def test_chain_collected_in_order(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    chain = build_chain(world, driver, 4)
    world.run_for(2.0)
    release_all(driver, chain)
    assert world.run_until_collected(40 * fast_dgc.tta)
    assert world.stats.collected_acyclic == 4
    times = [
        world.stats.collected_by_id[proxy.activity_id] for proxy in chain
    ]
    # Heads die before tails: each link must first lose its referencer.
    assert times == sorted(times)


def test_referenced_activity_survives(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    b = driver.context.create(Peer(), name="b")
    link(driver, a, b)
    world.run_for(2.0)
    driver.context.drop(b)  # driver's own stub only; a still holds b
    world.run_for(20 * fast_dgc.tta)
    assert world.find_activity(a.activity_id) is not None
    assert world.find_activity(b.activity_id) is not None
    assert world.stats.collected_total == 0


def test_busy_activity_never_collected_acyclically(make_world, fast_dgc):
    class Loop(Peer):
        def do_spin(self, ctx, request, proxies):
            while ctx.now < 100.0:
                yield ctx.sleep(1.0)

    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Loop(), name="a")
    driver.context.call(a, "spin")
    world.run_for(1.0)
    driver.context.drop(a)
    world.run_for(50.0)
    # Still busy: even unreferenced it must not be collected...
    assert world.find_activity(a.activity_id) is not None
    # ...but once idle it is (acyclic, nobody references it).
    assert world.run_until_collected(200.0 + 20 * fast_dgc.tta)
    assert world.stats.collected_acyclic == 1


def test_fresh_activity_not_collected_before_first_heartbeat(
    make_world, fast_dgc
):
    """The TTA grace protects newborns whose creator has not beaten yet."""
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(fast_dgc.tta * 0.9)
    assert world.find_activity(a.activity_id) is not None
    world.run_for(20 * fast_dgc.tta)
    # Driver still holds it: alive for good.
    assert world.find_activity(a.activity_id) is not None


def test_quickly_exchanged_reference_stays_alive(make_world, fast_dgc):
    """Sec. 3.1 worst case: a reference handed through an intermediary
    that drops it immediately must still reach the target with at least
    one DGC message (needs_send) and keep it alive."""
    class PassThrough(Peer):
        def do_relay(self, ctx, request, proxies):
            # Receive a ref and forward it, keeping nothing.
            target = self.held.get("next")
            ctx.call(target, "hold", refs=[proxies[0]], data=["kept"])
            return None

    world = make_world()
    driver = world.create_driver()
    relay = driver.context.create(PassThrough(), name="relay")
    keeper = driver.context.create(Peer(), name="keeper")
    precious = driver.context.create(Peer(), name="precious")
    link(driver, relay, keeper, key="next")
    world.run_for(2.0)
    driver.context.call(relay, "relay", refs=[precious])
    driver.context.drop(precious)  # driver forgets it immediately
    world.run_for(20 * fast_dgc.tta)
    # The keeper holds it now; it must have survived the handoff.
    assert world.find_activity(precious.activity_id) is not None
    assert world.stats.safety_violations == 0


def test_collection_time_bounded_by_tta_plus_beats(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(5.0)
    dropped_at = world.kernel.now
    driver.context.drop(a)
    assert world.run_until_collected(20 * fast_dgc.tta)
    collected_at = world.stats.collected_by_id[a.activity_id]
    # One more heartbeat may land right after the drop; then silence for
    # TTA, detected at the next beat.
    assert collected_at - dropped_at <= 2 * fast_dgc.tta + 2 * fast_dgc.ttb


def test_terminated_event_traced(make_world, fast_dgc):
    world = make_world()
    driver = world.create_driver()
    a = driver.context.create(Peer(), name="a")
    world.run_for(1.0)
    driver.context.drop(a)
    world.run_until_collected(20 * fast_dgc.tta)
    event = world.tracer.last(events.ACTIVITY_TERMINATED)
    assert event.subject == a.activity_id
    assert event.details["reason"] == "acyclic"
