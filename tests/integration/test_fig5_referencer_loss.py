"""Fig. 5: the loss of a referencer must be detected, otherwise a cycle
whose external referencer vanished would keep a final activity clock
owned by nobody in the cycle and become uncollectible.
"""

from repro.core.config import DgcConfig
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_ring


def build_fig5(world, driver):
    """A references a cycle B -> C -> B (A propagates its clock into it)."""
    ring = build_ring(world, driver, 2, name_prefix="cycle")
    a = driver.context.create(Peer(), name="A")
    link(driver, a, ring[0], key="into-cycle")
    return a, ring


def test_cycle_collected_after_external_referencer_dies(
    make_world, fast_dgc
):
    world = make_world()
    driver = world.create_driver()
    a, ring = build_fig5(world, driver)
    world.run_for(2.0)
    # Let A's clock propagate into the cycle for a while.
    world.run_for(5 * fast_dgc.ttb)
    # A disappears (driver drops it; A holds the cycle; A is acyclic
    # garbage, then the cycle loses its external referencer).
    release_all(driver, [a] + ring)
    assert world.run_until_collected(80 * fast_dgc.tta)
    assert world.stats.safety_violations == 0
    # A itself fell acyclically; the cycle needed the consensus.
    assert world.stats.collected_acyclic >= 1
    assert world.stats.collected_cyclic >= 1


def test_cycle_uncollectible_without_referencer_loss_rule(make_world):
    """Ablation (DESIGN.md Sec. 6 item 3): disabling the increment leaves
    the cycle stuck on an unowned final activity clock."""
    config = DgcConfig(
        ttb=1.0, tta=3.0, increment_on_referencer_loss=False
    )
    world = make_world(dgc=config)
    driver = world.create_driver()
    a, ring = build_fig5(world, driver)
    world.run_for(2.0)

    # Force A's clock into the cycle: A must become idle *after* the
    # cycle members so its increment dominates.  Give A some late work.
    driver.context.call(a, "work", data=6.0)
    world.run_for(20.0)

    release_all(driver, [a] + ring)
    # A goes away acyclically...
    assert world.kernel.run_until_quiescent(
        lambda: world.find_activity(a.activity_id) is None, 1.0, 200.0
    )
    survivors_hold_foreign_clock = False
    world.run_for(60 * config.tta)
    # ...and without the Fig. 5 rule the cycle may survive forever,
    # agreeing on A's orphaned clock.  (With the rule, the equivalent
    # test above collects it.)
    survivors = world.live_non_roots()
    if survivors:
        for activity in survivors:
            clock = activity.collector.clock
            if clock.owner == a.activity_id:
                survivors_hold_foreign_clock = True
    assert survivors, (
        "cycle was unexpectedly collected despite the ablated rule"
    )
    assert survivors_hold_foreign_clock
