"""Sec. 4.3 ablation — the consensus-propagation optimisation.

"Without this optimization, after each consensus, a single active object
is collected and the consensus must start again" (Sec. 5.2).  The
benchmark collects a compound cycle with the optimisation on and off and
asserts the on-variant is strictly faster and needs fewer consensus
rounds.
"""

import pytest

from repro.harness.ablation import compare_consensus_propagation
from repro.harness.report import render_table


@pytest.fixture(scope="module")
def comparison():
    return compare_consensus_propagation(cycle_size=4)


def test_ablation_consensus_propagation(benchmark, comparison):
    benchmark.pedantic(
        lambda: compare_consensus_propagation(cycle_size=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["variant", "collection (s)", "consensus rounds"],
            [
                ["with propagation", f"{comparison.enabled_s:.2f}",
                 comparison.enabled_consensus_rounds],
                ["without", f"{comparison.disabled_s:.2f}",
                 comparison.disabled_consensus_rounds],
            ],
            title="Sec. 4.3 ablation — consensus propagation",
        )
    )
    assert comparison.enabled_s < comparison.disabled_s
    assert comparison.speedup > 1.2
    assert (
        comparison.disabled_consensus_rounds
        > comparison.enabled_consensus_rounds
    )
