"""Baseline — Veiga & Ferreira-style cycle detection messages.

Claim benchmarked (Sec. 6): "the growth of the [cycle detection] message
is limited only by the total size of the distributed system, so the
communication overhead can become large" — versus the paper's fixed-size
DGC messages (Sec. 4.3).
"""

import pytest

from repro.baselines.veiga import VeigaConfig, veiga_collector_factory
from repro.harness.report import render_table
from repro.net.message import WireSizeModel
from repro.net.topology import uniform_topology
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_ring
from repro.world import World

VEIGA = VeigaConfig(heartbeat_s=1.0, alone_after_s=3.0, suspect_after_s=2.0)
SIZES = (4, 8, 16)


def run_veiga_ring(size: int) -> dict:
    world = World(
        uniform_topology(4),
        dgc=None,
        collector_factory=veiga_collector_factory(VEIGA),
        seed=1,
    )
    # Track the largest DGC envelope crossing the fabric.
    biggest = {"bytes": 0}
    original_send = world.network.send

    def tracking_send(envelope):
        if envelope.kind == "dgc.message":
            biggest["bytes"] = max(biggest["bytes"], envelope.size_bytes)
        original_send(envelope)

    world.network.send = tracking_send
    driver = world.create_driver()
    ring = build_ring(world, driver, size)
    world.run_for(2.0)
    release_all(driver, ring)
    collected = world.run_until_collected(200 * VEIGA.alone_after_s)
    return {
        "size": size,
        "collected": collected,
        "max_envelope": biggest["bytes"],
        "dgc_bytes": world.accountant.dgc_bytes,
    }


@pytest.fixture(scope="module")
def sweep():
    return [run_veiga_ring(size) for size in SIZES]


def test_baseline_veiga_message_growth(benchmark, sweep):
    benchmark.pedantic(lambda: run_veiga_ring(4), rounds=1, iterations=1)
    fixed = WireSizeModel().dgc_message_bytes
    print()
    print(
        render_table(
            ["cycle size", "collected", "max CDM bytes",
             "paper DGC msg bytes"],
            [
                [
                    row["size"],
                    str(row["collected"]),
                    row["max_envelope"],
                    fixed,
                ]
                for row in sweep
            ],
            title="Baseline — Veiga-Ferreira CDM size vs cycle size",
        )
    )
    for row in sweep:
        assert row["collected"]
    # CDM size grows with the cycle...
    envelopes = [row["max_envelope"] for row in sweep]
    assert envelopes == sorted(envelopes)
    assert envelopes[-1] > 2 * envelopes[0]
    # ...while the paper's DGC messages are fixed-size regardless.
    assert envelopes[-1] > fixed
