"""Fig. 9 — time overhead of the DGC on the NAS kernels.

Paper (256 AOs): application-time overhead is insignificant
(-9.6 % to +0.8 %, the negative value being an RMI-socket artefact the
paper explains), and the DGC collects all activities within 457-534 s,
i.e. roughly 15-18 TTB periods at TTB=30 s.

Shape asserted here: app time is unchanged by the DGC; the collection
tail is a small number of TTB periods plus TTA, for every kernel.
"""

import pytest

from repro.core.config import NAS_CONFIG
from repro.harness.tables import compare_kernel, fig9_table
from repro.net.topology import uniform_topology
from repro.workloads.nas import KERNELS

AO_COUNT = 32
NODES = 16


@pytest.fixture(scope="module")
def comparisons():
    return [
        compare_kernel(
            KERNELS[name].scaled(AO_COUNT),
            dgc=NAS_CONFIG,
            seeds=(2,),
            topology_factory=lambda: uniform_topology(NODES),
        )
        for name in ("CG", "EP", "FT")
    ]


def test_fig9_time_overhead(benchmark, comparisons):
    def regenerate():
        return compare_kernel(
            KERNELS["EP"].scaled(AO_COUNT),
            dgc=NAS_CONFIG,
            seeds=(2,),
            topology_factory=lambda: uniform_topology(NODES),
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    print()
    print(fig9_table(comparisons))

    by_kernel = {c.kernel: c for c in comparisons}
    # Relative run-time ordering matches the paper: CG >> FT >> EP.
    assert (
        by_kernel["CG"].dgc_time_total.mean
        > by_kernel["FT"].dgc_time_total.mean
        > by_kernel["EP"].dgc_time_total.mean
    )
    for comparison in comparisons:
        # App time unaffected by the DGC (paper: |overhead| < 10 %).
        assert abs(comparison.time_overhead_pct) < 10.0
        # Collection tail: a handful of beats + TTA (paper: 15-18 beats).
        beats = comparison.dgc_collect_time.mean / NAS_CONFIG.ttb
        assert 1.0 <= beats <= 25.0
