"""Paper-scale Fig. 10 benchmark — the ``BENCH_fig10.json`` trajectory.

Runs the torture test at the paper's full scale — 6401 active objects (a
master plus 50 slaves on each of 128 machines, Sec. 5.3) — three times on
the same seed through :func:`repro.harness.figures.run_fig10`:

* **aggregated** — the aggregated columnar core: pooled pulse records,
  site-pair DGC runs staged as single aggregate entries with flat
  ``(target_id, message)`` columns, batch-sink unwrapping and the
  steady-state receive diet (``aggregate_site_pairs=True``);
* **batched** — the previous (PR-3) batched core: beat-wheel scheduling
  and per-instant pulses, but one freshly-allocated 6-tuple entry and
  one typed dispatch per message (``aggregate_site_pairs=False``);
* **per-event** — the pre-wheel baseline: one cancellable kernel event
  per activity per tick and one heap event per message.

and asserts (a) bit-identical simulation outcomes across all three cores
(same collected counts, same last-collected instant, same bandwidth,
same sampled series — delivery mechanics change heap traffic and
allocations, never behaviour) and (b) wall-clock speedups of at least
``MIN_AGG_SPEEDUP`` (aggregated over batched) and ``MIN_SPEEDUP``
(batched over per-event).  Results land in ``BENCH_fig10.json`` at the
repo root (see PERFORMANCE.md).

The time axis is compressed exactly like the throughput benchmark's
(TTB=5 s, TTA=12 s, 150 s active phase): the *scale* axis — activity
count, node count, reference-graph density — is the paper's, the beat
period is shrunk so a full collapse fits in a benchmark run.

Scale is controlled with ``REPRO_FIG10_SCALE``:

* ``full`` (default) — the 6401-AO paper scale, gates at 1.05x
  (aggregated, measured 1.08-1.15x best-of-rounds; the gate leaves
  noise margin — see PERFORMANCE.md for why exact-order equivalence
  caps site-pair merging on the torture graph) and 1.3x (batched,
  measured 1.38-1.69x across runs);
* ``smoke`` — 641 AOs for CI smoke jobs, gates relaxed to 0.95x and
  1.1x (small runs are noise-dominated; the artifact still records the
  measured ratios).

The aggregated/batched cores are timed ``ROUNDS`` times each
(best-of-rounds) because the A/B gap at full scale is a few seconds of
a ~60 s run — single runs are at the mercy of machine noise.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.harness.figures import (
    PAPER_NODE_COUNT,
    PAPER_SLAVE_COUNT,
    run_fig10,
)
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_fig10.json"
PR_LABEL = "PR4"

SCALE = os.environ.get("REPRO_FIG10_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 640
    NODE_COUNT = 64
    MIN_SPEEDUP = 1.1
    MIN_AGG_SPEEDUP = 0.95
else:
    SLAVE_COUNT = PAPER_SLAVE_COUNT
    NODE_COUNT = PAPER_NODE_COUNT
    # Measured 1.38-1.69x across runs of this machine (sustained-load
    # throttling dominates the spread); the gate keeps noise margin and
    # the artifact records the measured ratio.
    MIN_SPEEDUP = 1.3
    MIN_AGG_SPEEDUP = 1.05

#: Best-of-N timing for the aggregated/batched pair (their gap is small
#: relative to wall-clock noise); the per-event run stays single-shot.
ROUNDS = 2

SEED = 11
ACTIVE_DURATION = 150.0
#: Compressed-time paper configuration (scale axis untouched).
FIG10_CONFIG = DgcConfig(ttb=5.0, tta=12.0)
#: Start-jitter phase slots per TTB: heartbeat scheduling becomes
#: O(BEAT_SLOTS) heap events per beat period in batched mode.
BEAT_SLOTS = 16


def _run_once(batched: bool, aggregated: bool):
    """One fixed-seed paper-scale run under controlled allocation."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            results = run_fig10(
                slave_count=SLAVE_COUNT,
                active_duration=ACTIVE_DURATION,
                node_count=NODE_COUNT,
                seed=SEED,
                fast=FIG10_CONFIG,
                include_slow=False,
                include_no_dgc=False,
                beat_slots=BEAT_SLOTS,
                batched_beats=batched,
                aggregate_site_pairs=aggregated,
                collect_timeout=16_000.0,
            )
    finally:
        gc.enable()
    return watch.elapsed, results.fast


def _signature(result):
    """Everything that must be bit-identical across the three cores."""
    return (
        result.collected_acyclic,
        result.collected_cyclic,
        result.last_collected_s,
        result.dead_letters,
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        tuple(result.series),
    )


@pytest.fixture(scope="module")
def measurements():
    aggregated_wall, aggregated = _run_once(batched=True, aggregated=True)
    batched_wall, batched = _run_once(batched=True, aggregated=False)
    for _ in range(ROUNDS - 1):
        wall, __ = _run_once(batched=True, aggregated=True)
        aggregated_wall = min(aggregated_wall, wall)
        wall, __ = _run_once(batched=True, aggregated=False)
        batched_wall = min(batched_wall, wall)
    per_event_wall, per_event = _run_once(batched=False, aggregated=False)
    agg_speedup = batched_wall / aggregated_wall
    speedup = per_event_wall / batched_wall

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "ao_count": batched.ao_count,
            "ttb": FIG10_CONFIG.ttb,
            "tta": FIG10_CONFIG.tta,
            "beat_slots": BEAT_SLOTS,
            "active_duration_s": ACTIVE_DURATION,
        },
        pr_label=PR_LABEL,
    )
    for name, wall, result in (
        ("fig10_aggregated", aggregated_wall, aggregated),
        ("fig10_batched", batched_wall, batched),
        ("fig10_per_event", per_event_wall, per_event),
    ):
        report.add(
            PerfMeasurement(
                name=name,
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "collected_acyclic": result.collected_acyclic,
                    "collected_cyclic": result.collected_cyclic,
                    "last_collected_s": result.last_collected_s,
                    "dgc_bandwidth_mb": round(result.dgc_bandwidth_mb, 6),
                },
            )
        )
    report.benchmarks["fig10_aggregated"].extra["speedup_vs_batched"] = round(
        agg_speedup, 3
    )
    report.benchmarks["fig10_batched"].extra["speedup_vs_per_event"] = round(
        speedup, 3
    )
    report.write(BENCH_PATH)
    return {
        "aggregated": (aggregated_wall, aggregated),
        "batched": (batched_wall, batched),
        "per_event": (per_event_wall, per_event),
        "agg_speedup": agg_speedup,
        "speedup": speedup,
    }


def test_outcomes_are_bit_identical_across_cores(measurements):
    """Delivery mechanics are pure scheduling/allocation changes: all
    three cores on the same seed must produce the same simulation
    outcome, sample for sample."""
    aggregated = _signature(measurements["aggregated"][1])
    batched = _signature(measurements["batched"][1])
    per_event = _signature(measurements["per_event"][1])
    assert aggregated == batched
    assert aggregated == per_event


def test_paper_scale_run_collects_everything(measurements):
    for key in ("aggregated", "batched", "per_event"):
        result = measurements[key][1]
        assert result.all_collected
        assert result.ao_count == SLAVE_COUNT + 1


def test_aggregated_core_speedup(measurements):
    agg_speedup = measurements["agg_speedup"]
    assert agg_speedup >= MIN_AGG_SPEEDUP, (
        f"the aggregated columnar core is only {agg_speedup:.2f}x faster "
        f"than the per-entry batched core (required: {MIN_AGG_SPEEDUP}x "
        f"at scale={SCALE!r})"
    )


def test_batched_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"batched beat scheduling is only {speedup:.2f}x faster than "
        f"per-event scheduling (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_run_does_less_heap_traffic(measurements):
    """The structural claim behind the speedup: O(buckets + pulses)
    events instead of O(ticks + messages) — and the aggregated core
    fires exactly the per-entry core's kernel events."""
    __, aggregated = measurements["aggregated"]
    __, batched = measurements["batched"]
    __, per_event = measurements["per_event"]
    assert batched.events_fired < per_event.events_fired / 4
    assert batched.peak_pending_events < per_event.peak_pending_events
    assert aggregated.events_fired == batched.events_fired


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert benchmarks["fig10_aggregated"]["speedup_vs_batched"] > 0
    assert benchmarks["fig10_batched"]["speedup_vs_per_event"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    meta = payload["meta"]
    assert meta["ao_count"] == SLAVE_COUNT + 1
    # Provenance: every artifact names the code state that produced it.
    assert meta["pr_label"] == PR_LABEL
    assert meta["git_sha"]
