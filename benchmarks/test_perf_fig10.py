"""Paper-scale Fig. 10 benchmark — the ``BENCH_fig10.json`` trajectory.

Runs the torture test at the paper's full scale — 6401 active objects (a
master plus 50 slaves on each of 128 machines, Sec. 5.3) — twice on the
same seed through :func:`repro.harness.figures.run_fig10`:

* **batched** — heartbeats scheduled through the beat wheel
  (``beat_slots`` phase buckets, one kernel event per bucket per tick)
  with the pulse-batched DGC fan-out (one kernel event per distinct
  delivery instant);
* **per-event** — the pre-wheel scheduling: one cancellable kernel
  event per activity per tick and one heap event per DGC message.

and asserts (a) bit-identical simulation outcomes between the two
schedulers (same collected counts, same last-collected instant, same
bandwidth — batching changes heap traffic, never behaviour) and (b) a
wall-clock speedup of at least ``MIN_SPEEDUP``.  Results land in
``BENCH_fig10.json`` at the repo root (see PERFORMANCE.md).

The time axis is compressed exactly like the throughput benchmark's
(TTB=5 s, TTA=12 s, 150 s active phase): the *scale* axis — activity
count, node count, reference-graph density — is the paper's, the beat
period is shrunk so a full collapse fits in a benchmark run.

Scale is controlled with ``REPRO_FIG10_SCALE``:

* ``full`` (default) — the 6401-AO paper scale, speedup gate at 1.5x;
* ``smoke`` — 641 AOs for CI smoke jobs, gate relaxed to 1.1x.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.harness.figures import (
    PAPER_NODE_COUNT,
    PAPER_SLAVE_COUNT,
    run_fig10,
)
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_fig10.json"

SCALE = os.environ.get("REPRO_FIG10_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 640
    NODE_COUNT = 64
    MIN_SPEEDUP = 1.1
else:
    SLAVE_COUNT = PAPER_SLAVE_COUNT
    NODE_COUNT = PAPER_NODE_COUNT
    MIN_SPEEDUP = 1.5

SEED = 11
ACTIVE_DURATION = 150.0
#: Compressed-time paper configuration (scale axis untouched).
FIG10_CONFIG = DgcConfig(ttb=5.0, tta=12.0)
#: Start-jitter phase slots per TTB: heartbeat scheduling becomes
#: O(BEAT_SLOTS) heap events per beat period in batched mode.
BEAT_SLOTS = 16


def _run_once(batched: bool):
    """One fixed-seed paper-scale run under controlled allocation."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            results = run_fig10(
                slave_count=SLAVE_COUNT,
                active_duration=ACTIVE_DURATION,
                node_count=NODE_COUNT,
                seed=SEED,
                fast=FIG10_CONFIG,
                include_slow=False,
                include_no_dgc=False,
                beat_slots=BEAT_SLOTS,
                batched_beats=batched,
                collect_timeout=16_000.0,
            )
    finally:
        gc.enable()
    return watch.elapsed, results.fast


def _signature(result):
    """Everything that must be bit-identical between the schedulers."""
    return (
        result.collected_acyclic,
        result.collected_cyclic,
        result.last_collected_s,
        result.dead_letters,
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        tuple(result.series),
    )


@pytest.fixture(scope="module")
def measurements():
    batched_wall, batched = _run_once(batched=True)
    per_event_wall, per_event = _run_once(batched=False)
    speedup = per_event_wall / batched_wall

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "ao_count": batched.ao_count,
            "ttb": FIG10_CONFIG.ttb,
            "tta": FIG10_CONFIG.tta,
            "beat_slots": BEAT_SLOTS,
            "active_duration_s": ACTIVE_DURATION,
        }
    )
    for name, wall, result in (
        ("fig10_batched", batched_wall, batched),
        ("fig10_per_event", per_event_wall, per_event),
    ):
        report.add(
            PerfMeasurement(
                name=name,
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "collected_acyclic": result.collected_acyclic,
                    "collected_cyclic": result.collected_cyclic,
                    "last_collected_s": result.last_collected_s,
                    "dgc_bandwidth_mb": round(result.dgc_bandwidth_mb, 6),
                },
            )
        )
    report.benchmarks["fig10_batched"].extra["speedup_vs_per_event"] = round(
        speedup, 3
    )
    report.write(BENCH_PATH)
    return {
        "batched": (batched_wall, batched),
        "per_event": (per_event_wall, per_event),
        "speedup": speedup,
    }


def test_outcomes_are_bit_identical_across_schedulers(measurements):
    """Beat batching is a pure scheduling change: both runs of the same
    seed must produce the same simulation outcome, sample for sample."""
    batched = _signature(measurements["batched"][1])
    per_event = _signature(measurements["per_event"][1])
    assert batched == per_event


def test_paper_scale_run_collects_everything(measurements):
    for __, result in (measurements["batched"], measurements["per_event"]):
        assert result.all_collected
        assert result.ao_count == SLAVE_COUNT + 1


def test_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"batched beat scheduling is only {speedup:.2f}x faster than "
        f"per-event scheduling (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_run_does_less_heap_traffic(measurements):
    """The structural claim behind the speedup: O(buckets + pulses)
    events instead of O(ticks + messages)."""
    __, batched = measurements["batched"]
    __, per_event = measurements["per_event"]
    assert batched.events_fired < per_event.events_fired / 4
    assert batched.peak_pending_events < per_event.peak_pending_events


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert benchmarks["fig10_batched"]["speedup_vs_per_event"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    assert payload["meta"]["ao_count"] == SLAVE_COUNT + 1
