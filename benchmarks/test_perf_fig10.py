"""Paper-scale Fig. 10 benchmark — the ``BENCH_fig10.json`` trajectory.

Runs the torture test at the paper's full scale — 6401 active objects (a
master plus 50 slaves on each of 128 machines, Sec. 5.3) — on the same
seed through :func:`repro.harness.figures.run_fig10`, once per delivery
core:

* **aggregated** (``aggregation="exact"``) — the exact-order aggregated
  columnar core: pooled pulse records, site-pair DGC runs staged as
  single aggregate entries with flat ``(target_id, message)`` columns,
  batch-sink unwrapping and the steady-state receive diet;
* **batched** (``"per-entry"``) — the previous (PR-3) batched core:
  beat-wheel scheduling and per-instant pulses, but one
  freshly-allocated 6-tuple entry and one typed dispatch per message;
* **per-event** — the pre-wheel baseline: one cancellable kernel event
  per activity per tick and one heap event per message;
* **relaxed** — the relaxed-equivalence tier: DGC sends accumulate per
  (site pair, kind) across instants and flush once per beat bucket, so
  staging cost drops from per-adjacent-run to per-(site pair, beat).

The three exact cores must be bit-identical (same collected counts,
same last-collected instant, same bandwidth, same sampled series).  The
relaxed core is gated on the outcome tier — identical reachability
verdicts against the per-event baseline (same activities created, the
same set collected, zero dead letters and safety violations) — plus its
two performance gates: staged-entry count reduced ``MIN_ENTRY_REDUCTION``x
vs the exact-order core and wall clock ``MIN_RELAXED_SPEEDUP``x vs the
per-entry batched core.  Results land in ``BENCH_fig10.json`` at the
repo root (see PERFORMANCE.md).

The time axis is compressed exactly like the throughput benchmark's
(TTB=5 s, TTA=12 s, 150 s active phase): the *scale* axis — activity
count, node count, reference-graph density — is the paper's, the beat
period is shrunk so a full collapse fits in a benchmark run.

Scale is controlled with ``REPRO_FIG10_SCALE``:

* ``full`` (default) — the 6401-AO paper scale, gates at 1.05x
  (aggregated, measured 1.08-1.15x best-of-rounds; the gate leaves
  noise margin — see PERFORMANCE.md for why exact-order equivalence
  caps site-pair merging on the torture graph), 1.3x (batched, measured
  1.38-1.69x across runs), 1.25x (relaxed vs batched) and 5x (relaxed
  staged-entry reduction);
* ``smoke`` — 641 AOs for CI smoke jobs, wall-clock gates relaxed to
  0.95x/1.1x/0.9x (small runs are noise-dominated; the artifact still
  records the measured ratios).  The entry-reduction gate stays at 5x —
  the counter is deterministic, and the flush-time site-level merge
  keeps buckets dense even at 10 slaves per node (measured 12.5x at
  smoke scale vs 25.9x at paper scale).

``REPRO_FIG10_AXES`` splits the matrix for CI: ``exact`` measures only
the three exact cores (the pre-existing axis), ``relaxed`` only the
relaxed core and the baselines its gates compare against, ``all`` (the
default) everything.

The timed cores run ``ROUNDS`` times each (best-of-rounds) because the
A/B gaps at full scale are a few seconds of a ~60 s run — single runs
are at the mercy of machine noise.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.harness.figures import (
    PAPER_NODE_COUNT,
    PAPER_SLAVE_COUNT,
    run_fig10,
)
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_fig10.json"
PR_LABEL = "PR6"

SCALE = os.environ.get("REPRO_FIG10_SCALE", "full")
AXES = os.environ.get("REPRO_FIG10_AXES", "all")
if SCALE == "smoke":
    SLAVE_COUNT = 640
    NODE_COUNT = 64
    MIN_SPEEDUP = 1.1
    MIN_AGG_SPEEDUP = 0.95
    MIN_RELAXED_SPEEDUP = 0.9
    MIN_ENTRY_REDUCTION = 5.0
else:
    SLAVE_COUNT = PAPER_SLAVE_COUNT
    NODE_COUNT = PAPER_NODE_COUNT
    # Measured 1.38-1.69x across runs of this machine (sustained-load
    # throttling dominates the spread); the gate keeps noise margin and
    # the artifact records the measured ratio.
    MIN_SPEEDUP = 1.3
    MIN_AGG_SPEEDUP = 1.05
    MIN_RELAXED_SPEEDUP = 1.25
    MIN_ENTRY_REDUCTION = 5.0

#: Best-of-N timing for the batched-core family (their gaps are small
#: relative to wall-clock noise); the per-event run stays single-shot.
ROUNDS = 2

SEED = 11
ACTIVE_DURATION = 150.0
#: Compressed-time paper configuration (scale axis untouched).
FIG10_CONFIG = DgcConfig(ttb=5.0, tta=12.0)
#: Start-jitter phase slots per TTB: heartbeat scheduling becomes
#: O(BEAT_SLOTS) heap events per beat period in batched mode.
BEAT_SLOTS = 16

#: Which cores this axes selection measures.  The relaxed axis still
#: needs every baseline its gates compare against: exact (staged-entry
#: reduction), batched (wall clock) and per-event (outcomes).
CORES = {
    "exact": ("exact", "per-entry", "per-event"),
    "relaxed": ("relaxed", "exact", "per-entry", "per-event"),
    "all": ("exact", "per-entry", "per-event", "relaxed"),
}[AXES]
#: Cores whose wall clock feeds a gate under this axes selection, and
#: therefore get best-of-ROUNDS timing.
TIMED = tuple(
    core for core in CORES
    if core != "per-event" and (AXES != "relaxed" or core != "exact")
)


def _run_once(mode: str):
    """One fixed-seed paper-scale run under controlled allocation."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            results = run_fig10(
                slave_count=SLAVE_COUNT,
                active_duration=ACTIVE_DURATION,
                node_count=NODE_COUNT,
                seed=SEED,
                fast=FIG10_CONFIG,
                include_slow=False,
                include_no_dgc=False,
                beat_slots=BEAT_SLOTS,
                aggregation=mode,
                collect_timeout=16_000.0,
                keep_world=True,
            )
    finally:
        gc.enable()
    result = results.fast
    world = result.world
    stats = world.stats
    outcome = (
        stats.created,
        stats.terminated_explicit,
        len(stats.collected_by_id),
        tuple(sorted(stats.collected_by_id)),
        stats.dead_letters,
        stats.safety_violations,
    )
    network = world.network
    counters = {
        "staged_entry_count": network.staged_entry_count,
        "pulse_event_count": network.pulse_event_count,
        "aggregated_message_count": network.aggregated_message_count,
        "relaxed_flush_count": network.relaxed_flush_count,
    }
    result.world = None  # Drop the world before the next run allocates.
    return watch.elapsed, result, counters, outcome


def _signature(result):
    """Everything that must be bit-identical across the exact cores."""
    return (
        result.collected_acyclic,
        result.collected_cyclic,
        result.last_collected_s,
        result.dead_letters,
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        tuple(result.series),
    )


def _requires(*cores):
    missing = [core for core in cores if core not in CORES]
    if missing:
        pytest.skip(
            f"cores {missing} not measured under REPRO_FIG10_AXES={AXES!r}"
        )


@pytest.fixture(scope="module")
def measurements():
    runs = {}
    for mode in CORES:
        runs[mode] = _run_once(mode)
    for mode in TIMED:
        for _ in range(ROUNDS - 1):
            wall, *_rest = _run_once(mode)
            if wall < runs[mode][0]:
                runs[mode] = (wall, *_rest)

    report = PerfReport(
        meta={
            "scale": SCALE,
            "axes": AXES,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "ao_count": runs[CORES[0]][1].ao_count,
            "ttb": FIG10_CONFIG.ttb,
            "tta": FIG10_CONFIG.tta,
            "beat_slots": BEAT_SLOTS,
            "active_duration_s": ACTIVE_DURATION,
        },
        pr_label=PR_LABEL,
    )
    names = {
        "exact": "fig10_aggregated",
        "per-entry": "fig10_batched",
        "per-event": "fig10_per_event",
        "relaxed": "fig10_relaxed",
    }
    for mode in CORES:
        wall, result, counters, _outcome = runs[mode]
        report.add(
            PerfMeasurement(
                name=names[mode],
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "collected_acyclic": result.collected_acyclic,
                    "collected_cyclic": result.collected_cyclic,
                    "last_collected_s": result.last_collected_s,
                    "dgc_bandwidth_mb": round(result.dgc_bandwidth_mb, 6),
                    "staged_entry_count": counters["staged_entry_count"],
                    "pulse_event_count": counters["pulse_event_count"],
                },
            )
        )
    benchmarks = report.benchmarks
    if "exact" in CORES and "per-entry" in CORES:
        benchmarks["fig10_aggregated"].extra["speedup_vs_batched"] = round(
            runs["per-entry"][0] / runs["exact"][0], 3
        )
    if "per-entry" in CORES and "per-event" in CORES:
        benchmarks["fig10_batched"].extra["speedup_vs_per_event"] = round(
            runs["per-event"][0] / runs["per-entry"][0], 3
        )
    if "relaxed" in CORES:
        extra = benchmarks["fig10_relaxed"].extra
        extra["relaxed_flush_count"] = runs["relaxed"][2]["relaxed_flush_count"]
        if "per-entry" in CORES:
            extra["speedup_vs_batched"] = round(
                runs["per-entry"][0] / runs["relaxed"][0], 3
            )
        if "exact" in CORES:
            extra["staged_entry_reduction_vs_exact"] = round(
                runs["exact"][2]["staged_entry_count"]
                / runs["relaxed"][2]["staged_entry_count"], 3
            )
    report.write(BENCH_PATH)
    return runs


def test_outcomes_are_bit_identical_across_exact_cores(measurements):
    """Exact delivery mechanics are pure scheduling/allocation changes:
    the three exact cores on the same seed must produce the same
    simulation outcome, sample for sample."""
    _requires("exact", "per-entry", "per-event")
    aggregated = _signature(measurements["exact"][1])
    batched = _signature(measurements["per-entry"][1])
    per_event = _signature(measurements["per-event"][1])
    assert aggregated == batched
    assert aggregated == per_event


def test_paper_scale_run_collects_everything(measurements):
    for mode in CORES:
        result = measurements[mode][1]
        assert result.all_collected
        assert result.ao_count == SLAVE_COUNT + 1


def test_aggregated_core_speedup(measurements):
    _requires("exact", "per-entry")
    if AXES == "relaxed":
        pytest.skip("exact core is untimed on the relaxed axis")
    agg_speedup = measurements["per-entry"][0] / measurements["exact"][0]
    assert agg_speedup >= MIN_AGG_SPEEDUP, (
        f"the aggregated columnar core is only {agg_speedup:.2f}x faster "
        f"than the per-entry batched core (required: {MIN_AGG_SPEEDUP}x "
        f"at scale={SCALE!r})"
    )


def test_batched_wall_clock_speedup(measurements):
    _requires("per-entry", "per-event")
    speedup = measurements["per-event"][0] / measurements["per-entry"][0]
    assert speedup >= MIN_SPEEDUP, (
        f"batched beat scheduling is only {speedup:.2f}x faster than "
        f"per-event scheduling (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_run_does_less_heap_traffic(measurements):
    """The structural claim behind the speedup: O(buckets + pulses)
    events instead of O(ticks + messages) — and the aggregated core
    fires exactly the per-entry core's kernel events."""
    _requires("exact", "per-entry", "per-event")
    aggregated = measurements["exact"][1]
    batched = measurements["per-entry"][1]
    per_event = measurements["per-event"][1]
    assert batched.events_fired < per_event.events_fired / 4
    assert batched.peak_pending_events < per_event.peak_pending_events
    assert aggregated.events_fired == batched.events_fired


def test_relaxed_outcomes_match_per_event(measurements):
    """The relaxed tier's contract at paper scale: identical
    reachability verdicts against the per-event baseline — same
    activities created, the same set collected, zero dead letters, zero
    safety violations."""
    _requires("relaxed", "per-event")
    assert measurements["relaxed"][3] == measurements["per-event"][3]
    assert measurements["relaxed"][1].dead_letters == 0


def test_relaxed_staged_entry_reduction(measurements):
    """The structural gate: coalescing per (site pair, beat bucket)
    instead of per adjacent run must collapse the staged-entry count
    well past the exact-order ceiling."""
    _requires("relaxed", "exact")
    exact_entries = measurements["exact"][2]["staged_entry_count"]
    relaxed_entries = measurements["relaxed"][2]["staged_entry_count"]
    assert measurements["relaxed"][2]["relaxed_flush_count"] > 0
    reduction = exact_entries / relaxed_entries
    assert reduction >= MIN_ENTRY_REDUCTION, (
        f"relaxed coalescing staged only {reduction:.2f}x fewer entries "
        f"than the exact-order core ({relaxed_entries} vs {exact_entries}; "
        f"required: {MIN_ENTRY_REDUCTION}x at scale={SCALE!r})"
    )


def test_relaxed_wall_clock_speedup(measurements):
    _requires("relaxed", "per-entry")
    speedup = measurements["per-entry"][0] / measurements["relaxed"][0]
    assert speedup >= MIN_RELAXED_SPEEDUP, (
        f"the relaxed coalescing core is only {speedup:.2f}x faster than "
        f"the per-entry batched core (required: {MIN_RELAXED_SPEEDUP}x "
        f"at scale={SCALE!r})"
    )


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    if "exact" in CORES and AXES != "relaxed":
        assert benchmarks["fig10_aggregated"]["speedup_vs_batched"] > 0
    assert benchmarks["fig10_batched"]["speedup_vs_per_event"] > 0
    if "relaxed" in CORES:
        relaxed = benchmarks["fig10_relaxed"]
        assert relaxed["speedup_vs_batched"] > 0
        assert relaxed["staged_entry_reduction_vs_exact"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    meta = payload["meta"]
    assert meta["ao_count"] == SLAVE_COUNT + 1
    # Provenance: every artifact names the code state that produced it.
    assert meta["pr_label"] == PR_LABEL
    assert meta["git_sha"]
