"""Sec. 3.1 ablation — the TTB/TTA trade-off.

"Increasing TTB lowers the overhead of the DGC but makes it slower to
reclaim garbage."  The benchmark sweeps TTB (with TTA proportional, as
in the paper's own configurations) over a fixed ring workload and
asserts the trade-off's direction on both axes.
"""

import pytest

from repro.harness.ablation import sweep_ttb_tta
from repro.harness.report import render_table

TTB_VALUES = (0.5, 1.0, 2.0, 4.0)


@pytest.fixture(scope="module")
def points():
    return sweep_ttb_tta(ttb_values=TTB_VALUES, ring_size=6)


def test_ablation_ttb_tta_tradeoff(benchmark, points):
    benchmark.pedantic(
        lambda: sweep_ttb_tta(ttb_values=(1.0,), ring_size=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["TTB (s)", "TTA (s)", "DGC MB until collected",
             "reclamation (s)"],
            [
                [
                    f"{point.ttb:.1f}",
                    f"{point.tta:.1f}",
                    f"{point.dgc_bandwidth_mb:.4f}",
                    f"{point.reclamation_s:.1f}",
                ]
                for point in points
            ],
            title="Sec. 3.1 — TTB vs overhead and reclamation latency",
        )
    )
    reclamations = [point.reclamation_s for point in points]
    # Slower beats reclaim strictly later...
    assert reclamations == sorted(reclamations)
    assert reclamations[-1] > 2 * reclamations[0]


def test_ablation_ttb_bandwidth_rate(points):
    """Per-second DGC cost falls as TTB grows (the actual overhead the
    paper's trade-off is about)."""
    rates = [
        point.dgc_bandwidth_mb / point.reclamation_s for point in points
    ]
    assert rates[0] > rates[-1]
