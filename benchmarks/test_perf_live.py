"""Sharded multi-process world benchmark — ``BENCH_live.json``.

Runs the Fig. 10 torture workload through the sharded live world
(:class:`repro.shard.ShardedWorld`: one process per shard, per-shard
LiveKernels in virtual-time mode, struct-packed columnar wire frames
between them) against the single-process batched simulator on the same
seed, and records wall clock, events/s, barrier-round and wire-frame
volume per arm:

* **replay** — :func:`repro.shard.replay_single_process`: the identical
  SPMD builder on one :class:`~repro.sim.kernel.SimKernel` (the
  single-process batched baseline every sharded arm is compared
  against, and the outcome oracle);
* **1 / 2 / 4 shards** — multi-process arms over a four-site clustered
  WAN topology (one plan block per site, so the conservative lookahead
  is the inter-site one-way latency).

Every sharded arm must match the replay's outcome signature exactly
(same activities created, same explicit terminations, the same set of
collected ids, zero dead letters / safety violations) — the equivalence
tier from ``tests/integration/test_sharded_world.py`` enforced at full
scale.

The **speedup gate** (``MIN_SPEEDUP``x at 4 shards vs the replay
baseline) is armed only when the machine can actually run four workers
concurrently (``os.cpu_count() >= 4``) at ``full`` scale; on smaller
machines the ratio is still measured and recorded in the artifact, so
the trajectory is honest about the hardware it ran on (see
PERFORMANCE.md's sharded-world section).

Scale is controlled with ``REPRO_LIVE_SCALE``:

* ``full`` (default) — the paper's Fig. 10 scale: 6400 slaves on 128
  nodes, compressed time (TTB=5 s, TTA=12 s, 150 s active phase), arms
  at 1/2/4 shards;
* ``smoke`` — 320 slaves on 32 nodes for CI smoke jobs, 2-shard arm
  only (plus replay); equivalence is asserted, the speedup gate never
  arms.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import clustered_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.shard import ShardedWorld, replay_single_process

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_live.json"
PR_LABEL = "PR7"

SCALE = os.environ.get("REPRO_LIVE_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 320
    NODE_COUNT = 32
    SHARD_ARMS = (1, 2)
else:
    SLAVE_COUNT = 6400
    NODE_COUNT = 128
    SHARD_ARMS = (1, 2, 4)

SEED = 11
ACTIVE_DURATION = 150.0
#: Compressed-time Fig. 10 configuration (the scale axis is the
#: paper's; the beat period is shrunk so a full collapse fits in a
#: benchmark run), on the aggregated columnar core the wire frames pack.
LIVE_CONFIG = DgcConfig(ttb=5.0, tta=12.0, beat_slots=16)
PARAMS = dict(slave_count=SLAVE_COUNT, active_duration=ACTIVE_DURATION)

#: Four balanced sites, 0.5 s inter-site RTT: the plan's lookahead is
#: 0.25 s, so a barrier round advances a quarter second of simulated
#: time — wide enough that rounds are dominated by event execution, not
#: pipe round-trips.
SITE_COUNT = 4
INTER_RTT_S = 0.5

MIN_SPEEDUP = 1.5
#: The 4-shard gate needs four workers actually running concurrently.
GATE_ARMED = (
    SCALE == "full" and 4 in SHARD_ARMS and (os.cpu_count() or 1) >= 4
)


def _topology():
    return clustered_topology(
        NODE_COUNT, site_count=SITE_COUNT,
        intra_rtt_s=0.001, inter_rtt_s=INTER_RTT_S,
    )


def _run_replay():
    gc.collect()
    with Stopwatch() as watch:
        world, _env, signature = replay_single_process(
            _topology(), workload="torture", params=PARAMS,
            dgc=LIVE_CONFIG, seed=SEED,
        )
    kernel = world.kernel
    return {
        "wall": watch.elapsed,
        "signature": signature,
        "events_fired": kernel.fired_count,
        "peak_pending": kernel.peak_pending_count,
        "sim_time_s": kernel.now,
        "created": world.stats.created,
        "collected": world.stats.collected_total,
        "dead_letters": world.stats.dead_letters,
    }


def _run_sharded(shards: int):
    gc.collect()
    sharded = ShardedWorld(
        _topology(), shards, workload="torture", params=PARAMS,
        dgc=LIVE_CONFIG, seed=SEED,
    )
    result = sharded.run()  # wall_s is measured around the whole run
    return result


@pytest.fixture(scope="module")
def measurements():
    runs = {"replay": _run_replay()}
    for shards in SHARD_ARMS:
        runs[shards] = _run_sharded(shards)

    replay = runs["replay"]
    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "site_count": SITE_COUNT,
            "inter_rtt_s": INTER_RTT_S,
            "ttb": LIVE_CONFIG.ttb,
            "tta": LIVE_CONFIG.tta,
            "active_duration_s": ACTIVE_DURATION,
            "cpu_count": os.cpu_count(),
            "speedup_gate_armed": GATE_ARMED,
        },
        pr_label=PR_LABEL,
    )
    report.add(
        PerfMeasurement(
            name="live_replay",
            wall_time_s=replay["wall"],
            events_fired=replay["events_fired"],
            peak_pending_events=replay["peak_pending"],
            sim_time_s=replay["sim_time_s"],
            extra={
                "created": replay["created"],
                "collected": replay["collected"],
            },
        )
    )
    for shards in SHARD_ARMS:
        result = runs[shards]
        report.add(
            PerfMeasurement(
                name=f"live_shards_{shards}",
                wall_time_s=result.wall_s,
                events_fired=result.events_fired,
                peak_pending_events=max(
                    shard["peak_pending"] for shard in result.per_shard
                ),
                sim_time_s=result.sim_time_s,
                extra={
                    "created": result.created,
                    "collected": result.collected_total,
                    "rounds": result.rounds,
                    "frame_count": result.frame_count,
                    "frame_bytes": result.frame_bytes,
                    "frame_digest": result.frame_digest[:16],
                    "speedup_vs_replay": round(
                        replay["wall"] / result.wall_s, 3
                    ),
                },
            )
        )
    report.write(BENCH_PATH)
    return runs


def test_sharded_outcomes_match_replay(measurements):
    """Multi-process execution changes the schedule, not the semantics:
    every sharded arm reproduces the single-process outcome exactly."""
    oracle = measurements["replay"]["signature"]
    for shards in SHARD_ARMS:
        result = measurements[shards]
        assert result.outcome_signature() == oracle, (
            f"{shards}-shard outcome diverged from the replay"
        )
        assert result.dead_letters == 0
        assert result.safety_violations == 0
        assert result.live_non_root == 0


def test_full_scale_run_collects_everything(measurements):
    replay = measurements["replay"]
    assert replay["created"] == SLAVE_COUNT + 2  # driver + master + slaves
    for shards in SHARD_ARMS:
        result = measurements[shards]
        assert result.created == replay["created"]
        assert result.collected_total == replay["collected"]


def test_cross_shard_frames_flow(measurements):
    """The multi-shard arms actually exercise the wire: struct frames
    crossed the process boundary, and more shards mean more boundary."""
    for shards in SHARD_ARMS:
        result = measurements[shards]
        if shards == 1:
            assert result.frame_count == 0
        else:
            assert result.frame_count > 0
            assert result.frame_bytes > 0
            assert result.injected_entries > 0


def test_sharded_speedup(measurements):
    if not GATE_ARMED:
        pytest.skip(
            f"speedup gate needs scale='full' and >= 4 CPUs "
            f"(scale={SCALE!r}, cpu_count={os.cpu_count()}); the measured "
            f"ratio is still recorded in BENCH_live.json"
        )
    replay_wall = measurements["replay"]["wall"]
    sharded_wall = measurements[4].wall_s
    speedup = replay_wall / sharded_wall
    assert speedup >= MIN_SPEEDUP, (
        f"4-shard execution is only {speedup:.2f}x faster than the "
        f"single-process baseline (required: {MIN_SPEEDUP}x)"
    )


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert "live_replay" in benchmarks
    for shards in SHARD_ARMS:
        entry = benchmarks[f"live_shards_{shards}"]
        assert entry["wall_time_s"] > 0
        assert entry["speedup_vs_replay"] > 0
    meta = payload["meta"]
    assert meta["pr_label"] == PR_LABEL
    assert meta["git_sha"]
    assert meta["speedup_gate_armed"] == GATE_ARMED
