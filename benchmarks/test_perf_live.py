"""Sharded multi-process world benchmark — ``BENCH_live.json``.

Runs the Fig. 10 torture workload through the sharded live world
(:class:`repro.shard.ShardedWorld`: one process per shard, per-shard
LiveKernels in virtual-time mode, v2 wire frames between them) against
the single-process batched simulator on the same seed, and records
wall clock, events/s, barrier-round and wire-frame volume per arm:

* **replay** — :func:`repro.shard.replay_single_process`: the identical
  SPMD builder on one :class:`~repro.sim.kernel.SimKernel` (the
  single-process batched baseline every sharded arm is compared
  against, and the outcome oracle);
* **1 / 2 / 4 shards** — multi-process arms over a four-site metro-WAN
  topology (two metro pairs bridged by a wide link, one plan block per
  site): the 2-shard boundary falls between the metros, so its
  per-channel lookahead is the WAN one-way latency and a barrier round
  advances a full second of simulated time, while the 4-shard plan
  keeps the narrow metro channels — the case per-channel horizons
  exist for.

Every sharded arm must match the replay's outcome signature exactly
(same activities created, same explicit terminations, the same set of
collected ids, zero dead letters / safety violations) — the equivalence
tier from ``tests/integration/test_sharded_world.py`` enforced at full
scale.

**Gates.**  The *overhead* gates are machine-independent and always
armed at ``full`` scale: they compare the sharded arms against the
replay measured in the same process on the same machine, so they hold
on a single CPU where sharding buys no parallelism and every ratio is
pure coordination cost.  PR 9's floors: the 2-shard arm must stay
within ``MAX_OVERHEAD`` of the replay (speedup_vs_replay >= 0.70 — the
PR 7 wire/rounds regime measured 0.41x here), its frame stream must be
at least ``MIN_FRAME_DIET``x smaller than the PR 7 v1 baseline
(462,974,691 bytes at this scale/seed), and its barrier rounds at most
half the PR 7 baseline (2093).  The *parallel speedup* gate
(``MIN_SPEEDUP``x at 4 shards) additionally needs four workers actually
running concurrently, so it stays armed only when
``os.cpu_count() >= 4``; the ratio is recorded unconditionally.

Scale is controlled with ``REPRO_LIVE_SCALE``:

* ``full`` (default) — the paper's Fig. 10 scale: 6400 slaves on 128
  nodes, compressed time (TTB=5 s, TTA=12 s, 150 s active phase), arms
  at 1/2/4 shards;
* ``smoke`` — 320 slaves on 32 nodes for CI smoke jobs, 2-shard arm
  only (plus replay); equivalence is asserted, the full-scale gates
  never arm.

``REPRO_LIVE_WIRE_COMPARE=1`` adds a 2-shard arm packed with the v1
frame format (``live_shards_2_wire_v1``) and gates the v2 diet against
it directly — the CI live-wire smoke row.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import metro_wan_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.shard import ShardedWorld, replay_single_process

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_live.json"
PR_LABEL = "PR9"

SCALE = os.environ.get("REPRO_LIVE_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 320
    NODE_COUNT = 32
    SHARD_ARMS = (1, 2)
else:
    SLAVE_COUNT = 6400
    NODE_COUNT = 128
    SHARD_ARMS = (1, 2, 4)

WIRE_COMPARE = os.environ.get("REPRO_LIVE_WIRE_COMPARE") == "1"

SEED = 11
ACTIVE_DURATION = 150.0
#: Compressed-time Fig. 10 configuration (the scale axis is the
#: paper's; the beat period is shrunk so a full collapse fits in a
#: benchmark run), on the aggregated columnar core the wire frames pack.
LIVE_CONFIG = DgcConfig(ttb=5.0, tta=12.0, beat_slots=16)
PARAMS = dict(slave_count=SLAVE_COUNT, active_duration=ACTIVE_DURATION)

#: Two metro pairs (0.5 s RTT inside a pair — the old uniform
#: inter-site figure) bridged by a 2 s WAN: the 2-shard boundary only
#: crosses the WAN, so its safe window per round is 1 s of simulated
#: time; the 4-shard plan's metro channels stay at 0.25 s, matching the
#: PR 7 baseline's tightest boundary.
SITE_COUNT = 4
METRO_RTT_S = 0.5
WAN_RTT_S = 2.0

#: Machine-independent overhead gates (full scale; see module
#: docstring).  Baselines are the PR 7 artifact at this scale/seed.
BASELINE_V1_FRAME_BYTES = 462_974_691
BASELINE_ROUNDS = 2093
MIN_FRAME_DIET = 5.0
#: The direct v1-vs-v2 gate of the compare arm is looser than the
#: full-scale diet gate: interning leverage grows with fan-out, and the
#: compare arm runs at CI smoke scale (measured there: ~4.4x; ~7x at
#: full scale).
MIN_WIRE_COMPARE_DIET = 4.0
MIN_SPEEDUP_VS_REPLAY_2SHARDS = 0.70
OVERHEAD_GATE_ARMED = SCALE == "full" and 2 in SHARD_ARMS

MIN_SPEEDUP = 1.5
#: The 4-shard parallel gate needs four workers actually running
#: concurrently.
GATE_ARMED = (
    SCALE == "full" and 4 in SHARD_ARMS and (os.cpu_count() or 1) >= 4
)


def _topology():
    return metro_wan_topology(
        NODE_COUNT, site_count=SITE_COUNT, intra_rtt_s=0.001,
        metro_rtt_s=METRO_RTT_S, wan_rtt_s=WAN_RTT_S,
    )


def _run_replay():
    gc.collect()
    with Stopwatch() as watch:
        world, _env, signature = replay_single_process(
            _topology(), workload="torture", params=PARAMS,
            dgc=LIVE_CONFIG, seed=SEED,
        )
    kernel = world.kernel
    return {
        "wall": watch.elapsed,
        "signature": signature,
        "events_fired": kernel.fired_count,
        "peak_pending": kernel.peak_pending_count,
        "sim_time_s": kernel.now,
        "created": world.stats.created,
        "collected": world.stats.collected_total,
        "dead_letters": world.stats.dead_letters,
    }


def _run_sharded(shards: int, wire_version: int = 2):
    gc.collect()
    sharded = ShardedWorld(
        _topology(), shards, workload="torture", params=PARAMS,
        dgc=LIVE_CONFIG, seed=SEED, wire_version=wire_version,
    )
    result = sharded.run()  # wall_s is measured around the whole run
    return result


def _sharded_measurement(name, result, replay_wall):
    return PerfMeasurement(
        name=name,
        wall_time_s=result.wall_s,
        events_fired=result.events_fired,
        peak_pending_events=max(
            shard["peak_pending"] for shard in result.per_shard
        ),
        sim_time_s=result.sim_time_s,
        extra={
            "created": result.created,
            "collected": result.collected_total,
            "rounds": result.rounds,
            "frame_count": result.frame_count,
            "frame_bytes": result.frame_bytes,
            "frame_entries": result.frame_entries,
            "bytes_per_entry": round(
                result.frame_bytes / result.frame_entries, 2
            ) if result.frame_entries else None,
            "wire_version": result.wire_version,
            "frame_digest": result.frame_digest[:16],
            "events_workload": result.events_workload,
            "events_coordination": result.events_coordination,
            "speedup_vs_replay": round(replay_wall / result.wall_s, 3),
            "overhead_vs_replay": round(result.wall_s / replay_wall, 3),
        },
    )


@pytest.fixture(scope="module")
def measurements():
    runs = {"replay": _run_replay()}
    for shards in SHARD_ARMS:
        runs[shards] = _run_sharded(shards)
    if WIRE_COMPARE and 2 in SHARD_ARMS:
        runs["2_wire_v1"] = _run_sharded(2, wire_version=1)

    replay = runs["replay"]
    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "site_count": SITE_COUNT,
            "metro_rtt_s": METRO_RTT_S,
            "wan_rtt_s": WAN_RTT_S,
            "ttb": LIVE_CONFIG.ttb,
            "tta": LIVE_CONFIG.tta,
            "active_duration_s": ACTIVE_DURATION,
            "cpu_count": os.cpu_count(),
            "speedup_gate_armed": GATE_ARMED,
            "overhead_gate_armed": OVERHEAD_GATE_ARMED,
            "baseline_v1_frame_bytes": BASELINE_V1_FRAME_BYTES,
            "baseline_rounds": BASELINE_ROUNDS,
        },
        pr_label=PR_LABEL,
    )
    report.add(
        PerfMeasurement(
            name="live_replay",
            wall_time_s=replay["wall"],
            events_fired=replay["events_fired"],
            peak_pending_events=replay["peak_pending"],
            sim_time_s=replay["sim_time_s"],
            extra={
                "created": replay["created"],
                "collected": replay["collected"],
            },
        )
    )
    for shards in SHARD_ARMS:
        report.add(
            _sharded_measurement(
                f"live_shards_{shards}", runs[shards], replay["wall"]
            )
        )
    if "2_wire_v1" in runs:
        report.add(
            _sharded_measurement(
                "live_shards_2_wire_v1", runs["2_wire_v1"], replay["wall"]
            )
        )
    report.write(BENCH_PATH)
    return runs


def test_sharded_outcomes_match_replay(measurements):
    """Multi-process execution changes the schedule, not the semantics:
    every sharded arm reproduces the single-process outcome exactly."""
    oracle = measurements["replay"]["signature"]
    for shards in SHARD_ARMS:
        result = measurements[shards]
        assert result.outcome_signature() == oracle, (
            f"{shards}-shard outcome diverged from the replay"
        )
        assert result.dead_letters == 0
        assert result.safety_violations == 0
        assert result.live_non_root == 0


def test_full_scale_run_collects_everything(measurements):
    replay = measurements["replay"]
    assert replay["created"] == SLAVE_COUNT + 2  # driver + master + slaves
    for shards in SHARD_ARMS:
        result = measurements[shards]
        assert result.created == replay["created"]
        assert result.collected_total == replay["collected"]


def test_cross_shard_frames_flow(measurements):
    """The multi-shard arms actually exercise the wire: v2 frames
    crossed the process boundary, and the events split attributes the
    injection work."""
    for shards in SHARD_ARMS:
        result = measurements[shards]
        if shards == 1:
            assert result.frame_count == 0
            assert result.events_coordination == 0
        else:
            assert result.frame_count > 0
            assert result.frame_bytes > 0
            assert result.injected_entries > 0
            assert result.frame_entries >= result.injected_entries
            assert result.events_coordination > 0
        assert (
            result.events_workload + result.events_coordination
            == result.events_fired
        )


def test_frame_diet(measurements):
    """The v2 wire format keeps the 2-shard frame stream at least
    ``MIN_FRAME_DIET``x below the PR 7 v1 baseline at the same
    scale/seed — machine-independent, so always armed at full scale."""
    if not OVERHEAD_GATE_ARMED:
        pytest.skip(
            f"frame-diet gate runs at scale='full' (scale={SCALE!r})"
        )
    frame_bytes = measurements[2].frame_bytes
    assert frame_bytes * MIN_FRAME_DIET <= BASELINE_V1_FRAME_BYTES, (
        f"2-shard frame stream is {frame_bytes} bytes; the diet gate "
        f"requires <= {BASELINE_V1_FRAME_BYTES / MIN_FRAME_DIET:.0f} "
        f"({MIN_FRAME_DIET}x below the PR 7 baseline)"
    )


def test_round_diet(measurements):
    """Per-channel lookahead over the metro-WAN topology at most halves
    the PR 7 barrier-round count for the 2-shard arm."""
    if not OVERHEAD_GATE_ARMED:
        pytest.skip(
            f"round-diet gate runs at scale='full' (scale={SCALE!r})"
        )
    rounds = measurements[2].rounds
    assert rounds * 2 <= BASELINE_ROUNDS, (
        f"2-shard run took {rounds} barrier rounds; the diet gate "
        f"requires <= {BASELINE_ROUNDS // 2}"
    )


def test_sharded_overhead_vs_replay(measurements):
    """Coordination cost, not parallelism: on any machine — including a
    single CPU, where the arms and the replay compete for the same
    core — the 2-shard arm must stay within the overhead budget of the
    replay measured in the same run."""
    if not OVERHEAD_GATE_ARMED:
        pytest.skip(
            f"overhead gate runs at scale='full' (scale={SCALE!r})"
        )
    speedup = measurements["replay"]["wall"] / measurements[2].wall_s
    assert speedup >= MIN_SPEEDUP_VS_REPLAY_2SHARDS, (
        f"2-shard execution runs at {speedup:.3f}x the replay "
        f"(required: >= {MIN_SPEEDUP_VS_REPLAY_2SHARDS}x)"
    )


def test_wire_compare(measurements):
    """With the compare arm enabled, the v2 diet is gated directly
    against a v1 run of the identical configuration."""
    if "2_wire_v1" not in measurements:
        pytest.skip("set REPRO_LIVE_WIRE_COMPARE=1 to run the v1 arm")
    v1 = measurements["2_wire_v1"]
    v2 = measurements[2]
    assert v1.outcome_signature() == v2.outcome_signature()
    # The wire-row counts are close but not equal by design: v2 frames
    # decode in run-grouped order, so cross-shard entries sharing a
    # delivery instant interleave differently than under v1's
    # insertion order — the outcome converges (asserted above), but
    # egress drain points shift by a few rounds, moving some DGC
    # singles in or out of coalesced aggregate rows.
    assert abs(v1.frame_entries - v2.frame_entries) <= 0.05 * max(
        v1.frame_entries, v2.frame_entries
    ), (
        f"v1/v2 wire-row counts diverged beyond tie-order slack: "
        f"{v1.frame_entries} vs {v2.frame_entries}"
    )
    assert v2.frame_bytes * MIN_WIRE_COMPARE_DIET <= v1.frame_bytes, (
        f"v2 frames ({v2.frame_bytes} bytes) are not "
        f"{MIN_WIRE_COMPARE_DIET}x smaller than v1 "
        f"({v1.frame_bytes} bytes)"
    )


def test_sharded_speedup(measurements):
    if not GATE_ARMED:
        pytest.skip(
            f"parallel speedup gate needs scale='full' and >= 4 CPUs "
            f"(scale={SCALE!r}, cpu_count={os.cpu_count()}); the measured "
            f"ratio is still recorded in BENCH_live.json"
        )
    replay_wall = measurements["replay"]["wall"]
    sharded_wall = measurements[4].wall_s
    speedup = replay_wall / sharded_wall
    assert speedup >= MIN_SPEEDUP, (
        f"4-shard execution is only {speedup:.2f}x faster than the "
        f"single-process baseline (required: {MIN_SPEEDUP}x)"
    )


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert "live_replay" in benchmarks
    for shards in SHARD_ARMS:
        entry = benchmarks[f"live_shards_{shards}"]
        assert entry["wall_time_s"] > 0
        assert entry["speedup_vs_replay"] > 0
        assert entry["overhead_vs_replay"] > 0
        assert entry["wire_version"] == 2
        if shards > 1:
            assert entry["bytes_per_entry"] > 0
    meta = payload["meta"]
    assert meta["pr_label"] == PR_LABEL
    assert meta["git_sha"]
    assert meta["speedup_gate_armed"] == GATE_ARMED
    assert meta["overhead_gate_armed"] == OVERHEAD_GATE_ARMED
