"""App-heavy NAS benchmark — the ``BENCH_nas.json`` trajectory.

The unified fabric's claim is that pulse batching pays off on
request/reply-dominated traffic, not just DGC beats.  This benchmark
drives the FT kernel skeleton — the all-to-all transpose, the most
communication-heavy NAS pattern (paper Sec. 5.2) — on the same seed
under three cores:

* **aggregated** — the aggregated columnar core: pooled pulse records,
  site-pair DGC runs (one aggregate entry and one batch-sink unwrap per
  run) and the steady-state receive diet;
* **batched** — the previous (PR-3) batched core: per-instant pulses
  with one 6-tuple entry and one typed dispatch per message;
* **per-event** — the pre-fabric baseline: one envelope and one kernel
  event per message.

and asserts (a) bit-identical simulation outcomes across all three
cores (delivery mechanics change heap traffic and allocations, never
behaviour) and (b) wall-clock speedups of at least ``MIN_AGG_SPEEDUP``
(aggregated over batched — NAS workers hold complete reference graphs,
so every TTB broadcast fans out site-pair runs) and ``MIN_SPEEDUP``
(batched over per-event).  Results land in ``BENCH_nas.json`` at the
repo root (see PERFORMANCE.md).

App traffic dominates by construction: at the full scale the transpose
moves ~200 MB of application payload against ~20 MB of DGC beats, so the
speedups measured here are the fabric's, not the beat wheel's.

Scale is controlled with ``REPRO_NAS_SCALE``:

* ``full`` (default) — 128 workers on 64 nodes, gates at 1.3x
  (batched) and 1.02x (aggregated over batched — measured 1.04-1.11x
  best-of-rounds on this machine; the gap is a few hundred ms of a ~4.5 s
  run, so the gate leaves noise margin and the artifact records the
  measured ratio);
* ``smoke`` — 24 workers on 12 nodes for CI smoke jobs (sub-second
  runs), gates relaxed to 0.95x and 1.05x.

``REPRO_NAS_AGGREGATE=0`` drops the aggregated run and its gate (the
CI matrix's aggregation-off axis: it produces a two-core artifact whose
``nas_ft_batched`` numbers are directly comparable to the aggregated
axis run).
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter
from repro.workloads.nas import kernel_spec, run_nas_kernel

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_nas.json"
PR_LABEL = "PR4"

SCALE = os.environ.get("REPRO_NAS_SCALE", "full")
AGGREGATE_AXIS = os.environ.get("REPRO_NAS_AGGREGATE", "1") != "0"
if SCALE == "smoke":
    AO_COUNT = 24
    NODE_COUNT = 12
    ITERATIONS = 10
    MIN_SPEEDUP = 1.05
    MIN_AGG_SPEEDUP = 0.95
else:
    AO_COUNT = 128
    NODE_COUNT = 64
    ITERATIONS = 20
    MIN_SPEEDUP = 1.3
    MIN_AGG_SPEEDUP = 1.02

SEED = 7
PAYLOAD_BYTES = 1_200
#: The paper's NAS configuration (Sec. 5.2): TTB=30s, TTA=61s.
NAS_CONFIG = DgcConfig(ttb=30.0, tta=61.0)


def _run_once(batched: bool, aggregated: bool):
    """One fixed-seed app-heavy run under controlled allocation."""
    reset_id_counter()
    spec = kernel_spec(
        "FT",
        ao_count=AO_COUNT,
        iterations=ITERATIONS,
        payload_bytes=PAYLOAD_BYTES,
    )
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_nas_kernel(
                spec,
                dgc=NAS_CONFIG,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
                batched_beats=batched,
                aggregate_site_pairs=aggregated,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _signature(result):
    """Everything that must be bit-identical across the cores."""
    return (
        result.app_time_s,
        result.dgc_time_s,
        result.collected_acyclic,
        result.collected_cyclic,
        result.dead_letters,
        round(result.bandwidth_mb, 9),
        round(result.app_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        result.sim_time_s,
    )


#: Best-of-N timing for the aggregated/batched pair (their gap is small
#: relative to wall-clock noise); the per-event run stays single-shot.
ROUNDS = 3


@pytest.fixture(scope="module")
def measurements():
    runs = {}
    if AGGREGATE_AXIS:
        runs["aggregated"] = _run_once(batched=True, aggregated=True)
    runs["batched"] = _run_once(batched=True, aggregated=False)
    for _ in range(ROUNDS - 1):
        if AGGREGATE_AXIS:
            wall, __ = _run_once(batched=True, aggregated=True)
            if wall < runs["aggregated"][0]:
                runs["aggregated"] = (wall, runs["aggregated"][1])
        wall, __ = _run_once(batched=True, aggregated=False)
        if wall < runs["batched"][0]:
            runs["batched"] = (wall, runs["batched"][1])
    runs["per_event"] = _run_once(batched=False, aggregated=False)
    speedup = runs["per_event"][0] / runs["batched"][0]
    agg_speedup = (
        runs["batched"][0] / runs["aggregated"][0] if AGGREGATE_AXIS else None
    )

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "kernel": "FT",
            "ao_count": AO_COUNT,
            "node_count": NODE_COUNT,
            "iterations": ITERATIONS,
            "payload_bytes": PAYLOAD_BYTES,
            "ttb": NAS_CONFIG.ttb,
            "tta": NAS_CONFIG.tta,
            "aggregate_axis": AGGREGATE_AXIS,
        },
        pr_label=PR_LABEL,
    )
    for key, bench_name in (
        ("aggregated", "nas_ft_aggregated"),
        ("batched", "nas_ft_batched"),
        ("per_event", "nas_ft_per_event"),
    ):
        if key not in runs:
            continue
        wall, result = runs[key]
        report.add(
            PerfMeasurement(
                name=bench_name,
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "app_time_s": result.app_time_s,
                    "dgc_time_s": result.dgc_time_s,
                    "app_bandwidth_mb": round(result.app_bandwidth_mb, 6),
                    "dgc_bandwidth_mb": round(result.dgc_bandwidth_mb, 6),
                },
            )
        )
    if agg_speedup is not None:
        report.benchmarks["nas_ft_aggregated"].extra["speedup_vs_batched"] = (
            round(agg_speedup, 3)
        )
    report.benchmarks["nas_ft_batched"].extra["speedup_vs_per_event"] = round(
        speedup, 3
    )
    report.write(BENCH_PATH)
    return {**runs, "speedup": speedup, "agg_speedup": agg_speedup}


def test_outcomes_are_bit_identical_across_cores(measurements):
    batched = _signature(measurements["batched"][1])
    per_event = _signature(measurements["per_event"][1])
    assert batched == per_event
    if AGGREGATE_AXIS:
        assert _signature(measurements["aggregated"][1]) == batched


def test_run_is_app_heavy_and_collects_everything(measurements):
    for key in ("aggregated", "batched", "per_event"):
        if key not in measurements:
            continue
        __, result = measurements[key]
        assert result.collected_acyclic + result.collected_cyclic == AO_COUNT
        assert result.dead_letters == 0
        # The point of the benchmark: application traffic dominates.
        assert result.app_bandwidth_mb > 3 * result.dgc_bandwidth_mb


@pytest.mark.skipif(not AGGREGATE_AXIS, reason="REPRO_NAS_AGGREGATE=0")
def test_aggregated_core_speedup(measurements):
    agg_speedup = measurements["agg_speedup"]
    assert agg_speedup >= MIN_AGG_SPEEDUP, (
        f"the aggregated columnar core is only {agg_speedup:.2f}x faster "
        f"than the per-entry batched core (required: {MIN_AGG_SPEEDUP}x "
        f"at scale={SCALE!r})"
    )


def test_batched_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"unified-fabric batching is only {speedup:.2f}x faster than "
        f"per-envelope delivery (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_run_does_materially_fewer_kernel_events(measurements):
    """The structural claim behind the speedup: O(distinct delivery
    instants) events instead of O(messages)."""
    __, batched = measurements["batched"]
    __, per_event = measurements["per_event"]
    assert batched.events_fired < per_event.events_fired / 4
    if AGGREGATE_AXIS:
        __, aggregated = measurements["aggregated"]
        assert aggregated.events_fired == batched.events_fired


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert benchmarks["nas_ft_batched"]["speedup_vs_per_event"] > 0
    if AGGREGATE_AXIS:
        assert benchmarks["nas_ft_aggregated"]["speedup_vs_batched"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    meta = payload["meta"]
    assert meta["ao_count"] == AO_COUNT
    # Provenance: every artifact names the code state that produced it.
    assert meta["pr_label"] == PR_LABEL
    assert meta["git_sha"]
