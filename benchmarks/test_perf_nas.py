"""App-heavy NAS benchmark — the ``BENCH_nas.json`` trajectory.

The unified fabric's claim is that pulse batching pays off on
request/reply-dominated traffic, not just DGC beats.  This benchmark
drives the FT kernel skeleton — the all-to-all transpose, the most
communication-heavy NAS pattern (paper Sec. 5.2) — twice on the same
seed:

* **batched** — every traffic kind staged typed (envelope-free) into the
  per-delivery-instant pulse: one kernel event per distinct instant;
* **per-event** — the pre-fabric baseline: one envelope and one kernel
  event per message.

and asserts (a) bit-identical simulation outcomes between the two
delivery modes (batching changes heap traffic and allocations, never
behaviour) and (b) a wall-clock speedup of at least ``MIN_SPEEDUP`` with
materially fewer kernel events.  Results land in ``BENCH_nas.json`` at
the repo root (see PERFORMANCE.md).

App traffic dominates by construction: at the full scale the transpose
moves ~200 MB of application payload against ~20 MB of DGC beats, so the
speedup measured here is the fabric's, not the beat wheel's.

Scale is controlled with ``REPRO_NAS_SCALE``:

* ``full`` (default) — 128 workers on 64 nodes, speedup gate at 1.3x;
* ``smoke`` — 24 workers on 12 nodes for CI smoke jobs (sub-second
  runs), gate relaxed to 1.05x.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter
from repro.workloads.nas import kernel_spec, run_nas_kernel

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_nas.json"

SCALE = os.environ.get("REPRO_NAS_SCALE", "full")
if SCALE == "smoke":
    AO_COUNT = 24
    NODE_COUNT = 12
    ITERATIONS = 10
    MIN_SPEEDUP = 1.05
else:
    AO_COUNT = 128
    NODE_COUNT = 64
    ITERATIONS = 20
    MIN_SPEEDUP = 1.3

SEED = 7
PAYLOAD_BYTES = 1_200
#: The paper's NAS configuration (Sec. 5.2): TTB=30s, TTA=61s.
NAS_CONFIG = DgcConfig(ttb=30.0, tta=61.0)


def _run_once(batched: bool):
    """One fixed-seed app-heavy run under controlled allocation."""
    reset_id_counter()
    spec = kernel_spec(
        "FT",
        ao_count=AO_COUNT,
        iterations=ITERATIONS,
        payload_bytes=PAYLOAD_BYTES,
    )
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_nas_kernel(
                spec,
                dgc=NAS_CONFIG,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
                batched_beats=batched,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _signature(result):
    """Everything that must be bit-identical between delivery modes."""
    return (
        result.app_time_s,
        result.dgc_time_s,
        result.collected_acyclic,
        result.collected_cyclic,
        result.dead_letters,
        round(result.bandwidth_mb, 9),
        round(result.app_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
        result.sim_time_s,
    )


@pytest.fixture(scope="module")
def measurements():
    batched_wall, batched = _run_once(batched=True)
    per_event_wall, per_event = _run_once(batched=False)
    speedup = per_event_wall / batched_wall

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "kernel": "FT",
            "ao_count": AO_COUNT,
            "node_count": NODE_COUNT,
            "iterations": ITERATIONS,
            "payload_bytes": PAYLOAD_BYTES,
            "ttb": NAS_CONFIG.ttb,
            "tta": NAS_CONFIG.tta,
        }
    )
    for name, wall, result in (
        ("nas_ft_batched", batched_wall, batched),
        ("nas_ft_per_event", per_event_wall, per_event),
    ):
        report.add(
            PerfMeasurement(
                name=name,
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "app_time_s": result.app_time_s,
                    "dgc_time_s": result.dgc_time_s,
                    "app_bandwidth_mb": round(result.app_bandwidth_mb, 6),
                    "dgc_bandwidth_mb": round(result.dgc_bandwidth_mb, 6),
                },
            )
        )
    report.benchmarks["nas_ft_batched"].extra["speedup_vs_per_event"] = round(
        speedup, 3
    )
    report.write(BENCH_PATH)
    return {
        "batched": (batched_wall, batched),
        "per_event": (per_event_wall, per_event),
        "speedup": speedup,
    }


def test_outcomes_are_bit_identical_across_delivery_modes(measurements):
    batched = _signature(measurements["batched"][1])
    per_event = _signature(measurements["per_event"][1])
    assert batched == per_event


def test_run_is_app_heavy_and_collects_everything(measurements):
    for __, result in (measurements["batched"], measurements["per_event"]):
        assert result.collected_acyclic + result.collected_cyclic == AO_COUNT
        assert result.dead_letters == 0
        # The point of the benchmark: application traffic dominates.
        assert result.app_bandwidth_mb > 3 * result.dgc_bandwidth_mb


def test_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"unified-fabric batching is only {speedup:.2f}x faster than "
        f"per-envelope delivery (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_run_does_materially_fewer_kernel_events(measurements):
    """The structural claim behind the speedup: O(distinct delivery
    instants) events instead of O(messages)."""
    __, batched = measurements["batched"]
    __, per_event = measurements["per_event"]
    assert batched.events_fired < per_event.events_fired / 4


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert benchmarks["nas_ft_batched"]["speedup_vs_per_event"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    assert payload["meta"]["ao_count"] == AO_COUNT
