"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one paper artifact (table/figure) at a
laptop-friendly scale and asserts the paper's *shape* (who wins, by
roughly what factor, where crossovers fall) rather than absolute
numbers.  Run with::

    pytest benchmarks/ --benchmark-only

Pass ``-s`` to also see the regenerated tables.
"""

from __future__ import annotations

import pytest

from repro.runtime.ids import reset_id_counter


@pytest.fixture(autouse=True)
def _fresh_ids():
    reset_id_counter()
    yield
    reset_id_counter()
