"""Perf throughput benchmark — the BENCH_perf.json trajectory.

Runs the fixed-seed scaled torture (paper Sec. 5.3) twice per core:

* **optimized** — the current hot paths;
* **naive** — the pre-optimization implementations, patched back in via
  :func:`repro.perf.naive_mode`.

and asserts (a) bit-identical simulation outcomes between the two cores
(same collected counts, same last-collected instant, same bandwidth) and
(b) a wall-clock speedup of at least ``MIN_SPEEDUP``.  A dense synthetic
clique workload is measured as a second trajectory point.  Results land
in ``BENCH_perf.json`` at the repo root so the numbers are tracked
across PRs (see PERFORMANCE.md).

Scale is controlled with ``REPRO_PERF_SCALE``:

* ``full`` (default) — 320 slaves, speedup gate at 2.0x;
* ``smoke`` — 96 slaves for CI smoke jobs, gate relaxed to 1.1x (tiny
  runs are noise-dominated; the artifact still gets uploaded).
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch, naive_mode
from repro.runtime.ids import reset_id_counter
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_complete_graph
from repro.workloads.torture import run_torture
from repro.world import World

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_perf.json"

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 96
    MIN_SPEEDUP = 1.1
else:
    SLAVE_COUNT = 320
    MIN_SPEEDUP = 2.0

SEED = 11
NODE_COUNT = 32
ACTIVE_DURATION = 150.0
TORTURE_CONFIG = DgcConfig(ttb=5.0, tta=12.0)
#: Best-of-N wall-clock to damp scheduler/allocator noise.
ROUNDS = 2

CLIQUE_PEERS = 12 if SCALE == "smoke" else 24


def _run_torture_once():
    """One fixed-seed scaled torture run under controlled allocation."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_torture(
                dgc=TORTURE_CONFIG,
                slave_count=SLAVE_COUNT,
                active_duration=ACTIVE_DURATION,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
                sample_period=25.0,
                collect_timeout=8_000.0,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _signature(result):
    """Everything that must be bit-identical between the two cores."""
    return (
        result.collected_acyclic,
        result.collected_cyclic,
        result.last_collected_s,
        result.dead_letters,
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
    )


def _run_clique_once():
    """Dense synthetic workload: one clique of peers, collected as a
    single consensus cycle — the worst-case referencer-table density."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            world = World(
                uniform_topology(8),
                dgc=DgcConfig(ttb=1.0, tta=3.0),
                seed=5,
                trace=False,
            )
            driver = world.create_driver()
            peers = build_complete_graph(world, driver, CLIQUE_PEERS)
            world.run_for(5.0)
            release_all(driver, peers)
            collected = world.run_until_collected(600.0)
    finally:
        gc.enable()
    return watch.elapsed, world, collected


@pytest.fixture(scope="module")
def measurements():
    runs = {"optimized": [], "naive": []}
    for _ in range(ROUNDS):
        runs["optimized"].append(_run_torture_once())
        with naive_mode():
            runs["naive"].append(_run_torture_once())

    best = {
        mode: min(pairs, key=lambda pair: pair[0])
        for mode, pairs in runs.items()
    }
    speedup = best["naive"][0] / best["optimized"][0]

    clique_wall, clique_world, clique_collected = _run_clique_once()

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "ttb": TORTURE_CONFIG.ttb,
            "tta": TORTURE_CONFIG.tta,
            "rounds": ROUNDS,
        }
    )
    for mode, (wall, result) in best.items():
        report.add(
            PerfMeasurement(
                name=f"torture_{mode}",
                wall_time_s=wall,
                events_fired=result.events_fired,
                # The naive kernel does not maintain the queue-depth
                # counter; omit the metric rather than reporting 0.
                peak_pending_events=(
                    result.peak_pending_events if mode == "optimized" else None
                ),
                sim_time_s=result.sim_time_s,
                extra={
                    "collected_acyclic": result.collected_acyclic,
                    "collected_cyclic": result.collected_cyclic,
                    "last_collected_s": result.last_collected_s,
                },
            )
        )
    report.benchmarks["torture_optimized"].extra["speedup_vs_naive"] = round(
        speedup, 3
    )
    report.add(
        PerfMeasurement(
            name="synthetic_clique_optimized",
            wall_time_s=clique_wall,
            events_fired=clique_world.kernel.fired_count,
            peak_pending_events=clique_world.kernel.peak_pending_count,
            sim_time_s=clique_world.kernel.now,
            extra={
                "peers": CLIQUE_PEERS,
                "collected": clique_collected,
                "collected_cyclic": clique_world.stats.collected_cyclic,
            },
        )
    )
    report.write(BENCH_PATH)
    return {
        "runs": runs,
        "best": best,
        "speedup": speedup,
        "clique_collected": clique_collected,
        "report": report,
    }


def test_outcomes_are_bit_identical_across_cores(measurements):
    """The optimization is a pure speedup: every run of either core on
    the same seed must produce the same simulation outcome."""
    signatures = {
        _signature(result)
        for pairs in measurements["runs"].values()
        for __, result in pairs
    }
    assert len(signatures) == 1, f"outcomes diverged: {signatures}"


def test_all_torture_runs_collected_everything(measurements):
    for pairs in measurements["runs"].values():
        for __, result in pairs:
            assert result.all_collected


def test_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"optimized core is only {speedup:.2f}x faster than the naive "
        f"core (required: {MIN_SPEEDUP}x at scale={SCALE!r})"
    )


def test_synthetic_clique_collects(measurements):
    assert measurements["clique_collected"]


def test_bench_artifact_written(measurements):
    assert BENCH_PATH.exists()
    import json

    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert "torture_optimized" in benchmarks
    assert "torture_naive" in benchmarks
    assert "synthetic_clique_optimized" in benchmarks
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    assert benchmarks["torture_optimized"]["peak_pending_events"] > 0
    # The naive kernel has no maintained counter: the key must be absent,
    # not a misleading zero.
    assert "peak_pending_events" not in benchmarks["torture_naive"]
