"""Perf throughput benchmark — the ``BENCH_perf.json`` trajectory.

Runs the fixed-seed scaled torture (paper Sec. 5.3) under three cores
on the same seed:

* **batched** — the current hot paths: beat-wheel heartbeat scheduling
  plus the pulse-batched DGC fan-out;
* **per-event** — the same core with per-event scheduling (one kernel
  event per tick and per DGC message), the baseline the beat wheel is
  measured against;
* **naive scans** — the batched core with the pre-optimization
  O(referencers) ``agree``/``expire`` scans patched back in via
  :func:`repro.perf.naive_mode` (the protocol-level algorithmic
  baseline; the PR-1 kernel/net constant-factor patch set is retired —
  ``BENCH_perf.json`` now records that trajectory across PRs).

and asserts (a) bit-identical simulation outcomes across *all* cores
(same collected counts, same last-collected instant, same bandwidth) and
(b) a wall-clock speedup of batched over per-event scheduling of at
least ``MIN_SPEEDUP``.  A dense synthetic clique workload is measured as
a second trajectory point.  Results land in ``BENCH_perf.json`` at the
repo root so the numbers are tracked across PRs (see PERFORMANCE.md);
the paper-scale point lives in ``BENCH_fig10.json``
(``benchmarks/test_perf_fig10.py``).

Scale is controlled with ``REPRO_PERF_SCALE``:

* ``full`` (default) — 320 slaves, speedup gate at 1.25x;
* ``smoke`` — 96 slaves for CI smoke jobs, gate relaxed to 1.02x (tiny
  runs are noise-dominated; the artifact still gets uploaded).
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch, naive_mode
from repro.runtime.ids import reset_id_counter
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_complete_graph
from repro.workloads.torture import run_torture
from repro.world import World

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_perf.json"

SCALE = os.environ.get("REPRO_PERF_SCALE", "full")
if SCALE == "smoke":
    SLAVE_COUNT = 96
    MIN_SPEEDUP = 1.02
else:
    SLAVE_COUNT = 320
    MIN_SPEEDUP = 1.25

SEED = 11
NODE_COUNT = 32
ACTIVE_DURATION = 150.0
TORTURE_CONFIG = DgcConfig(ttb=5.0, tta=12.0, beat_slots=16)
#: Best-of-N wall-clock to damp scheduler/allocator noise.
ROUNDS = 2

CLIQUE_PEERS = 12 if SCALE == "smoke" else 24


def _run_torture_once(batched: bool = True):
    """One fixed-seed scaled torture run under controlled allocation."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_torture(
                dgc=TORTURE_CONFIG,
                slave_count=SLAVE_COUNT,
                active_duration=ACTIVE_DURATION,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
                sample_period=25.0,
                collect_timeout=8_000.0,
                batched_beats=batched,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _signature(result):
    """Everything that must be bit-identical between the cores."""
    return (
        result.collected_acyclic,
        result.collected_cyclic,
        result.last_collected_s,
        result.dead_letters,
        round(result.total_bandwidth_mb, 9),
        round(result.dgc_bandwidth_mb, 9),
    )


def _run_clique_once():
    """Dense synthetic workload: one clique of peers, collected as a
    single consensus cycle — the worst-case referencer-table density."""
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            world = World(
                uniform_topology(8),
                dgc=DgcConfig(ttb=1.0, tta=3.0),
                seed=5,
                trace=False,
            )
            driver = world.create_driver()
            peers = build_complete_graph(world, driver, CLIQUE_PEERS)
            world.run_for(5.0)
            release_all(driver, peers)
            collected = world.run_until_collected(600.0)
    finally:
        gc.enable()
    return watch.elapsed, world, collected


@pytest.fixture(scope="module")
def measurements():
    runs = {"batched": [], "per_event": [], "naive_scans": []}
    for _ in range(ROUNDS):
        runs["batched"].append(_run_torture_once(batched=True))
        runs["per_event"].append(_run_torture_once(batched=False))
        with naive_mode():
            runs["naive_scans"].append(_run_torture_once(batched=True))

    best = {
        mode: min(pairs, key=lambda pair: pair[0])
        for mode, pairs in runs.items()
    }
    speedup = best["per_event"][0] / best["batched"][0]

    clique_wall, clique_world, clique_collected = _run_clique_once()

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "slave_count": SLAVE_COUNT,
            "node_count": NODE_COUNT,
            "ttb": TORTURE_CONFIG.ttb,
            "tta": TORTURE_CONFIG.tta,
            "beat_slots": TORTURE_CONFIG.beat_slots,
            "rounds": ROUNDS,
        },
        pr_label="PR4",
    )
    for mode, (wall, result) in best.items():
        report.add(
            PerfMeasurement(
                name=f"torture_{mode}",
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra={
                    "collected_acyclic": result.collected_acyclic,
                    "collected_cyclic": result.collected_cyclic,
                    "last_collected_s": result.last_collected_s,
                },
            )
        )
    report.benchmarks["torture_batched"].extra["speedup_vs_per_event"] = (
        round(speedup, 3)
    )
    report.benchmarks["torture_batched"].extra["speedup_vs_naive_scans"] = (
        round(best["naive_scans"][0] / best["batched"][0], 3)
    )
    report.add(
        PerfMeasurement(
            name="synthetic_clique_batched",
            wall_time_s=clique_wall,
            events_fired=clique_world.kernel.fired_count,
            peak_pending_events=clique_world.kernel.peak_pending_count,
            sim_time_s=clique_world.kernel.now,
            extra={
                "peers": CLIQUE_PEERS,
                "collected": clique_collected,
                "collected_cyclic": clique_world.stats.collected_cyclic,
            },
        )
    )
    report.write(BENCH_PATH)
    return {
        "runs": runs,
        "best": best,
        "speedup": speedup,
        "clique_collected": clique_collected,
        "report": report,
    }


def test_outcomes_are_bit_identical_across_cores(measurements):
    """The optimizations are pure speedups: every run of every core on
    the same seed must produce the same simulation outcome."""
    signatures = {
        _signature(result)
        for pairs in measurements["runs"].values()
        for __, result in pairs
    }
    assert len(signatures) == 1, f"outcomes diverged: {signatures}"


def test_all_torture_runs_collected_everything(measurements):
    for pairs in measurements["runs"].values():
        for __, result in pairs:
            assert result.all_collected


def test_wall_clock_speedup(measurements):
    speedup = measurements["speedup"]
    assert speedup >= MIN_SPEEDUP, (
        f"batched beat scheduling is only {speedup:.2f}x faster than "
        f"per-event scheduling (required: {MIN_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_batched_core_does_less_heap_traffic(measurements):
    batched = measurements["best"]["batched"][1]
    per_event = measurements["best"]["per_event"][1]
    assert batched.events_fired < per_event.events_fired


def test_synthetic_clique_collects(measurements):
    assert measurements["clique_collected"]


def test_bench_artifact_written(measurements):
    assert BENCH_PATH.exists()
    import json

    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    assert "torture_batched" in benchmarks
    assert "torture_per_event" in benchmarks
    assert "torture_naive_scans" in benchmarks
    assert "synthetic_clique_batched" in benchmarks
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
    assert benchmarks["torture_batched"]["peak_pending_events"] > 0
    assert benchmarks["torture_batched"]["speedup_vs_per_event"] > 0
