"""Baseline — RMI-style lease DGC vs the paper's DGC.

Claims benchmarked (Sec. 1/6): the reference-listing DGC has a
comparable per-edge cost profile for acyclic garbage but cannot collect
cycles at all, which is the gap the paper's algorithm closes.
"""

import pytest

from repro.baselines.comparison import run_probe
from repro.harness.report import render_table


@pytest.fixture(scope="module")
def outcomes():
    return {
        name: run_probe(name, chain_length=4, ring_size=4)
        for name in ("paper", "rmi")
    }


def test_baseline_rmi_vs_paper(benchmark, outcomes):
    benchmark.pedantic(
        lambda: run_probe("rmi", chain_length=3, ring_size=3),
        rounds=1,
        iterations=1,
    )
    print()
    print(
        render_table(
            ["collector", "chain collected", "ring collected", "DGC bytes"],
            [
                [
                    name,
                    str(outcome.chain_collected),
                    str(outcome.ring_collected),
                    outcome.dgc_bytes,
                ]
                for name, outcome in outcomes.items()
            ],
            title="Baseline — RMI-style reference listing",
        )
    )
    assert outcomes["paper"].chain_collected
    assert outcomes["paper"].ring_collected
    assert outcomes["rmi"].chain_collected
    # The headline incompleteness: cycles survive forever under RMI.
    assert not outcomes["rmi"].ring_collected


def test_baseline_rmi_acyclic_cost_same_order(outcomes):
    """Acyclic collection cost is the same order of magnitude (both are
    per-edge fixed-size periodic messages)."""
    paper_bytes = outcomes["paper"].dgc_bytes
    rmi_bytes = outcomes["rmi"].dgc_bytes
    assert rmi_bytes > 0 and paper_bytes > 0
    ratio = paper_bytes / rmi_bytes
    assert 0.05 < ratio < 20.0
