"""Fig. 8 — bandwidth overhead of the DGC on the NAS kernels.

Paper (256 AOs, class C, Grid'5000):

    CG 194351.81 MB -> 223639.83 MB   (+15.07 %)
    EP     69.75 MB ->    717.92 MB   (+929.28 %)
    FT  41999.48 MB ->  48187.78 MB   (+14.73 %)

Shape asserted here (scaled skeletons): CG and FT overheads are small
(single-digit to low-tens percent); EP's is an order of magnitude
larger because the DGC traffic dwarfs its application traffic.
"""

import pytest

from repro.core.config import NAS_CONFIG
from repro.harness.tables import fig8_table, run_comparisons

AO_COUNT = 32
NODES = 16
SEEDS = (1,)


@pytest.fixture(scope="module")
def comparisons():
    return run_comparisons(
        kernels=("CG", "EP", "FT"),
        ao_count=AO_COUNT,
        dgc=NAS_CONFIG,
        seeds=SEEDS,
        node_count=NODES,
    )


def test_fig8_bandwidth_overhead(benchmark, comparisons):
    def regenerate():
        return run_comparisons(
            kernels=("EP",),
            ao_count=AO_COUNT,
            dgc=NAS_CONFIG,
            seeds=SEEDS,
            node_count=NODES,
        )

    benchmark.pedantic(regenerate, rounds=1, iterations=1)
    by_kernel = {c.kernel: c for c in comparisons}
    print()
    print(fig8_table(comparisons))

    # Heavy-communication kernels: modest overhead (paper ~15 %).
    assert 0 < by_kernel["CG"].bandwidth_overhead_pct < 40
    assert 0 < by_kernel["FT"].bandwidth_overhead_pct < 40
    # EP: DGC dominates (paper ~929 %, an order of magnitude above).
    assert by_kernel["EP"].bandwidth_overhead_pct > 100
    assert (
        by_kernel["EP"].bandwidth_overhead_pct
        > 5 * by_kernel["CG"].bandwidth_overhead_pct
    )
    # DGC never reduces traffic.
    for comparison in comparisons:
        assert (
            comparison.dgc_bandwidth.mean > comparison.nodgc_bandwidth.mean
        )
