"""Naming-service benchmark — the ``BENCH_registry.json`` trajectory.

The naming service's claim is that placement and lease caching turn
far-site resolution from a cross-grid round trip into local work.  This
benchmark drives the lookup-heavy naming workload (bind/resolve/unbind
churn across sites, :mod:`repro.workloads.naming`) on the same seed
under three registry modes:

* **static_home** — placement ``home``, no leases: every far-site
  resolve is a ``registry.lookup``/``registry.reply`` round trip to one
  static node — the PR-3-shaped baseline;
* **cached** — placement ``home`` with lease-cached bindings (explicit
  invalidation on unbind, renewals batched on the beat wheel);
* **replicated** — a primary pushing full replicas; resolves never
  cross the wire at all.

and asserts (a) every mode resolves the same lookups and collects every
service, (b) resolve *throughput* (completed resolves per wall second)
of the cached and replicated modes beats the static-home baseline by at
least ``MIN_SPEEDUP``, and (c) the structural wins behind it: fewer
registry bytes on the wire and lower mean simulated resolve latency.
Results land in ``BENCH_registry.json`` at the repo root (see
PERFORMANCE.md).

Scale is controlled with ``REPRO_REGISTRY_SCALE``:

* ``full`` (default) — 128 clients on 64 nodes, 115k resolves, gate
  1.3x (measured 1.8-2.0x cached, 2.2-2.5x replicated best-of-rounds on
  this machine; the gate leaves noise margin and the artifact records
  the measured ratios);
* ``smoke`` — 32 clients on 16 nodes for CI smoke jobs (sub-second
  runs), gate relaxed to 1.05x.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig, RegistryConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter
from repro.workloads.naming import run_naming

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_registry.json"
PR_LABEL = "PR5"

SCALE = os.environ.get("REPRO_REGISTRY_SCALE", "full")
if SCALE == "smoke":
    CLIENT_COUNT = 32
    SERVICE_COUNT = 12
    NODE_COUNT = 16
    DURATION = 240.0
    MIN_SPEEDUP = 1.05
else:
    CLIENT_COUNT = 128
    SERVICE_COUNT = 32
    NODE_COUNT = 64
    DURATION = 600.0
    MIN_SPEEDUP = 1.3

SEED = 7
LOOKUP_PERIOD = 4.0
LOOKUP_BURST = 6
CHURN_PERIOD = 20.0
#: The paper's NAS beat with a margin over the 64-node MaxComm.
DGC = DgcConfig(ttb=30.0, tta=90.0)

MODES = {
    "static_home": RegistryConfig(),
    "cached": RegistryConfig(lease_ttb=8),
    "replicated": RegistryConfig(placement="replicated"),
}

#: Best-of-N timing: the modes differ by fractions of a second of wall
#: time at smoke scale, so each is timed over a few rounds.
ROUNDS = 3


def _run_once(registry: RegistryConfig):
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_naming(
                dgc=DGC,
                registry=registry,
                client_count=CLIENT_COUNT,
                service_count=SERVICE_COUNT,
                duration=DURATION,
                lookup_period=LOOKUP_PERIOD,
                lookup_burst=LOOKUP_BURST,
                churn_period=CHURN_PERIOD,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


@pytest.fixture(scope="module")
def measurements():
    runs = {}
    for name, registry in MODES.items():
        runs[name] = _run_once(registry)
    for _ in range(ROUNDS - 1):
        for name, registry in MODES.items():
            wall, __ = _run_once(registry)
            if wall < runs[name][0]:
                runs[name] = (wall, runs[name][1])

    def throughput(key):
        wall, result = runs[key]
        return result.resolves_completed / wall

    base = throughput("static_home")
    speedups = {
        name: throughput(name) / base for name in ("cached", "replicated")
    }

    report = PerfReport(
        meta={
            "scale": SCALE,
            "seed": SEED,
            "client_count": CLIENT_COUNT,
            "service_count": SERVICE_COUNT,
            "node_count": NODE_COUNT,
            "duration_s": DURATION,
            "lookup_period_s": LOOKUP_PERIOD,
            "lookup_burst": LOOKUP_BURST,
            "churn_period_s": CHURN_PERIOD,
            "lease_ttb": MODES["cached"].lease_ttb,
            "ttb": DGC.ttb,
            "tta": DGC.tta,
        },
        pr_label=PR_LABEL,
    )
    for name, (wall, result) in runs.items():
        extra = {
            "resolves_completed": result.resolves_completed,
            "resolve_throughput_per_s": round(
                result.resolves_completed / wall, 1
            ),
            "mean_resolve_latency_us": round(
                result.mean_resolve_latency_s * 1e6, 3
            ),
            "registry_mb": round(result.registry_bandwidth_mb, 6),
            "total_mb": round(result.total_bandwidth_mb, 6),
            "cache_hits": result.cache_hits,
            "replica_hits": result.replica_hits,
            "local_misses": result.local_misses,
            "remote_lookups": result.remote_lookups,
            "invalidations_sent": result.invalidations_sent,
            "renew_messages_sent": result.renew_messages_sent,
        }
        if name in speedups:
            extra["resolve_speedup_vs_static_home"] = round(
                speedups[name], 3
            )
        report.add(
            PerfMeasurement(
                name=f"naming_{name}",
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra=extra,
            )
        )
    report.write(BENCH_PATH)
    return {**runs, "speedups": speedups}


def test_every_mode_resolves_everything_and_collects(measurements):
    for key in MODES:
        __, result = measurements[key]
        assert result.all_collected
        assert result.dead_letters == 0
        assert result.resolves_completed == result.resolves_issued > 0
        assert result.collected_acyclic + result.collected_cyclic == (
            SERVICE_COUNT
        )
    # The same client schedules issued the same resolves in every mode
    # (static_home/cached/replicated differ only in where resolution is
    # served — bind acks travel identical paths).
    issued = {measurements[k][1].resolves_issued for k in MODES}
    assert len(issued) == 1


def test_modes_actually_exercise_their_machinery(measurements):
    __, static = measurements["static_home"]
    __, cached = measurements["cached"]
    __, replicated = measurements["replicated"]
    assert static.cache_hits == 0 and static.replica_hits == 0
    assert cached.cache_hits > cached.remote_lookups
    assert cached.renew_messages_sent > 0
    assert cached.invalidations_sent > 0
    assert replicated.remote_lookups == 0
    assert replicated.replica_hits > 0


def test_cached_and_replicated_resolve_throughput_beats_static_home(
    measurements,
):
    for mode, speedup in measurements["speedups"].items():
        assert speedup >= MIN_SPEEDUP, (
            f"{mode} resolve throughput is only {speedup:.2f}x the "
            f"static-home baseline (required: {MIN_SPEEDUP}x at "
            f"scale={SCALE!r})"
        )


def test_registry_bytes_on_wire_beat_static_home(measurements):
    __, static = measurements["static_home"]
    for mode in ("cached", "replicated"):
        __, result = measurements[mode]
        assert result.registry_bandwidth_mb < static.registry_bandwidth_mb


def test_resolve_latency_beats_static_home(measurements):
    __, static = measurements["static_home"]
    for mode in ("cached", "replicated"):
        __, result = measurements[mode]
        assert (
            result.mean_resolve_latency_s < static.mean_resolve_latency_s
        )


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    benchmarks = payload["benchmarks"]
    for mode in ("cached", "replicated"):
        entry = benchmarks[f"naming_{mode}"]
        assert entry["resolve_speedup_vs_static_home"] > 0
        assert entry["resolve_throughput_per_s"] > 0
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
