"""Naming-service benchmark — the ``BENCH_registry.json`` trajectory.

Two axes, selectable with ``REPRO_REGISTRY_AXES`` (``resolve`` |
``bindheavy`` | ``all``, the default):

**resolve** (the PR-5-shaped axis).  The naming service's claim is that
placement and lease caching turn far-site resolution from a cross-grid
round trip into local work.  This axis drives the lookup-heavy naming
workload (bind/resolve/unbind churn across sites,
:mod:`repro.workloads.naming`) on the same seed under three registry
modes:

* **static_home** — placement ``home``, no leases: every far-site
  resolve is a ``registry.lookup``/``registry.reply`` round trip to one
  static node — the PR-3-shaped baseline;
* **cached** — placement ``home`` with lease-cached bindings (explicit
  invalidation on unbind, renewals batched on the beat wheel);
* **replicated** — a primary pushing full replicas; resolves never
  cross the wire at all.

and asserts (a) every mode resolves the same lookups and collects every
service, (b) resolve *throughput* (completed resolves per wall second)
of the cached and replicated modes beats the static-home baseline by at
least ``MIN_SPEEDUP``, and (c) the structural wins behind it: fewer
registry bytes on the wire and lower mean simulated resolve latency.

**bindheavy** (the PR-8 axis).  The beat-quantized coherence channel's
claim is that update fan-out, not lookup traffic, is the replicated
registry's wire bottleneck at bind-heavy scale.  This axis binds
``BH_NAME_COUNT`` names (aliased over the services), draws Zipf-skewed
lookups and churns names in bursts, under ``placement="replicated"``
with ``coherence="eager"`` vs ``coherence="beat"``, and asserts the
beat channel wins at least ``MIN_BINDHEAVY_SPEEDUP`` on *combined*
resolve+bind throughput ((resolves + binds + unbinds applied) per wall
second) while putting strictly fewer registry bytes on the wire.  Both
arms apply the same binds and issue the same resolves — only the
coherence wire story differs.

Results land in ``BENCH_registry.json`` at the repo root (see
PERFORMANCE.md).  Scale is controlled with ``REPRO_REGISTRY_SCALE``:

* ``full`` (default) — resolve: 128 clients on 64 nodes, 115k resolves,
  gate 1.3x (measured 1.8-2.0x cached, 2.2-2.5x replicated
  best-of-rounds on this machine); bindheavy: 100k names / 64 services
  / 8 nodes, gate 1.25x (measured ~1.7x);
* ``smoke`` — 32 clients on 16 nodes (resolve) and 4k names
  (bindheavy) for CI smoke jobs (sub-second runs), gates relaxed to
  1.05x / 1.15x.
"""

from __future__ import annotations

import gc
import os
from pathlib import Path

import pytest

from repro.core.config import DgcConfig, RegistryConfig
from repro.net.topology import uniform_topology
from repro.perf import PerfMeasurement, PerfReport, Stopwatch
from repro.runtime.ids import reset_id_counter
from repro.workloads.naming import run_naming

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_PATH = REPO_ROOT / "BENCH_registry.json"
PR_LABEL = "PR8"

SCALE = os.environ.get("REPRO_REGISTRY_SCALE", "full")
AXES = os.environ.get("REPRO_REGISTRY_AXES", "all")
if AXES not in ("resolve", "bindheavy", "all"):
    raise RuntimeError(
        f"REPRO_REGISTRY_AXES must be resolve|bindheavy|all, got {AXES!r}"
    )
if SCALE == "smoke":
    CLIENT_COUNT = 32
    SERVICE_COUNT = 12
    NODE_COUNT = 16
    DURATION = 240.0
    MIN_SPEEDUP = 1.05
    BH_NAME_COUNT = 4_000
    BH_SERVICE_COUNT = 16
    BH_CLIENT_COUNT = 8
    BH_CHURN_BURST = 16
    MIN_BINDHEAVY_SPEEDUP = 1.15
else:
    CLIENT_COUNT = 128
    SERVICE_COUNT = 32
    NODE_COUNT = 64
    DURATION = 600.0
    MIN_SPEEDUP = 1.3
    BH_NAME_COUNT = 100_000
    BH_SERVICE_COUNT = 64
    BH_CLIENT_COUNT = 16
    BH_CHURN_BURST = 64
    MIN_BINDHEAVY_SPEEDUP = 1.25

SEED = 7
LOOKUP_PERIOD = 4.0
LOOKUP_BURST = 6
CHURN_PERIOD = 20.0
#: The paper's NAS beat with a margin over the 64-node MaxComm.
DGC = DgcConfig(ttb=30.0, tta=90.0)

#: Bind-heavy axis knobs (8 nodes keep the replica fan-out per update
#: at 7 — the contrast is eager per-update fan-out vs one batch per
#: (destination, beat), not node count).
BH_NODE_COUNT = 8
BH_DURATION = 120.0
BH_LOOKUP_PERIOD = 2.0
BH_LOOKUP_BURST = 4
BH_CHURN_PERIOD = 5.0
BH_ZIPF_S = 1.1
BH_LEASE_BEAT_S = 2.0
BH_DGC = DgcConfig(ttb=10.0, tta=30.0)

MODES = {
    "static_home": RegistryConfig(),
    "cached": RegistryConfig(lease_ttb=8),
    "replicated": RegistryConfig(placement="replicated"),
}

BINDHEAVY_MODES = {
    "bindheavy_eager": RegistryConfig(
        placement="replicated", coherence="eager",
        lease_beat_s=BH_LEASE_BEAT_S,
    ),
    "bindheavy_beat": RegistryConfig(
        placement="replicated", coherence="beat",
        lease_beat_s=BH_LEASE_BEAT_S,
    ),
}

RESOLVE_AXIS = AXES in ("resolve", "all")
BINDHEAVY_AXIS = AXES in ("bindheavy", "all")

#: Best-of-N timing: the modes differ by fractions of a second of wall
#: time at smoke scale, so each is timed over a few rounds.
ROUNDS = 3


def _run_once(registry: RegistryConfig):
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_naming(
                dgc=DGC,
                registry=registry,
                client_count=CLIENT_COUNT,
                service_count=SERVICE_COUNT,
                duration=DURATION,
                lookup_period=LOOKUP_PERIOD,
                lookup_burst=LOOKUP_BURST,
                churn_period=CHURN_PERIOD,
                topology=uniform_topology(NODE_COUNT),
                seed=SEED,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _run_bindheavy_once(registry: RegistryConfig):
    reset_id_counter()
    gc.collect()
    gc.disable()
    try:
        with Stopwatch() as watch:
            result = run_naming(
                dgc=BH_DGC,
                registry=registry,
                client_count=BH_CLIENT_COUNT,
                service_count=BH_SERVICE_COUNT,
                name_count=BH_NAME_COUNT,
                zipf_s=BH_ZIPF_S,
                churn_burst=BH_CHURN_BURST,
                duration=BH_DURATION,
                lookup_period=BH_LOOKUP_PERIOD,
                lookup_burst=BH_LOOKUP_BURST,
                churn_period=BH_CHURN_PERIOD,
                topology=uniform_topology(BH_NODE_COUNT),
                seed=SEED,
            )
    finally:
        gc.enable()
    return watch.elapsed, result


def _combined_ops(result) -> int:
    """The bind-heavy axis' throughput numerator: resolution *and*
    update work, since the coherence channel's point is cheap updates."""
    return (
        result.resolves_completed
        + result.binds_applied
        + result.unbinds_applied
    )


def _requires(axis_enabled: bool, axis: str) -> None:
    if not axis_enabled:
        pytest.skip(f"axis {axis!r} not measured under "
                    f"REPRO_REGISTRY_AXES={AXES!r}")


@pytest.fixture(scope="module")
def measurements():
    runs = {}
    if RESOLVE_AXIS:
        for name, registry in MODES.items():
            runs[name] = _run_once(registry)
    if BINDHEAVY_AXIS:
        for name, registry in BINDHEAVY_MODES.items():
            runs[name] = _run_bindheavy_once(registry)
    for _ in range(ROUNDS - 1):
        if RESOLVE_AXIS:
            for name, registry in MODES.items():
                wall, __ = _run_once(registry)
                if wall < runs[name][0]:
                    runs[name] = (wall, runs[name][1])
        if BINDHEAVY_AXIS:
            for name, registry in BINDHEAVY_MODES.items():
                wall, __ = _run_bindheavy_once(registry)
                if wall < runs[name][0]:
                    runs[name] = (wall, runs[name][1])

    speedups = {}
    if RESOLVE_AXIS:

        def throughput(key):
            wall, result = runs[key]
            return result.resolves_completed / wall

        base = throughput("static_home")
        for name in ("cached", "replicated"):
            speedups[name] = throughput(name) / base
    if BINDHEAVY_AXIS:
        eager_wall, eager = runs["bindheavy_eager"]
        beat_wall, beat = runs["bindheavy_beat"]
        speedups["bindheavy_beat"] = (
            (_combined_ops(beat) / beat_wall)
            / (_combined_ops(eager) / eager_wall)
        )

    report = PerfReport(
        meta={
            "scale": SCALE,
            "axes": AXES,
            "seed": SEED,
            "client_count": CLIENT_COUNT,
            "service_count": SERVICE_COUNT,
            "node_count": NODE_COUNT,
            "duration_s": DURATION,
            "lookup_period_s": LOOKUP_PERIOD,
            "lookup_burst": LOOKUP_BURST,
            "churn_period_s": CHURN_PERIOD,
            "lease_ttb": MODES["cached"].lease_ttb,
            "ttb": DGC.ttb,
            "tta": DGC.tta,
            "bindheavy": {
                "name_count": BH_NAME_COUNT,
                "service_count": BH_SERVICE_COUNT,
                "client_count": BH_CLIENT_COUNT,
                "node_count": BH_NODE_COUNT,
                "duration_s": BH_DURATION,
                "zipf_s": BH_ZIPF_S,
                "churn_burst": BH_CHURN_BURST,
                "churn_period_s": BH_CHURN_PERIOD,
                "lease_beat_s": BH_LEASE_BEAT_S,
                "ttb": BH_DGC.ttb,
                "tta": BH_DGC.tta,
            },
        },
        pr_label=PR_LABEL,
    )
    for name, (wall, result) in runs.items():
        extra = {
            "resolves_completed": result.resolves_completed,
            "resolve_throughput_per_s": round(
                result.resolves_completed / wall, 1
            ),
            "mean_resolve_latency_us": round(
                result.mean_resolve_latency_s * 1e6, 3
            ),
            "registry_mb": round(result.registry_bandwidth_mb, 6),
            "total_mb": round(result.total_bandwidth_mb, 6),
            "cache_hits": result.cache_hits,
            "replica_hits": result.replica_hits,
            "local_misses": result.local_misses,
            "remote_lookups": result.remote_lookups,
            "invalidations_sent": result.invalidations_sent,
            "renew_messages_sent": result.renew_messages_sent,
        }
        if name in speedups:
            extra["resolve_speedup_vs_static_home"] = round(
                speedups[name], 3
            )
        if name.startswith("bindheavy_"):
            extra.pop("resolve_speedup_vs_static_home", None)
            extra.update(
                {
                    "binds_applied": result.binds_applied,
                    "unbinds_applied": result.unbinds_applied,
                    "combined_ops": _combined_ops(result),
                    "combined_throughput_per_s": round(
                        _combined_ops(result) / wall, 1
                    ),
                    "coherence_staged": result.coherence_staged,
                    "coherence_coalesced": result.coherence_coalesced,
                    "coherence_messages_sent": (
                        result.coherence_messages_sent
                    ),
                    "pushes_sent": result.pushes_sent,
                }
            )
            if name == "bindheavy_beat":
                extra["combined_speedup_vs_eager"] = round(
                    speedups["bindheavy_beat"], 3
                )
        report.add(
            PerfMeasurement(
                name=f"naming_{name}" if not name.startswith("bindheavy_")
                else name,
                wall_time_s=wall,
                events_fired=result.events_fired,
                peak_pending_events=result.peak_pending_events,
                sim_time_s=result.sim_time_s,
                extra=extra,
            )
        )
    report.write(BENCH_PATH)
    return {**runs, "speedups": speedups}


# ----------------------------------------------------------------------
# Resolve axis
# ----------------------------------------------------------------------


def test_every_mode_resolves_everything_and_collects(measurements):
    _requires(RESOLVE_AXIS, "resolve")
    for key in MODES:
        __, result = measurements[key]
        assert result.all_collected
        assert result.dead_letters == 0
        assert result.resolves_completed == result.resolves_issued > 0
        assert result.collected_acyclic + result.collected_cyclic == (
            SERVICE_COUNT
        )
    # The same client schedules issued the same resolves in every mode
    # (static_home/cached/replicated differ only in where resolution is
    # served — bind acks travel identical paths).
    issued = {measurements[k][1].resolves_issued for k in MODES}
    assert len(issued) == 1


def test_modes_actually_exercise_their_machinery(measurements):
    _requires(RESOLVE_AXIS, "resolve")
    __, static = measurements["static_home"]
    __, cached = measurements["cached"]
    __, replicated = measurements["replicated"]
    assert static.cache_hits == 0 and static.replica_hits == 0
    assert cached.cache_hits > cached.remote_lookups
    assert cached.renew_messages_sent > 0
    assert cached.invalidations_sent > 0
    assert replicated.remote_lookups == 0
    assert replicated.replica_hits > 0


def test_cached_and_replicated_resolve_throughput_beats_static_home(
    measurements,
):
    _requires(RESOLVE_AXIS, "resolve")
    for mode in ("cached", "replicated"):
        speedup = measurements["speedups"][mode]
        assert speedup >= MIN_SPEEDUP, (
            f"{mode} resolve throughput is only {speedup:.2f}x the "
            f"static-home baseline (required: {MIN_SPEEDUP}x at "
            f"scale={SCALE!r})"
        )


def test_registry_bytes_on_wire_beat_static_home(measurements):
    _requires(RESOLVE_AXIS, "resolve")
    __, static = measurements["static_home"]
    for mode in ("cached", "replicated"):
        __, result = measurements[mode]
        assert result.registry_bandwidth_mb < static.registry_bandwidth_mb


def test_resolve_latency_beats_static_home(measurements):
    _requires(RESOLVE_AXIS, "resolve")
    __, static = measurements["static_home"]
    for mode in ("cached", "replicated"):
        __, result = measurements[mode]
        assert (
            result.mean_resolve_latency_s < static.mean_resolve_latency_s
        )


# ----------------------------------------------------------------------
# Bind-heavy axis: beat coherence vs eager fan-out
# ----------------------------------------------------------------------


def test_bindheavy_arms_do_the_same_work(measurements):
    _requires(BINDHEAVY_AXIS, "bindheavy")
    __, eager = measurements["bindheavy_eager"]
    __, beat = measurements["bindheavy_beat"]
    for result in (eager, beat):
        assert result.all_collected
        assert result.dead_letters == 0
        assert result.name_count == BH_NAME_COUNT
        assert result.resolves_completed == result.resolves_issued > 0
    # Same binds, same resolves: client/binder timelines are rng-driven
    # and identical; only the coherence wire story differs.  (Hit/miss
    # splits may differ inside the one-beat staleness window.)
    assert _combined_ops(eager) == _combined_ops(beat)
    assert eager.resolves_issued == beat.resolves_issued
    assert eager.binds_applied == beat.binds_applied >= BH_NAME_COUNT
    assert eager.coherence_staged == 0
    assert beat.coherence_staged > 0
    assert beat.coherence_coalesced > 0
    assert beat.coherence_messages_sent > 0


def test_bindheavy_beat_combined_throughput_beats_eager(measurements):
    _requires(BINDHEAVY_AXIS, "bindheavy")
    speedup = measurements["speedups"]["bindheavy_beat"]
    assert speedup >= MIN_BINDHEAVY_SPEEDUP, (
        f"beat coherence combined throughput is only {speedup:.2f}x the "
        f"eager baseline (required: {MIN_BINDHEAVY_SPEEDUP}x at "
        f"scale={SCALE!r})"
    )


def test_bindheavy_beat_puts_fewer_registry_bytes_on_wire(measurements):
    _requires(BINDHEAVY_AXIS, "bindheavy")
    __, eager = measurements["bindheavy_eager"]
    __, beat = measurements["bindheavy_beat"]
    assert beat.registry_bandwidth_mb < eager.registry_bandwidth_mb
    # And structurally: the per-update fan-out collapsed into per-beat
    # batches, far fewer messages than eager's one-per-(update, node).
    eager_fanout = (
        eager.binds_applied + eager.unbinds_applied
    ) * (BH_NODE_COUNT - 1)
    assert beat.coherence_messages_sent < eager_fanout / 10


def test_bench_artifact_written(measurements):
    import json

    assert BENCH_PATH.exists()
    payload = json.loads(BENCH_PATH.read_text())
    assert payload["schema"] == 1
    assert payload["meta"]["axes"] == AXES
    benchmarks = payload["benchmarks"]
    if RESOLVE_AXIS:
        for mode in ("cached", "replicated"):
            entry = benchmarks[f"naming_{mode}"]
            assert entry["resolve_speedup_vs_static_home"] > 0
            assert entry["resolve_throughput_per_s"] > 0
    if BINDHEAVY_AXIS:
        beat = benchmarks["bindheavy_beat"]
        assert beat["combined_speedup_vs_eager"] > 0
        assert beat["combined_throughput_per_s"] > 0
        assert benchmarks["bindheavy_eager"]["combined_ops"] == (
            beat["combined_ops"]
        )
    for entry in benchmarks.values():
        assert entry["wall_time_s"] > 0
        assert entry["events_per_second"] > 0
