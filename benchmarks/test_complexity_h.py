"""Sec. 4.3 — complexity: detection O(h*TTB), collection +TTA.

The paper gives no measured table for this claim; this benchmark makes
it measurable: rings of height h = 1, 3, 7, 15 are collected and the
detection delay is reported in TTB units.
"""

import pytest

from repro.harness.complexity import (
    collection_overhead,
    detection_bound_factor,
    sweep_ring_heights,
)
from repro.harness.report import render_table

SIZES = (2, 4, 8, 16)


@pytest.fixture(scope="module")
def points():
    return sweep_ring_heights(sizes=SIZES)


def test_complexity_detection_scales_with_h(benchmark, points):
    benchmark.pedantic(
        lambda: sweep_ring_heights(sizes=(8,)), rounds=1, iterations=1
    )
    print()
    print(
        render_table(
            ["ring", "h", "detect (s)", "detect (TTB)", "collect (s)",
             "bound factor"],
            [
                [
                    point.ring_size,
                    point.height,
                    f"{point.detection_s:.2f}",
                    f"{point.detection_beats:.1f}",
                    f"{point.collection_s:.2f}",
                    f"{detection_bound_factor(point):.2f}",
                ]
                for point in points
            ],
            title="Sec. 4.3 — detection/collection vs spanning-tree height",
        )
    )
    # Detection grows with h...
    detections = [point.detection_s for point in points]
    assert detections == sorted(detections)
    # ...within a small constant factor of h*TTB (O(h*TTB)).
    for point in points:
        assert detection_bound_factor(point) < 8.0
    # Larger rings take more beats in absolute terms.
    assert points[-1].detection_s > 2 * points[0].detection_s


def test_complexity_collection_adds_tta(points):
    """Full collection ~ detection + TTA (the doomed wait)."""
    for point in points:
        overhead = collection_overhead(point)
        assert overhead >= 0.8 * point.tta
        assert overhead <= 3 * point.tta + point.height * point.ttb
