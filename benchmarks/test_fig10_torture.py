"""Fig. 10 — the DGC torture test.

Paper (6401 AOs on 128 machines, 600 s of reference exchange):

* (a) TTB=30/TTA=150: idle wave after 600 s, acyclic trickle, then the
  consensus collapses the whole tangle; total 1699 MB;
* (b) TTB=300/TTA=1500: same shape, stretched ~10x; total 2063 MB;
* without DGC: 228 MB, last activity done at 1718 s.

Shape asserted here (scaled: 120 slaves + master): nothing collected
during the active phase; everything collected afterwards; the slow-beat
run collects several times later than the fast one; DGC traffic
dominates the reference-exchange app traffic in both.
"""

import pytest

from repro.core.config import TORTURE_FAST_CONFIG, TORTURE_SLOW_CONFIG
from repro.harness.figures import Fig10Results, fig10_report
from repro.harness.report import render_series
from repro.net.topology import uniform_topology
from repro.workloads.torture import run_torture

SLAVES = 120
DURATION = 600.0
NODES = 16
#: The paper's configurations (Fig. 10 (a) and (b)).
FAST = TORTURE_FAST_CONFIG
SLOW = TORTURE_SLOW_CONFIG


def run(dgc, seed=1):
    return run_torture(
        dgc=dgc,
        slave_count=SLAVES,
        active_duration=DURATION,
        topology=uniform_topology(NODES),
        seed=seed,
        sample_period=10.0,
    )


@pytest.fixture(scope="module")
def results():
    return Fig10Results(fast=run(FAST), slow=run(SLOW), no_dgc=run(None))


def test_fig10_torture_evolution(benchmark, results):
    benchmark.pedantic(lambda: run(FAST, seed=2), rounds=1, iterations=1)
    print()
    print(fig10_report(results))

    for result in (results.fast, results.slow):
        assert result.all_collected
        # Nothing collected during the active phase.
        for time, __, collected in result.series:
            if time < DURATION:
                assert collected == 0
        # DGC traffic is a major share of the total (Sec. 5.3: "the
        # communication overhead of the DGC is predominant").
        assert result.dgc_bandwidth_mb > 0.3 * result.app_bandwidth_mb
    # At the paper's fast beat it outright dominates.
    assert results.fast.dgc_bandwidth_mb > results.fast.app_bandwidth_mb

    # The slow beat collects much later (paper: Fig. 10(b)'s axis runs to
    # 18000 s vs (a)'s 2400 s, a ~7.5x stretch; we measure ~8x).
    assert results.slow.last_collected_s > 4 * results.fast.last_collected_s
    # The two DGC runs cost the same order of magnitude of bandwidth
    # (paper: 1699 MB vs 2063 MB).  Known deviation, recorded in
    # EXPERIMENTS.md: our byte model has no per-connection overhead, so
    # the TTB=300 run comes out somewhat *below* the TTB=30 run rather
    # than ~20 % above it.
    ratio = results.slow.total_bandwidth_mb / results.fast.total_bandwidth_mb
    assert 0.25 < ratio < 4.0
    # Both DGC runs cost several times the no-DGC app traffic (paper:
    # 1699/2063 MB vs 228 MB).
    assert (
        results.fast.total_bandwidth_mb
        > 1.5 * results.no_dgc.total_bandwidth_mb
    )


def test_fig10_idle_wave_shape(results):
    """The idle curve: near-zero during the run, a rising wave around the
    deadline, zero again once collected."""
    fast = results.fast
    mid_phase = [
        idle for time, idle, __ in fast.series if 30.0 < time < DURATION * 0.8
    ]
    assert mid_phase and max(mid_phase) < fast.ao_count / 3
    peak_idle = max(idle for __, idle, __unused in fast.series)
    assert peak_idle > fast.ao_count / 2
    assert fast.series[-1][1] == 0
