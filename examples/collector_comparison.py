#!/usr/bin/env python
"""Compare the paper's DGC against the related-work baselines.

Runs the same probe workload — an acyclic chain plus a reference ring —
under four collectors:

* ``paper``     — this reproduction (complete: acyclic + cyclic),
* ``rmi``       — lease-based reference listing (acyclic only),
* ``veiga``     — Veiga & Ferreira-style cycle detection messages
  (complete, but messages grow with the explored subgraph),
* ``lefessant`` — mark-propagation sketch (complete on quiescent graphs).

Run::

    python examples/collector_comparison.py
"""

from repro.baselines.comparison import run_all_probes
from repro.harness.report import render_table


def main() -> None:
    outcomes = run_all_probes(chain_length=4, ring_size=4)
    print(render_table(
        ["collector", "chain (acyclic)", "ring (cycle)", "DGC bytes"],
        [
            [
                outcome.name,
                "collected" if outcome.chain_collected else "LEAKED",
                "collected" if outcome.ring_collected else "LEAKED",
                outcome.dgc_bytes,
            ]
            for outcome in outcomes
        ],
        title="Same workload, four collectors",
    ))
    print()
    print(
        "The RMI-style collector leaks the ring: reference listing can "
        "never reclaim distributed cycles — the gap the paper's "
        "consensus-on-a-final-activity-clock closes with fixed-size "
        "messages and no extra connectivity."
    )


if __name__ == "__main__":
    main()
