#!/usr/bin/env python
"""Quickstart: watch the complete DGC collect acyclic and cyclic garbage.

Builds a tiny grid, creates a chain (acyclic garbage once released) and a
ring (a distributed cycle — the case RMI-style collectors can never
reclaim), releases the driver's references and lets the DGC work.

Run::

    python examples/quickstart.py
"""

from repro import DgcConfig, World, uniform_topology
from repro.workloads.app import Peer, link, release_all


def main() -> None:
    # A 4-node grid; 1 s heartbeat (TTB), 3 s alone-timeout (TTA).
    world = World(
        uniform_topology(4),
        dgc=DgcConfig(ttb=1.0, tta=3.0),
        seed=42,
        safety_checks=True,  # oracle-verified: raises on wrongful kills
    )
    driver = world.create_driver()  # stands in for main(): a DGC root
    ctx = driver.context

    # Acyclic garbage: head -> tail.
    head = ctx.create(Peer(), name="head")
    tail = ctx.create(Peer(), name="tail")
    link(driver, head, tail)

    # Cyclic garbage: r0 -> r1 -> r2 -> r0.
    ring = [ctx.create(Peer(), name=f"r{i}") for i in range(3)]
    for index, source in enumerate(ring):
        link(driver, source, ring[(index + 1) % 3], key="next")

    world.run_for(2.0)
    print(f"[t={world.kernel.now:6.1f}s] live activities:",
          len(world.live_non_roots()))

    # main() returns: the driver drops every stub.  Everything is now
    # garbage — but only transitively: the ring keeps itself alive
    # through its own references, which is exactly what the consensus on
    # the final activity clock untangles.
    release_all(driver, [head, tail] + ring)

    collected = world.run_until_collected(timeout=120.0)
    stats = world.stats
    print(f"[t={world.kernel.now:6.1f}s] all collected: {collected}")
    print(f"  acyclic (heartbeat/TTA) : {stats.collected_acyclic}")
    print(f"  cyclic  (consensus)     : {stats.collected_cyclic}")
    print(f"  wrongful collections    : {stats.safety_violations}")
    print(f"  DGC bytes on the wire   : {world.accountant.dgc_bytes}")
    for activity_id, time in sorted(
        stats.collected_by_id.items(), key=lambda item: item[1]
    ):
        print(f"    {time:7.2f}s  {activity_id}")


if __name__ == "__main__":
    main()
