#!/usr/bin/env python
"""Fig. 7 walkthrough: cycle detection step by step.

Reproduces the paper's two worked examples:

1. a garbage *compound* cycle (two rings joined at a junction) — one
   consensus collects everything;
2. the same compound with a single live (busy) member — nothing is
   collected until the member quiesces.

The script prints the DGC's lifecycle trace: clock increments, the
consensus, doomed-state propagation, terminations.

Run::

    python examples/cycle_walkthrough.py
"""

from repro import DgcConfig, World, uniform_topology
from repro.core import events
from repro.workloads.app import Peer, link, release_all
from repro.workloads.synthetic import build_compound_cycles


class Spinner(Peer):
    """A cycle member that stays busy until a deadline."""

    def do_spin_until(self, ctx, request, proxies):
        while ctx.now < request.data:
            yield ctx.sleep(1.0)


def print_trace(world, since=0.0):
    interesting = {
        events.DGC_CONSENSUS: "CONSENSUS",
        events.DGC_DOOMED: "DOOMED   ",
        events.ACTIVITY_TERMINATED: "COLLECTED",
    }
    for event in world.tracer:
        if event.time < since or event.kind not in interesting:
            continue
        detail = ""
        if event.kind == events.DGC_DOOMED:
            detail = "(propagated)" if event.details["propagated"] else "(originator)"
        elif event.kind == events.ACTIVITY_TERMINATED:
            detail = f"({event.details['reason']})"
        elif event.kind == events.DGC_CONSENSUS:
            detail = f"on clock {event.details['clock']}"
        print(f"  {event.time:7.2f}s {interesting[event.kind]} "
              f"{event.subject} {detail}")


def example_garbage_compound() -> None:
    print("=== Example 1: garbage compound cycle ===")
    world = World(uniform_topology(4), dgc=DgcConfig(ttb=1.0, tta=3.0),
                  seed=7, safety_checks=True)
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 3, 2)
    world.run_for(2.0)
    release_all(driver, ring_a + ring_b)
    world.run_until_collected(timeout=200.0)
    print_trace(world)
    print(f"collected: {world.stats.collected_total}/5\n")


def example_live_member_blocks() -> None:
    print("=== Example 2: a single live object blocks the compound ===")
    world = World(uniform_topology(4), dgc=DgcConfig(ttb=1.0, tta=3.0),
                  seed=7, safety_checks=True)
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, 3, 2)
    live = driver.context.create(Spinner(), name="live")
    link(driver, ring_a[0], live, key="to-live")
    link(driver, live, ring_b[0], key="back-in")
    world.run_for(2.0)
    driver.context.call(live, "spin_until", data=30.0)
    release_all(driver, ring_a + ring_b + [live])
    world.run_for(25.0)
    print(f"  t=25s: {len(world.live_non_roots())} survivors "
          f"(live member busy; collected so far: "
          f"{world.stats.collected_total})")
    world.run_until_collected(timeout=300.0)
    print(f"  after it quiesced, everything collapsed:")
    print_trace(world, since=25.0)
    print(f"collected: {world.stats.collected_total}/6")


if __name__ == "__main__":
    example_garbage_compound()
    example_live_member_blocks()
