#!/usr/bin/env python
"""Run the identical DGC stack in wall-clock time.

Swapping the deterministic simulation kernel for the thread-backed
:class:`repro.live.LiveKernel` executes the same protocol — heartbeats,
activity clocks, consensus, doomed propagation — against the real
clock: a 3-cycle is created, released, and collected live in about a
second (TTB=50 ms, TTA=250 ms).

Run::

    python examples/live_realtime.py
"""

import time

from repro import DgcConfig, World, uniform_topology
from repro.live import LiveKernel
from repro.workloads.app import Peer, link, release_all


def main() -> None:
    kernel = LiveKernel()
    world = World(
        uniform_topology(2),
        dgc=DgcConfig(ttb=0.05, tta=0.25),
        kernel=kernel,
        seed=1,
        safety_checks=True,
    )
    try:
        driver = world.create_driver()
        ring = [driver.context.create(Peer(), name=f"r{i}") for i in range(3)]
        for index, source in enumerate(ring):
            link(driver, source, ring[(index + 1) % 3], key="next")
        world.run_for(0.3)
        print(f"ring built; {len(world.live_non_roots())} live activities")

        wall_start = time.monotonic()
        release_all(driver, ring)
        collected = world.run_until_collected(
            timeout=20.0, check_interval=0.05
        )
        wall = time.monotonic() - wall_start
        print(f"collected: {collected} in {wall:.2f} real seconds")
        print(f"  cyclic: {world.stats.collected_cyclic}, "
              f"acyclic: {world.stats.collected_acyclic}, "
              f"wrongful: {world.stats.safety_violations}")
        print(f"  heartbeats on the wire: "
              f"{world.accountant.messages_for('dgc.message')}")
    finally:
        kernel.shutdown()


if __name__ == "__main__":
    main()
