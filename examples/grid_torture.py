#!/usr/bin/env python
"""The DGC torture test (paper Sec. 5.3 / Fig. 10), scaled down.

A master and a fleet of slaves exchange references for a while, weaving
"a very complex reference graph", then everything goes idle and the DGC
must collapse the tangle.  Prints the Fig. 10 idle/collected evolution
as an ASCII plot plus the bandwidth totals.

Run::

    python examples/grid_torture.py [slave_count] [active_seconds]
"""

import sys

from repro import DgcConfig, uniform_topology
from repro.harness.report import render_series, render_table
from repro.workloads.torture import run_torture


def main() -> None:
    slave_count = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    duration = float(sys.argv[2]) if len(sys.argv) > 2 else 180.0
    config = DgcConfig(ttb=10.0, tta=50.0)
    print(
        f"torture: {slave_count} slaves, {duration:.0f}s active phase, "
        f"TTB={config.ttb:.0f}s TTA={config.tta:.0f}s ..."
    )
    result = run_torture(
        dgc=config,
        slave_count=slave_count,
        active_duration=duration,
        topology=uniform_topology(8),
        seed=1,
        sample_period=duration / 40.0,
        safety_checks=True,
    )
    print(render_series(
        result.series,
        title=f"Idle / collected evolution ({result.ao_count} activities)",
    ))
    print()
    print(render_table(
        ["metric", "value"],
        [
            ["all collected", str(result.all_collected)],
            ["last collection (s)", f"{result.last_collected_s:.0f}"],
            ["cyclic / acyclic",
             f"{result.collected_cyclic} / {result.collected_acyclic}"],
            ["total bandwidth (MB)", f"{result.total_bandwidth_mb:.2f}"],
            ["  app (MB)", f"{result.app_bandwidth_mb:.2f}"],
            ["  DGC (MB)", f"{result.dgc_bandwidth_mb:.2f}"],
            ["dead letters", str(result.dead_letters)],
        ],
        title="Totals",
    ))


if __name__ == "__main__":
    main()
