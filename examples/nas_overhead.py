#!/usr/bin/env python
"""NAS kernel skeletons with and without the DGC (Figs. 8 and 9).

Runs the CG/EP/FT communication skeletons on a simulated grid, once with
the paper's DGC configuration (TTB=30 s, TTA=61 s) and once without, and
prints the two tables the paper reports: bandwidth overhead and time
overhead (including the DGC collection tail).

Run (a couple of minutes at the default scale)::

    python examples/nas_overhead.py [ao_count]
"""

import sys

from repro.harness.tables import fig8_table, fig9_table, run_comparisons


def main() -> None:
    ao_count = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    print(f"running CG/EP/FT skeletons with {ao_count} workers each ...")
    comparisons = run_comparisons(
        kernels=("CG", "EP", "FT"),
        ao_count=ao_count,
        seeds=(1,),
        node_count=16,
    )
    print()
    print(fig8_table(comparisons))
    print()
    print(fig9_table(comparisons))
    print()
    print(
        "Expected shape (paper, 256 AOs on Grid'5000): CG/FT bandwidth "
        "overhead ~15 %, EP ~929 %; run-time overhead negligible; all "
        "activities collected a few hundred seconds after the result."
    )


if __name__ == "__main__":
    main()
