"""Wall-clock execution of the *same* protocol stack.

The DGC, the activity runtime and the network fabric are all written
against the kernel interface (``now``/``schedule``/``schedule_at``); this
package provides :class:`LiveKernel`, a thread-backed implementation
driven by the real clock.  A ``World`` built on it executes the exact
same code paths as the simulator — activities serve requests, heartbeats
fire every (real) TTB, consensus collects cycles — in wall-clock time,
demonstrating the paper's middleware-integration story (Sec. 4.1)
without a single protocol change.

Usage::

    from repro.live import LiveKernel
    from repro import DgcConfig, World, uniform_topology

    kernel = LiveKernel()
    world = World(uniform_topology(2), dgc=DgcConfig(ttb=0.05, tta=0.2),
                  kernel=kernel)
    try:
        ...  # create activities, drop references
        world.run_until_collected(timeout=5.0)   # real seconds
    finally:
        kernel.shutdown()
"""

from repro.live.kernel import LiveKernel

__all__ = ["LiveKernel"]
