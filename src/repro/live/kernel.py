"""A wall-clock kernel with the same interface as the simulator's.

All callbacks run on one dedicated scheduler thread, preserving the
single-threaded execution model every component was written for; other
threads only *schedule* work (thread-safe) and *poll* state (reads of
counters/collections under the GIL).

``LiveKernel(virtual_time=True)`` selects the kernel's second mode: no
scheduler thread is started and the caller drives execution directly
through :meth:`advance`, which fires every event strictly before a
horizon inline on the calling thread.  This is the mode the sharded
world (:mod:`repro.shard`) runs each shard worker in — the coordinator
grants conservative horizons round by round, and determinism requires
exactly this single-threaded, caller-paced execution.  Everything else
(heap layout, beat wheel, counters) is shared between the modes.
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.beats import BeatWheel
from repro.sim.kernel import Event


class LiveKernel:
    """Drop-in kernel executing events at real (monotonic) times.

    Mirrors :class:`repro.sim.kernel.SimKernel`, including its two fast
    paths: the heap holds ``(time, seq, event, callback, args)`` tuples
    (``event`` is ``None`` for fire-and-forget work, so
    :meth:`schedule_fire_at` honours its event-less contract and never
    allocates a cancellable :class:`Event` for deliveries), and
    :meth:`schedule_periodic` batches aligned heartbeats through a
    :class:`repro.sim.beats.BeatWheel` driven by the scheduler thread —
    and its load counters (``pending_count`` / ``peak_pending_count`` /
    ``fired_count`` / ``scheduled_count``), so :class:`PerfReport` and
    the benchmarks read both kernels uniformly.
    """

    def __init__(self, *, virtual_time: bool = False) -> None:
        self._origin = time.monotonic()
        self._heap: List[
            Tuple[float, int, Optional[Event], Callable[..., None], tuple]
        ] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._shutdown = False
        self._fired = 0
        self._scheduled = 0
        self._pending = 0
        self._peak_pending = 0
        self._virtual = virtual_time
        #: The run/stop handshake: ``run`` blocks the calling thread on
        #: this condition; ``request_stop`` (typically fired from the
        #: scheduler thread by the world's termination hook) wakes it.
        self._run_cv = threading.Condition()
        self._stop_requested = False
        #: Beat wheel shared by all ``schedule_periodic`` callers; its
        #: lock is reentrant because bucket callbacks (running on the
        #: scheduler thread, under the lock) may register/stop members.
        self._beats = BeatWheel(self, lock=threading.RLock())
        self._thread: Optional[threading.Thread] = None
        if virtual_time:
            # Caller-driven mode: no scheduler thread; ``_now`` is the
            # virtual clock (the attribute doubles as the network
            # fabric's fast-clock handshake, exactly like SimKernel's).
            self._now = 0.0
        else:
            self._thread = threading.Thread(
                target=self._loop, name="repro-live-kernel", daemon=True
            )
            self._thread.start()

    # ------------------------------------------------------------------
    # Kernel interface (mirrors repro.sim.kernel.SimKernel)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since kernel start (monotonic wall clock), or the
        virtual clock in ``virtual_time`` mode."""
        if self._virtual:
            return self._now
        return time.monotonic() - self._origin

    @property
    def virtual_time(self) -> bool:
        return self._virtual

    @property
    def fired_count(self) -> int:
        return self._fired

    @property
    def scheduled_count(self) -> int:
        return self._scheduled

    @property
    def pending_count(self) -> int:
        """Live (non-cancelled) entries in the heap — same accounting as
        :attr:`SimKernel.pending_count`: cancelled events leave the
        count at cancel time, fired events when popped."""
        return self._pending

    @property
    def peak_pending_count(self) -> int:
        return self._peak_pending

    @property
    def beat_wheel(self) -> BeatWheel:
        return self._beats

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} with negative "
                f"delay {delay}"
            )
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        with self._wakeup:
            if self._shutdown:
                raise SimulationError("kernel is shut down")
            seq = next(self._seq)
            event = Event(when, seq, callback, args, label)
            event.owner = self
            heapq.heappush(self._heap, (when, seq, event, callback, args))
            self._scheduled += 1
            self._pending += 1
            if self._pending > self._peak_pending:
                self._peak_pending = self._pending
            self._wakeup.notify()
        return event

    def schedule_fire_at(
        self,
        when: float,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> None:
        """Mirror of :meth:`SimKernel.schedule_fire_at`: fire-and-forget
        work is pushed without allocating an :class:`Event`, honouring
        the documented event-less contract for never-cancelled
        deliveries."""
        with self._wakeup:
            if self._shutdown:
                raise SimulationError("kernel is shut down")
            heapq.heappush(
                self._heap, (when, next(self._seq), None, callback, args)
            )
            self._scheduled += 1
            self._pending += 1
            if self._pending > self._peak_pending:
                self._peak_pending = self._pending
            self._wakeup.notify()

    def _on_event_cancelled(self) -> None:
        """Event-owner hook (see :meth:`Event.cancel`): a cancelled
        event leaves ``pending_count`` immediately, its heap tuple is
        skipped when popped."""
        self._pending -= 1

    def schedule_periodic(
        self,
        period: float,
        callback: Callable[[], None],
        *,
        first_delay: Optional[float] = None,
        label: str = "beat",
    ):
        """Register ``callback`` on the beat wheel; same protocol as
        :meth:`SimKernel.schedule_periodic`.  Bucket events fire on the
        scheduler thread, so member callbacks keep the single-threaded
        execution model."""
        return self._beats.register(
            period, callback, first_delay=first_delay, label=label
        )

    def request_stop(self) -> None:
        """Wake a blocked :meth:`run` immediately (the event-driven
        quiescence path, mirroring :meth:`SimKernel.request_stop`): the
        world's termination hook — running on the scheduler thread —
        calls this the instant the live non-root counter hits zero, and
        the caller of ``run`` returns without polling.

        The request latches: one issued while no ``run`` is blocked
        (e.g. the racy instant right before ``run`` enters) is consumed
        by the *next* ``run``, which then returns immediately."""
        with self._run_cv:
            self._stop_requested = True
            self._run_cv.notify_all()

    def run(self, until: Optional[float] = None, max_events=None) -> int:
        """Block the calling thread until wall time reaches ``until`` or
        :meth:`request_stop` is called.

        The scheduler thread keeps firing events throughout; this only
        provides the ``world.run_for`` / ``run_until_collected``
        blocking semantics.
        """
        if self._virtual:
            raise SimulationError(
                "a virtual-time LiveKernel is driven by advance(); run() "
                "has no scheduler thread to wait on"
            )
        if until is None:
            raise SimulationError(
                "LiveKernel.run requires 'until' (it cannot drain an "
                "open-ended real-time queue)"
            )
        with self._run_cv:
            try:
                while not self._stop_requested:
                    remaining = until - self.now
                    if remaining <= 0:
                        break
                    self._run_cv.wait(timeout=remaining)
            finally:
                # Consume the request so the next run starts fresh.
                self._stop_requested = False
        return 0

    def run_until_quiescent(
        self,
        predicate: Callable[[], bool],
        check_interval: float,
        timeout: float,
    ) -> bool:
        """Poll ``predicate`` every ``check_interval`` real seconds."""
        if self._virtual:
            raise SimulationError(
                "a virtual-time LiveKernel is driven by advance(); "
                "quiescence is the shard coordinator's call"
            )
        deadline = self.now + timeout
        while True:
            if predicate():
                return True
            if self.now >= deadline:
                return predicate()
            time.sleep(min(check_interval, max(deadline - self.now, 0.001)))

    # ------------------------------------------------------------------
    # Virtual-time mode (the shard worker's drive shaft)
    # ------------------------------------------------------------------

    def next_event_time(self) -> Optional[float]:
        """The earliest live event's time, or ``None`` when the heap is
        empty — the per-round bid a shard worker reports so the
        coordinator can compute the global horizon."""
        heap = self._heap
        while heap:
            head = heap[0]
            event = head[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                continue
            return head[0]
        return None

    def advance(self, horizon: float) -> int:
        """Fire every event strictly before ``horizon`` inline, in heap
        order, then move the clock to ``horizon``.  Returns the number
        of events fired.

        The horizon is *exclusive*: an event at exactly ``horizon``
        stays pending, because the granting coordinator only guarantees
        that no cross-shard frame can arrive strictly before it.  During
        each callback ``now`` reads the event's own time (as under
        SimKernel), and callbacks may schedule freely, including before
        the horizon — new events inside the window fire in this same
        call.
        """
        if not self._virtual:
            raise SimulationError(
                "advance() requires LiveKernel(virtual_time=True)"
            )
        if horizon < self._now:
            raise SchedulingInPastError(
                f"cannot advance backwards to {horizon} (now={self._now})"
            )
        heap = self._heap
        fired = 0
        while heap:
            head = heap[0]
            if head[0] >= horizon:
                break
            event = head[2]
            if event is not None and event.cancelled:
                heapq.heappop(heap)
                continue
            heapq.heappop(heap)
            self._pending -= 1
            if event is not None:
                event.owner = None
            self._now = head[0]
            self._fired += 1
            fired += 1
            head[3](*head[4])
        self._now = horizon
        return fired

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, join_timeout: float = 2.0) -> None:
        """Stop the scheduler thread and tear down periodic work.

        Pending one-shot events are dropped; the beat wheel is *drained*
        — every registered periodic member is stopped and every bucket
        dropped — so nothing can fire a callback into a torn-down world
        afterwards: the scheduler thread is joined first, and any bucket
        event still in the heap finds its bucket gone (the wheel's
        ``_fire`` tolerates drained keys).
        """
        with self._wakeup:
            self._shutdown = True
            self._wakeup.notify()
        self.request_stop()
        if self._thread is not None:
            self._thread.join(timeout=join_timeout)
        self._beats.drain()

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while True:
                    if self._shutdown:
                        return
                    if not self._heap:
                        self._wakeup.wait()
                        continue
                    head = self._heap[0]
                    event = head[2]
                    if event is not None and event.cancelled:
                        heapq.heappop(self._heap)
                        continue
                    delay = head[0] - self.now
                    if delay > 0:
                        self._wakeup.wait(timeout=delay)
                        continue
                    heapq.heappop(self._heap)
                    self._pending -= 1
                    if event is not None:
                        event.owner = None
                    break
            # Fire outside the lock so callbacks can schedule freely.
            self._fired += 1
            try:
                head[3](*head[4])
            except Exception:  # pragma: no cover - surfaced by tests
                import traceback

                traceback.print_exc()
