"""A wall-clock kernel with the same interface as the simulator's.

All callbacks run on one dedicated scheduler thread, preserving the
single-threaded execution model every component was written for; other
threads only *schedule* work (thread-safe) and *poll* state (reads of
counters/collections under the GIL).
"""

from __future__ import annotations

import heapq
import itertools
import threading
import time
from typing import Any, Callable, List, Optional

from repro.errors import SchedulingInPastError, SimulationError
from repro.sim.kernel import Event


class LiveKernel:
    """Drop-in kernel executing events at real (monotonic) times."""

    def __init__(self) -> None:
        self._origin = time.monotonic()
        self._heap: List[Event] = []
        self._seq = itertools.count()
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._shutdown = False
        self._fired = 0
        self._scheduled = 0
        self._thread = threading.Thread(
            target=self._loop, name="repro-live-kernel", daemon=True
        )
        self._thread.start()

    # ------------------------------------------------------------------
    # Kernel interface (mirrors repro.sim.kernel.SimKernel)
    # ------------------------------------------------------------------

    @property
    def now(self) -> float:
        """Seconds since kernel start (monotonic)."""
        return time.monotonic() - self._origin

    @property
    def fired_count(self) -> int:
        return self._fired

    @property
    def scheduled_count(self) -> int:
        return self._scheduled

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        if delay < 0:
            raise SchedulingInPastError(
                f"cannot schedule {label or callback!r} with negative "
                f"delay {delay}"
            )
        return self.schedule_at(self.now + delay, callback, *args, label=label)

    def schedule_at(
        self,
        when: float,
        callback: Callable[..., None],
        *args: Any,
        label: str = "",
    ) -> Event:
        with self._wakeup:
            if self._shutdown:
                raise SimulationError("kernel is shut down")
            event = Event(when, next(self._seq), callback, args, label)
            heapq.heappush(self._heap, event)
            self._scheduled += 1
            self._wakeup.notify()
        return event

    def schedule_fire_at(
        self,
        when: float,
        callback: Callable[..., None],
        args: tuple = (),
    ) -> Event:
        """Mirror of :meth:`SimKernel.schedule_fire_at`; the live kernel
        has no event-less fast path, so this simply delegates."""
        return self.schedule_at(when, callback, *args)

    def run(self, until: Optional[float] = None, max_events=None) -> int:
        """Block the calling thread until wall time reaches ``until``.

        The scheduler thread keeps firing events throughout; this only
        provides the ``world.run_for`` blocking semantics.
        """
        if until is None:
            raise SimulationError(
                "LiveKernel.run requires 'until' (it cannot drain an "
                "open-ended real-time queue)"
            )
        remaining = until - self.now
        if remaining > 0:
            time.sleep(remaining)
        return 0

    def run_until_quiescent(
        self,
        predicate: Callable[[], bool],
        check_interval: float,
        timeout: float,
    ) -> bool:
        """Poll ``predicate`` every ``check_interval`` real seconds."""
        deadline = self.now + timeout
        while True:
            if predicate():
                return True
            if self.now >= deadline:
                return predicate()
            time.sleep(min(check_interval, max(deadline - self.now, 0.001)))

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def shutdown(self, join_timeout: float = 2.0) -> None:
        """Stop the scheduler thread; pending events are dropped."""
        with self._wakeup:
            self._shutdown = True
            self._wakeup.notify()
        self._thread.join(timeout=join_timeout)

    # ------------------------------------------------------------------
    # Scheduler loop
    # ------------------------------------------------------------------

    def _loop(self) -> None:
        while True:
            with self._wakeup:
                while True:
                    if self._shutdown:
                        return
                    if not self._heap:
                        self._wakeup.wait()
                        continue
                    head = self._heap[0]
                    if head.cancelled:
                        heapq.heappop(self._heap)
                        continue
                    delay = head.time - self.now
                    if delay > 0:
                        self._wakeup.wait(timeout=delay)
                        continue
                    event = heapq.heappop(self._heap)
                    break
            # Fire outside the lock so callbacks can schedule freely.
            self._fired += 1
            try:
                event.callback(*event.args)
            except Exception:  # pragma: no cover - surfaced by tests
                import traceback

                traceback.print_exc()
