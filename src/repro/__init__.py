"""repro — a complete distributed garbage collector for activities.

Reproduction of Caromel, Chazarain & Henrio, *Garbage Collecting the
Grid: A Complete DGC for Activities* (Middleware 2007).

Quickstart::

    from repro import DgcConfig, World, uniform_topology
    from repro.runtime import SinkBehavior

    world = World(uniform_topology(4), dgc=DgcConfig(ttb=1.0, tta=3.0))
    driver = world.create_driver()
    a = driver.context.create(SinkBehavior(), name="a")
    b = driver.context.create(SinkBehavior(), name="b")
    # ... build references, drop the driver's stubs, run:
    world.run_until_collected(timeout=60.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from repro.core.clock import ActivityClock
from repro.core.collector import DgcCollector
from repro.core.config import (
    DgcConfig,
    NAS_CONFIG,
    TORTURE_FAST_CONFIG,
    TORTURE_SLOW_CONFIG,
)
from repro.core.wire import DgcMessage, DgcResponse
from repro.errors import (
    ConfigurationError,
    ProtocolError,
    ReproError,
    RuntimeModelError,
)
from repro.net.topology import Site, Topology, grid5000_topology, uniform_topology
from repro.world import World, WorldStats

__version__ = "1.0.0"

__all__ = [
    "ActivityClock",
    "DgcCollector",
    "DgcConfig",
    "NAS_CONFIG",
    "TORTURE_FAST_CONFIG",
    "TORTURE_SLOW_CONFIG",
    "DgcMessage",
    "DgcResponse",
    "ConfigurationError",
    "ProtocolError",
    "ReproError",
    "RuntimeModelError",
    "Site",
    "Topology",
    "grid5000_topology",
    "uniform_topology",
    "World",
    "WorldStats",
    "__version__",
]
