"""Active-object middleware substrate (the paper's ProActive equivalent).

Provides the middleware notions the DGC algorithm consumes (paper Sec. 4.1):

* **activities** (active objects): remotely-accessible objects with their
  own request queue and service loop, with a well-defined *idle* predicate,
* **stubs/proxies** with shared *tags* so the disappearance of every stub
  for a given remote activity is observable without modifying the local GC,
* **futures** for transparently asynchronous method calls,
* **nodes** (JVM equivalents) hosting activities and a simulated local GC,
* **registry** and **dummy root activities**, the DGC roots.
"""

from repro.runtime.ids import ActivityId, make_activity_id, reset_id_counter
from repro.runtime.proxy import Proxy, ProxyTable, RemoteRef, StubTag
from repro.runtime.request import Reply, Request
from repro.runtime.future import Future
from repro.runtime.activeobject import Activity, ActivityContext, ActivityState, Sleep
from repro.runtime.behaviors import Behavior, FunctionBehavior, SinkBehavior
from repro.runtime.node import Node
from repro.runtime.registry import (
    LeaseCache,
    NamingService,
    Registry,
    RegistryShard,
)
from repro.runtime.localgc import LocalGarbageCollector

__all__ = [
    "ActivityId",
    "make_activity_id",
    "reset_id_counter",
    "Proxy",
    "ProxyTable",
    "RemoteRef",
    "StubTag",
    "Reply",
    "Request",
    "Future",
    "Activity",
    "ActivityContext",
    "ActivityState",
    "Sleep",
    "Behavior",
    "FunctionBehavior",
    "SinkBehavior",
    "Node",
    "Registry",
    "NamingService",
    "RegistryShard",
    "LeaseCache",
    "LocalGarbageCollector",
]
