"""Activity identifiers.

Paper Sec. 2.2 / Fig. 2: referencers only need to be *identified* by a
unique ID (the DGC never contacts them directly), while referenced
activities need a full remote reference.  ``ActivityId`` is the former;
:class:`repro.runtime.proxy.RemoteRef` is the latter.

Ids embed a monotonically increasing counter so they are totally ordered,
which the named Lamport clock uses to break value ties (paper Sec. 3.2).
"""

from __future__ import annotations

import itertools

#: An activity id is an opaque, totally-ordered string.
ActivityId = str

_counter = itertools.count(1)


def make_activity_id(name: str = "") -> ActivityId:
    """Mint a fresh unique activity id, optionally carrying a debug name.

    The numeric component is zero-padded so lexicographic order equals
    creation order, giving a deterministic total order for clock
    tie-breaking.
    """
    number = next(_counter)
    suffix = f":{name}" if name else ""
    return f"ao-{number:08d}{suffix}"


def reset_id_counter() -> None:
    """Reset the global counter (test isolation only)."""
    global _counter
    _counter = itertools.count(1)
