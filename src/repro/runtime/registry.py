"""Name registry for activities.

Paper Sec. 4.1: "registered active objects [are roots] as anyone can look
them up at any time".  Binding a name marks the target activity as a root
(never idle for the DGC); unbinding releases the root pin, making the
activity collectable again once unreferenced and idle.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.errors import RegistryError
from repro.runtime.proxy import RemoteRef


class Registry:
    """A world-global name -> remote reference table."""

    def __init__(self, world) -> None:
        self._world = world
        self._bindings: Dict[str, RemoteRef] = {}

    def bind(self, name: str, ref: RemoteRef) -> None:
        """Publish ``ref`` under ``name``; pins the target as a DGC root."""
        if name in self._bindings:
            raise RegistryError(f"name {name!r} already bound")
        activity = self._world.find_activity(ref.activity_id)
        if activity is None:
            raise RegistryError(f"cannot bind dead activity {ref.activity_id}")
        activity.is_root = True
        self._bindings[name] = ref

    def unbind(self, name: str) -> None:
        """Remove a binding and release the root pin."""
        try:
            ref = self._bindings.pop(name)
        except KeyError:
            raise RegistryError(f"name {name!r} is not bound") from None
        activity = self._world.find_activity(ref.activity_id)
        if activity is not None and not self._is_still_bound(ref):
            activity.is_root = False

    def lookup(self, name: str) -> RemoteRef:
        """Resolve a name; the caller must ``acquire`` the ref to hold it."""
        try:
            return self._bindings[name]
        except KeyError:
            raise RegistryError(f"name {name!r} is not bound") from None

    def resolve(self, name: str) -> Optional[RemoteRef]:
        """Non-raising :meth:`lookup`, used when serving lookups that
        arrived over the fabric (an unbound name is a normal outcome for
        a remote caller, not a programming error).

        To *issue* a lookup over the fabric — a message to wherever the
        registry lives, whose reply creates the reference-graph edge at
        delivery — use :meth:`ActivityContext.lookup
        <repro.runtime.activeobject.ActivityContext.lookup>`.
        """
        return self._bindings.get(name)

    def names(self) -> List[str]:
        return sorted(self._bindings)

    def _is_still_bound(self, ref: RemoteRef) -> bool:
        return any(
            bound.activity_id == ref.activity_id
            for bound in self._bindings.values()
        )
