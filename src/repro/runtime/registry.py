"""The naming service: a replicated, lease-cached registry shard fabric.

Paper Sec. 4.1: "registered active objects [are roots] as anyone can look
them up at any time".  Binding a name pins the target activity as a DGC
root (never idle); unbinding releases the pin, making the activity
collectable again once unreferenced and idle.

Where the seed design kept one world-global dict with a bolted-on fabric
path to a single static home node, the :class:`NamingService` is a
first-class fabric subsystem:

* every node owns a :class:`RegistryShard` — the bindings it is
  *authoritative* for, the replica copies pushed to it (``replicated``
  placement), its client-side :class:`LeaseCache`, and the lease-holder
  book it keeps as an authority;
* all operations are modelled as fabric traffic kinds riding the typed
  pulse transport: ``registry.bind`` (bind/unbind updates),
  ``registry.lookup``/``registry.reply`` (resolution),
  ``registry.invalidate`` (explicit coherence) and ``registry.renew``
  (batched lease renewals);
* placement (:class:`repro.core.config.RegistryConfig`) decides where the
  authoritative shard for a name lives: one static ``home`` node, a
  ``replicated`` primary pushing full replicas everywhere, or ``hashed``
  authorities spread across the grid;
* the **root pin lives at the authoritative shard**, maintained as a
  world-level refcount so the same activity bound under several names —
  possibly under *different* authorities in ``hashed`` placement — stays
  pinned until its last name is unbound;
* cache/replica hits still create the reference-graph edge at hit time
  (through the deserialization hook, like a reply would), so the DGC
  sees exactly the references the application holds;
* lease expiry and renewal ride the kernel's beat wheel: one sweep beat
  per node batches a whole beat's renewals into one ``registry.renew``
  message per authority, like heartbeats.

Consistency model (the paper never specifies one; we pick the classic
lease contract and test it): a lookup is served against the shard state
at *serve* time — a name bound after the lookup was issued but before it
is served resolves; a name bound after serving yields a negative reply
and the caller retries.  Cached and replicated resolves may be stale for
at most one propagation delay after an unbind (the invalidation is in
flight) plus, for leases, the TTL bound if the holder misses renewals.

**The beat-quantized coherence channel**
(:attr:`~repro.core.config.RegistryConfig.coherence` = ``"beat"``):
lease renewals always batched one message per (node, authority) per
beat, but the *authority-side* coherence fan-out — one
``registry.invalidate`` per lease holder, one ``registry.bind`` replica
push per node, one denial per missed renewal — was the remaining
O(holders) wire cost under bind/unbind churn.  With beat coherence
every such update is staged into a per-destination egress queue on the
authority's :class:`CoherenceChannel` (last writer wins per name: an
unbind+rebind inside one beat collapses to a single push, a
bind+unbind to a single invalidation) and flushed once per lease beat
by a lazily-registered beat-wheel sweep — the exact machinery
``registry.renew`` uses; the sweep stops itself when the queues drain —
as one multi-name ``registry.invalidate`` and one multi-binding
``registry.push`` per destination.  The flush is a protocol-safe
reordering in the :mod:`repro.net.reorder` sense over the registry's
natural FIFO streams — one per (destination, *name*), because a
receiving shard folds every coherence message into per-name state
(``replica[name]``, cache drop) exactly as the DGC folds messages into
per-referencer state: last-writer-wins leaves one survivor per (name,
beat), survivors of one name never reorder across beats, and every
delivery is *deferred* (never moved earlier) relative to its eager
instant.  (Per-(destination, kind) order is deliberately **not**
preserved — a re-staged name keeps its queue position while taking the
newer value — which is harmless for the same reason cross-stream DGC
order is free.)  A cached holder's staleness after an unbind is
bounded by one lease beat plus one propagation delay instead of the
eager one-propagation-delay — the price of turning O(holders x churn)
messages into O(destinations) per beat.  Eager coherence stays the
default and the A/B baseline; outcome equivalence eager-vs-beat is
gated in ``tests/integration/test_naming_equivalence.py``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple
from zlib import crc32

from repro.core.config import (
    COHERENCE_BEAT,
    PLACEMENT_HASHED,
    PLACEMENT_REPLICATED,
    RegistryConfig,
)
from repro.errors import RegistryError
from repro.net.kinds import (
    KIND_REGISTRY_BIND,
    KIND_REGISTRY_INVALIDATE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_PUSH,
    KIND_REGISTRY_RENEW,
    KIND_REGISTRY_REPLY,
)
from repro.runtime.future import Future
from repro.runtime.proxy import RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryBind,
    RegistryInvalidate,
    RegistryLookup,
    RegistryPush,
    RegistryRenew,
    RegistryRenewAck,
    RegistryReply,
)


class LeaseCache:
    """One node's client-side binding cache.

    Entries are ``name -> [ref, expires_at, used_since_sweep]``.  A hit
    is only served while the lease is live (lazy expiry check on every
    get, so an entry whose lease lapsed between sweeps never resolves);
    the per-node sweep beat evicts lapsed entries and collects the used,
    soon-expiring ones for batched renewal.  Capacity eviction is FIFO
    in insertion order — deterministic and O(1).
    """

    __slots__ = ("capacity", "entries", "capacity_evictions")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self.entries: Dict[str, list] = {}
        self.capacity_evictions = 0

    def get(self, name: str, now: float) -> Optional[RemoteRef]:
        entry = self.entries.get(name)
        if entry is None or now >= entry[1]:
            return None
        entry[2] = True
        return entry[0]

    def put(self, name: str, ref: RemoteRef, expires_at: float) -> None:
        entries = self.entries
        entry = entries.get(name)
        if entry is not None:
            entry[0] = ref
            entry[1] = expires_at
            return
        if len(entries) >= self.capacity:
            del entries[next(iter(entries))]
            self.capacity_evictions += 1
        entries[name] = [ref, expires_at, False]

    def extend(self, name: str, expires_at: float) -> None:
        entry = self.entries.get(name)
        if entry is not None and expires_at > entry[1]:
            entry[1] = expires_at

    def drop(self, name: str) -> None:
        self.entries.pop(name, None)

    def __len__(self) -> int:
        return len(self.entries)


class CoherenceChannel:
    """One authority node's beat-quantized coherence egress.

    Updates stage into per-destination queues as ``name -> ref``
    (``None`` = invalidate); a re-staged name keeps its queue position
    but takes the newer value — **last writer wins**, so only the
    update that still matters at flush time crosses the wire.  A flush
    empties every queue in destination-staging order, splitting each
    into its invalidation names and push bindings (disjoint name sets,
    so the two batches commute).  The result is a deferral-only,
    per-(destination, name)-FIFO reordering of the eager schedule's
    surviving updates (property-tested against
    :mod:`repro.net.reorder`).

    The channel is pure queue mechanics — no clock, no wire — so the
    safe-reordering property test can drive it directly.
    """

    __slots__ = ("queues", "staged", "coalesced")

    def __init__(self) -> None:
        #: dest node -> {name: Optional[ref]}, both insertion-ordered.
        self.queues: Dict[str, Dict[str, Optional[RemoteRef]]] = {}
        #: Updates ever staged (constituents, not messages).
        self.staged = 0
        #: Updates superseded by a later same-name staging before flush.
        self.coalesced = 0

    def stage(self, dest: str, name: str, ref: Optional[RemoteRef]) -> None:
        queue = self.queues.get(dest)
        if queue is None:
            queue = self.queues[dest] = {}
        if name in queue:
            self.coalesced += 1
        queue[name] = ref
        self.staged += 1

    @property
    def empty(self) -> bool:
        return not self.queues

    def pending(self) -> int:
        """Updates currently queued (post-coalescing)."""
        return sum(len(queue) for queue in self.queues.values())

    def flush(
        self,
    ) -> List[Tuple[str, Tuple[str, ...], Tuple[Tuple[str, RemoteRef], ...]]]:
        """Drain every queue: ``[(dest, invalidate_names, push_bindings)]``
        in destination-staging order, each sequence in name-staging
        order."""
        batches = []
        for dest, queue in self.queues.items():
            invalidates = tuple(
                name for name, ref in queue.items() if ref is None
            )
            pushes = tuple(
                (name, ref) for name, ref in queue.items() if ref is not None
            )
            batches.append((dest, invalidates, pushes))
        self.queues = {}
        return batches


class RegistryShard:
    """One node's slice of the naming service."""

    __slots__ = ("node_name", "authority", "replica", "cache",
                 "lease_holders", "sweep_handle", "channel",
                 "egress_handle")

    def __init__(self, node_name: str, cache_capacity: int) -> None:
        self.node_name = node_name
        #: Bindings this node is authoritative for (owns the root pin).
        self.authority: Dict[str, RemoteRef] = {}
        #: Full-copy bindings pushed by the primary (``replicated``).
        self.replica: Dict[str, RemoteRef] = {}
        #: Client-side lease cache (``home``/``hashed`` placements).
        self.cache = LeaseCache(cache_capacity)
        #: Authority-side lease book: name -> {holder node: lease expiry}.
        self.lease_holders: Dict[str, Dict[str, float]] = {}
        #: The node's live sweep-beat registration (``None`` while the
        #: cache is empty — the beat is registered lazily and stops
        #: itself when the cache drains).
        self.sweep_handle = None
        #: Authority-side coherence egress (``coherence="beat"``).
        self.channel = CoherenceChannel()
        #: The live coherence-sweep registration (``None`` while the
        #: egress queues are empty — registered lazily at first staging,
        #: stops itself when the queues drain, mirroring ``sweep_handle``).
        self.egress_handle = None


class NamingService:
    """The world's naming service; ``world.registry`` is an instance.

    Two API surfaces:

    * the **world-level control plane** (:meth:`bind`, :meth:`unbind`,
      :meth:`lookup`, :meth:`resolve`, :meth:`names`) — synchronous
      operations by non-active code (drivers, tests, ``main()``),
      applied directly at the authoritative shard, with coherence
      traffic (replica pushes, invalidations) still riding the fabric;
    * the **fabric plane** used by activities through their context
      (``ctx.lookup`` / ``ctx.bind`` / ``ctx.unbind``), where every
      operation is registry traffic routed by placement, resolves are
      served from the closest live copy (local authority, replica, or
      leased cache entry), and futures resolve at reply/hit time.
    """

    def __init__(self, world, config: Optional[RegistryConfig] = None) -> None:
        self._world = world
        self.config = config if config is not None else RegistryConfig()
        nodes = world.topology.nodes
        self._node_names: Tuple[str, ...] = tuple(nodes)
        self.home_node: str = (
            self.config.home_node
            if self.config.home_node is not None
            else nodes[0]
        )
        if self.home_node not in nodes:
            raise RegistryError(
                f"home node {self.home_node!r} is not in the topology"
            )
        self._replicated = self.config.placement == PLACEMENT_REPLICATED
        self._hashed = self.config.placement == PLACEMENT_HASHED
        self._caching = self.config.caching
        self._beat_coherence = self.config.coherence == COHERENCE_BEAT
        self._shards: Dict[str, RegistryShard] = {}
        #: World-level root-pin refcounts: an activity stays pinned while
        #: *any* name anywhere binds it (aliasing across names — and
        #: across authorities in ``hashed`` placement — is exact).
        self._pins: Dict[object, int] = {}
        # Instrumentation (the registry benchmark reads these).  The
        # ``*_hits`` counters only count resolves that actually found a
        # binding; a locally-served negative (authority/replica miss)
        # counts as ``local_misses``.
        self.resolves = 0
        self.authority_hits = 0
        self.replica_hits = 0
        self.cache_hits = 0
        self.local_misses = 0
        self.remote_lookups = 0
        self.binds_applied = 0
        self.unbinds_applied = 0
        self.invalidations_sent = 0
        self.renew_messages_sent = 0
        self.renew_names_sent = 0
        self.lease_grants = 0
        self.lease_expiries = 0
        # Coherence-channel instrumentation (``coherence="beat"`` only).
        #: Updates staged into egress queues (constituents).
        self.coherence_staged = 0
        #: Updates dropped by last-writer-wins coalescing before flush.
        self.coherence_coalesced = 0
        #: Batched coherence messages flushed (invalidates + pushes).
        self.coherence_messages_sent = 0
        #: Names carried by flushed coherence messages (constituents).
        self.coherence_names_sent = 0
        #: Batched ``registry.push`` messages sent.
        self.pushes_sent = 0

    # ------------------------------------------------------------------
    # Placement
    # ------------------------------------------------------------------

    def authority_node(self, name: str) -> str:
        """The node owning the authoritative shard for ``name``."""
        if self._hashed:
            index = crc32(name.encode("utf-8")) % len(self._node_names)
            return self._node_names[index]
        return self.home_node

    def shard(self, node_name: str) -> RegistryShard:
        shard = self._shards.get(node_name)
        if shard is None:
            shard = RegistryShard(node_name, self.config.cache_size)
            self._shards[node_name] = shard
        return shard

    @property
    def lease_beat_s(self) -> float:
        """The lease sweep period (and lease-duration unit)."""
        if self.config.lease_beat_s is not None:
            return self.config.lease_beat_s
        dgc = self._world.dgc_config
        return dgc.ttb if dgc is not None else 30.0

    @property
    def lease_duration_s(self) -> float:
        return self.config.lease_ttb * self.lease_beat_s

    # ------------------------------------------------------------------
    # Root pins
    # ------------------------------------------------------------------

    def _pin(self, ref: RemoteRef) -> None:
        pins = self._pins
        pins[ref.activity_id] = pins.get(ref.activity_id, 0) + 1
        activity = self._world.find_activity(ref.activity_id)
        if activity is not None:
            activity.is_root = True

    def _unpin(self, ref: RemoteRef) -> None:
        pins = self._pins
        count = pins.get(ref.activity_id, 0) - 1
        if count > 0:
            pins[ref.activity_id] = count
            return
        pins.pop(ref.activity_id, None)
        activity = self._world.find_activity(ref.activity_id)
        if activity is not None:
            activity.is_root = False

    def pin_count(self, activity_id) -> int:
        """How many live bindings pin ``activity_id`` (0 = collectable)."""
        return self._pins.get(activity_id, 0)

    # ------------------------------------------------------------------
    # World-level control plane (back-compatible Registry surface)
    # ------------------------------------------------------------------

    def bind(self, name: str, ref: RemoteRef) -> None:
        """Publish ``ref`` under ``name``; pins the target as a DGC root.

        Applied synchronously at the authoritative shard (the caller is
        non-active code standing next to it); replica pushes still ride
        the fabric in ``replicated`` placement.
        """
        authority = self.authority_node(name)
        ok, error = self._apply_bind(self.shard(authority), name, ref)
        if not ok:
            raise RegistryError(error)

    def unbind(self, name: str) -> None:
        """Remove a binding and release the root pin (the activity stays
        pinned while other names — under any authority — still bind it)."""
        authority = self.authority_node(name)
        ok, error = self._apply_unbind(self.shard(authority), name)
        if not ok:
            raise RegistryError(error)

    def lookup(self, name: str) -> RemoteRef:
        """Resolve a name from the authoritative table; the caller must
        ``acquire`` the ref to hold it."""
        ref = self.resolve(name)
        if ref is None:
            raise RegistryError(f"name {name!r} is not bound")
        return ref

    def resolve(self, name: str) -> Optional[RemoteRef]:
        """Non-raising :meth:`lookup` against the authoritative shard
        (an unbound name is a normal outcome, not a programming error).

        To *resolve* over the fabric — placement-routed traffic whose
        reply/hit creates the reference-graph edge — use
        :meth:`ActivityContext.lookup
        <repro.runtime.activeobject.ActivityContext.lookup>`.
        """
        return self.shard(self.authority_node(name)).authority.get(name)

    def names(self) -> List[str]:
        bound: List[str] = []
        for shard in self._shards.values():
            bound.extend(shard.authority)
        return sorted(bound)

    # ------------------------------------------------------------------
    # Authority-side state transitions
    # ------------------------------------------------------------------

    def _apply_bind(
        self, shard: RegistryShard, name: str, ref: RemoteRef
    ) -> Tuple[bool, str]:
        if name in shard.authority:
            return False, f"name {name!r} already bound"
        if self._world.find_activity(ref.activity_id) is None:
            return False, f"cannot bind dead activity {ref.activity_id}"
        self._pin(ref)
        shard.authority[name] = ref
        self.binds_applied += 1
        if self._replicated:
            self._push_replicas(shard.node_name, name, ref)
        return True, ""

    def _apply_unbind(
        self, shard: RegistryShard, name: str
    ) -> Tuple[bool, str]:
        ref = shard.authority.pop(name, None)
        if ref is None:
            return False, f"name {name!r} is not bound"
        self._unpin(ref)
        self.unbinds_applied += 1
        if self._replicated:
            self._invalidate_replicas(shard.node_name, name)
        elif self._caching:
            self._invalidate_holders(shard, name)
        return True, ""

    def _push_replicas(self, source: str, name: str, ref: RemoteRef) -> None:
        """Fan the new binding out to every other node's replica
        (``registry.bind`` traffic with no reply address) — or, under
        beat coherence, stage it into the egress queues for the next
        flush."""
        if self._beat_coherence:
            shard = self.shard(source)
            for dest in self._node_names:
                if dest != source:
                    self._stage_coherence(shard, dest, name, ref)
            return
        network = self._world.network
        size = self._world.wire_sizes.registry_update_size(True)
        update = RegistryBind(name=name, ref=ref, reply_to=None)
        for dest in self._node_names:
            if dest == source:
                continue
            network.send_typed(source, dest, KIND_REGISTRY_BIND, size, update)

    def _invalidate_replicas(self, source: str, name: str) -> None:
        if self._beat_coherence:
            shard = self.shard(source)
            for dest in self._node_names:
                if dest != source:
                    self._stage_coherence(shard, dest, name, None)
            return
        network = self._world.network
        size = self._world.wire_sizes.registry_batch_size(1)
        invalidate = RegistryInvalidate(names=(name,))
        for dest in self._node_names:
            if dest == source:
                continue
            network.send_typed(
                source, dest, KIND_REGISTRY_INVALIDATE, size, invalidate
            )
            self.invalidations_sent += 1

    def _invalidate_holders(self, shard: RegistryShard, name: str) -> None:
        """Push an explicit invalidation to every recorded lease holder
        of ``name`` (the unbind makes their entries stale).

        Holders whose lease already lapsed by the *authority's* book
        are invalidated too: the client's copy expires one propagation
        delay later than the book entry (the lease starts at reply
        delivery), so skipping "expired" holders would leave a live
        stale entry uninvalidated for that window.  An invalidation
        reaching a holder that already evicted the entry is a no-op.
        """
        holders = shard.lease_holders.pop(name, None)
        if not holders:
            return
        if self._beat_coherence:
            for holder in holders:
                self._stage_coherence(shard, holder, name, None)
            return
        network = self._world.network
        size = self._world.wire_sizes.registry_batch_size(1)
        invalidate = RegistryInvalidate(names=(name,))
        for holder in holders:
            network.send_typed(
                shard.node_name, holder, KIND_REGISTRY_INVALIDATE, size,
                invalidate,
            )
            self.invalidations_sent += 1

    # ------------------------------------------------------------------
    # Fabric plane: resolution
    # ------------------------------------------------------------------

    def lookup_from(self, node, sender, name: str) -> Future:
        """Resolve ``name`` on behalf of ``sender`` (hosted on ``node``):
        the engine behind ``ctx.lookup``.

        Serves from the closest live copy — the local authoritative
        table, the local replica (``replicated``), or a live lease-cache
        entry — resolving the future immediately and creating the DGC
        edge at hit time; otherwise sends a ``registry.lookup`` to the
        authority and resolves at reply delivery.
        """
        self.resolves += 1
        authority = self.authority_node(name)
        if node.name == authority:
            ref = self.shard(node.name).authority.get(name)
            if ref is not None:
                self.authority_hits += 1
            else:
                self.local_misses += 1
            return self._resolve_local(node, sender, ref)
        if self._replicated:
            ref = self.shard(node.name).replica.get(name)
            if ref is not None:
                self.replica_hits += 1
            else:
                self.local_misses += 1
            return self._resolve_local(node, sender, ref)
        if self._caching:
            ref = self.shard(node.name).cache.get(
                name, self._world.kernel.now
            )
            if ref is not None:
                self.cache_hits += 1
                return self._resolve_local(node, sender, ref)
        self.remote_lookups += 1
        future, reply_to = node.register_pending_future(sender)
        lookup = RegistryLookup(name=name, reply_to=reply_to)
        self._world.network.send_typed(
            node.name,
            authority,
            KIND_REGISTRY_LOOKUP,
            self._world.wire_sizes.registry_lookup_size(),
            lookup,
        )
        return future

    @staticmethod
    def _resolve_local(node, sender, ref: Optional[RemoteRef]) -> Future:
        future = Future()
        if ref is None:
            future.resolve(None)
        else:
            proxy = node.deserialize_ref(sender, ref)
            future.resolve(proxy, (proxy,))
        return future

    def serve_lookup(self, node, lookup: RegistryLookup) -> None:
        """Serve a fabric lookup at the authoritative shard: answer from
        the authority table at serve time, granting a lease on positive,
        cacheable replies (and recording the holder for invalidation)."""
        shard = self.shard(node.name)
        ref = shard.authority.get(lookup.name)
        reply_to = lookup.reply_to
        lease_s = 0.0
        if ref is not None and self._caching and reply_to.node != node.name:
            lease_s = self.lease_duration_s
            holders = shard.lease_holders.get(lookup.name)
            if holders is None:
                holders = shard.lease_holders[lookup.name] = {}
            holders[reply_to.node] = self._world.kernel.now + lease_s
            self.lease_grants += 1
        reply = RegistryReply(
            future_id=reply_to.future_id,
            target_activity=reply_to.activity,
            name=lookup.name,
            ref=ref,
            lease_s=lease_s,
        )
        self._world.network.send_typed(
            node.name,
            reply_to.node,
            KIND_REGISTRY_REPLY,
            self._world.wire_sizes.registry_reply_size(ref is not None),
            reply,
        )

    def note_cacheable_reply(self, node, reply: RegistryReply) -> None:
        """Client side of a lease grant: cache the binding and make sure
        the node's sweep beat is running."""
        shard = self.shard(node.name)
        shard.cache.put(
            reply.name, reply.ref, self._world.kernel.now + reply.lease_s
        )
        self._ensure_sweep(shard)

    # ------------------------------------------------------------------
    # Fabric plane: bind/unbind
    # ------------------------------------------------------------------

    def bind_from(
        self, node, sender, name: str, ref: Optional[RemoteRef]
    ) -> Future:
        """Bind (``ref`` set) or unbind (``ref`` ``None``) over the
        fabric: the engine behind ``ctx.bind`` / ``ctx.unbind``.

        Returns a future resolving ``True`` when the authoritative shard
        applied the update, ``False`` when it rejected it (conflict,
        dead target, unknown name).
        """
        authority = self.authority_node(name)
        if node.name == authority:
            if ref is None:
                ok, _error = self._apply_unbind(self.shard(authority), name)
            else:
                ok, _error = self._apply_bind(self.shard(authority), name, ref)
            future = Future()
            future.resolve(ok)
            return future
        future, reply_to = node.register_pending_future(sender)
        update = RegistryBind(name=name, ref=ref, reply_to=reply_to)
        self._world.network.send_typed(
            node.name,
            authority,
            KIND_REGISTRY_BIND,
            self._world.wire_sizes.registry_update_size(ref is not None),
            update,
        )
        return future

    def serve_bind(self, node, update: RegistryBind) -> None:
        """Apply a fabric bind/unbind at its destination: the authority
        applies and acknowledges; a non-authority destination is a
        replica push (no reply address) and just installs the copy."""
        shard = self.shard(node.name)
        if update.reply_to is None:
            # Replica push from the primary (``replicated`` placement).
            shard.replica[update.name] = update.ref
            return
        if update.ref is None:
            ok, error = self._apply_unbind(shard, update.name)
        else:
            ok, error = self._apply_bind(shard, update.name, update.ref)
        reply_to = update.reply_to
        ack = RegistryAck(
            future_id=reply_to.future_id,
            target_activity=reply_to.activity,
            name=update.name,
            ok=ok,
            error=error,
        )
        self._world.network.send_typed(
            node.name,
            reply_to.node,
            KIND_REGISTRY_REPLY,
            self._world.wire_sizes.registry_ack_size(),
            ack,
        )

    # ------------------------------------------------------------------
    # Leases: invalidation and the renewal sweep
    # ------------------------------------------------------------------

    def apply_invalidate(self, node, invalidate: RegistryInvalidate) -> None:
        """Drop local knowledge of the named bindings (cache entries and
        replica copies alike)."""
        shard = self.shard(node.name)
        for name in invalidate.names:
            shard.cache.drop(name)
            shard.replica.pop(name, None)

    def serve_renew(self, node, renew: RegistryRenew) -> None:
        """Authority side of a renewal batch: extend the leases of names
        still bound, invalidate the ones that vanished."""
        shard = self.shard(node.name)
        now = self._world.kernel.now
        lease_s = self.lease_duration_s
        granted = []
        gone = []
        for name in renew.names:
            if name in shard.authority:
                granted.append(name)
                holders = shard.lease_holders.get(name)
                if holders is None:
                    holders = shard.lease_holders[name] = {}
                holders[renew.node] = now + lease_s
            else:
                gone.append(name)
        network = self._world.network
        sizes = self._world.wire_sizes
        if granted:
            network.send_typed(
                node.name, renew.node, KIND_REGISTRY_RENEW,
                sizes.registry_batch_size(len(granted)),
                RegistryRenewAck(names=tuple(granted), lease_s=lease_s),
            )
        if gone:
            if self._beat_coherence:
                for name in gone:
                    self._stage_coherence(shard, renew.node, name, None)
            else:
                network.send_typed(
                    node.name, renew.node, KIND_REGISTRY_INVALIDATE,
                    sizes.registry_batch_size(len(gone)),
                    RegistryInvalidate(names=tuple(gone)),
                )
                self.invalidations_sent += 1

    # ------------------------------------------------------------------
    # The beat-quantized coherence channel (``coherence="beat"``)
    # ------------------------------------------------------------------

    def _stage_coherence(
        self, shard: RegistryShard, dest: str, name: str,
        ref: Optional[RemoteRef],
    ) -> None:
        """Stage one coherence update (``ref`` = push, ``None`` =
        invalidate) into the authority's egress queue for ``dest`` and
        make sure the flush beat is running."""
        channel = shard.channel
        before = channel.coalesced
        channel.stage(dest, name, ref)
        self.coherence_staged += 1
        self.coherence_coalesced += channel.coalesced - before
        self._ensure_egress(shard)

    def _ensure_egress(self, shard: RegistryShard) -> None:
        if shard.egress_handle is not None:
            return
        shard.egress_handle = self._world.kernel.schedule_periodic(
            self.lease_beat_s,
            lambda: self._flush_coherence(shard),
            label=f"registry.coherence:{shard.node_name}",
        )

    def _flush_coherence(self, shard: RegistryShard) -> None:
        """One coherence beat on one authority node: drain the egress
        queues into one multi-name ``registry.invalidate`` and one
        multi-binding ``registry.push`` per destination.  Stops itself
        when the queues are already empty (re-registered lazily by the
        next staging), mirroring the lease-cache renew sweep."""
        channel = shard.channel
        if channel.empty:
            shard.egress_handle.stop()
            shard.egress_handle = None
            return
        network = self._world.network
        sizes = self._world.wire_sizes
        source = shard.node_name
        for dest, invalidates, pushes in channel.flush():
            if invalidates:
                network.send_typed(
                    source, dest, KIND_REGISTRY_INVALIDATE,
                    sizes.registry_batch_size(len(invalidates)),
                    RegistryInvalidate(names=invalidates),
                )
                self.invalidations_sent += 1
                self.coherence_messages_sent += 1
                self.coherence_names_sent += len(invalidates)
            if pushes:
                network.send_typed(
                    source, dest, KIND_REGISTRY_PUSH,
                    sizes.registry_push_size(len(pushes)),
                    RegistryPush(bindings=pushes),
                )
                self.pushes_sent += 1
                self.coherence_messages_sent += 1
                self.coherence_names_sent += len(pushes)

    def apply_push(self, node, push: RegistryPush) -> None:
        """Install a flushed batch of replica bindings (no ack) — the
        beat-coherence counterpart of the eager no-reply
        :meth:`serve_bind` replica path."""
        replica = self.shard(node.name).replica
        for name, ref in push.bindings:
            replica[name] = ref

    def apply_renew_ack(self, node, ack: RegistryRenewAck) -> None:
        """Client side of a granted renewal: extend the cached leases."""
        cache = self.shard(node.name).cache
        expires_at = self._world.kernel.now + ack.lease_s
        for name in ack.names:
            cache.extend(name, expires_at)

    def _ensure_sweep(self, shard: RegistryShard) -> None:
        if shard.sweep_handle is not None:
            return
        shard.sweep_handle = self._world.kernel.schedule_periodic(
            self.lease_beat_s,
            lambda: self._sweep(shard),
            label=f"registry.sweep:{shard.node_name}",
        )

    def _sweep(self, shard: RegistryShard) -> None:
        """One lease beat on one node: evict lapsed entries, then renew
        — in one batched ``registry.renew`` per authority — every entry
        that was used since the last sweep and lapses within the next
        beat.  Stops itself when the cache drains (re-registered lazily
        by the next lease grant)."""
        now = self._world.kernel.now
        horizon = now + self.lease_beat_s
        cache = shard.cache
        entries = cache.entries
        expired = [name for name, entry in entries.items() if entry[1] <= now]
        for name in expired:
            del entries[name]
        self.lease_expiries += len(expired)
        if not entries:
            shard.sweep_handle.stop()
            shard.sweep_handle = None
            return
        due: Dict[str, List[str]] = {}
        for name, entry in entries.items():
            used = entry[2]
            entry[2] = False
            if used and entry[1] <= horizon:
                due.setdefault(self.authority_node(name), []).append(name)
        network = self._world.network
        sizes = self._world.wire_sizes
        for authority, names in due.items():
            network.send_typed(
                shard.node_name, authority, KIND_REGISTRY_RENEW,
                sizes.registry_batch_size(len(names)),
                RegistryRenew(node=shard.node_name, names=tuple(names)),
            )
            self.renew_messages_sent += 1
            self.renew_names_sent += len(names)


#: Backward-compatible alias: the seed code base (and its tests) called
#: the world's naming table ``Registry``.
Registry = NamingService
