"""Futures for asynchronous method calls.

Paper Sec. 4.1: "Method calls on active objects are transparently
asynchronous as they return a future...  An active object waiting for a
future is busy as waiting for a future can only be done during the service
of a request."  The service loop enforces the second half: a behavior
coroutine that yields a :class:`Future` keeps its activity *busy* until
the future resolves.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import RuntimeModelError

_future_ids = itertools.count(1)


def reset_future_ids() -> None:
    """Restart the process-global future-id stream (see
    :func:`repro.runtime.request.reset_request_ids`; future ids ride
    reply addresses across shard frames)."""
    global _future_ids
    _future_ids = itertools.count(1)


class Future:
    """Placeholder for the result of an asynchronous call."""

    __slots__ = ("future_id", "_resolved", "_value", "_refs", "_callbacks")

    def __init__(self) -> None:
        self.future_id = next(_future_ids)
        self._resolved = False
        self._value: Any = None
        self._refs: Tuple[Any, ...] = ()
        self._callbacks: List[Callable[["Future"], None]] = []

    @property
    def resolved(self) -> bool:
        return self._resolved

    @property
    def value(self) -> Any:
        """The result; only readable once resolved."""
        if not self._resolved:
            raise RuntimeModelError(
                f"future #{self.future_id} read before resolution"
            )
        return self._value

    @property
    def refs(self) -> Tuple[Any, ...]:
        """Proxies deserialized from the reply, if any."""
        if not self._resolved:
            raise RuntimeModelError(
                f"future #{self.future_id} refs read before resolution"
            )
        return self._refs

    def resolve(self, value: Any, refs: Tuple[Any, ...] = ()) -> None:
        """Deliver the result; runs queued callbacks in registration order."""
        if self._resolved:
            raise RuntimeModelError(f"future #{self.future_id} resolved twice")
        self._resolved = True
        self._value = value
        self._refs = refs
        callbacks, self._callbacks = self._callbacks, []
        for callback in callbacks:
            callback(self)

    def on_resolve(self, callback: Callable[["Future"], None]) -> None:
        """Run ``callback(self)`` at resolution (immediately if resolved)."""
        if self._resolved:
            callback(self)
        else:
            self._callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "resolved" if self._resolved else "pending"
        return f"Future(#{self.future_id} {state})"
