"""Stubs (proxies), remote references and shared stub tags.

Paper Sec. 2.2: a local activity may hold several stubs for the same remote
activity; the reference-graph edge must only disappear when *all* of them
are gone.  Rather than tracking each stub, the implementation places a
common *tag* in every stub for the same (holder, target) pair and keeps a
weak reference to the tag: the tag dies exactly when the last stub dies.

Our simulated equivalent: the :class:`ProxyTable` of an activity counts
live stubs per target; the :class:`StubTag` is shared by all of them and
is reported dead by the local GC once the count reaches zero.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import RuntimeModelError
from repro.runtime.ids import ActivityId


@dataclass(frozen=True)
class RemoteRef:
    """The serialized form of a reference: enough to contact the target.

    This is what crosses the wire inside requests/replies; deserialization
    turns it into a :class:`Proxy` registered in the recipient's table.
    """

    activity_id: ActivityId
    node: str


class StubTag:
    """Tag shared by every stub of one (holder, target) pair.

    ``generation`` distinguishes successive tags for the same pair: if the
    edge dies and is later re-created, a new tag is minted, exactly like a
    fresh dummy object in the Java implementation.
    """

    __slots__ = ("holder", "target", "generation", "dead")

    def __init__(self, holder: ActivityId, target: ActivityId, generation: int) -> None:
        self.holder = holder
        self.target = target
        self.generation = generation
        self.dead = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "dead" if self.dead else "live"
        return f"StubTag({self.holder}->{self.target} gen={self.generation} {state})"


class Proxy:
    """A stub held by one activity, pointing at a remote activity."""

    __slots__ = ("ref", "tag", "_released")

    def __init__(self, ref: RemoteRef, tag: StubTag) -> None:
        self.ref = ref
        self.tag = tag
        self._released = False

    @property
    def activity_id(self) -> ActivityId:
        return self.ref.activity_id

    @property
    def node(self) -> str:
        return self.ref.node

    @property
    def released(self) -> bool:
        return self._released

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Proxy({self.tag.holder}->{self.activity_id})"


class _TargetEntry:
    """Book-keeping for one (holder, target) pair."""

    __slots__ = ("ref", "tag", "live_count")

    def __init__(self, ref: RemoteRef, tag: StubTag) -> None:
        self.ref = ref
        self.tag = tag
        self.live_count = 0


class ProxyTable:
    """All stubs held by one activity, grouped per target.

    The no-sharing property (paper Sec. 2.1) guarantees a stub belongs to
    exactly one activity, so a per-activity table is exact.
    """

    def __init__(self, holder: ActivityId) -> None:
        self.holder = holder
        self._entries: Dict[ActivityId, _TargetEntry] = {}
        self._generations: Dict[ActivityId, int] = {}

    def acquire(self, ref: RemoteRef) -> Proxy:
        """Materialise a stub for ``ref`` (deserialization of a reference).

        Returns a new :class:`Proxy` sharing the per-target tag.
        """
        entry = self._entries.get(ref.activity_id)
        if entry is None:
            generation = self._generations.get(ref.activity_id, 0) + 1
            self._generations[ref.activity_id] = generation
            tag = StubTag(self.holder, ref.activity_id, generation)
            entry = _TargetEntry(ref, tag)
            self._entries[ref.activity_id] = entry
        entry.live_count += 1
        return Proxy(entry.ref, entry.tag)

    def release(self, proxy: Proxy) -> bool:
        """Drop one stub; returns True when this was the last stub for the
        target (the tag is now collectible)."""
        if proxy._released:
            raise RuntimeModelError(f"{proxy!r} released twice")
        proxy._released = True
        entry = self._entries.get(proxy.activity_id)
        if entry is None or entry.tag is not proxy.tag:
            # The tag generation was already retired (e.g. activity
            # termination released everything); nothing further to do.
            return False
        entry.live_count -= 1
        if entry.live_count <= 0:
            del self._entries[proxy.activity_id]
            return True
        return False

    def release_all(self) -> List[StubTag]:
        """Drop every stub (activity termination); returns the dead tags."""
        tags = [entry.tag for entry in self._entries.values()]
        self._entries.clear()
        return tags

    def holds(self, target: ActivityId) -> bool:
        """Does the activity currently hold at least one stub for target?"""
        return target in self._entries

    def live_count(self, target: ActivityId) -> int:
        entry = self._entries.get(target)
        return entry.live_count if entry else 0

    def targets(self) -> List[ActivityId]:
        """Targets currently referenced through at least one stub."""
        return list(self._entries.keys())

    def ref_for(self, target: ActivityId) -> Optional[RemoteRef]:
        entry = self._entries.get(target)
        return entry.ref if entry else None
