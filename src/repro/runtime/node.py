"""Nodes: the JVM/process equivalents hosting activities.

A node owns its activities, a local garbage collector, and its attachment
to the network fabric.  All traffic in and out of an activity flows
through its node, which is where requests are serialized/deserialized and
where inbound traffic of every kind — app requests/replies, registry
lookups, DGC protocol messages — is dispatched through one per-kind sink
table (the receive half of the unified fabric).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Union

from repro.errors import NoSuchActivityError, RuntimeModelError
from repro.net.kinds import (
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    KIND_REGISTRY_BIND,
    KIND_REGISTRY_INVALIDATE,
    KIND_REGISTRY_LOOKUP,
    KIND_REGISTRY_PUSH,
    KIND_REGISTRY_RENEW,
    KIND_REGISTRY_REPLY,
    PAIRED_PAYLOAD_KINDS,
    bind_dispatch_shapes,
)
from repro.net.message import Envelope
from repro.runtime.activeobject import Activity
from repro.runtime.future import Future
from repro.runtime.ids import ActivityId
from repro.runtime.localgc import LocalGarbageCollector
from repro.runtime.proxy import Proxy, RemoteRef
from repro.runtime.request import (
    RegistryAck,
    RegistryLookup,
    RegistryRenewAck,
    Reply,
    ReplyAddress,
    Request,
)
from repro.runtime.serialization import deserialize_refs, serialize_refs
from repro.sim.beats import SlotController

# The typed sink below hard-codes the (item, payload) shape of the DGC
# kinds and the aggregate unwrap; a paired/aggregate kind registered
# after this module imports would silently miss those branches, so the
# registry rejects such registrations from here on.
bind_dispatch_shapes("repro.runtime.node")


class Node:
    """One address space hosting activities."""

    def __init__(self, world, name: str, *, gc_delay: float = 0.0) -> None:
        self.world = world
        self.name = name
        self.kernel = world.kernel
        self.network = world.network
        self.tracer = world.tracer
        self.rng_registry = world.rng_registry
        self.wire_sizes = world.wire_sizes
        self.local_gc = LocalGarbageCollector(self.kernel, gc_delay=gc_delay)
        self.activities: Dict[ActivityId, Activity] = {}
        self._pending_futures: Dict[int, Future] = {}
        self.dead_letter_count = 0
        #: Adaptive beat-slot sizing for collectors configured with
        #: ``beat_slots="auto"`` (see :class:`repro.sim.beats.SlotController`).
        self.beat_slot_controller = SlotController()
        # Hot-path cache: the wire-size model is frozen, so the DGC sizes
        # are constants.  (``network.send`` is deliberately NOT cached as
        # a bound method: harness code patches it per-instance to observe
        # traffic.)
        self._dgc_message_bytes = self.wire_sizes.dgc_message_bytes
        self._dgc_response_bytes = self.wire_sizes.dgc_response_bytes
        #: Direct DGC dispatch tables: activity id -> bound collector
        #: handler, maintained by :meth:`register_collector` and the
        #: termination hook.  The aggregated core's receive lanes hit
        #: these with one dict probe instead of activity lookup +
        #: collector null-checks per message; a miss falls back to the
        #: full lookup (collectors attached outside the world's create
        #: path are never registered here).
        self._dgc_message_targets: Dict[Any, Callable[[Any], None]] = {}
        self._dgc_response_targets: Dict[Any, Callable[[Any], None]] = {}
        #: Open response run, active only while an aggregate DGC batch is
        #: being unwrapped: ``[dest_node | None, targets, responses]``.
        #: Responses produced inside the unwrap loop collect here (in
        #: send order) and leave as one site-pair run, instead of one
        #: full fabric traversal per response.  Within the loop only
        #: collector code runs, and any non-response DGC send flushes the
        #: run first, so the wire order is exactly the unbatched one.
        self._response_run: Optional[list] = None
        #: Per-kind handlers behind the typed sink.  The four hot kinds
        #: are dispatched by explicit branches in :meth:`_on_typed`; this
        #: table serves the rest (registry traffic, future extensions) so
        #: adding a traffic kind means adding an entry, not a code path.
        self._kind_handlers: Dict[str, Callable[[Any, Any], None]] = {
            KIND_REGISTRY_LOOKUP: self._on_registry_lookup,
            KIND_REGISTRY_REPLY: self._on_registry_reply,
            KIND_REGISTRY_BIND: self._on_registry_bind,
            KIND_REGISTRY_INVALIDATE: self._on_registry_invalidate,
            KIND_REGISTRY_RENEW: self._on_registry_renew,
            KIND_REGISTRY_PUSH: self._on_registry_push,
        }
        self.network.register_node(
            name,
            self._on_envelope,
            self._on_typed,
            dgc_sinks={
                KIND_DGC_MESSAGE: (self._on_dgc_message, self._on_dgc_messages),
                KIND_DGC_RESPONSE: (
                    self._on_dgc_response, self._on_dgc_responses,
                ),
            },
        )

    # ------------------------------------------------------------------
    # Activity management
    # ------------------------------------------------------------------

    def add_activity(self, activity: Activity) -> None:
        self.activities[activity.id] = activity

    def get_activity(self, activity_id: ActivityId) -> Activity:
        try:
            return self.activities[activity_id]
        except KeyError:
            raise NoSuchActivityError(
                f"{activity_id} is not hosted on {self.name}"
            ) from None

    def find_activity(self, activity_id: ActivityId) -> Optional[Activity]:
        return self.activities.get(activity_id)

    def register_collector(self, activity: Activity) -> None:
        """Expose ``activity``'s collector on the direct DGC dispatch
        tables (any collector duck-typing ``on_dgc_message`` /
        ``on_dgc_response`` — the paper's and the baselines')."""
        collector = activity.collector
        handler = getattr(collector, "on_dgc_message", None)
        if handler is not None:
            self._dgc_message_targets[activity.id] = handler
        handler = getattr(collector, "on_dgc_response", None)
        if handler is not None:
            self._dgc_response_targets[activity.id] = handler

    def on_activity_terminated(self, activity: Activity, reason: str) -> None:
        self.activities.pop(activity.id, None)
        self._dgc_message_targets.pop(activity.id, None)
        self._dgc_response_targets.pop(activity.id, None)
        if self.tracer.enabled:
            self.tracer.record(
                self.kernel.now, "activity.terminated", activity.id, reason=reason
            )
        self.world.on_activity_terminated(activity, reason)

    def deserialize_ref(self, activity: Activity, ref: RemoteRef) -> Proxy:
        """Out-of-band acquisition (e.g. registry lookup) — one stub."""
        return deserialize_refs(activity, [ref])[0]

    # ------------------------------------------------------------------
    # Application traffic
    # ------------------------------------------------------------------

    def send_request(
        self,
        sender: Activity,
        target: Union[Proxy, RemoteRef],
        method: str,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
        data: Any = None,
        expect_reply: bool = False,
    ) -> Optional[Future]:
        if isinstance(target, Proxy):
            if target.released:
                raise RuntimeModelError(
                    f"{sender.id} calling through released {target!r}"
                )
            target_ref = target.ref
        else:
            target_ref = target
        wire_refs = serialize_refs(refs)
        future: Optional[Future] = None
        reply_to: Optional[ReplyAddress] = None
        if expect_reply:
            future = Future()
            self._pending_futures[future.future_id] = future
            reply_to = ReplyAddress(self.name, sender.id, future.future_id)
        request = Request(
            method=method,
            sender=sender.id,
            target=target_ref.activity_id,
            payload_bytes=payload_bytes,
            refs=wire_refs,
            data=data,
            reply_to=reply_to,
        )
        size = self.wire_sizes.request_size(payload_bytes, len(wire_refs))
        self.world.note_request_sent(request)
        self.network.send_typed(
            self.name, target_ref.node, KIND_APP_REQUEST, size, request
        )
        return future

    def send_reply(self, sender: Activity, request: Request, result: Any) -> None:
        reply_to = request.reply_to
        assert reply_to is not None
        payload_bytes = 0
        refs: Sequence[Union[Proxy, RemoteRef]] = ()
        data: Any = result
        if isinstance(result, ReplyPayload):
            payload_bytes = result.payload_bytes
            refs = result.refs
            data = result.data
        wire_refs = serialize_refs(refs)
        reply = Reply(
            future_id=reply_to.future_id,
            target_activity=reply_to.activity,
            payload_bytes=payload_bytes,
            refs=wire_refs,
            data=data,
        )
        size = self.wire_sizes.reply_size(payload_bytes, len(wire_refs))
        self.world.note_reply_sent(reply)
        self.network.send_typed(
            self.name, reply_to.node, KIND_APP_REPLY, size, reply
        )

    # ------------------------------------------------------------------
    # DGC traffic (called by the per-activity collectors)
    # ------------------------------------------------------------------

    def send_dgc_message(
        self,
        target_ref: RemoteRef,
        message: Any,
        *,
        size_bytes: Optional[int] = None,
    ) -> None:
        if self._response_run is not None:
            # A collector (e.g. a baseline protocol) is sending a DGC
            # message from inside an aggregate unwrap: release the
            # buffered responses first so per-channel order is exactly
            # the unbatched one.
            self._flush_response_run()
        size = size_bytes if size_bytes is not None else self._dgc_message_bytes
        network = self.network
        send = (
            network.send_dgc_single
            if network.aggregate_site_pairs
            else network.send_typed
        )
        send(
            self.name,
            target_ref.node,
            KIND_DGC_MESSAGE,
            size,
            target_ref.activity_id,
            message,
        )

    def send_dgc_messages(
        self, dest_node: str, targets: list, messages: list
    ) -> None:
        """Send one collector broadcast's fan-out to ``dest_node`` as a
        site-pair run: parallel ``(target activity id, message)`` columns
        in send order, one fabric call for the whole group.

        The fabric stages the run as a single aggregate pulse entry in
        aggregated-columnar mode and falls back to per-message
        :meth:`send_dgc_message` semantics (same order, same accounting)
        everywhere else, so the grouping is a pure dispatch optimisation.
        """
        self.network.send_dgc_run(
            self.name,
            dest_node,
            KIND_DGC_MESSAGE,
            self._dgc_message_bytes,
            targets,
            messages,
        )

    def send_dgc_response(self, target_ref: RemoteRef, response: Any) -> None:
        run = self._response_run
        if run is not None:
            dest = target_ref.node
            if run[0] is None:
                run[0] = dest
            if run[0] == dest:
                run[1].append(target_ref.activity_id)
                run[2].append(response)
                return
            # A different destination mid-run (generic collectors only —
            # an aggregate's senders share one node): flush and rebase.
            self.network.send_dgc_run(
                self.name, run[0], KIND_DGC_RESPONSE,
                self._dgc_response_bytes, run[1], run[2],
            )
            run[0] = dest
            run[1] = [target_ref.activity_id]
            run[2] = [response]
            return
        network = self.network
        send = (
            network.send_dgc_single
            if network.aggregate_site_pairs
            else network.send_typed
        )
        send(
            self.name,
            target_ref.node,
            KIND_DGC_RESPONSE,
            self._dgc_response_bytes,
            target_ref.activity_id,
            response,
        )

    def _flush_response_run(self) -> None:
        """Send the open response run (if any entries collected) and
        reset the buffer for further collection."""
        run = self._response_run
        if run is not None and run[1]:
            self.network.send_dgc_run(
                self.name, run[0], KIND_DGC_RESPONSE,
                self._dgc_response_bytes, run[1], run[2],
            )
            run[0] = None
            run[1] = []
            run[2] = []

    # ------------------------------------------------------------------
    # Registry traffic
    # ------------------------------------------------------------------

    def send_registry_lookup(self, sender: Activity, name: str) -> Future:
        """Resolve a registry name through the naming service (paper
        Sec. 4.1: registered objects can be looked up "at any time" —
        resolution is fabric traffic routed by the configured placement,
        served from the closest live copy).

        Returns a :class:`Future` that resolves with a :class:`Proxy`
        for the bound activity (acquired through the deserialization
        hook, so the DGC sees the new edge at reply/hit time) or
        ``None`` when the name is unbound at serve time.  Local
        authority, replica and live-lease cache hits resolve the future
        before it is returned.
        """
        return self.world.registry.lookup_from(self, sender, name)

    def send_registry_bind(
        self, sender: Activity, name: str, ref: Optional[RemoteRef]
    ) -> Future:
        """Bind (``ref`` set) or unbind (``ref`` ``None``) a name over
        the fabric; the future resolves ``True``/``False`` with the
        authoritative shard's verdict."""
        return self.world.registry.bind_from(self, sender, name, ref)

    def register_pending_future(self, sender: Activity) -> "tuple[Future, ReplyAddress]":
        """Create a future awaiting a fabric reply for ``sender`` and
        the reply address that routes back to it.  The reply side
        (:meth:`_on_reply` / :meth:`_on_registry_reply`) owns expiry and
        dead-lettering; every out-of-class sender (the naming service)
        must register through here rather than touching the table."""
        future = Future()
        self._pending_futures[future.future_id] = future
        return future, ReplyAddress(self.name, sender.id, future.future_id)

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def _on_envelope(self, envelope: Envelope) -> None:
        """Per-envelope receive path: unwrap into the same per-kind
        handlers the typed sink dispatches to, so both delivery modes
        are observably identical."""
        payload = envelope.payload
        if envelope.kind in PAIRED_PAYLOAD_KINDS:
            self._on_typed(envelope.kind, payload[0], payload[1])
        else:
            self._on_typed(envelope.kind, payload, None)

    def _on_typed(self, kind: str, item: Any, payload: Any) -> None:
        """The node's typed sink: one dispatcher for every traffic kind.

        DGC traffic outnumbers application traffic by an order of
        magnitude on large runs, so its branches come first; cold kinds
        (registry, extensions) go through the handler table.
        """
        if kind == KIND_DGC_MESSAGE:
            self._on_dgc_message_via_lookup(item, payload)
        elif kind == KIND_DGC_RESPONSE:
            self._on_dgc_response_via_lookup(item, payload)
        elif kind == KIND_APP_REQUEST:
            self._on_request(item)
        elif kind == KIND_APP_REPLY:
            self._on_reply(item)
        else:
            handler = self._kind_handlers.get(kind)
            if handler is None:
                raise RuntimeModelError(f"unknown traffic kind {kind!r}")
            handler(item, payload)

    def _on_request(self, request: Request) -> None:
        self.world.note_request_delivered(request)
        activity = self.activities.get(request.target)
        if activity is None or activity.terminated:
            self.dead_letter_count += 1
            self.world.on_dead_letter()
            if self.tracer.enabled:
                self.tracer.record(
                    self.kernel.now,
                    "message.dead_letter",
                    request.target,
                    method=request.method,
                    sender=request.sender,
                )
            return
        proxies = deserialize_refs(activity, request.refs)
        activity.deliver(request, proxies)

    def _on_reply(self, reply: Reply) -> None:
        self.world.note_reply_delivered(reply)
        future = self._pending_futures.pop(reply.future_id, None)
        activity = self.activities.get(reply.target_activity)
        if future is None:
            self.dead_letter_count += 1
            return
        if activity is None or activity.terminated:
            # Reference orientation (paper Sec. 4.1): updating the future
            # of a collected caller is simply dropped.
            self.dead_letter_count += 1
            return
        proxies = deserialize_refs(activity, reply.refs)
        future.resolve(reply.data, tuple(proxies))

    def _on_registry_lookup(self, lookup: RegistryLookup, payload: Any) -> None:
        """Serve a registry lookup at this node's authoritative shard."""
        self.world.registry.serve_lookup(self, lookup)

    def _on_registry_reply(self, reply: Any, payload: Any) -> None:
        """Deliver a naming-service answer: a lookup reply (resolves the
        future with an acquired stub, caching the binding when a lease
        was granted) or a bind/unbind acknowledgement (resolves the
        future with the authority's verdict)."""
        future = self._pending_futures.pop(reply.future_id, None)
        if future is None:
            self.dead_letter_count += 1
            return
        activity = self.activities.get(reply.target_activity)
        if activity is None or activity.terminated:
            # The caller died mid-operation: drop, like a stale reply.
            self.dead_letter_count += 1
            return
        if isinstance(reply, RegistryAck):
            future.resolve(reply.ok)
            return
        if reply.ref is None:
            future.resolve(None)
            return
        if reply.lease_s > 0.0:
            self.world.registry.note_cacheable_reply(self, reply)
        proxy = deserialize_refs(activity, (reply.ref,))[0]
        future.resolve(proxy, (proxy,))

    def _on_registry_bind(self, update: Any, payload: Any) -> None:
        """Apply a fabric bind/unbind (or install a replica push)."""
        self.world.registry.serve_bind(self, update)

    def _on_registry_invalidate(self, invalidate: Any, payload: Any) -> None:
        """Drop stale local knowledge of the named bindings."""
        self.world.registry.apply_invalidate(self, invalidate)

    def _on_registry_push(self, push: Any, payload: Any) -> None:
        """Install a beat-flushed batch of replica bindings."""
        self.world.registry.apply_push(self, push)

    def _on_registry_renew(self, message: Any, payload: Any) -> None:
        """Lease renewals: a client's batch at the authority, or the
        authority's grant back at the client."""
        if isinstance(message, RegistryRenewAck):
            self.world.registry.apply_renew_ack(self, message)
        else:
            self.world.registry.serve_renew(self, message)

    def _on_dgc_message_via_lookup(
        self, activity_id: ActivityId, message: Any
    ) -> None:
        """Typed-sink DGC delivery — the previous core's receive path
        (activity lookup per message), kept for the per-entry baseline
        and the envelope fallback."""
        activity = self.activities.get(activity_id)
        if activity is None or activity.collector is None:
            # Referenced activity already collected/terminated: silence.
            return
        activity.collector.on_dgc_message(message)

    def _on_dgc_response_via_lookup(
        self, activity_id: ActivityId, response: Any
    ) -> None:
        activity = self.activities.get(activity_id)
        if activity is None or activity.collector is None:
            return
        activity.collector.on_dgc_response(response)

    def _on_dgc_message(self, activity_id: ActivityId, message: Any) -> None:
        """Single-message DGC lane of the aggregated core: one dispatch
        table probe to the bound collector handler."""
        handler = self._dgc_message_targets.get(activity_id)
        if handler is not None:
            handler(message)
            return
        self._on_dgc_message_via_lookup(activity_id, message)

    def _on_dgc_response(self, activity_id: ActivityId, response: Any) -> None:
        handler = self._dgc_response_targets.get(activity_id)
        if handler is not None:
            handler(response)
            return
        self._on_dgc_response_via_lookup(activity_id, response)

    # -- aggregate unwrappers (the fabric's batch sinks) ----------------
    #
    # One call per site-pair run instead of one typed dispatch per
    # message: the loops below deliver the flat (target, message)
    # columns with every lookup bound to a local, in column order —
    # which is send order, so per-channel FIFO is untouched.

    def _on_dgc_messages(self, targets: list, messages: list) -> None:
        targets_get = self._dgc_message_targets.get
        self._response_run = run = [None, [], []]
        try:
            for activity_id, message in zip(targets, messages):
                handler = targets_get(activity_id)
                if handler is not None:
                    handler(message)
                    continue
                activity = self.activities.get(activity_id)
                if activity is None or activity.collector is None:
                    continue
                activity.collector.on_dgc_message(message)
        finally:
            self._response_run = None
        if run[1]:
            self.network.send_dgc_run(
                self.name, run[0], KIND_DGC_RESPONSE,
                self._dgc_response_bytes, run[1], run[2],
            )

    def _on_dgc_responses(self, targets: list, responses: list) -> None:
        targets_get = self._dgc_response_targets.get
        for activity_id, response in zip(targets, responses):
            handler = targets_get(activity_id)
            if handler is not None:
                handler(response)
                continue
            activity = self.activities.get(activity_id)
            if activity is None or activity.collector is None:
                continue
            activity.collector.on_dgc_response(response)


class ReplyPayload:
    """Wrap a handler return value to control reply size and references.

    Returning a plain value sends a zero-payload reply; returning
    ``ReplyPayload(data, payload_bytes=..., refs=[...])`` models a sized
    reply that may carry remote references (which create DGC edges at the
    caller when deserialized).
    """

    __slots__ = ("data", "payload_bytes", "refs")

    def __init__(
        self,
        data: Any = None,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
    ) -> None:
        self.data = data
        self.payload_bytes = payload_bytes
        self.refs = tuple(refs)
