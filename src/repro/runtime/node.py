"""Nodes: the JVM/process equivalents hosting activities.

A node owns its activities, a local garbage collector, and its attachment
to the network fabric.  All traffic in and out of an activity flows
through its node, which is where requests are serialized/deserialized and
where DGC envelopes are dispatched to per-activity collectors.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Union

from repro.errors import NoSuchActivityError, RuntimeModelError
from repro.net.message import (
    KIND_APP_REPLY,
    KIND_APP_REQUEST,
    KIND_DGC_MESSAGE,
    KIND_DGC_RESPONSE,
    Envelope,
)
from repro.runtime.activeobject import Activity
from repro.runtime.future import Future
from repro.runtime.ids import ActivityId
from repro.runtime.localgc import LocalGarbageCollector
from repro.runtime.proxy import Proxy, RemoteRef
from repro.runtime.request import Reply, ReplyAddress, Request
from repro.runtime.serialization import deserialize_refs, serialize_refs


def _noop_deliver(payload: Any) -> None:
    """Shared no-op for :attr:`Envelope.deliver` — dispatch happens via
    node sinks, so allocating a fresh closure per envelope was waste."""


class Node:
    """One address space hosting activities."""

    def __init__(self, world, name: str, *, gc_delay: float = 0.0) -> None:
        self.world = world
        self.name = name
        self.kernel = world.kernel
        self.network = world.network
        self.tracer = world.tracer
        self.rng_registry = world.rng_registry
        self.wire_sizes = world.wire_sizes
        self.local_gc = LocalGarbageCollector(self.kernel, gc_delay=gc_delay)
        self.activities: Dict[ActivityId, Activity] = {}
        self._pending_futures: Dict[int, Future] = {}
        self.dead_letter_count = 0
        # Hot-path cache: the wire-size model is frozen, so the DGC sizes
        # are constants.  (``network.send`` is deliberately NOT cached as
        # a bound method: harness code patches it per-instance to observe
        # traffic.)
        self._dgc_message_bytes = self.wire_sizes.dgc_message_bytes
        self._dgc_response_bytes = self.wire_sizes.dgc_response_bytes
        self.network.register_node(name, self._on_envelope, self._on_dgc)

    # ------------------------------------------------------------------
    # Activity management
    # ------------------------------------------------------------------

    def add_activity(self, activity: Activity) -> None:
        self.activities[activity.id] = activity

    def get_activity(self, activity_id: ActivityId) -> Activity:
        try:
            return self.activities[activity_id]
        except KeyError:
            raise NoSuchActivityError(
                f"{activity_id} is not hosted on {self.name}"
            ) from None

    def find_activity(self, activity_id: ActivityId) -> Optional[Activity]:
        return self.activities.get(activity_id)

    def on_activity_terminated(self, activity: Activity, reason: str) -> None:
        self.activities.pop(activity.id, None)
        if self.tracer.enabled:
            self.tracer.record(
                self.kernel.now, "activity.terminated", activity.id, reason=reason
            )
        self.world.on_activity_terminated(activity, reason)

    def deserialize_ref(self, activity: Activity, ref: RemoteRef) -> Proxy:
        """Out-of-band acquisition (e.g. registry lookup) — one stub."""
        return deserialize_refs(activity, [ref])[0]

    # ------------------------------------------------------------------
    # Application traffic
    # ------------------------------------------------------------------

    def send_request(
        self,
        sender: Activity,
        target: Union[Proxy, RemoteRef],
        method: str,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
        data: Any = None,
        expect_reply: bool = False,
    ) -> Optional[Future]:
        if isinstance(target, Proxy):
            if target.released:
                raise RuntimeModelError(
                    f"{sender.id} calling through released {target!r}"
                )
            target_ref = target.ref
        else:
            target_ref = target
        wire_refs = serialize_refs(refs)
        future: Optional[Future] = None
        reply_to: Optional[ReplyAddress] = None
        if expect_reply:
            future = Future()
            self._pending_futures[future.future_id] = future
            reply_to = ReplyAddress(self.name, sender.id, future.future_id)
        request = Request(
            method=method,
            sender=sender.id,
            target=target_ref.activity_id,
            payload_bytes=payload_bytes,
            refs=wire_refs,
            data=data,
            reply_to=reply_to,
        )
        size = self.wire_sizes.request_size(payload_bytes, len(wire_refs))
        envelope = Envelope(
            source_node=self.name,
            dest_node=target_ref.node,
            kind=KIND_APP_REQUEST,
            size_bytes=size,
            payload=request,
            deliver=_noop_deliver,
        )
        self.world.note_request_sent(request)
        self.network.send(envelope)
        return future

    def send_reply(self, sender: Activity, request: Request, result: Any) -> None:
        reply_to = request.reply_to
        assert reply_to is not None
        payload_bytes = 0
        refs: Sequence[Union[Proxy, RemoteRef]] = ()
        data: Any = result
        if isinstance(result, ReplyPayload):
            payload_bytes = result.payload_bytes
            refs = result.refs
            data = result.data
        wire_refs = serialize_refs(refs)
        reply = Reply(
            future_id=reply_to.future_id,
            target_activity=reply_to.activity,
            payload_bytes=payload_bytes,
            refs=wire_refs,
            data=data,
        )
        size = self.wire_sizes.reply_size(payload_bytes, len(wire_refs))
        envelope = Envelope(
            source_node=self.name,
            dest_node=reply_to.node,
            kind=KIND_APP_REPLY,
            size_bytes=size,
            payload=reply,
            deliver=_noop_deliver,
        )
        self.world.note_reply_sent(reply)
        self.network.send(envelope)

    # ------------------------------------------------------------------
    # DGC traffic (called by the per-activity collectors)
    # ------------------------------------------------------------------

    def send_dgc_message(
        self,
        target_ref: RemoteRef,
        message: Any,
        *,
        size_bytes: Optional[int] = None,
    ) -> None:
        network = self.network
        size = size_bytes if size_bytes is not None else self._dgc_message_bytes
        if network.pulse_batching:
            # Beat traffic rides the pulse batch: one kernel event per
            # distinct delivery instant instead of one per message.
            network.send_dgc(
                self.name,
                target_ref.node,
                KIND_DGC_MESSAGE,
                size,
                target_ref.activity_id,
                message,
            )
            return
        network.send(
            Envelope(
                self.name,
                target_ref.node,
                KIND_DGC_MESSAGE,
                size,
                (target_ref.activity_id, message),
                _noop_deliver,
            )
        )

    def send_dgc_response(self, target_ref: RemoteRef, response: Any) -> None:
        network = self.network
        if network.pulse_batching:
            network.send_dgc(
                self.name,
                target_ref.node,
                KIND_DGC_RESPONSE,
                self._dgc_response_bytes,
                target_ref.activity_id,
                response,
            )
            return
        network.send(
            Envelope(
                self.name,
                target_ref.node,
                KIND_DGC_RESPONSE,
                self._dgc_response_bytes,
                (target_ref.activity_id, response),
                _noop_deliver,
            )
        )

    # ------------------------------------------------------------------
    # Inbound dispatch
    # ------------------------------------------------------------------

    def _on_envelope(self, envelope: Envelope) -> None:
        # DGC traffic outnumbers application traffic by an order of
        # magnitude on large runs, so its branches come first.
        kind = envelope.kind
        if kind == KIND_DGC_MESSAGE:
            activity_id, message = envelope.payload
            self._on_dgc_message(activity_id, message)
        elif kind == KIND_DGC_RESPONSE:
            activity_id, response = envelope.payload
            self._on_dgc_response(activity_id, response)
        elif kind == KIND_APP_REQUEST:
            self._on_request(envelope.payload)
        elif kind == KIND_APP_REPLY:
            self._on_reply(envelope.payload)
        else:
            raise RuntimeModelError(f"unknown envelope kind {kind!r}")

    def _on_request(self, request: Request) -> None:
        self.world.note_request_delivered(request)
        activity = self.activities.get(request.target)
        if activity is None or activity.terminated:
            self.dead_letter_count += 1
            self.world.on_dead_letter()
            if self.tracer.enabled:
                self.tracer.record(
                    self.kernel.now,
                    "message.dead_letter",
                    request.target,
                    method=request.method,
                    sender=request.sender,
                )
            return
        proxies = deserialize_refs(activity, request.refs)
        activity.deliver(request, proxies)

    def _on_reply(self, reply: Reply) -> None:
        self.world.note_reply_delivered(reply)
        future = self._pending_futures.pop(reply.future_id, None)
        activity = self.activities.get(reply.target_activity)
        if future is None:
            self.dead_letter_count += 1
            return
        if activity is None or activity.terminated:
            # Reference orientation (paper Sec. 4.1): updating the future
            # of a collected caller is simply dropped.
            self.dead_letter_count += 1
            return
        proxies = deserialize_refs(activity, reply.refs)
        future.resolve(reply.data, tuple(proxies))

    def _on_dgc(self, kind: str, activity_id: ActivityId, payload: Any) -> None:
        """Envelope-free dispatch for pulse-batched DGC traffic."""
        if kind == KIND_DGC_MESSAGE:
            self._on_dgc_message(activity_id, payload)
        else:
            self._on_dgc_response(activity_id, payload)

    def _on_dgc_message(self, activity_id: ActivityId, message: Any) -> None:
        activity = self.activities.get(activity_id)
        if activity is None or activity.collector is None:
            # Referenced activity already collected/terminated: silence.
            return
        activity.collector.on_dgc_message(message)

    def _on_dgc_response(self, activity_id: ActivityId, response: Any) -> None:
        activity = self.activities.get(activity_id)
        if activity is None or activity.collector is None:
            return
        activity.collector.on_dgc_response(response)


class ReplyPayload:
    """Wrap a handler return value to control reply size and references.

    Returning a plain value sends a zero-payload reply; returning
    ``ReplyPayload(data, payload_bytes=..., refs=[...])`` models a sized
    reply that may carry remote references (which create DGC edges at the
    caller when deserialized).
    """

    __slots__ = ("data", "payload_bytes", "refs")

    def __init__(
        self,
        data: Any = None,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
    ) -> None:
        self.data = data
        self.payload_bytes = payload_bytes
        self.refs = tuple(refs)
