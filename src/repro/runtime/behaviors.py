"""Behavior base classes for application code running inside activities.

A behavior is the "served object" of an activity.  ``handle`` dispatches
incoming requests; by default it looks up a ``do_<method>`` attribute,
which keeps workload code declarative::

    class Worker(Behavior):
        def do_compute(self, ctx, request, proxies):
            yield ctx.sleep(1.5)
            return 42
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional

from repro.errors import RuntimeModelError
from repro.runtime.proxy import Proxy
from repro.runtime.request import Request


class Behavior:
    """Base class: dispatches ``method`` to ``do_<method>``."""

    def on_start(self, ctx) -> Any:
        """Optional start routine (may be a generator)."""
        return None

    def handle(self, ctx, request: Request, proxies: List[Proxy]) -> Any:
        handler = getattr(self, f"do_{request.method}", None)
        if handler is None:
            raise RuntimeModelError(
                f"{type(self).__name__} has no handler for "
                f"method {request.method!r}"
            )
        return handler(ctx, request, proxies)


class FunctionBehavior(Behavior):
    """Wraps a single callable serving every method."""

    def __init__(self, fn: Callable[[Any, Request, List[Proxy]], Any]) -> None:
        self._fn = fn

    def handle(self, ctx, request: Request, proxies: List[Proxy]) -> Any:
        return self._fn(ctx, request, proxies)


class SinkBehavior(Behavior):
    """Accepts any request and does nothing.

    Used for dummy root activities (the paper's stand-in referencer for
    non-active code, Sec. 4.1) and as an inert cycle member in tests.
    """

    def handle(self, ctx, request: Request, proxies: List[Proxy]) -> Any:
        return None
