"""Simulated local garbage collector.

The paper's construction never modifies the JVM GC: it keeps a *weak
reference* to the shared stub tag and observes its death (Sec. 2.2).  Our
simulated local GC reproduces the observable interface: when the last stub
of a (holder, target) pair is released, the tag is queued and — after an
optional GC delay modelling the asynchrony of a real collector — the
holder's DGC collector is notified that the edge's stubs are gone.

A non-zero ``gc_delay`` lets tests reproduce the paper's races around
delayed reference-disappearance detection (Figs. 5 and 6).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.runtime.proxy import StubTag
from repro.sim.kernel import SimKernel


class LocalGarbageCollector:
    """Per-node tag-death notifier with a configurable collection delay."""

    def __init__(self, kernel: SimKernel, gc_delay: float = 0.0) -> None:
        self._kernel = kernel
        self.gc_delay = gc_delay
        self._pending: List[Tuple[object, StubTag]] = []
        self._sweep_scheduled = False
        self.collected_tags = 0

    def notify_tag_dead(self, activity, tag: StubTag) -> None:
        """Queue a dead tag for the next collection cycle."""
        self._pending.append((activity, tag))
        if not self._sweep_scheduled:
            self._sweep_scheduled = True
            self._kernel.schedule(
                self.gc_delay, self._sweep, label="localgc.sweep"
            )

    def _sweep(self) -> None:
        self._sweep_scheduled = False
        pending, self._pending = self._pending, []
        for activity, tag in pending:
            self.collected_tags += 1
            if activity.terminated:
                continue
            if activity.collector is not None:
                activity.collector.on_reference_dropped(tag)
