"""Application-level requests and replies.

A request names a method on the target activity's behavior, carries a
modelled payload size (bytes on the wire, for bandwidth accounting) and a
tuple of serialized remote references (:class:`RemoteRef`).  Deserializing
those references at the recipient is what creates reference-graph edges
(paper Sec. 2.2).

Replies update the caller's future.  Following the paper's reference
orientation (Sec. 4.1), a reply does **not** create a DGC edge from callee
to caller, and a reply to an already-collected caller is dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.runtime.ids import ActivityId
from repro.runtime.proxy import RemoteRef

_request_ids = itertools.count(1)


def reset_request_ids() -> None:
    """Restart the process-global request-id stream.

    Request ids cross process boundaries inside shard wire frames, so
    the shard workers (and the single-process replay arm) reset the
    stream at world construction to keep independent runs — and the
    frames they emit — bit-identical.
    """
    global _request_ids
    _request_ids = itertools.count(1)


@dataclass
class Request:
    """An asynchronous method invocation on an activity."""

    method: str
    sender: ActivityId
    target: ActivityId
    payload_bytes: int = 0
    refs: Tuple[RemoteRef, ...] = ()
    data: Any = None
    reply_to: Optional["ReplyAddress"] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(#{self.request_id} {self.method} "
            f"{self.sender}->{self.target})"
        )


@dataclass(frozen=True)
class ReplyAddress:
    """Where the reply (future update) must be delivered."""

    node: str
    activity: ActivityId
    future_id: int


@dataclass
class Reply:
    """A future update: the result of a served request."""

    future_id: int
    target_activity: ActivityId
    payload_bytes: int = 0
    refs: Tuple[RemoteRef, ...] = ()
    data: Any = None


@dataclass(frozen=True)
class RegistryLookup:
    """A name resolution sent to the registry's home node.

    Registry traffic rides the unified fabric like any other kind
    (``registry.lookup``/``registry.reply``): a lookup crosses the wire,
    is served where the registry lives, and the reply updates the
    caller's future.
    """

    name: str
    reply_to: ReplyAddress


@dataclass(frozen=True)
class RegistryReply:
    """The registry's answer: the bound reference, or ``None``.

    ``lease_s`` is the lease the authoritative shard grants on the
    binding (0 = not cacheable): the client node may serve resolves for
    ``name`` locally until the lease expires, renewing it through the
    batched ``registry.renew`` sweep.
    """

    future_id: int
    target_activity: ActivityId
    name: str
    ref: Optional[RemoteRef] = None
    lease_s: float = 0.0


@dataclass(frozen=True)
class RegistryBind:
    """A bind (``ref`` set) or unbind (``ref`` ``None``) sent to the
    authoritative shard for ``name`` — ``registry.bind`` traffic.

    The shard applies the update against its state at delivery time and
    acknowledges through a :class:`RegistryAck` riding
    ``registry.reply``; the root pin moves with the binding (paper
    Sec. 4.1: a registered activity is a DGC root).  A ``reply_to`` of
    ``None`` marks a replica push from the primary (``replicated``
    placement): installed without acknowledgement.
    """

    name: str
    ref: Optional[RemoteRef]
    reply_to: Optional[ReplyAddress]


@dataclass(frozen=True)
class RegistryAck:
    """The authoritative shard's answer to a bind/unbind: applied or
    rejected (name conflict, dead target, unknown name)."""

    future_id: int
    target_activity: ActivityId
    name: str
    ok: bool
    error: str = ""


@dataclass(frozen=True)
class RegistryRenew:
    """One lease sweep's renewals for one authority: every cached name a
    client node used since its last sweep, batched like a heartbeat —
    ``registry.renew`` traffic."""

    node: str
    names: Tuple[str, ...]


@dataclass(frozen=True)
class RegistryRenewAck:
    """The authority's grant: leases on ``names`` are extended by
    ``lease_s`` from delivery time (names that vanished come back as a
    :class:`RegistryInvalidate` instead)."""

    names: Tuple[str, ...]
    lease_s: float


@dataclass(frozen=True)
class RegistryInvalidate:
    """Explicit cache invalidation — ``registry.invalidate`` traffic.

    Sent by an authority to every lease holder when a binding is
    removed, to replicas when a replicated binding is unbound, and as
    the negative half of a renewal reply.  Under eager coherence each
    message carries one name; the beat-quantized coherence channel
    batches a whole lease beat's invalidations for one destination into
    one multi-name message."""

    names: Tuple[str, ...]


@dataclass(frozen=True)
class RegistryPush:
    """A batched replica push — ``registry.push`` traffic.

    The beat-quantized coherence channel's positive half: every binding
    the primary applied during one lease beat, coalesced per destination
    (last writer wins per name, so an unbind+rebind inside one beat
    travels as a single push of the surviving ref) and installed at the
    destination's replica without acknowledgement.  The eager baseline
    sends one no-reply :class:`RegistryBind` per (binding, destination)
    instead."""

    bindings: Tuple[Tuple[str, RemoteRef], ...]
