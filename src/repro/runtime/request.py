"""Application-level requests and replies.

A request names a method on the target activity's behavior, carries a
modelled payload size (bytes on the wire, for bandwidth accounting) and a
tuple of serialized remote references (:class:`RemoteRef`).  Deserializing
those references at the recipient is what creates reference-graph edges
(paper Sec. 2.2).

Replies update the caller's future.  Following the paper's reference
orientation (Sec. 4.1), a reply does **not** create a DGC edge from callee
to caller, and a reply to an already-collected caller is dropped.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Optional, Tuple

from repro.runtime.ids import ActivityId
from repro.runtime.proxy import RemoteRef

_request_ids = itertools.count(1)


@dataclass
class Request:
    """An asynchronous method invocation on an activity."""

    method: str
    sender: ActivityId
    target: ActivityId
    payload_bytes: int = 0
    refs: Tuple[RemoteRef, ...] = ()
    data: Any = None
    reply_to: Optional["ReplyAddress"] = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Request(#{self.request_id} {self.method} "
            f"{self.sender}->{self.target})"
        )


@dataclass(frozen=True)
class ReplyAddress:
    """Where the reply (future update) must be delivered."""

    node: str
    activity: ActivityId
    future_id: int


@dataclass
class Reply:
    """A future update: the result of a served request."""

    future_id: int
    target_activity: ActivityId
    payload_bytes: int = 0
    refs: Tuple[RemoteRef, ...] = ()
    data: Any = None


@dataclass(frozen=True)
class RegistryLookup:
    """A name resolution sent to the registry's home node.

    Registry traffic rides the unified fabric like any other kind
    (``registry.lookup``/``registry.reply``): a lookup crosses the wire,
    is served where the registry lives, and the reply updates the
    caller's future.
    """

    name: str
    reply_to: ReplyAddress


@dataclass(frozen=True)
class RegistryReply:
    """The registry's answer: the bound reference, or ``None``."""

    future_id: int
    target_activity: ActivityId
    name: str
    ref: Optional[RemoteRef] = None
