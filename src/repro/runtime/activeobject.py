"""Activities: active objects with a request queue and a service loop.

An activity serves requests one at a time.  Behavior handlers may be plain
functions (complete immediately) or generators that yield:

* :class:`Sleep` — modelled compute time; the activity stays **busy**,
* :class:`repro.runtime.future.Future` — wait for an asynchronous result;
  the activity stays **busy** (paper Sec. 4.1: waiting for a future can
  only happen during the service of a request).

The *idle* predicate the DGC consumes (paper Sec. 4.1) is therefore exact:
an activity is idle iff its queue is empty and no handler is in flight.
Root activities (registered in the registry, or dummy referencers for
non-active code) are **never idle**.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import (
    Any,
    Callable,
    Deque,
    Generator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ActivityTerminatedError, RuntimeModelError
from repro.runtime.future import Future
from repro.runtime.ids import ActivityId
from repro.runtime.proxy import Proxy, ProxyTable, RemoteRef
from repro.runtime.request import Request


class Sleep:
    """Yieldable: suspend the current handler for ``duration`` seconds
    of simulated compute time (the activity remains busy)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise RuntimeModelError(f"negative sleep {duration}")
        self.duration = duration


class ActivityState(enum.Enum):
    IDLE = "idle"
    BUSY = "busy"
    TERMINATED = "terminated"


#: What a behavior handler may return: a value, or a generator coroutine.
HandlerResult = Union[Any, Generator[Any, Any, Any]]


class ActivityContext:
    """The API surface a behavior uses to interact with the world.

    It is deliberately narrow: creating activities, calling methods,
    sleeping, and managing held references (the simulated equivalent of
    local variables / fields holding stubs).
    """

    def __init__(self, activity: "Activity") -> None:
        self._activity = activity

    @property
    def id(self) -> ActivityId:
        return self._activity.id

    @property
    def now(self) -> float:
        return self._activity.node.kernel.now

    @property
    def node_name(self) -> str:
        return self._activity.node.name

    @property
    def rng(self):
        """Deterministic per-activity random stream."""
        return self._activity.node.rng_registry.stream(f"activity:{self.id}")

    def self_ref(self) -> RemoteRef:
        """A serializable reference to this activity (for passing around)."""
        return RemoteRef(self._activity.id, self._activity.node.name)

    def sleep(self, duration: float) -> Sleep:
        """Yield this from a handler to model compute time."""
        return Sleep(duration)

    def create(
        self,
        behavior: Any,
        *,
        node: Optional[str] = None,
        name: str = "",
        root: bool = False,
    ) -> Proxy:
        """Create a new activity; the creator holds a stub to it."""
        return self._activity.node.world.create_activity(
            behavior,
            node=node,
            name=name,
            root=root,
            creator=self._activity,
        )

    def call(
        self,
        target: Union[Proxy, RemoteRef],
        method: str,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
        data: Any = None,
        expect_reply: bool = False,
    ) -> Optional[Future]:
        """Asynchronously invoke ``method`` on ``target``.

        Returns a :class:`Future` when ``expect_reply`` is set, which a
        generator handler can yield to wait for the result.
        """
        return self._activity.send_call(
            target,
            method,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
            expect_reply=expect_reply,
        )

    def keep(self, proxy: Proxy) -> Proxy:
        """Prevent the automatic release of a request-delivered proxy."""
        self._activity.mark_kept(proxy)
        return proxy

    def drop(self, proxy: Proxy) -> None:
        """Explicitly release a held stub (local GC collects it)."""
        self._activity.release_proxy(proxy)

    def acquire(self, ref: RemoteRef) -> Proxy:
        """Acquire a stub for a reference obtained out of band.

        Also used by drivers (dummy root activities) that look up the
        registry.  Goes through the regular deserialization hook so the
        DGC sees the new edge.
        """
        return self._activity.node.deserialize_ref(self._activity, ref)

    def lookup(self, name: str) -> Future:
        """Resolve a registry name through the naming service.

        Returns a future a generator handler can yield; it resolves to a
        :class:`Proxy` for the bound activity (the stub is acquired at
        reply/hit time, creating the DGC edge) or ``None`` when the name
        is unbound at serve time.  Depending on the registry placement
        the resolve is served by the local shard, a replica, a leased
        cache entry, or a ``registry.lookup`` round trip to the
        authority — local hits return an already-resolved future.

        An unbound name is answered with a *negative reply* (``None``),
        never held open: a name bound after the lookup was issued but
        before the authority serves it resolves normally (the lookup is
        served against shard state at serve time); one bound after
        serving requires the caller to retry.
        """
        return self._activity.node.send_registry_lookup(self._activity, name)

    def bind(self, name: str, target: Union[Proxy, RemoteRef]) -> Future:
        """Publish ``target`` under ``name`` over the fabric
        (``registry.bind`` to the authoritative shard; the target
        becomes a DGC root there, paper Sec. 4.1).

        Returns a future resolving ``True`` when the authority applied
        the binding, ``False`` when it rejected it (name conflict or
        dead target at apply time).
        """
        ref = target.ref if isinstance(target, Proxy) else target
        return self._activity.node.send_registry_bind(
            self._activity, name, ref
        )

    def unbind(self, name: str) -> Future:
        """Remove a binding over the fabric, releasing the root pin at
        the authoritative shard (the target stays pinned while other
        names still bind it).  Resolves ``True``/``False`` with the
        authority's verdict."""
        return self._activity.node.send_registry_bind(
            self._activity, name, None
        )

    def holds(self, target: ActivityId) -> bool:
        """Does this activity currently hold a stub to ``target``?"""
        return self._activity.proxies.holds(target)


class _HandlerRun:
    """State of the in-flight handler (one per busy activity)."""

    __slots__ = ("request", "proxies", "generator", "waiting_event")

    def __init__(
        self,
        request: Optional[Request],
        proxies: List[Proxy],
    ) -> None:
        self.request = request
        self.proxies = proxies
        self.generator: Optional[Generator[Any, Any, Any]] = None
        self.waiting_event = None


class Activity:
    """One active object hosted on a node."""

    def __init__(
        self,
        node: "Node",  # noqa: F821 - circular, resolved at runtime
        activity_id: ActivityId,
        behavior: Any,
        *,
        root: bool = False,
    ) -> None:
        self.node = node
        self.id = activity_id
        self.behavior = behavior
        self.is_root = root
        self.state = ActivityState.IDLE
        self.proxies = ProxyTable(activity_id)
        self.context = ActivityContext(self)
        self.collector: Optional[Any] = None  # attached by the world
        self.terminated_reason: Optional[str] = None
        self.requests_served = 0
        self.created_at = node.kernel.now
        self._queue: Deque[Tuple[Request, List[Proxy]]] = deque()
        self._run: Optional[_HandlerRun] = None
        self._pumping = False
        self._kept: set = set()
        self._idle_listeners: List[Callable[["Activity"], None]] = []

    # ------------------------------------------------------------------
    # State predicates
    # ------------------------------------------------------------------

    def is_idle(self) -> bool:
        """The DGC's idleness predicate: waiting for requests, not a root."""
        return self.state is ActivityState.IDLE and not self.is_root

    @property
    def terminated(self) -> bool:
        return self.state is ActivityState.TERMINATED

    @property
    def queue_length(self) -> int:
        return len(self._queue)

    def on_idle(self, listener: Callable[["Activity"], None]) -> None:
        """Subscribe to busy->idle transitions (used by the DGC clock)."""
        self._idle_listeners.append(listener)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Run the behavior's ``on_start`` as an initial pseudo-request.

        Every activity passes through a busy->idle transition after its
        start routine, so its activity clock begins owned by itself.
        """
        self.state = ActivityState.BUSY
        run = _HandlerRun(None, [])
        self._run = run
        on_start = getattr(self.behavior, "on_start", None)
        result = on_start(self.context) if on_start is not None else None
        self._begin_handler(run, result)
        self._pump()

    def terminate(self, reason: str) -> None:
        """Remove the activity (DGC collection or explicit termination)."""
        if self.terminated:
            return
        self.state = ActivityState.TERMINATED
        self.terminated_reason = reason
        self._queue.clear()
        self._run = None
        dead_tags = self.proxies.release_all()
        for tag in dead_tags:
            tag.dead = True
        if self.collector is not None:
            self.collector.on_terminated()
        self.node.on_activity_terminated(self, reason)

    # ------------------------------------------------------------------
    # Reference management
    # ------------------------------------------------------------------

    def adopt_proxy(self, proxy: Proxy) -> None:
        """Record a proxy delivered by deserialization (pre-acquired)."""
        # Table acquisition happened in the deserialization hook; the
        # proxy will be auto-released at handler completion unless kept.

    def mark_kept(self, proxy: Proxy) -> None:
        self._kept.add(id(proxy))

    def release_proxy(self, proxy: Proxy) -> None:
        """Drop one stub; notifies the local GC when the tag dies."""
        if self.terminated:
            return
        last = self.proxies.release(proxy)
        self._kept.discard(id(proxy))
        if last:
            proxy.tag.dead = True
            self.node.local_gc.notify_tag_dead(self, proxy.tag)

    # ------------------------------------------------------------------
    # Calls out
    # ------------------------------------------------------------------

    def send_call(
        self,
        target: Union[Proxy, RemoteRef],
        method: str,
        *,
        payload_bytes: int = 0,
        refs: Sequence[Union[Proxy, RemoteRef]] = (),
        data: Any = None,
        expect_reply: bool = False,
    ) -> Optional[Future]:
        if self.terminated:
            raise ActivityTerminatedError(f"{self.id} is terminated")
        return self.node.send_request(
            self,
            target,
            method,
            payload_bytes=payload_bytes,
            refs=refs,
            data=data,
            expect_reply=expect_reply,
        )

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------

    def deliver(self, request: Request, proxies: List[Proxy]) -> None:
        """Enqueue an incoming request; start serving if idle."""
        if self.terminated:
            # A message reached a dead activity: visible symptom of either
            # an application bug or a wrongful collection; traced upstream.
            return
        self._queue.append((request, proxies))
        self._pump()

    def _pump(self) -> None:
        """Serve queued requests until the queue drains or a handler
        suspends.  Iterative on purpose: long queues of instantly
        completing requests must not recurse."""
        if self._pumping:
            return
        self._pumping = True
        try:
            while True:
                if self.terminated or self._run is not None:
                    return
                if not self._queue:
                    if self.state is ActivityState.BUSY:
                        self._become_idle()
                    return
                request, proxies = self._queue.popleft()
                self.state = ActivityState.BUSY
                run = _HandlerRun(request, proxies)
                self._run = run
                self.requests_served += 1
                result = self.behavior.handle(self.context, request, proxies)
                self._begin_handler(run, result)
        finally:
            self._pumping = False

    def _begin_handler(self, run: _HandlerRun, result: HandlerResult) -> None:
        if self._run is not run:  # terminated during the handler body
            return
        if isinstance(result, Generator):
            run.generator = result
            self._step(run, None)
        else:
            self._finish(run, result)

    def _step(self, run: _HandlerRun, send_value: Any) -> None:
        # Iterative, not recursive: a yielded future that is *already*
        # resolved (a local bind ack, a cache hit) resumes the generator
        # in this same frame.  Recursing through Future.on_resolve would
        # put one stack frame per synchronously-resolved await on the
        # call stack — a handler awaiting 10^5 local registry acks in a
        # row (the bind-heavy naming workload) overflows it.
        while True:
            if self._run is not run:  # stale resume after termination
                return
            generator = run.generator
            assert generator is not None
            try:
                yielded = generator.send(send_value)
            except StopIteration as stop:
                self._finish(run, stop.value)
                self._pump()
                return
            if isinstance(yielded, Sleep):
                self.node.kernel.schedule(
                    yielded.duration,
                    self._step,
                    run,
                    None,
                    label=f"resume:{self.id}",
                )
                return
            elif isinstance(yielded, Future):
                if yielded.resolved:
                    send_value = yielded
                    continue
                yielded.on_resolve(lambda future: self._step(run, future))
                return
            else:
                raise RuntimeModelError(
                    f"handler of {self.id} yielded unsupported {yielded!r}"
                )

    def _finish(self, run: _HandlerRun, result: Any) -> None:
        if self._run is not run:
            return
        request = run.request
        if request is not None and request.reply_to is not None:
            self.node.send_reply(self, request, result)
        for proxy in run.proxies:
            if id(proxy) not in self._kept and not proxy.released:
                self.release_proxy(proxy)
        self._run = None

    def _become_idle(self) -> None:
        self.state = ActivityState.IDLE
        if self.node.tracer.enabled:
            self.node.tracer.record(
                self.node.kernel.now, "activity.idle", self.id
            )
        for listener in self._idle_listeners:
            listener(self)
        if self.collector is not None:
            self.collector.on_became_idle()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Activity({self.id} {self.state.value} on {self.node.name})"
