"""Reference (de)serialization hooks.

Paper Sec. 2.2: "The graph is constructed by hooking into the
deserialization of stubs, and by remembering which local active object A
(i.e. the recipient of the message) triggered the deserialization, then A
can add the stub target B to its list of referenced active objects."

``serialize_refs`` converts proxies to wire-form :class:`RemoteRef`;
``deserialize_refs`` materialises stubs in the recipient's proxy table and
notifies its DGC collector (which also implements the "at least one DGC
message must be sent at the next broadcast" rule, Sec. 3.1).
"""

from __future__ import annotations

from typing import List, Sequence, Tuple, Union

from repro.errors import RuntimeModelError
from repro.runtime.proxy import Proxy, RemoteRef


def serialize_refs(
    refs: Sequence[Union[Proxy, RemoteRef]],
) -> Tuple[RemoteRef, ...]:
    """Convert held proxies (or already-serialized refs) to wire form."""
    wire: List[RemoteRef] = []
    for ref in refs:
        if isinstance(ref, Proxy):
            if ref.released:
                raise RuntimeModelError(f"serializing released {ref!r}")
            wire.append(ref.ref)
        elif isinstance(ref, RemoteRef):
            wire.append(ref)
        else:
            raise RuntimeModelError(f"cannot serialize reference {ref!r}")
    return tuple(wire)


def deserialize_refs(activity, refs: Sequence[RemoteRef]) -> List[Proxy]:
    """Materialise stubs for ``refs`` in ``activity``'s proxy table.

    Each deserialization notifies the activity's DGC collector so the
    reference-graph edge exists *before* the application ever uses the
    stub.  Self-references are materialised too (an activity may legally
    hold a stub on itself, forming a 1-cycle).
    """
    proxies: List[Proxy] = []
    for ref in refs:
        proxy = activity.proxies.acquire(ref)
        if activity.collector is not None:
            activity.collector.on_reference_deserialized(proxy)
        proxies.append(proxy)
    return proxies
