"""The world: one simulated distributed system.

A :class:`World` wires the event kernel, the network fabric, the nodes,
the registry and (optionally) the DGC together, and offers the high-level
API used by examples, workloads and tests::

    world = World(uniform_topology(4), dgc=DgcConfig(ttb=1.0, tta=2.5))
    driver = world.create_driver()
    worker = driver.context.create(MyBehavior(), name="worker")
    ...
    world.run_for(60.0)

When ``safety_checks`` is on, every DGC-driven termination is checked
against the ground-truth garbage oracle (paper Eq. 1); a violation is
recorded (and raised) — this is how the property-based test-suite
falsifies broken variants of the protocol.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Set

from repro.core import events
from repro.core.collector import DgcCollector
from repro.core.config import AGGREGATION_RELAXED, DgcConfig, RegistryConfig
from repro.errors import ConfigurationError, ProtocolError
from repro.net.accounting import BandwidthAccountant
from repro.net.faults import FaultPlan
from repro.net.message import WireSizeModel
from repro.net.network import Network
from repro.net.topology import Topology, uniform_topology
from repro.runtime.activeobject import Activity
from repro.runtime.behaviors import SinkBehavior
from repro.runtime.ids import ActivityId, make_activity_id
from repro.runtime.node import Node
from repro.runtime.proxy import Proxy, RemoteRef
from repro.runtime.registry import NamingService
from repro.runtime.request import Reply, Request
from repro.sim.kernel import SimKernel
from repro.sim.rng import RngRegistry
from repro.sim.tracing import Tracer


@dataclass
class WorldStats:
    """Aggregate counters for one run."""

    created: int = 0
    collected_acyclic: int = 0
    collected_cyclic: int = 0
    terminated_explicit: int = 0
    dead_letters: int = 0
    safety_violations: int = 0
    collected_by_id: Dict[ActivityId, float] = field(default_factory=dict)

    @property
    def collected_total(self) -> int:
        return self.collected_acyclic + self.collected_cyclic


class World:
    """A complete simulated grid."""

    def __init__(
        self,
        topology: Optional[Topology] = None,
        *,
        dgc: Optional[DgcConfig] = None,
        registry: Optional[RegistryConfig] = None,
        seed: int = 0,
        trace: bool = True,
        wire_sizes: Optional[WireSizeModel] = None,
        gc_delay: float = 0.0,
        fault_plan: Optional[FaultPlan] = None,
        safety_checks: bool = False,
        validate_dgc_config: bool = True,
        collector_factory: Optional[Any] = None,
        kernel: Optional[Any] = None,
        local_nodes: Optional[List[str]] = None,
    ) -> None:
        self.topology = topology if topology is not None else uniform_topology(4)
        #: The event kernel; pass a :class:`repro.live.LiveKernel` to run
        #: the identical stack in wall-clock time.
        self.kernel = kernel if kernel is not None else SimKernel()
        self.tracer = Tracer(enabled=trace)
        self.rng_registry = RngRegistry(seed)
        self.wire_sizes = wire_sizes if wire_sizes is not None else WireSizeModel()
        self.network = Network(
            self.kernel,
            self.topology,
            accountant=BandwidthAccountant(),
            fault_plan=fault_plan,
        )
        self.dgc_config = dgc
        if dgc is not None and validate_dgc_config:
            dgc.validate_against(self.network.max_comm())
        if dgc is not None and dgc.batched_beats:
            # The TTB beat is wheel-scheduled: let deliveries ride the
            # network's pulse batch too (one kernel event per distinct
            # delivery instant instead of one per message).
            self.network.pulse_batching = True
            # Columnar pulse storage + site-pair DGC aggregation (the
            # default batched core); off, the per-entry batched pulse of
            # the previous core serves as the A/B baseline.
            self.network.aggregate_site_pairs = dgc.aggregate_site_pairs
            if dgc.aggregation_mode == AGGREGATION_RELAXED:
                # Relaxed equivalence tier: accumulate per-(channel,
                # kind) across instants, flush on the absolute
                # flush-period grid (default TTB) — see
                # repro/net/reorder.py for the safety contract.
                self.network.configure_relaxed(dgc.relaxed_flush_period)
        #: Optional callable ``factory(activity) -> collector`` overriding
        #: the paper's DGC; used to attach baseline collectors
        #: (:mod:`repro.baselines`).
        self.collector_factory = collector_factory
        self.safety_checks = safety_checks
        #: The naming service: per-node registry shards, lease caching
        #: and placement-routed ``registry.*`` fabric traffic (see
        #: :class:`repro.runtime.registry.NamingService`).  ``registry``
        #: (a :class:`RegistryConfig`) picks placement and lease policy;
        #: the default is the uncached static-home baseline.
        self.registry = NamingService(self, registry)
        self.registry_config = self.registry.config
        #: Back-compatible alias: the naming service's home node (the
        #: static authority in ``home`` placement, the primary in
        #: ``replicated``).
        self.registry_node = self.registry.home_node
        #: A sharded world materializes only its own node group
        #: (``local_nodes``); the full topology stays shared so routing,
        #: latency and registry placement agree across shards.  Default:
        #: every node is local (the single-process world).
        if local_nodes is None:
            node_names = list(self.topology.nodes)
        else:
            node_names = list(local_nodes)
            unknown = [n for n in node_names if n not in self.topology.nodes]
            if unknown:
                raise ConfigurationError(
                    f"local nodes {unknown} are not in the topology"
                )
        self.nodes: Dict[str, Node] = {
            name: Node(self, name, gc_delay=gc_delay)
            for name in node_names
        }
        self._node_order = node_names
        self._placement_cursor = 0
        self._activities: Dict[ActivityId, Activity] = {}
        self._inflight_wakeups: Dict[ActivityId, int] = {}
        self._inflight_ref_pins: Dict[ActivityId, int] = {}
        #: Live non-root count, maintained in :meth:`create_activity` and
        #: :meth:`on_activity_terminated` so quiescence predicates are
        #: O(1) instead of rebuilding activity lists.
        self._live_non_root_count = 0
        #: When true, the termination hook stops the kernel as soon as the
        #: counter hits zero (event-driven :meth:`run_until_collected`).
        self._stop_when_collected = False
        self.stats = WorldStats()
        #: Plain monotonic app-traffic counters.  Unlike the in-flight
        #: pin *dicts* below — which assume send and delivery are
        #: observed by the same world and therefore go stale across a
        #: shard boundary (the sender's increment is never matched by
        #: the remote receiver's decrement) — these counters are
        #: meaningful per shard and *summable*: the shard coordinator's
        #: settle predicate is Σsent == Σdelivered across all shards.
        self.requests_sent = 0
        self.requests_delivered = 0
        self.replies_sent = 0
        self.replies_delivered = 0

    # ------------------------------------------------------------------
    # Topology / placement
    # ------------------------------------------------------------------

    @property
    def accountant(self) -> BandwidthAccountant:
        return self.network.accountant

    def node(self, name: str) -> Node:
        return self.nodes[name]

    def _next_node(self) -> str:
        name = self._node_order[self._placement_cursor % len(self._node_order)]
        self._placement_cursor += 1
        return name

    # ------------------------------------------------------------------
    # Activity creation
    # ------------------------------------------------------------------

    def create_activity(
        self,
        behavior: Any,
        *,
        node: Optional[str] = None,
        name: str = "",
        root: bool = False,
        creator: Optional[Activity] = None,
        dgc_config: Optional[DgcConfig] = None,
        dgc_enabled: bool = True,
    ):
        """Create an activity; returns a :class:`Proxy` when a creator is
        given (the creator holds the first stub), else the bare activity.

        ``dgc_config`` overrides the world's DGC configuration for this
        activity only (Sec. 7.1 extension: per-activity TTB/TTA — e.g. a
        dynamic application part with a fast beat next to a static part
        with a slow one).  Mixed-beat worlds should enable
        ``heterogeneous_params`` so expiry deadlines account for slower
        referencers.

        ``dgc_enabled=False`` attaches no collector at all: the activity
        models *external* code outside the managed world — paper
        Sec. 4.1's "anyone can look [registered objects] up at any
        time" includes clients that do not participate in the DGC and
        rely on the registry's root pin, not on reference edges, to keep
        a service alive.  Such activities hold stubs invisibly to the
        DGC and nothing can ever collect them, so they must be roots
        (otherwise they would count as live non-roots forever and
        :meth:`run_until_collected` could never finish).
        """
        if not dgc_enabled and not root:
            raise ConfigurationError(
                "dgc_enabled=False requires root=True: a collector-less "
                "activity can never be collected, so it must not count "
                "as a live non-root"
            )
        node_name = node if node is not None else self._next_node()
        host = self.nodes[node_name]
        activity = Activity(
            host, make_activity_id(name), behavior, root=root
        )
        host.add_activity(activity)
        self._activities[activity.id] = activity
        if not root:
            self._live_non_root_count += 1
        self.stats.created += 1
        if not dgc_enabled:
            pass
        elif self.collector_factory is not None:
            activity.collector = self.collector_factory(activity)
        elif dgc_config is not None or self.dgc_config is not None:
            effective = dgc_config if dgc_config is not None else self.dgc_config
            activity.collector = DgcCollector(activity, effective)
        if activity.collector is not None:
            host.register_collector(activity)
        activity.start()
        if creator is not None:
            ref = RemoteRef(activity.id, node_name)
            return host_acquire(creator, ref)
        return activity

    def create_driver(
        self, *, node: Optional[str] = None, name: str = "driver"
    ) -> Activity:
        """A dummy root activity standing in for non-active code
        (paper Sec. 4.1): never idle, hence never collected."""
        return self.create_activity(SinkBehavior(), node=node, name=name, root=True)

    # ------------------------------------------------------------------
    # Lookup / liveness
    # ------------------------------------------------------------------

    def find_activity(self, activity_id: ActivityId) -> Optional[Activity]:
        return self._activities.get(activity_id)

    def live_activities(self) -> List[Activity]:
        return list(self._activities.values())

    def live_non_roots(self) -> List[Activity]:
        return [a for a in self._activities.values() if not a.is_root]

    @property
    def live_non_root_count(self) -> int:
        """O(1) count of live non-root activities."""
        return self._live_non_root_count

    def all_collected(self) -> bool:
        """Every non-root activity has been collected/terminated (O(1))."""
        return self._live_non_root_count == 0

    # ------------------------------------------------------------------
    # Run helpers
    # ------------------------------------------------------------------

    def run_for(self, seconds: float) -> None:
        self.kernel.run(until=self.kernel.now + seconds)

    def run_until_collected(self, timeout: float, check_interval: float = 1.0) -> bool:
        """Run until every non-root activity is gone; False on timeout.

        Event-driven on every kernel: the termination hook calls
        ``kernel.request_stop()`` the instant the live non-root counter
        hits zero — the simulation kernel returns after the stopping
        event, the live kernel wakes the blocked caller through its
        condition variable.  There is no fixed-interval polling;
        ``check_interval`` is kept for API compatibility and ignored.
        """
        self._stop_when_collected = True
        try:
            # Check *after* arming: on the live kernel the last
            # termination may land on the scheduler thread between a
            # plain check and the arm, in which case nothing would ever
            # call ``request_stop`` and ``run`` would sleep the whole
            # timeout.  Armed first, that termination requests the stop
            # itself (the live kernel latches a stop requested before
            # ``run`` enters).
            if self.all_collected():
                return True
            self.kernel.run(until=self.kernel.now + timeout)
        finally:
            self._stop_when_collected = False
        return self.all_collected()

    # ------------------------------------------------------------------
    # Bookkeeping hooks (called by nodes)
    # ------------------------------------------------------------------

    def on_activity_terminated(self, activity: Activity, reason: str) -> None:
        removed = self._activities.pop(activity.id, None)
        if removed is not None and not activity.is_root:
            self._live_non_root_count -= 1
            if self._live_non_root_count == 0 and self._stop_when_collected:
                self.kernel.request_stop()
        self.stats.collected_by_id[activity.id] = self.kernel.now
        if reason == events.REASON_ACYCLIC:
            self.stats.collected_acyclic += 1
        elif reason == events.REASON_CYCLIC:
            self.stats.collected_cyclic += 1
        else:
            self.stats.terminated_explicit += 1
        if self.safety_checks and reason in (
            events.REASON_ACYCLIC,
            events.REASON_CYCLIC,
        ):
            self._check_termination_safety(activity, reason)

    def note_request_sent(self, request: Request) -> None:
        self.requests_sent += 1
        self._inflight_wakeups[request.target] = (
            self._inflight_wakeups.get(request.target, 0) + 1
        )
        for ref in request.refs:
            self._inflight_ref_pins[ref.activity_id] = (
                self._inflight_ref_pins.get(ref.activity_id, 0) + 1
            )

    def note_request_delivered(self, request: Request) -> None:
        self.requests_delivered += 1
        self._dec(self._inflight_wakeups, request.target)
        for ref in request.refs:
            self._dec(self._inflight_ref_pins, ref.activity_id)

    def note_reply_sent(self, reply: Reply) -> None:
        self.replies_sent += 1
        for ref in reply.refs:
            self._inflight_ref_pins[ref.activity_id] = (
                self._inflight_ref_pins.get(ref.activity_id, 0) + 1
            )

    def note_reply_delivered(self, reply: Reply) -> None:
        self.replies_delivered += 1
        for ref in reply.refs:
            self._dec(self._inflight_ref_pins, ref.activity_id)

    @staticmethod
    def _dec(counter: Dict[ActivityId, int], key: ActivityId) -> None:
        value = counter.get(key, 0) - 1
        if value <= 0:
            counter.pop(key, None)
        else:
            counter[key] = value

    def inflight_pinned(self) -> Set[ActivityId]:
        """Activities pinned by in-flight traffic (wakeups or references)."""
        pinned = set(self._inflight_wakeups)
        pinned.update(self._inflight_ref_pins)
        return pinned

    def on_dead_letter(self) -> None:
        self.stats.dead_letters += 1

    # ------------------------------------------------------------------
    # Safety monitor
    # ------------------------------------------------------------------

    def _check_termination_safety(self, activity: Activity, reason: str) -> None:
        from repro.graph.oracle import compute_garbage

        garbage = compute_garbage(self, include=[activity])
        if activity.id not in garbage:
            self.stats.safety_violations += 1
            raise ProtocolError(
                f"wrongful {reason} collection of {activity.id} at "
                f"t={self.kernel.now}: the oracle says it is reachable "
                f"from a non-idle activity"
            )


def host_acquire(holder: Activity, ref: RemoteRef) -> Proxy:
    """Acquire a stub for ``ref`` on ``holder`` via the deserialization
    hook (creation behaves like receiving the reference, Sec. 2.2)."""
    return holder.node.deserialize_ref(holder, ref)
