"""The shard coordinator: conservative barrier rounds over worker pipes.

:class:`ShardedWorld` partitions a topology with a
:class:`~repro.shard.plan.ShardPlan`, forks one
:func:`~repro.shard.worker.worker_main` process per shard, and drives
them in *barrier rounds*:

1. every worker reports its *earliest output time* — the earliest
   instant it could still produce a cross-shard send (its next local
   event time; the egress is drained into the same report) — and the
   wire frames its last window produced;
2. the coordinator routes each frame to its destination shard and
   computes each shard's *bid* ``B_i``: the minimum of its earliest
   output time and the delivery instants of undelivered frames
   destined to it (an injected frame fires an event, and that event
   can send);
3. it grants each shard ``j`` its own horizon: the earliest instant
   any chain of cross-shard hops, starting from any shard's bid and
   crossing the plan's per-channel lookahead matrix ``L``, could
   arrive at ``j``.  In exact arithmetic that is
   ``H_j = min(min_{i != j} (B_i + D*[i][j]), B_j + cycle_j)`` over
   the matrix's shortest-path closure
   (:attr:`~repro.shard.plan.ShardPlan.horizon_matrix`, whose diagonal
   ``cycle_j`` bounds a shard's own output echoing back); the
   implementation instead runs a per-round Bellman–Ford relaxation in
   *arrival-time space*, accumulating each chain with the same
   left-folded float additions a real chain of sends accumulates —
   float ``+`` is monotone in each argument but not associative, so
   ``bid + precomputed_closure`` could exceed a real two-hop arrival
   by a few ULPs and trip the late-injection guard, while the folded
   bound provably cannot.  Frames destined to a shard are injected
   before it advances.  Only shards whose horizon grew (or that have
   frames to receive) are advanced; the others' last reports stay
   exact because they have not moved.

Safety is the classic conservative-synchronization induction, per
channel: a chain of hops that starts from shard ``i``'s current state
and ends at ``j`` pays each edge's latency with a monotone float add,
so its final delivery is at or after the relaxation's arrival bound —
at or after ``j``'s injection point, never in its past.  Granted
horizons are monotone (a shrinking computed bound is clamped to the
previous grant, which stays safe because every bound computed in
round ``r`` lower-bounds deliveries generated in *all* rounds
``>= r``).  On a non-uniform
topology — metro site pairs bridged by a WAN, the Grid'5000 shape the
paper measures on — per-channel horizons beat the single global
``H = M + min L``: a shard bordered only by wide channels advances
through windows the narrowest boundary anywhere in the plan would have
denied it, cutting barrier rounds.  Workers enforce the invariant
(:meth:`~repro.net.network.Network.inject_remote_entries` raises on a
late entry) rather than trusting it.

Because horizons are per shard, worker clocks diverge between rounds.
Phase transitions still happen at one shared instant: once a phase
predicate is satisfied the coordinator runs *alignment rounds* —
ordinary conservative rounds with horizons capped at the current
maximum grant — until every worker stands at the same virtual time,
then broadcasts the phase entry (whose driver-side actions run at that
shared time, exactly as under the global-horizon protocol).

**Determinism.**  Frames are stamped ``(src_shard, seq)`` by their
producer and merged by the coordinator in shard order, frames in
sequence order — a total order independent of OS scheduling, pipe
timing or process count (which shards advance each round is itself a
deterministic function of the reports, so selective advance preserves
it).  The coordinator folds every routed frame, in that order, into a
SHA-256 running digest: two runs of the same
configuration produce byte-identical frame streams and therefore equal
digests (the whole cross-shard conversation is replayable from the
log; pass ``record_frames=True`` to keep the raw frames).  Workers
re-sort injected frames by the same stamp before staging, so delivery
order inside a shard is equally schedule-independent.

**Outcome equivalence.**  A sharded run and a single-process run of the
same SPMD builder (:func:`replay_single_process`) produce the same
outcome signature — activities created, explicit terminations, the
exact set of collected activity ids, dead letters, safety violations.
Event *interleaving* at equal timestamps differs across process
topologies (each shard has its own event sequence counter), so
time-sensitive classifications (acyclic vs. cyclic collection split,
per-kind message counts) are not part of the signature; the DGC's
convergence guarantees make the outcome identical anyway.

The workload's run protocol is a list of
:class:`~repro.shard.workloads.Phase` records; the coordinator
evaluates each phase's completion predicate over merged worker reports
(``"collected"`` / ``"balance"`` / ``"ready"``) and broadcasts phase
entries, whose driver-side actions run at the shared current horizon.
"""

from __future__ import annotations

import hashlib
import math
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import DgcConfig, RegistryConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.topology import Topology
from repro.net.wire import DEFAULT_WIRE_VERSION
from repro.shard.plan import ShardPlan, make_plan
from repro.shard.worker import (
    REGISTRY_COUNTERS,
    WorkerSpec,
    build_shard_world,
    worker_main,
)
from repro.shard.workloads import Phase, workload_phases


@dataclass
class _Report:
    """One worker's state at a barrier point.

    A skipped worker's report stays valid until it is next advanced —
    the worker has not moved, so every field (including ``eot``) is
    stale but exact.
    """

    next_time: Optional[float]
    live_non_root: int
    counters: Tuple[int, int, int, int]
    all_idle: bool
    flags: Dict[str, bool]
    #: (dest_shard, has_app, min_delivery, n_entries, frame_bytes) rows.
    frames: List[Tuple[int, bool, float, int, bytes]]
    #: Earliest instant this worker could still produce a cross-shard
    #: send (``None``: it cannot until something is injected).
    eot: Optional[float]


@dataclass
class ShardedRunResult:
    """Merged outcome of one sharded run."""

    shard_count: int
    workload: str
    created: int
    collected_acyclic: int
    collected_cyclic: int
    terminated_explicit: int
    dead_letters: int
    safety_violations: int
    collected_ids: List[str]
    live_non_root: int
    rounds: int
    sim_time_s: float
    wall_s: float
    #: Simulated time at which each phase completed, in phase order.
    phase_times: List[float]
    frame_count: int
    frame_bytes: int
    #: Total staged pulse entries carried by all frames (the
    #: denominator of bytes-per-entry).
    frame_entries: int
    frame_digest: str
    #: Frame format the workers packed egress with.
    wire_version: int
    events_fired: int
    #: :attr:`events_fired` split into events the workload itself
    #: scheduled vs. pulse instants that exist only because a
    #: cross-shard frame was injected (coordination overhead; zero for
    #: a single-process run).
    events_workload: int
    events_coordination: int
    egress_messages: int
    injected_entries: int
    total_bytes: int
    traffic: Dict[str, Tuple[int, int]]
    registry: Dict[str, int]
    workload_results: List[Dict[str, Any]]
    per_shard: List[Dict[str, Any]] = field(repr=False)
    #: ``(src_shard, dest_shard, frame_bytes)`` log; only with
    #: ``record_frames=True``.
    frames: Optional[List[Tuple[int, int, bytes]]] = field(
        default=None, repr=False
    )
    #: Merged ``(time, kind, subject, details)`` trace stream; only with
    #: ``trace=True``.
    trace: Optional[List[tuple]] = field(default=None, repr=False)

    @property
    def collected_total(self) -> int:
        return self.collected_acyclic + self.collected_cyclic

    def outcome_signature(self) -> tuple:
        """The cross-arm equivalence tier (see module docstring)."""
        return (
            self.created,
            self.terminated_explicit,
            self.dead_letters,
            self.safety_violations,
            tuple(self.collected_ids),
        )


def _arrival_bounds(
    bids: List[float],
    lookahead_rows: Tuple[Tuple[float, ...], ...],
) -> List[float]:
    """Per-shard earliest-arrival bounds — the granted horizons.

    ``bids[i]`` is the earliest instant shard ``i`` can still act (its
    earliest output time, or the earliest undelivered frame destined to
    it).  The returned ``arrive[j]`` is the earliest instant *any*
    chain of cross-shard hops over the lookahead matrix could land a
    delivery on ``j`` — shard ``j`` may safely fire every event
    strictly before it.

    A Bellman–Ford relaxation in arrival-time space: ``act[u]`` tracks
    the earliest instant shard ``u`` can act (its bid, lowered by
    chained arrivals into it), and every candidate is folded
    left-to-right — ``(bid + L1) + L2``, never ``bid + (L1 + L2)`` —
    exactly as a real chain of sends folds its delivery times.  Float
    ``+`` is monotone in each argument, so each real hop's delivery is
    at or above the corresponding fold and the bound survives float
    rounding (a presummed closure would not: ``+`` is not
    associative).  Positive latencies make cycles non-improving, so
    the fixpoint is reached in at most ``len(bids)`` sweeps.  In exact
    arithmetic this equals
    ``min(min_{i != j}(B_i + D*[i][j]), B_j + cycle_j)`` over
    :attr:`~repro.shard.plan.ShardPlan.horizon_matrix`.
    """
    count = len(bids)
    act = list(bids)
    arrive = [math.inf] * count
    changed = True
    while changed:
        changed = False
        for u in range(count):
            departure = act[u]
            if departure == math.inf:
                continue
            row = lookahead_rows[u]
            for v in range(count):
                if v == u:
                    continue
                latency = row[v]
                if latency == math.inf:
                    continue
                candidate = departure + latency
                if candidate < arrive[v]:
                    arrive[v] = candidate
                    if candidate < act[v]:
                        act[v] = candidate
                    changed = True
    return arrive


class ShardedWorld:
    """A world partitioned over ``shard_count`` worker processes."""

    def __init__(
        self,
        topology: Topology,
        shard_count: int,
        *,
        workload: str,
        params: Optional[Dict[str, Any]] = None,
        dgc: Optional[DgcConfig] = None,
        registry: Optional[RegistryConfig] = None,
        seed: int = 0,
        trace: bool = False,
        record_frames: bool = False,
        max_sim_time: float = 72_000.0,
        io_timeout_s: float = 300.0,
        wire_version: int = DEFAULT_WIRE_VERSION,
    ) -> None:
        if wire_version not in (1, 2):
            raise ConfigurationError(
                f"unknown wire version {wire_version!r} (have: 1, 2)"
            )
        if dgc is None:
            raise ConfigurationError(
                "the sharded world needs a DgcConfig: collection drives "
                "the run protocol's stop condition"
            )
        if not dgc.batched_beats:
            raise ConfigurationError(
                "sharded execution requires the batched pulse core "
                "(DgcConfig.batched_beats): the per-event envelope path "
                "cannot cross a shard boundary"
            )
        self.topology = topology
        self.plan = make_plan(topology, shard_count)
        self.workload = workload
        self.params = dict(params or {})
        self.phases: Tuple[Phase, ...] = workload_phases(workload)
        self.dgc = dgc
        self.registry = registry
        self.seed = seed
        self.trace = trace
        self.record_frames = record_frames
        self.max_sim_time = max_sim_time
        self.io_timeout_s = io_timeout_s
        self.wire_version = wire_version

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self) -> ShardedRunResult:
        import gc
        import multiprocessing

        mp = multiprocessing.get_context("fork")
        start = time.monotonic()  # repro: allow[DET-wallclock] wall-clock is reported in the result, never scheduled on
        conns = []
        procs = []
        try:
            # Freeze the caller's heap across the forks.  Whatever the
            # parent holds at fork time (a replay world, earlier
            # benchmark arms) is unreachable garbage from a worker's
            # point of view, but its gen-2 collections would still
            # traverse every inherited object — dirtying copy-on-write
            # pages and burning CPU proportional to the *caller's*
            # heap, not the worker's.  Parking it in the permanent
            # generation makes child GC skip it; the parent thaws as
            # soon as the workers are spawned.
            gc.collect()
            gc.freeze()
            try:
                self._spawn(mp, conns, procs)
            finally:
                gc.unfreeze()
            return self._drive(conns, start)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - hang backstop
                    proc.terminate()

    def _spawn(self, mp, conns, procs) -> None:
        for shard in range(self.plan.shard_count):
            parent_conn, child_conn = mp.Pipe()
            spec = WorkerSpec(
                shard=shard,
                plan=self.plan,
                topology=self.topology,
                workload=self.workload,
                params=self.params,
                dgc=self.dgc,
                registry=self.registry,
                seed=self.seed,
                trace=self.trace,
                wire_version=self.wire_version,
            )
            proc = mp.Process(
                target=worker_main, args=(child_conn, spec), daemon=True
            )
            proc.start()
            child_conn.close()
            conns.append(parent_conn)
            procs.append(proc)

    # ------------------------------------------------------------------
    # The barrier-round loop
    # ------------------------------------------------------------------

    def _drive(self, conns, start: float) -> ShardedRunResult:
        shard_count = self.plan.shard_count
        lookahead_rows = self.plan.lookahead_matrix
        # One shard: no boundary constrains the window, but rounds must
        # stay finite so the phase predicate is re-evaluated — one DGC
        # beat per round is the natural granularity (the cycle bound is
        # infinite: there is nobody to echo output back).
        single_step = self.dgc.ttb if shard_count == 1 else None
        phases = self.phases
        digest = hashlib.sha256()
        frame_log: Optional[List[Tuple[int, int, bytes]]] = (
            [] if self.record_frames else None
        )
        #: per-dest-shard undelivered frames: (has_app, min_delivery, bytes)
        pending: List[List[Tuple[bool, float, bytes]]] = [
            [] for _ in range(shard_count)
        ]
        state = {
            "frame_count": 0,
            "frame_bytes": 0,
            "frame_entries": 0,
            "pending_app": 0,
        }

        def route(shards: List[int]) -> None:
            # Shard order == stamp order: each worker's seqs ascend, so
            # folding reports in ascending shard index keeps the digest
            # a pure function of the (src_shard, seq)-ordered stream.
            for src in shards:
                for dest, has_app, min_delivery, n_entries, buf in (
                    reports[src].frames
                ):
                    digest.update(buf)
                    state["frame_count"] += 1
                    state["frame_bytes"] += len(buf)
                    state["frame_entries"] += n_entries
                    state["pending_app"] += has_app
                    pending[dest].append((has_app, min_delivery, buf))
                    if frame_log is not None:
                        frame_log.append((src, dest, buf))

        every_shard = list(range(shard_count))
        reports = [self._recv_report(conn) for conn in conns]
        route(every_shard)
        #: Each worker's current virtual time (its last granted horizon);
        #: grants are monotone per shard.
        granted = [0.0] * shard_count
        phase = 0
        rounds = 0
        phase_times: List[float] = []

        while True:
            target = max(granted)
            aligned = all(g == target for g in granted)
            satisfied = self._satisfied(
                phases[phase], reports, state["pending_app"]
            )
            if satisfied and aligned:
                phase_times.append(target)
                if phase == len(phases) - 1:
                    break
                phase += 1
                for conn in conns:
                    conn.send(("phase", phase))
                reports = [self._recv_report(conn) for conn in conns]
                route(every_shard)
                continue
            # Each shard's bid: the earliest instant anything can still
            # happen there — its own earliest output time, or a frame
            # delivery that would wake it.
            bids = []
            for j, report in enumerate(reports):
                bid = math.inf if report.eot is None else report.eot
                for _, min_delivery, _ in pending[j]:
                    if min_delivery < bid:
                        bid = min_delivery
                bids.append(bid)
            minimum = min(bids)
            if minimum == math.inf and not satisfied:
                raise SimulationError(
                    f"sharded {self.workload!r} deadlocked in phase "
                    f"{phases[phase].name!r} at t={target}: no shard "
                    f"has pending events and no frames are in flight, "
                    f"but the phase predicate is unsatisfied"
                )
            if minimum != math.inf and minimum > self.max_sim_time:
                raise SimulationError(
                    f"sharded {self.workload!r} exceeded max_sim_time="
                    f"{self.max_sim_time} in phase {phases[phase].name!r}"
                )
            # Alignment cap: once the phase predicate holds, stop
            # opening new windows — only walk the laggards up to the
            # leader so the phase transition happens at one shared
            # instant.  (With no events left anywhere the cap is the
            # grant itself.)
            cap = target if satisfied else math.inf
            if single_step is not None:
                arrive = [bids[0] + single_step]
            else:
                arrive = _arrival_bounds(bids, lookahead_rows)
            advanced = []
            for j, conn in enumerate(conns):
                horizon = arrive[j]
                if horizon > cap:
                    horizon = cap
                grew = granted[j] < horizon < math.inf
                if grew:
                    granted[j] = horizon
                if grew or pending[j]:
                    frames = pending[j]
                    pending[j] = []
                    conn.send(("advance", granted[j], len(frames)))
                    for has_app, _, buf in frames:
                        conn.send_bytes(buf)
                        state["pending_app"] -= has_app
                    advanced.append(j)
            if not advanced:  # pragma: no cover - progress guard
                raise SimulationError(
                    f"sharded {self.workload!r} stalled in phase "
                    f"{phases[phase].name!r} at t={target}: no shard's "
                    f"horizon grew and no frames are deliverable"
                )
            for j in advanced:
                reports[j] = self._recv_report(conns[j])
            route(advanced)
            rounds += 1
        sim_time = max(granted)

        # Final phase satisfied: stop the workers and merge.  Any frames
        # still pending carry post-outcome DGC chatter to activities that
        # are already collected; the nodes ignore such deliveries, so
        # discarding them does not change the outcome.
        results = []
        for conn in conns:
            conn.send(("stop",))
            results.append(self._recv_result(conn))
        wall = time.monotonic() - start  # repro: allow[DET-wallclock] wall-clock is reported in the result, never scheduled on
        return self._merge(
            results, rounds, sim_time, wall, phase_times, digest,
            state, frame_log,
        )

    # ------------------------------------------------------------------
    # Predicates and plumbing
    # ------------------------------------------------------------------

    def _satisfied(
        self, phase: Phase, reports: List[_Report], pending_app: int
    ) -> bool:
        kind = phase.predicate
        if kind == "collected":
            return sum(r.live_non_root for r in reports) == 0
        sent = delivered = rsent = rdelivered = 0
        for report in reports:
            c = report.counters
            sent += c[0]
            delivered += c[1]
            rsent += c[2]
            rdelivered += c[3]
        balanced = (
            sent == delivered and rsent == rdelivered and pending_app == 0
        )
        if kind == "balance":
            return balanced
        if kind == "ready":
            return (
                balanced
                and all(r.all_idle for r in reports)
                and all(v for r in reports for v in r.flags.values())
            )
        raise SimulationError(f"unknown phase predicate {kind!r}")

    def _recv_report(self, conn) -> _Report:
        message = self._recv(conn)
        if message[0] != "report":  # pragma: no cover - protocol guard
            raise SimulationError(
                f"expected a report, got {message[0]!r}"
            )
        frames = []
        for dest, has_app, min_delivery, n_entries in message[6]:
            frames.append(
                (dest, has_app, min_delivery, n_entries, conn.recv_bytes())
            )
        return _Report(
            next_time=message[1],
            live_non_root=message[2],
            counters=message[3],
            all_idle=message[4],
            flags=message[5],
            frames=frames,
            eot=message[7],
        )

    def _recv_result(self, conn) -> Dict[str, Any]:
        message = self._recv(conn)
        if message[0] != "result":  # pragma: no cover - protocol guard
            raise SimulationError(
                f"expected a result, got {message[0]!r}"
            )
        return message[1]

    def _recv(self, conn):
        if not conn.poll(self.io_timeout_s):
            raise SimulationError(
                f"shard worker unresponsive for {self.io_timeout_s}s"
            )
        message = conn.recv()
        if message[0] == "error":
            raise SimulationError(
                "shard worker failed:\n" + message[1]
            )
        return message

    def _merge(
        self, results, rounds, sim_time, wall, phase_times, digest,
        state, frame_log,
    ) -> ShardedRunResult:
        traffic: Dict[str, Tuple[int, int]] = {}
        for result in results:
            for kind, (size, messages) in result["traffic"].items():
                base = traffic.get(kind, (0, 0))
                traffic[kind] = (base[0] + size, base[1] + messages)
        registry = {name: 0 for name in REGISTRY_COUNTERS}
        for result in results:
            for name, value in result["registry"].items():
                registry[name] += value
        collected_ids: List[str] = []
        for result in results:
            collected_ids.extend(result["collected_ids"])
        collected_ids.sort()
        trace = None
        if self.trace:
            merged: List[tuple] = []
            for result in results:
                merged.extend(result["trace"] or [])
            merged.sort(key=lambda event: event[0])  # stable: shard order ties
            trace = merged
        return ShardedRunResult(
            shard_count=self.plan.shard_count,
            workload=self.workload,
            created=sum(r["created"] for r in results),
            collected_acyclic=sum(r["collected_acyclic"] for r in results),
            collected_cyclic=sum(r["collected_cyclic"] for r in results),
            terminated_explicit=sum(
                r["terminated_explicit"] for r in results
            ),
            dead_letters=sum(r["dead_letters"] for r in results),
            safety_violations=sum(r["safety_violations"] for r in results),
            collected_ids=collected_ids,
            live_non_root=sum(r["live_non_root"] for r in results),
            rounds=rounds,
            sim_time_s=sim_time,
            wall_s=wall,
            phase_times=phase_times,
            frame_count=state["frame_count"],
            frame_bytes=state["frame_bytes"],
            frame_entries=state["frame_entries"],
            frame_digest=digest.hexdigest(),
            wire_version=self.wire_version,
            events_fired=sum(r["events_fired"] for r in results),
            events_workload=sum(r["events_workload"] for r in results),
            events_coordination=sum(
                r["events_coordination"] for r in results
            ),
            egress_messages=sum(r["egress_messages"] for r in results),
            injected_entries=sum(r["injected_entries"] for r in results),
            total_bytes=sum(r["total_bytes"] for r in results),
            traffic=traffic,
            registry=registry,
            workload_results=[r["workload"] for r in results],
            per_shard=results,
            frames=frame_log,
            trace=trace,
        )


# ----------------------------------------------------------------------
# The single-process replay arm
# ----------------------------------------------------------------------


def replay_single_process(
    topology: Topology,
    *,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    dgc: Optional[DgcConfig] = None,
    registry: Optional[RegistryConfig] = None,
    seed: int = 0,
    trace: bool = False,
    timeout: float = 72_000.0,
):
    """Re-execute a sharded run's configuration in one process.

    Runs the *same* SPMD builder under a one-shard plan (every node
    local, the ordinary :class:`~repro.sim.kernel.SimKernel`), driving
    the same phase protocol inline.  Because setup placement, activity
    ids and RNG streams are identical by construction, the replay's
    outcome signature must equal the sharded run's — the verification
    that the multi-process execution changed the schedule but not the
    semantics.  Returns ``(world, env, signature)``.
    """
    spec = WorkerSpec(
        shard=0,
        plan=make_plan(topology, 1),
        topology=topology,
        workload=workload,
        params=dict(params or {}),
        dgc=dgc,
        registry=registry,
        seed=seed,
        trace=trace,
    )
    from repro.sim.kernel import SimKernel

    world, env = build_shard_world(spec, kernel=SimKernel())
    kernel = world.kernel

    def balanced() -> bool:
        return (
            world.requests_sent == world.requests_delivered
            and world.replies_sent == world.replies_delivered
        )

    def ready() -> bool:
        if not balanced():
            return False
        if not all(v for v in env.flags().values()):
            return False
        return all(a.is_idle() for a in world.live_non_roots())

    for index, phase in enumerate(env.phases):
        if index:
            env.enter_phase(index)
        if phase.predicate == "collected":
            done = world.run_until_collected(timeout)
        elif phase.predicate == "balance":
            done = kernel.run_until_quiescent(balanced, 0.5, timeout)
        else:
            done = kernel.run_until_quiescent(ready, 1.0, timeout)
        if not done:
            raise SimulationError(
                f"single-process replay of {workload!r} timed out in "
                f"phase {phase.name!r} after {timeout}s"
            )

    signature = (
        world.stats.created,
        world.stats.terminated_explicit,
        world.stats.dead_letters,
        world.stats.safety_violations,
        tuple(sorted(world.stats.collected_by_id)),
    )
    return world, env, signature
