"""The shard coordinator: conservative barrier rounds over worker pipes.

:class:`ShardedWorld` partitions a topology with a
:class:`~repro.shard.plan.ShardPlan`, forks one
:func:`~repro.shard.worker.worker_main` process per shard, and drives
them in *barrier rounds*:

1. every worker reports its next local event time and the wire frames
   its last window produced;
2. the coordinator routes each frame to its destination shard and
   computes the global minimum ``M`` over all reported next-event times
   and all undelivered frames' earliest delivery instants;
3. it grants every worker the horizon ``H = M + L`` (``L`` the plan's
   lookahead — the minimum cross-shard one-way latency), injecting the
   frames destined to each shard first.

Safety is the classic conservative-synchronization induction: every
event fired inside a round happens at ``t >= M``, so every cross-shard
delivery it generates is at ``t + L >= M + L = H`` — at or after the
*next* round's injection point, never in its past.  Workers enforce the
invariant (:meth:`~repro.net.network.Network.inject_remote_entries`
raises on a late entry) rather than trusting it.

**Determinism.**  Frames are stamped ``(src_shard, seq)`` by their
producer and merged by the coordinator in shard order, frames in
sequence order — a total order independent of OS scheduling, pipe
timing or process count.  The coordinator folds every routed frame, in
that order, into a SHA-256 running digest: two runs of the same
configuration produce byte-identical frame streams and therefore equal
digests (the whole cross-shard conversation is replayable from the
log; pass ``record_frames=True`` to keep the raw frames).  Workers
re-sort injected frames by the same stamp before staging, so delivery
order inside a shard is equally schedule-independent.

**Outcome equivalence.**  A sharded run and a single-process run of the
same SPMD builder (:func:`replay_single_process`) produce the same
outcome signature — activities created, explicit terminations, the
exact set of collected activity ids, dead letters, safety violations.
Event *interleaving* at equal timestamps differs across process
topologies (each shard has its own event sequence counter), so
time-sensitive classifications (acyclic vs. cyclic collection split,
per-kind message counts) are not part of the signature; the DGC's
convergence guarantees make the outcome identical anyway.

The workload's run protocol is a list of
:class:`~repro.shard.workloads.Phase` records; the coordinator
evaluates each phase's completion predicate over merged worker reports
(``"collected"`` / ``"balance"`` / ``"ready"``) and broadcasts phase
entries, whose driver-side actions run at the shared current horizon.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import DgcConfig, RegistryConfig
from repro.errors import ConfigurationError, SimulationError
from repro.net.topology import Topology
from repro.shard.plan import ShardPlan, make_plan
from repro.shard.worker import (
    REGISTRY_COUNTERS,
    WorkerSpec,
    build_shard_world,
    worker_main,
)
from repro.shard.workloads import Phase, workload_phases


@dataclass
class _Report:
    """One worker's state at a barrier point."""

    next_time: Optional[float]
    live_non_root: int
    counters: Tuple[int, int, int, int]
    all_idle: bool
    flags: Dict[str, bool]
    #: (dest_shard, has_app, min_delivery, frame_bytes) rows.
    frames: List[Tuple[int, bool, float, bytes]]


@dataclass
class ShardedRunResult:
    """Merged outcome of one sharded run."""

    shard_count: int
    workload: str
    created: int
    collected_acyclic: int
    collected_cyclic: int
    terminated_explicit: int
    dead_letters: int
    safety_violations: int
    collected_ids: List[str]
    live_non_root: int
    rounds: int
    sim_time_s: float
    wall_s: float
    #: Simulated time at which each phase completed, in phase order.
    phase_times: List[float]
    frame_count: int
    frame_bytes: int
    frame_digest: str
    events_fired: int
    egress_messages: int
    injected_entries: int
    total_bytes: int
    traffic: Dict[str, Tuple[int, int]]
    registry: Dict[str, int]
    workload_results: List[Dict[str, Any]]
    per_shard: List[Dict[str, Any]] = field(repr=False)
    #: ``(src_shard, dest_shard, frame_bytes)`` log; only with
    #: ``record_frames=True``.
    frames: Optional[List[Tuple[int, int, bytes]]] = field(
        default=None, repr=False
    )
    #: Merged ``(time, kind, subject, details)`` trace stream; only with
    #: ``trace=True``.
    trace: Optional[List[tuple]] = field(default=None, repr=False)

    @property
    def collected_total(self) -> int:
        return self.collected_acyclic + self.collected_cyclic

    def outcome_signature(self) -> tuple:
        """The cross-arm equivalence tier (see module docstring)."""
        return (
            self.created,
            self.terminated_explicit,
            self.dead_letters,
            self.safety_violations,
            tuple(self.collected_ids),
        )


class ShardedWorld:
    """A world partitioned over ``shard_count`` worker processes."""

    def __init__(
        self,
        topology: Topology,
        shard_count: int,
        *,
        workload: str,
        params: Optional[Dict[str, Any]] = None,
        dgc: Optional[DgcConfig] = None,
        registry: Optional[RegistryConfig] = None,
        seed: int = 0,
        trace: bool = False,
        record_frames: bool = False,
        max_sim_time: float = 72_000.0,
        io_timeout_s: float = 300.0,
    ) -> None:
        if dgc is None:
            raise ConfigurationError(
                "the sharded world needs a DgcConfig: collection drives "
                "the run protocol's stop condition"
            )
        if not dgc.batched_beats:
            raise ConfigurationError(
                "sharded execution requires the batched pulse core "
                "(DgcConfig.batched_beats): the per-event envelope path "
                "cannot cross a shard boundary"
            )
        self.topology = topology
        self.plan = make_plan(topology, shard_count)
        self.workload = workload
        self.params = dict(params or {})
        self.phases: Tuple[Phase, ...] = workload_phases(workload)
        self.dgc = dgc
        self.registry = registry
        self.seed = seed
        self.trace = trace
        self.record_frames = record_frames
        self.max_sim_time = max_sim_time
        self.io_timeout_s = io_timeout_s

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def run(self) -> ShardedRunResult:
        import multiprocessing

        mp = multiprocessing.get_context("fork")
        start = time.monotonic()
        conns = []
        procs = []
        try:
            for shard in range(self.plan.shard_count):
                parent_conn, child_conn = mp.Pipe()
                spec = WorkerSpec(
                    shard=shard,
                    plan=self.plan,
                    topology=self.topology,
                    workload=self.workload,
                    params=self.params,
                    dgc=self.dgc,
                    registry=self.registry,
                    seed=self.seed,
                    trace=self.trace,
                )
                proc = mp.Process(
                    target=worker_main, args=(child_conn, spec), daemon=True
                )
                proc.start()
                child_conn.close()
                conns.append(parent_conn)
                procs.append(proc)
            return self._drive(conns, start)
        finally:
            for conn in conns:
                conn.close()
            for proc in procs:
                proc.join(timeout=10.0)
                if proc.is_alive():  # pragma: no cover - hang backstop
                    proc.terminate()

    # ------------------------------------------------------------------
    # The barrier-round loop
    # ------------------------------------------------------------------

    def _drive(self, conns, start: float) -> ShardedRunResult:
        shard_count = self.plan.shard_count
        lookahead = self.plan.lookahead
        if lookahead == float("inf"):
            # One shard: no boundary constrains the window, but rounds
            # must stay finite so the phase predicate is re-evaluated —
            # one DGC beat per round is the natural granularity.
            lookahead = self.dgc.ttb
        phases = self.phases
        digest = hashlib.sha256()
        frame_log: Optional[List[Tuple[int, int, bytes]]] = (
            [] if self.record_frames else None
        )
        #: per-dest-shard undelivered frames: (has_app, min_delivery, bytes)
        pending: List[List[Tuple[bool, float, bytes]]] = [
            [] for _ in range(shard_count)
        ]
        state = {
            "frame_count": 0,
            "frame_bytes": 0,
            "pending_app": 0,
        }

        def route(reports: List[_Report]) -> None:
            for src, report in enumerate(reports):
                for dest, has_app, min_delivery, buf in report.frames:
                    digest.update(buf)
                    state["frame_count"] += 1
                    state["frame_bytes"] += len(buf)
                    state["pending_app"] += has_app
                    pending[dest].append((has_app, min_delivery, buf))
                    if frame_log is not None:
                        frame_log.append((src, dest, buf))

        reports = [self._recv_report(conn) for conn in conns]
        route(reports)
        phase = 0
        rounds = 0
        sim_time = 0.0
        phase_times: List[float] = []

        while True:
            if self._satisfied(phases[phase], reports, state["pending_app"]):
                phase_times.append(sim_time)
                if phase == len(phases) - 1:
                    break
                phase += 1
                for conn in conns:
                    conn.send(("phase", phase))
                reports = [self._recv_report(conn) for conn in conns]
                route(reports)
                continue
            minimum = None
            for report in reports:
                if report.next_time is not None and (
                    minimum is None or report.next_time < minimum
                ):
                    minimum = report.next_time
            for frames in pending:
                for _, min_delivery, _ in frames:
                    if minimum is None or min_delivery < minimum:
                        minimum = min_delivery
            if minimum is None:
                raise SimulationError(
                    f"sharded {self.workload!r} deadlocked in phase "
                    f"{phases[phase].name!r} at t={sim_time}: no shard "
                    f"has pending events and no frames are in flight, "
                    f"but the phase predicate is unsatisfied"
                )
            if minimum > self.max_sim_time:
                raise SimulationError(
                    f"sharded {self.workload!r} exceeded max_sim_time="
                    f"{self.max_sim_time} in phase {phases[phase].name!r}"
                )
            horizon = minimum + lookahead
            for shard, conn in enumerate(conns):
                frames = pending[shard]
                pending[shard] = []
                conn.send(("advance", horizon, len(frames)))
                for has_app, _, buf in frames:
                    conn.send_bytes(buf)
                    state["pending_app"] -= has_app
            reports = [self._recv_report(conn) for conn in conns]
            route(reports)
            sim_time = horizon
            rounds += 1

        # Final phase satisfied: stop the workers and merge.  Any frames
        # still pending carry post-outcome DGC chatter to activities that
        # are already collected; the nodes ignore such deliveries, so
        # discarding them does not change the outcome.
        results = []
        for conn in conns:
            conn.send(("stop",))
            results.append(self._recv_result(conn))
        wall = time.monotonic() - start
        return self._merge(
            results, rounds, sim_time, wall, phase_times, digest,
            state, frame_log,
        )

    # ------------------------------------------------------------------
    # Predicates and plumbing
    # ------------------------------------------------------------------

    def _satisfied(
        self, phase: Phase, reports: List[_Report], pending_app: int
    ) -> bool:
        kind = phase.predicate
        if kind == "collected":
            return sum(r.live_non_root for r in reports) == 0
        sent = delivered = rsent = rdelivered = 0
        for report in reports:
            c = report.counters
            sent += c[0]
            delivered += c[1]
            rsent += c[2]
            rdelivered += c[3]
        balanced = (
            sent == delivered and rsent == rdelivered and pending_app == 0
        )
        if kind == "balance":
            return balanced
        if kind == "ready":
            return (
                balanced
                and all(r.all_idle for r in reports)
                and all(v for r in reports for v in r.flags.values())
            )
        raise SimulationError(f"unknown phase predicate {kind!r}")

    def _recv_report(self, conn) -> _Report:
        message = self._recv(conn)
        if message[0] != "report":  # pragma: no cover - protocol guard
            raise SimulationError(
                f"expected a report, got {message[0]!r}"
            )
        frames = []
        for dest, has_app, min_delivery in message[6]:
            frames.append((dest, has_app, min_delivery, conn.recv_bytes()))
        return _Report(
            next_time=message[1],
            live_non_root=message[2],
            counters=message[3],
            all_idle=message[4],
            flags=message[5],
            frames=frames,
        )

    def _recv_result(self, conn) -> Dict[str, Any]:
        message = self._recv(conn)
        if message[0] != "result":  # pragma: no cover - protocol guard
            raise SimulationError(
                f"expected a result, got {message[0]!r}"
            )
        return message[1]

    def _recv(self, conn):
        if not conn.poll(self.io_timeout_s):
            raise SimulationError(
                f"shard worker unresponsive for {self.io_timeout_s}s"
            )
        message = conn.recv()
        if message[0] == "error":
            raise SimulationError(
                "shard worker failed:\n" + message[1]
            )
        return message

    def _merge(
        self, results, rounds, sim_time, wall, phase_times, digest,
        state, frame_log,
    ) -> ShardedRunResult:
        traffic: Dict[str, Tuple[int, int]] = {}
        for result in results:
            for kind, (size, messages) in result["traffic"].items():
                base = traffic.get(kind, (0, 0))
                traffic[kind] = (base[0] + size, base[1] + messages)
        registry = {name: 0 for name in REGISTRY_COUNTERS}
        for result in results:
            for name, value in result["registry"].items():
                registry[name] += value
        collected_ids: List[str] = []
        for result in results:
            collected_ids.extend(result["collected_ids"])
        collected_ids.sort()
        trace = None
        if self.trace:
            merged: List[tuple] = []
            for result in results:
                merged.extend(result["trace"] or [])
            merged.sort(key=lambda event: event[0])  # stable: shard order ties
            trace = merged
        return ShardedRunResult(
            shard_count=self.plan.shard_count,
            workload=self.workload,
            created=sum(r["created"] for r in results),
            collected_acyclic=sum(r["collected_acyclic"] for r in results),
            collected_cyclic=sum(r["collected_cyclic"] for r in results),
            terminated_explicit=sum(
                r["terminated_explicit"] for r in results
            ),
            dead_letters=sum(r["dead_letters"] for r in results),
            safety_violations=sum(r["safety_violations"] for r in results),
            collected_ids=collected_ids,
            live_non_root=sum(r["live_non_root"] for r in results),
            rounds=rounds,
            sim_time_s=sim_time,
            wall_s=wall,
            phase_times=phase_times,
            frame_count=state["frame_count"],
            frame_bytes=state["frame_bytes"],
            frame_digest=digest.hexdigest(),
            events_fired=sum(r["events_fired"] for r in results),
            egress_messages=sum(r["egress_messages"] for r in results),
            injected_entries=sum(r["injected_entries"] for r in results),
            total_bytes=sum(r["total_bytes"] for r in results),
            traffic=traffic,
            registry=registry,
            workload_results=[r["workload"] for r in results],
            per_shard=results,
            frames=frame_log,
            trace=trace,
        )


# ----------------------------------------------------------------------
# The single-process replay arm
# ----------------------------------------------------------------------


def replay_single_process(
    topology: Topology,
    *,
    workload: str,
    params: Optional[Dict[str, Any]] = None,
    dgc: Optional[DgcConfig] = None,
    registry: Optional[RegistryConfig] = None,
    seed: int = 0,
    trace: bool = False,
    timeout: float = 72_000.0,
):
    """Re-execute a sharded run's configuration in one process.

    Runs the *same* SPMD builder under a one-shard plan (every node
    local, the ordinary :class:`~repro.sim.kernel.SimKernel`), driving
    the same phase protocol inline.  Because setup placement, activity
    ids and RNG streams are identical by construction, the replay's
    outcome signature must equal the sharded run's — the verification
    that the multi-process execution changed the schedule but not the
    semantics.  Returns ``(world, env, signature)``.
    """
    spec = WorkerSpec(
        shard=0,
        plan=make_plan(topology, 1),
        topology=topology,
        workload=workload,
        params=dict(params or {}),
        dgc=dgc,
        registry=registry,
        seed=seed,
        trace=trace,
    )
    from repro.sim.kernel import SimKernel

    world, env = build_shard_world(spec, kernel=SimKernel())
    kernel = world.kernel

    def balanced() -> bool:
        return (
            world.requests_sent == world.requests_delivered
            and world.replies_sent == world.replies_delivered
        )

    def ready() -> bool:
        if not balanced():
            return False
        if not all(v for v in env.flags().values()):
            return False
        return all(a.is_idle() for a in world.live_non_roots())

    for index, phase in enumerate(env.phases):
        if index:
            env.enter_phase(index)
        if phase.predicate == "collected":
            done = world.run_until_collected(timeout)
        elif phase.predicate == "balance":
            done = kernel.run_until_quiescent(balanced, 0.5, timeout)
        else:
            done = kernel.run_until_quiescent(ready, 1.0, timeout)
        if not done:
            raise SimulationError(
                f"single-process replay of {workload!r} timed out in "
                f"phase {phase.name!r} after {timeout}s"
            )

    signature = (
        world.stats.created,
        world.stats.terminated_explicit,
        world.stats.dead_letters,
        world.stats.safety_violations,
        tuple(sorted(world.stats.collected_by_id)),
    )
    return world, env, signature
