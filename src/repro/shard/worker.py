"""The shard worker: one process, one partial world, one LiveKernel.

A worker owns the nodes its :class:`~repro.shard.plan.ShardPlan` block
assigns it.  It builds a :class:`~repro.world.World` restricted to
those nodes (``local_nodes``), driven by a caller-paced
:class:`repro.live.LiveKernel` in virtual-time mode, with the network's
shard egress configured so sends to non-local nodes are captured as
staged pulse entries instead of delivered.  The coordinator then drives
it through barrier rounds:

``("advance", horizon, n_frames)``
    inject ``n_frames`` wire frames (sorted by ``(src_shard, seq)`` —
    the deterministic global merge order), fire every local event
    strictly before ``horizon``, then report.  Horizons are granted
    *per shard* (see :mod:`repro.shard.coordinator`), so this worker's
    clock may run ahead of or behind its peers between rounds; a round
    that only flushes frames re-grants the current horizon, which
    :meth:`~repro.live.LiveKernel.advance` accepts as a no-op.

``("phase", index)``
    run the workload's phase-entry action (driver-shard traffic) at the
    current virtual time, then report.

``("stop",)``
    reply with the shard's final result blob and exit.

Every report carries the shard's next event time, live non-root count,
the summable traffic counters, readiness flags, the round's egress
packed as one wire frame per destination shard (stamped with this
shard's monotonically increasing frame sequence), and the shard's
*earliest output time* — a worker-side promise that no cross-shard
send can be produced strictly before it.  Because the egress buffer is
drained into this very report's frames, any future output must be
caused by a local event, so the promise is the next event time (or
``None`` when the event heap is empty: an idle shard cannot
spontaneously emit, which is what lets the coordinator grant its
neighbours horizons far beyond the global minimum).  The data plane —
the frames — is pickle-free (:mod:`repro.net.wire`; the spec's
``wire_version`` selects the frame format); the low-rate control plane
(specs, reports, final results) rides the pipe's regular pickled
channel.
"""

from __future__ import annotations

import itertools
import traceback
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import DgcConfig, RegistryConfig
from repro.live import LiveKernel
from repro.net import kinds as _kinds
from repro.net.topology import Topology
from repro.net.wire import (
    DEFAULT_WIRE_VERSION,
    ChannelDecoder,
    ChannelEncoder,
    frame_stamp,
    pack_frame,
    unpack_frame,
)
from repro.runtime.future import reset_future_ids
from repro.runtime.ids import reset_id_counter
from repro.runtime.request import reset_request_ids
from repro.shard.plan import ShardPlan
from repro.shard.workloads import SHARD_WORKLOADS, ShardEnv
from repro.world import World

#: Registry counters merged by summation in the coordinator.
REGISTRY_COUNTERS: Tuple[str, ...] = (
    "resolves", "authority_hits", "replica_hits", "cache_hits",
    "local_misses", "remote_lookups", "binds_applied", "unbinds_applied",
    "invalidations_sent", "renew_messages_sent", "renew_names_sent",
    "lease_grants", "lease_expiries", "coherence_staged",
    "coherence_coalesced", "coherence_messages_sent",
    "coherence_names_sent", "pushes_sent",
)


@dataclass
class WorkerSpec:
    """Everything a worker needs to build its partial world."""

    shard: int
    plan: ShardPlan
    topology: Topology
    workload: str
    params: Dict[str, Any] = field(default_factory=dict)
    dgc: Optional[DgcConfig] = None
    registry: Optional[RegistryConfig] = None
    seed: int = 0
    trace: bool = False
    #: Frame format for this worker's egress (:mod:`repro.net.wire`);
    #: ingress is self-describing (the magic names the version).
    wire_version: int = DEFAULT_WIRE_VERSION


def _reset_process_counters() -> None:
    """Fresh deterministic id streams: forked workers inherit the parent
    process's counter positions, which depend on everything the parent
    ran before — resetting pins every run's ids (activity, request,
    future) to the same sequence, which the frame-determinism contract
    requires (request/future ids are encoded into wire frames)."""
    reset_id_counter()
    reset_request_ids()
    reset_future_ids()


def build_shard_world(spec: WorkerSpec, kernel=None) -> Tuple[World, ShardEnv]:
    """Construct one shard's partial world and run the SPMD setup.

    ``kernel`` defaults to a virtual-time :class:`LiveKernel` (the
    worker mode); the single-process replay arm passes a
    :class:`~repro.sim.kernel.SimKernel` to reuse its run-to-completion
    APIs while sharing the identical build path.
    """
    _reset_process_counters()
    local = spec.plan.nodes_of(spec.shard)
    if kernel is None:
        kernel = LiveKernel(virtual_time=True)
    world = World(
        spec.topology,
        dgc=spec.dgc,
        registry=spec.registry,
        seed=spec.seed,
        trace=spec.trace,
        kernel=kernel,
        local_nodes=local,
    )
    world.network.configure_shard_egress(local)
    try:
        builder = SHARD_WORKLOADS[spec.workload]
    except KeyError:
        raise _unknown_workload(spec.workload) from None
    env = builder(world, spec.plan, spec.shard, spec.params)
    return world, env


def _unknown_workload(name: str):
    from repro.errors import ConfigurationError

    return ConfigurationError(
        f"unknown shard workload {name!r} "
        f"(have: {', '.join(sorted(SHARD_WORKLOADS))})"
    )


#: DGC single kinds -> their aggregate (run) kinds, for the egress
#: coalescer.  Canonical constants: kind identity survives the wire.
_AGGREGATE_OF: Dict[str, str] = {
    _kinds.KIND_DGC_MESSAGE: _kinds.AGGREGATE_KINDS[_kinds.KIND_DGC_MESSAGE],
    _kinds.KIND_DGC_RESPONSE: _kinds.AGGREGATE_KINDS[_kinds.KIND_DGC_RESPONSE],
}


def _coalesce_dgc_singles(entries: List[tuple]) -> List[tuple]:
    """Merge same-instant, same-destination DGC singles into aggregate
    run entries before packing.

    Beat-quantized DGC traffic lands many independent senders' singles
    on one ``(delivery, dest_node)`` pair; each group becomes one
    ``dgc.*[]`` entry with flat (target, message) columns — the same
    shape the sender-side site-pair aggregation already ships and the
    ingress fire loop already unwraps, so the receiver delivers the
    identical messages at the identical instant, just through the batch
    lane (one staged entry and one sink call per run instead of per
    message).  Groups keep first-occurrence order and their items keep
    send order, matching the wire codec's own run normalization;
    singletons stay plain singles.  Non-DGC traffic is untouched.
    """
    out: List[tuple] = []
    groups: Dict[tuple, list] = {}
    for entry in entries:
        kind = entry[2]
        aggregate = _AGGREGATE_OF.get(kind)
        if aggregate is None:
            out.append(entry)
            continue
        key = (entry[0], entry[1], kind)
        bucket = groups.get(key)
        if bucket is None:
            groups[key] = bucket = [
                entry[0], entry[1], kind, aggregate,
                [entry[3]], [entry[4]],
            ]
            out.append(bucket)  # placeholder, finalized below
        else:
            bucket[4].append(entry[3])
            bucket[5].append(entry[4])
    if not groups:
        return out
    for position, entry in enumerate(out):
        if type(entry) is list:
            if len(entry[4]) == 1:
                out[position] = (
                    entry[0], entry[1], entry[2], entry[4][0], entry[5][0]
                )
            else:
                out[position] = (
                    entry[0], entry[1], entry[3], entry[4], entry[5]
                )
    return out


def _pack_egress(
    world: World, spec: WorkerSpec, node_index: Dict[str, int], seq,
    encoders: Dict[int, ChannelEncoder],
) -> List[Tuple[int, bool, float, int, bytes]]:
    """Drain the network egress into one frame per destination shard.

    Returns ``(dest_shard, has_app, min_delivery, n_entries,
    frame_bytes)`` rows; ``has_app`` flags frames carrying non-DGC
    traffic (the coordinator's balance predicate must see application
    frames in flight, while pure heartbeat frames must not stall it),
    ``min_delivery`` feeds the bid the destination's next horizon is
    computed from, and ``n_entries`` feeds the coordinator's
    bytes-per-entry accounting without decoding the frame (after DGC
    singles are coalesced into runs, so it counts wire rows).

    ``encoders`` holds one persistent :class:`ChannelEncoder` per
    destination shard (v2 only): this worker's frames to a given peer
    form one ordered channel, so recurring ids and messages backref
    into the channel's cross-frame intern table.
    """
    entries = world.network.drain_egress()
    if not entries:
        return []
    plan = spec.plan
    groups: Dict[int, List[tuple]] = {}
    for entry in entries:
        groups.setdefault(plan.shard_of(entry[1]), []).append(entry)
    frames = []
    for dest in sorted(groups):
        group = _coalesce_dgc_singles(groups[dest])
        has_app = any(not e[2].startswith("dgc.") for e in group)
        min_delivery = min(e[0] for e in group)
        channel = encoders.get(dest)
        if channel is None and spec.wire_version == 2:
            encoders[dest] = channel = ChannelEncoder()
        buf = pack_frame(
            spec.shard, next(seq), group, node_index,
            version=spec.wire_version, channel=channel,
        )
        frames.append((dest, has_app, min_delivery, len(group), buf))
    return frames


def _send_report(
    conn, world: World, env: ShardEnv, spec: WorkerSpec,
    node_index: Dict[str, int], seq, phase: int,
    encoders: Dict[int, ChannelEncoder],
) -> None:
    frames = _pack_egress(world, spec, node_index, seq, encoders)
    needs_idle = env.phases[phase].predicate == "ready"
    all_idle = (
        all(a.is_idle() for a in world.live_non_roots()) if needs_idle else True
    )
    next_time = world.kernel.next_event_time()
    # Earliest output time: the egress is fully drained into this
    # report's frames, so any future cross-shard send must be caused by
    # a local event — the next event time bounds it (None: this shard
    # cannot produce output until something is injected).
    conn.send((
        "report",
        next_time,
        world.live_non_root_count,
        (world.requests_sent, world.requests_delivered,
         world.replies_sent, world.replies_delivered),
        all_idle,
        env.flags(),
        [(dest, has_app, min_delivery, n_entries)
         for dest, has_app, min_delivery, n_entries, _ in frames],
        next_time,
    ))
    for _, _, _, _, buf in frames:
        conn.send_bytes(buf)


def _final_result(world: World, env: ShardEnv, spec: WorkerSpec) -> Dict[str, Any]:
    stats = world.stats
    accountant = world.accountant
    traffic = {}
    for kind in _kinds.ALL_KINDS:
        messages = accountant.messages_for(kind)
        if messages:
            traffic[kind] = (accountant.bytes_for(kind), messages)
    registry = world.registry
    trace = None
    if spec.trace:
        trace = [
            (event.time, event.kind, event.subject, dict(event.details))
            for event in world.tracer
        ]
    return {
        "created": stats.created,
        "collected_acyclic": stats.collected_acyclic,
        "collected_cyclic": stats.collected_cyclic,
        "terminated_explicit": stats.terminated_explicit,
        "dead_letters": stats.dead_letters,
        "safety_violations": stats.safety_violations,
        "collected_ids": sorted(stats.collected_by_id),
        "live_non_root": world.live_non_root_count,
        "counters": (world.requests_sent, world.requests_delivered,
                     world.replies_sent, world.replies_delivered),
        "traffic": traffic,
        "total_bytes": accountant.total_bytes,
        "events_fired": world.kernel.fired_count,
        "events_coordination": world.network.ingress_pulse_event_count,
        "events_workload": (
            world.kernel.fired_count
            - world.network.ingress_pulse_event_count
        ),
        "peak_pending": world.kernel.peak_pending_count,
        "egress_messages": world.network.egress_message_count,
        "injected_entries": world.network.injected_entry_count,
        "registry": {
            name: getattr(registry, name, 0) for name in REGISTRY_COUNTERS
        },
        "trace": trace,
        "workload": env.results(),
    }


def _serve(conn, spec: WorkerSpec) -> None:
    world, env = build_shard_world(spec)
    kernel = world.kernel
    network = world.network
    node_names = spec.plan.node_names
    node_index = {name: index for index, name in enumerate(node_names)}
    seq = itertools.count()
    phase = 0
    # Persistent codec channels (v2): one encoder per destination shard,
    # one decoder per source shard.  Sound because each channel's frames
    # are packed and decoded in seq order — the coordinator routes in
    # stamp order and we sort raw buffers by stamp *before* decoding.
    encoders: Dict[int, ChannelEncoder] = {}
    decoders: Dict[int, ChannelDecoder] = {}
    stateful = spec.wire_version == 2
    _send_report(conn, world, env, spec, node_index, seq, phase, encoders)
    while True:
        message = conn.recv()
        op = message[0]
        if op == "advance":
            _, horizon, n_frames = message
            if n_frames:
                stamped = [
                    (frame_stamp(buf), buf)
                    for buf in (conn.recv_bytes() for _ in range(n_frames))
                ]
                stamped.sort(key=lambda pair: pair[0])
                for (src, _), buf in stamped:
                    channel = decoders.get(src)
                    if channel is None and stateful:
                        decoders[src] = channel = ChannelDecoder()
                    network.inject_remote_entries(
                        unpack_frame(buf, node_names, channel).entries
                    )
            kernel.advance(horizon)
            _send_report(conn, world, env, spec, node_index, seq, phase,
                         encoders)
        elif op == "phase":
            phase = message[1]
            env.enter_phase(phase)
            _send_report(conn, world, env, spec, node_index, seq, phase,
                         encoders)
        elif op == "stop":
            conn.send(("result", _final_result(world, env, spec)))
            return
        else:  # pragma: no cover - protocol guard
            raise RuntimeError(f"unknown coordinator op {op!r}")


def worker_main(conn, spec: WorkerSpec) -> None:
    """Child-process entry point."""
    try:
        _serve(conn, spec)
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except OSError:  # pragma: no cover - coordinator already gone
            pass
    finally:
        conn.close()
