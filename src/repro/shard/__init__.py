"""The sharded multi-process world.

``ShardedWorld`` partitions a :class:`repro.world.World` across OS
processes: a :class:`ShardPlan` assigns node groups to shard workers,
each worker drives its partial world with a caller-paced
:class:`repro.live.LiveKernel` (``virtual_time=True``), and cross-shard
traffic travels as struct-packed columnar wire frames
(:mod:`repro.net.wire`) over multiprocessing pipes.

See :mod:`repro.shard.coordinator` for the conservative
barrier-synchronous protocol and its determinism contract.
"""

from repro.shard.coordinator import (
    ShardedRunResult,
    ShardedWorld,
    replay_single_process,
)
from repro.shard.plan import ShardPlan, make_plan
from repro.shard.workloads import SHARD_WORKLOADS

__all__ = [
    "ShardPlan",
    "ShardedRunResult",
    "ShardedWorld",
    "SHARD_WORKLOADS",
    "make_plan",
    "replay_single_process",
]
