"""SPMD workload builders for the sharded world.

Every shard worker runs the *same* builder over the *same* full
topology (single-program, multiple-data): the builder walks the
complete setup — every create, every RNG draw — in the identical
deterministic order on every shard, but only **materializes** the
activities whose home node the shard owns.  A create whose node lives
elsewhere still mints the activity id (:func:`make_activity_id` is a
process-global counter, so skipping a mint would shift every later id
on that shard) and yields at most a *ghost*: a stub the driver holds,
whose heartbeats and requests travel as cross-shard frames to the shard
that owns the real activity.

Driver-originated traffic (hold/run calls, ``release_all``) is issued
only on the shard that owns the driver's node; every other shard sees
the driver itself as a ghost.  Because the single-process replay arm
(:func:`repro.shard.coordinator.replay_single_process`) runs this same
builder with a one-shard plan, setup placement, activity ids and RNG
streams are identical across all arms by construction.

The run protocol is expressed as :class:`Phase` records: each phase has
an optional entry action (run on the driver's shard at the moment the
phase starts) and a coordinator-evaluated predicate naming when it
completes — ``"collected"`` (no live non-roots anywhere),
``"balance"`` (application requests and replies globally sent ==
delivered, no application frames in flight) or ``"ready"`` (balance,
plus every shard idle and every shard's flags true — the NAS
"benchmark has its result" instant).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.runtime.ids import make_activity_id
from repro.runtime.proxy import RemoteRef
from repro.shard.plan import ShardPlan
from repro.workloads.app import release_all
from repro.sim.rng import ZipfSampler
from repro.workloads.naming import NamingBinder, NamingClient
from repro.workloads.nas.common import NasWorker, kernel_spec
from repro.workloads.torture import TortureMaster, TortureSlave
from repro.world import World, host_acquire


@dataclass(frozen=True)
class Phase:
    """One step of a workload's run protocol (see module docstring)."""

    name: str
    predicate: str  # "collected" | "balance" | "ready"


class SpmdContext:
    """Deterministic replicated creates over a shard plan."""

    def __init__(self, world: World, plan: ShardPlan, shard: int) -> None:
        self.world = world
        self.plan = plan
        self.shard = shard
        self.node_names = tuple(plan.node_names)
        self.driver = None  # the local driver Activity, if this shard owns it

    def is_local(self, node: str) -> bool:
        return self.plan.shard_of(node) == self.shard

    def create_driver(self, *, node: str, name: str = "driver"):
        """The driver root; returns the Activity locally, ``None`` on
        shards where the driver is a ghost (its id is still minted)."""
        if self.is_local(node):
            # repro: allow[SPMD-locality] both paths mint exactly one id for `name`: a real driver here, the ghost make_activity_id below
            self.driver = self.world.create_driver(node=node, name=name)
            return self.driver
        make_activity_id(name)
        return None

    def create(
        self,
        behavior: Any,
        *,
        node: str,
        name: str = "",
        root: bool = False,
        dgc_enabled: bool = True,
    ):
        """Create (or ghost) one activity at an explicit node.

        Returns the driver's stub when this shard owns the driver —
        for a remote activity the stub is acquired through the regular
        deserialization hook, so the driver->activity DGC edge and its
        cross-shard heartbeats appear exactly as for a received
        reference.  Without a local driver, returns the local Activity
        or ``None`` for a ghost.
        """
        if self.is_local(node):
            if self.driver is not None:
                # repro: allow[SPMD-locality] every arm mints exactly one id for `name` (real create here, ghost id below), keeping counters shard-aligned
                return self.world.create_activity(
                    behavior, node=node, name=name, root=root,
                    dgc_enabled=dgc_enabled, creator=self.driver,
                )
            # repro: allow[SPMD-locality] every arm mints exactly one id for `name` (real create here, ghost id below), keeping counters shard-aligned
            return self.world.create_activity(
                behavior, node=node, name=name, root=root,
                dgc_enabled=dgc_enabled,
            )
        ghost_id = make_activity_id(name)
        if self.driver is not None:
            return host_acquire(self.driver, RemoteRef(ghost_id, node))
        return None


class ShardEnv:
    """What a built workload hands back to the worker loop."""

    def __init__(self, ctx: SpmdContext, phases: Tuple[Phase, ...]) -> None:
        self.ctx = ctx
        self.phases = phases
        #: phase index -> entry action; populated only on the shard that
        #: owns the driver (actions are driver-originated traffic).
        self.actions: Dict[int, Callable[[], None]] = {}

    def enter_phase(self, index: int) -> None:
        action = self.actions.get(index)
        if action is not None:
            action()

    def flags(self) -> Dict[str, bool]:
        """Shard-local readiness flags, ANDed across shards by the
        coordinator for ``"ready"`` predicates."""
        return {}

    def results(self) -> Dict[str, Any]:
        """Workload-specific counters for the merged run result."""
        return {}


# ----------------------------------------------------------------------
# Torture (paper Sec. 5.3 / Fig. 10)
# ----------------------------------------------------------------------


def build_torture(
    world: World, plan: ShardPlan, shard: int, params: Dict[str, Any]
) -> ShardEnv:
    """The DGC torture test, SPMD form of
    :func:`repro.workloads.torture.run_torture` (minus the figure
    sampler, which is an observation device, not workload behavior)."""
    slave_count = int(params.get("slave_count", 320))
    active_duration = float(params.get("active_duration", 600.0))
    initial_pool = int(params.get("initial_pool", 4))

    ctx = SpmdContext(world, plan, shard)
    nodes = ctx.node_names
    driver = ctx.create_driver(node=nodes[0], name="torture-driver")
    rng = world.rng_registry.stream("torture.setup")
    deadline = active_duration

    master = ctx.create(
        TortureMaster(deadline), node=nodes[1 % len(nodes)], name="master"
    )
    slaves = [
        ctx.create(
            TortureSlave(deadline + rng.uniform(0.0, 0.15 * active_duration)),
            node=nodes[(2 + index) % len(nodes)],
            name=f"slave{index}",
        )
        for index in range(slave_count)
    ]
    if driver is not None:
        dctx = driver.context
        dctx.call(master, "hold", refs=[master], data=["self"])
        dctx.call(
            master,
            "hold",
            refs=slaves,
            data=[f"slave{index}" for index in range(slave_count)],
        )
    for index in range(slave_count):
        # The pool draw happens on every shard (stream alignment); the
        # call itself is driver traffic.
        peers = rng.sample(range(slave_count), k=min(initial_pool, slave_count))
        if driver is not None:
            slave = slaves[index]
            refs = [slave, master] + [slaves[p] for p in peers]
            keys = ["self", "master"] + [f"pool{j}" for j in range(len(peers))]
            dctx.call(slave, "hold", refs=refs, data=keys)
    if driver is not None:
        dctx.call(master, "run")
        for slave in slaves:
            dctx.call(slave, "run")
        release_all(driver, [master] + slaves)
    return ShardEnv(ctx, workload_phases("torture"))


# ----------------------------------------------------------------------
# Naming churn (registry traffic)
# ----------------------------------------------------------------------


class _NamingEnv(ShardEnv):
    def __init__(self, ctx, phases, clients: List[NamingClient]) -> None:
        super().__init__(ctx, phases)
        self.clients = clients

    def results(self) -> Dict[str, Any]:
        return {
            "resolves_issued": sum(c.issued for c in self.clients),
            "resolves_completed": sum(c.completed for c in self.clients),
            "hits": sum(c.hits for c in self.clients),
            "misses": sum(c.misses for c in self.clients),
            "latency_sum": sum(c.latency_sum for c in self.clients),
        }


def build_naming(
    world: World, plan: ShardPlan, shard: int, params: Dict[str, Any]
) -> ShardEnv:
    """Bind/resolve/unbind churn, SPMD form of
    :func:`repro.workloads.naming.run_naming`.

    The binder's *runtime* creates round-robin over its own shard's
    nodes (a shard world only materializes local nodes), so service
    placement differs from the single-process arm; outcome equivalence
    still holds because the collected set is identified by activity ids,
    which are minted in the same order in both arms.

    Build order matters: the **clients are created before the binder**.
    ``World.create_activity`` starts a behavior inline, and the binder's
    ``on_start`` creates the service activities — synchronously, when
    its bind acks resolve locally — minting ids a ghost-binder shard
    would never mint.  Creating the binder last keeps every id that
    crosses shards (the clients', whose per-activity RNG streams are
    keyed by id) aligned across all arms at build time; the service ids
    are minted afterwards, only on the binder's shard and in the replay
    arm, identically in both.
    """
    client_count = int(params.get("client_count", 32))
    service_count = int(params.get("service_count", 16))
    name_count = params.get("name_count")
    name_count = (
        service_count if name_count is None else int(name_count)
    )
    zipf_s = float(params.get("zipf_s", 0.0))
    churn_burst = int(params.get("churn_burst", 1))
    duration = float(params.get("duration", 300.0))
    lookup_period = float(params.get("lookup_period", 5.0))
    lookup_burst = int(params.get("lookup_burst", 4))
    churn_period = params.get("churn_period")
    if churn_period is None:
        churn_period = max(duration / 12.0, 1.0)
    teardown_lag = float(params.get("teardown_lag", 10.0))

    ctx = SpmdContext(world, plan, shard)
    nodes = ctx.node_names
    sampler = ZipfSampler(name_count, zipf_s) if zipf_s > 0.0 else None
    binder = NamingBinder(
        service_count,
        churn_deadline=duration,
        churn_period=float(churn_period),
        teardown_at=duration + teardown_lag,
        name_count=name_count,
        churn_burst=churn_burst,
        sampler=sampler,
    )
    names = [NamingBinder.service_name(i) for i in range(name_count)]
    clients: List[NamingClient] = []
    for index in range(client_count):
        client = NamingClient(
            names, deadline=duration, period=lookup_period,
            burst=lookup_burst, sampler=sampler,
        )
        created = ctx.create(
            client,
            node=nodes[index % len(nodes)],
            name=f"client{index}",
            root=True,
            dgc_enabled=False,
        )
        if created is not None:
            clients.append(client)
    # Last: its inline on_start mints service ids (see docstring).
    ctx.create(binder, node=nodes[0], name="binder", root=True)
    return _NamingEnv(ctx, workload_phases("naming"), clients)


# ----------------------------------------------------------------------
# NAS kernel skeletons (paper Sec. 5.2)
# ----------------------------------------------------------------------


class _NasEnv(ShardEnv):
    def __init__(self, ctx, phases, spec, workers) -> None:
        super().__init__(ctx, phases)
        self.spec = spec
        self.workers = workers  # driver-shard proxies, [] elsewhere
        self.futures: List[Any] = []
        if ctx.driver is not None:
            self.actions[1] = self._start_run
            self.actions[2] = self._release

    def _start_run(self) -> None:
        dctx = self.ctx.driver.context
        self.futures = [
            dctx.call(
                worker, "run",
                data=(self.spec.iterations, self.spec.iter_time_s),
                expect_reply=True,
            )
            for worker in self.workers
        ]

    def _release(self) -> None:
        release_all(self.ctx.driver, self.workers)

    def flags(self) -> Dict[str, bool]:
        if self.ctx.driver is None:
            return {}
        return {
            "nas_result": bool(self.futures)
            and all(future.resolved for future in self.futures)
        }

    def results(self) -> Dict[str, Any]:
        return {"kernel": self.spec.name, "ao_count": self.spec.ao_count}


def build_nas(
    world: World, plan: ShardPlan, shard: int, params: Dict[str, Any]
) -> ShardEnv:
    """One NAS kernel skeleton, SPMD form of
    :func:`repro.workloads.nas.common.run_nas_kernel` (asynchronous
    variant only)."""
    spec = kernel_spec(
        params["kernel"],
        ao_count=params.get("ao_count"),
        iterations=params.get("iterations"),
        iter_time_s=params.get("iter_time_s"),
        payload_bytes=params.get("payload_bytes"),
        reply_barrier=params.get("reply_barrier"),
    )
    if spec.reply_barrier:
        raise ConfigurationError(
            "the NAS reply-barrier variant cannot run sharded: its "
            "driver barriers on every iteration's reply futures, a "
            "single-process protocol the barrier-round coordinator does "
            "not mediate — drop --nas-barrier or --shards"
        )
    ctx = SpmdContext(world, plan, shard)
    nodes = ctx.node_names
    driver = ctx.create_driver(node=nodes[0], name=f"nas-{spec.name}-driver")
    pattern = spec.pattern_factory()
    workers = [
        ctx.create(
            NasWorker(index, spec.ao_count, pattern),
            node=nodes[(1 + index) % len(nodes)],
            name=f"{spec.name.lower()}{index}",
        )
        for index in range(spec.ao_count)
    ]
    if driver is not None:
        dctx = driver.context
        for index, worker in enumerate(workers):
            others = [w for j, w in enumerate(workers) if j != index]
            keys = [f"peer{j}" for j in range(spec.ao_count) if j != index]
            dctx.call(
                worker, "hold", refs=others, data=keys,
                payload_bytes=spec.deployment_bytes,
            )
    env = _NasEnv(ctx, workload_phases("nas"), spec,
                  workers if driver is not None else [])
    return env


def workload_phases(name: str) -> Tuple[Phase, ...]:
    """The run protocol for one workload; the coordinator and every
    worker call this, so both sides agree on phase indices."""
    if name in ("torture", "naming"):
        return (Phase("collect", "collected"),)
    if name == "nas":
        return (
            Phase("settle", "balance"),
            Phase("run", "ready"),
            Phase("drain", "collected"),
        )
    raise ConfigurationError(
        f"unknown shard workload {name!r} (have: torture, naming, nas)"
    )


SHARD_WORKLOADS: Dict[str, Callable[..., ShardEnv]] = {
    "torture": build_torture,
    "naming": build_naming,
    "nas": build_nas,
}
