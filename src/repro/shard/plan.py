"""Node-to-shard assignment and the conservative lookahead bounds.

The plan slices the topology's node list (which is grouped by site)
into contiguous, balanced blocks — one per shard — so co-located nodes
stay on the same shard whenever the shard count divides the site
structure.  That matters because the protocol's *lookahead* is bounded
by cross-boundary latency: events a worker executes in a granted
window can only generate cross-shard deliveries later than the
boundary's one-way latency, which is exactly what lets every shard
advance through the window without waiting for the others (the classic
conservative-synchronization argument; see
:mod:`repro.shard.coordinator`).  Splitting a low-latency site across
shards is legal but collapses the lookahead to the intra-site latency
and with it the useful window per barrier round.

Lookahead is tracked **per channel**: ``lookahead_matrix[i][j]`` is the
minimum one-way latency from any node on shard ``i`` to any node on
shard ``j``.  On a non-uniform topology (a WAN between metro pairs,
the Grid'5000 shape the paper measures on) the matrix beats the single
global minimum: a shard's horizon is constrained by the latency of the
channels that can actually reach it, not by the tightest boundary
anywhere in the plan.  Chains of hops matter too — shard ``i`` can
reach ``j`` through ``k`` — so the per-shard bound is the matrix's
shortest-path closure, :attr:`ShardPlan.horizon_matrix`, whose
diagonal holds each shard's shortest *round-trip cycle* (the bound for
a shard's own sends echoing back to it).  The closure is the
exact-arithmetic reference (and what the unit tests pin down); the
coordinator re-derives the same bounds each round by relaxing over
:attr:`ShardPlan.lookahead_matrix` with left-folded float additions,
because float ``+`` is not associative and a presummed closure can
overshoot a real chain's arrival by a few ULPs (see
:mod:`repro.shard.coordinator`).  The scalar
:attr:`ShardPlan.lookahead` stays as the matrix minimum for reporting
and back-compatibility.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Topology


@dataclass(frozen=True)
class ShardPlan:
    """One partitioning of a topology's nodes over shard processes."""

    shard_count: int
    #: All node names, in topology order (shared by every shard).
    node_names: Tuple[str, ...]
    #: ``node_names[i]`` lives on shard ``assignment[i]``.
    assignment: Tuple[int, ...]
    #: Minimum one-way latency across any shard boundary (seconds);
    #: ``inf`` for a single shard (there is no boundary).  Equals the
    #: off-diagonal minimum of :attr:`lookahead_matrix`.
    lookahead: float
    #: ``lookahead_matrix[i][j]``: minimum one-way latency from any
    #: node on shard ``i`` to any node on shard ``j`` (``inf`` on the
    #: diagonal and for a single shard).
    lookahead_matrix: Tuple[Tuple[float, ...], ...] = ()
    #: Shortest-path closure of :attr:`lookahead_matrix`:
    #: ``horizon_matrix[i][j]`` (``i != j``) lower-bounds the latency
    #: of *any* chain of cross-shard hops from ``i`` to ``j``;
    #: ``horizon_matrix[j][j]`` is shard ``j``'s shortest nontrivial
    #: cycle — the bound for its own output echoing back.  The
    #: exact-arithmetic form of the coordinator's per-shard horizons.
    horizon_matrix: Tuple[Tuple[float, ...], ...] = ()
    _shard_of: Dict[str, int] = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_shard_of",
            dict(zip(self.node_names, self.assignment)),
        )
        if not self.lookahead_matrix:
            count = self.shard_count
            object.__setattr__(
                self,
                "lookahead_matrix",
                tuple(tuple(math.inf for _ in range(count))
                      for _ in range(count)),
            )
        if not self.horizon_matrix:
            object.__setattr__(
                self,
                "horizon_matrix",
                _closure(self.lookahead_matrix),
            )

    def shard_of(self, node: str) -> int:
        try:
            return self._shard_of[node]
        except KeyError:
            raise ConfigurationError(f"unknown node {node!r}") from None

    def nodes_of(self, shard: int) -> List[str]:
        return [
            name
            for name, owner in zip(self.node_names, self.assignment)
            if owner == shard
        ]


def _closure(
    matrix: Tuple[Tuple[float, ...], ...]
) -> Tuple[Tuple[float, ...], ...]:
    """Shortest-path closure with cycle diagonal.

    Floyd–Warshall over the one-hop latencies gives the cheapest chain
    ``i -> ... -> j`` for ``i != j``; the diagonal is then the cheapest
    nontrivial cycle through each shard, ``min_k (L[j][k] + D[k][j])``
    — any chain that leaves ``j`` and returns pays at least one
    outbound hop plus the cheapest way back.
    """
    count = len(matrix)
    dist = [[matrix[i][j] for j in range(count)] for i in range(count)]
    for i in range(count):
        dist[i][i] = math.inf
    for via in range(count):
        row_via = dist[via]
        for i in range(count):
            if i == via:
                continue
            through = dist[i][via]
            if through == math.inf:
                continue
            row = dist[i]
            for j in range(count):
                if j == via or j == i:
                    continue
                candidate = through + row_via[j]
                if candidate < row[j]:
                    row[j] = candidate
    for j in range(count):
        cycle = math.inf
        for k in range(count):
            if k == j:
                continue
            candidate = matrix[j][k] + dist[k][j]
            if candidate < cycle:
                cycle = candidate
        dist[j][j] = cycle
    return tuple(tuple(row) for row in dist)


def make_plan(topology: Topology, shard_count: int) -> ShardPlan:
    """Partition ``topology`` into ``shard_count`` contiguous node blocks.

    Raises :class:`ConfigurationError` when the partition is impossible
    (more shards than nodes) or useless (a zero lookahead: two nodes
    with zero latency between them on different shards would leave no
    safe window to advance through, so the protocol could never make
    progress).
    """
    nodes = tuple(topology.nodes)
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if shard_count > len(nodes):
        raise ConfigurationError(
            f"cannot split {len(nodes)} nodes over {shard_count} shards"
        )
    total = len(nodes)
    base, extra = divmod(total, shard_count)
    assignment: List[int] = []
    for shard in range(shard_count):
        assignment.extend([shard] * (base + (1 if shard < extra else 0)))

    matrix = [
        [math.inf] * shard_count for _ in range(shard_count)
    ]
    lookahead = math.inf
    if shard_count > 1:
        # Site-pair latencies are uniform, so it suffices to probe one
        # representative node pair per (site, site, shard, shard)
        # combination that actually crosses a shard boundary.
        seen = set()
        for i, a in enumerate(nodes):
            for j in range(total):
                if i == j or assignment[i] == assignment[j]:
                    continue
                b = nodes[j]
                key = (
                    topology.site_of(a).name,
                    topology.site_of(b).name,
                    assignment[i],
                    assignment[j],
                )
                if key in seen:
                    continue
                seen.add(key)
                latency = topology.one_way_latency(a, b)
                row = matrix[assignment[i]]
                if latency < row[assignment[j]]:
                    row[assignment[j]] = latency
                if latency < lookahead:
                    lookahead = latency
        if lookahead <= 0.0:
            raise ConfigurationError(
                "shard plan has zero lookahead: some cross-shard node "
                "pair has zero one-way latency, so no safe advance "
                "window exists — keep zero-latency nodes on one shard"
            )
    return ShardPlan(
        shard_count=shard_count,
        node_names=nodes,
        assignment=tuple(assignment),
        lookahead=lookahead,
        lookahead_matrix=tuple(tuple(row) for row in matrix),
    )
