"""Node-to-shard assignment and the conservative lookahead bound.

The plan slices the topology's node list (which is grouped by site)
into contiguous, balanced blocks — one per shard — so co-located nodes
stay on the same shard whenever the shard count divides the site
structure.  That matters because the protocol's *lookahead* is the
minimum one-way latency across any shard boundary: events a worker
executes in the window ``[M, M + lookahead)`` can only generate
cross-shard deliveries at ``>= M + lookahead``, which is exactly what
lets every shard advance through the window without waiting for the
others (the classic conservative-synchronization argument; see
:mod:`repro.shard.coordinator`).  Splitting a low-latency site across
shards is legal but collapses the lookahead to the intra-site latency
and with it the useful window per barrier round.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Topology


@dataclass(frozen=True)
class ShardPlan:
    """One partitioning of a topology's nodes over shard processes."""

    shard_count: int
    #: All node names, in topology order (shared by every shard).
    node_names: Tuple[str, ...]
    #: ``node_names[i]`` lives on shard ``assignment[i]``.
    assignment: Tuple[int, ...]
    #: Minimum one-way latency across any shard boundary (seconds);
    #: ``inf`` for a single shard (there is no boundary).
    lookahead: float
    _shard_of: Dict[str, int] = field(repr=False, compare=False, default=None)

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "_shard_of",
            dict(zip(self.node_names, self.assignment)),
        )

    def shard_of(self, node: str) -> int:
        try:
            return self._shard_of[node]
        except KeyError:
            raise ConfigurationError(f"unknown node {node!r}") from None

    def nodes_of(self, shard: int) -> List[str]:
        return [
            name
            for name, owner in zip(self.node_names, self.assignment)
            if owner == shard
        ]


def make_plan(topology: Topology, shard_count: int) -> ShardPlan:
    """Partition ``topology`` into ``shard_count`` contiguous node blocks.

    Raises :class:`ConfigurationError` when the partition is impossible
    (more shards than nodes) or useless (a zero lookahead: two nodes
    with zero latency between them on different shards would leave no
    safe window to advance through, so the protocol could never make
    progress).
    """
    nodes = tuple(topology.nodes)
    if shard_count < 1:
        raise ConfigurationError(
            f"shard count must be >= 1, got {shard_count}"
        )
    if shard_count > len(nodes):
        raise ConfigurationError(
            f"cannot split {len(nodes)} nodes over {shard_count} shards"
        )
    total = len(nodes)
    base, extra = divmod(total, shard_count)
    assignment: List[int] = []
    for shard in range(shard_count):
        assignment.extend([shard] * (base + (1 if shard < extra else 0)))

    lookahead = math.inf
    if shard_count > 1:
        # Site-pair latencies are uniform, so it suffices to probe one
        # representative node pair per (site, site) combination that
        # actually crosses a shard boundary.
        seen = set()
        for i, a in enumerate(nodes):
            for j in range(i + 1, total):
                if assignment[i] == assignment[j]:
                    continue
                b = nodes[j]
                key = (topology.site_of(a).name, topology.site_of(b).name)
                if key in seen:
                    continue
                seen.add(key)
                lookahead = min(lookahead, topology.one_way_latency(a, b))
        if lookahead <= 0.0:
            raise ConfigurationError(
                "shard plan has zero lookahead: some cross-shard node "
                "pair has zero one-way latency, so no safe advance "
                "window exists — keep zero-latency nodes on one shard"
            )
    return ShardPlan(
        shard_count=shard_count,
        node_names=nodes,
        assignment=tuple(assignment),
        lookahead=lookahead,
    )
