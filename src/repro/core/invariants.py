"""Runtime invariant checking for the DGC state machines.

These predicates formalise internal consistency conditions implied by
the paper's algorithms.  They are *not* needed for operation; the
invariant monitor exists so tests (and debugging sessions) can scan a
whole world every few beats and fail fast on state corruption — much
closer to the broken step than an eventual wrongful collection.

Checked per collector:

* the parent, if any, is a currently-referenced activity (the reverse
  spanning tree uses real edges);
* the clock owner never has a parent (the originator is the root);
* a doomed activity is idle and stays doomed (decisions are final) and
  its doom is no older than TTA (it must have terminated by then);
* any referenced record past its first broadcast has sent a message
  (the Sec. 3.1 needs_send rule);
* the advertised depth is 0 iff the activity owns the clock.
"""

from __future__ import annotations

from typing import List

from repro.core.collector import DgcCollector
from repro.sim.timers import PeriodicTimer


class InvariantViolation(AssertionError):
    """An internal DGC invariant does not hold."""


def check_collector_invariants(collector: DgcCollector, now: float) -> List[str]:
    """Return a list of human-readable violations (empty when healthy)."""
    problems: List[str] = []
    state = collector.state
    if state.parent is not None and state.parent not in state.referenced:
        problems.append(
            f"parent {state.parent} is not a referenced activity"
        )
    if state.owns_clock and state.parent is not None:
        problems.append("clock owner has a parent")
    if state.owns_clock and state.current_depth() != 0:
        problems.append("clock owner does not advertise depth 0")
    if collector.doomed:
        if not collector.activity.is_idle() and not collector.activity.terminated:
            problems.append("doomed activity is not idle")
        assert collector.doomed_since is not None
        grace = collector.config.tta + 2 * collector.config.ttb
        if now - collector.doomed_since > grace:
            problems.append(
                f"doomed since {collector.doomed_since} but still alive "
                f"at {now}"
            )
    for record in state.referenced.records():
        if not record.needs_send and record.messages_sent == 0:
            problems.append(
                f"referenced {record.target}: needs_send cleared without "
                f"any message sent"
            )
    if state.last_message_timestamp > now + 1e-9:
        problems.append("last_message_timestamp is in the future")
    return problems


def check_world_invariants(world) -> List[str]:
    """Scan every live collector; returns all violations found."""
    problems: List[str] = []
    now = world.kernel.now
    for activity in world.live_activities():
        collector = activity.collector
        if isinstance(collector, DgcCollector):
            for problem in check_collector_invariants(collector, now):
                problems.append(f"{activity.id}: {problem}")
    return problems


class InvariantMonitor:
    """Periodically scans a world and raises on the first violation."""

    def __init__(self, world, period: float) -> None:
        self.world = world
        self.checks = 0
        self._timer = PeriodicTimer(
            world.kernel, period, self._check, label="invariant.monitor"
        )

    def _check(self) -> None:
        self.checks += 1
        problems = check_world_invariants(self.world)
        if problems:
            raise InvariantViolation("; ".join(problems))

    def stop(self) -> None:
        self._timer.stop()


def install_invariant_monitor(world, period: float = 1.0) -> InvariantMonitor:
    """Attach an :class:`InvariantMonitor` to ``world``."""
    return InvariantMonitor(world, period)
