"""Algorithms 1-4 of the paper, as pure functions over a :class:`DgcState`.

Keeping the protocol logic free of runtime plumbing makes it directly
unit- and property-testable; :class:`repro.core.collector.DgcCollector`
wires these functions to timers, the network and the activity lifecycle.

Pseudo-code correspondence (with the ``=``/``!=`` glyph restorations
documented in DESIGN.md Sec. 3):

* Algorithm 1 — :meth:`repro.core.referencers.ReferencerTable.agree`
* Algorithm 2 — :func:`acyclic_timeout_expired`,
  :func:`cyclic_consensus_made`, :func:`consensus_flag_for`
* Algorithm 3 — :func:`process_message`
* Algorithm 4 — :func:`process_response`
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.clock import ActivityClock
from repro.core.referenced import ReferencedRecord, ReferencedTable
from repro.core.referencers import ReferencerTable
from repro.core.wire import DgcMessage, DgcResponse
from repro.runtime.ids import ActivityId


@dataclass
class DgcState:
    """The per-activity DGC state the four algorithms read and write.

    ``depth`` is the Sec. 7.2 extension: this activity's distance to the
    consensus originator through its parent chain (0 when it owns the
    clock), or ``None`` when unknown.
    """

    self_id: ActivityId
    clock: ActivityClock
    parent: Optional[ActivityId] = None
    referencers: ReferencerTable = field(default_factory=ReferencerTable)
    referenced: ReferencedTable = field(default_factory=ReferencedTable)
    last_message_timestamp: float = 0.0
    depth: Optional[int] = None
    #: Last response built by :func:`process_message`; responses are
    #: immutable, so while the fields are unchanged (the steady state
    #: between clock movements) the same object is reused instead of
    #: allocating one per received message.
    cached_response: Optional[DgcResponse] = None

    @property
    def owns_clock(self) -> bool:
        return self.clock.owner == self.self_id

    def current_depth(self) -> Optional[int]:
        """Depth advertised in responses: 0 for the owner, the recorded
        parent-chain depth otherwise."""
        if self.owns_clock:
            return 0
        if self.parent is not None:
            return self.depth
        return None

    def increment_clock(self) -> None:
        """``ID:Value`` becomes ``self:Value+1``; the incrementing activity
        is the new owner and, as a (potential) originator, needs no parent."""
        self.clock = self.clock.incremented(self.self_id)
        self.parent = None
        self.depth = None


# ----------------------------------------------------------------------
# Algorithm 2 — the TTB broadcast decisions
# ----------------------------------------------------------------------

def acyclic_timeout_expired(state: DgcState, now: float, tta: float) -> bool:
    """No DGC message for more than TTA: every referencer is gone
    (acyclic garbage, Sec. 3.1)."""
    return now - state.last_message_timestamp > tta


def cyclic_consensus_made(state: DgcState) -> bool:
    """The activity owns the final activity clock and every referencer
    accepted it (cyclic garbage, Sec. 3.2).

    The non-vacuous guard (``len(referencers) > 0``) is the DESIGN.md
    Sec. 3 clarification: a freshly created activity whose creator has not
    yet beaten must not vacuously "agree" with itself; zero-referencer
    garbage is exactly the acyclic case and is left to the TTA timeout.
    """
    return (
        state.owns_clock
        and len(state.referencers) > 0
        and state.referencers.agree(state.clock)
    )


def consensus_flag_for(
    state: DgcState,
    record: ReferencedRecord,
    is_idle: bool,
    referencers_agree: Optional[bool] = None,
) -> bool:
    """The ``consensus`` boolean of the DGC message sent to ``record``.

    Paper Algorithm 2:

    * to the parent: the conjunction of the consensus values of the
      sender's direct referencers and the sender's local agreement;
    * to any other referenced activity: the local agreement only.

    Local agreement means: idle, the destination's last response proposed
    exactly our clock, and we are connected to the originator (we own the
    clock or we have a parent).

    ``referencers_agree`` lets a broadcast that visits many referenced
    records compute ``state.referencers.agree(state.clock)`` once per
    tick and pass the cached value in.
    """
    if not is_idle:
        return False
    last_response = record.last_response
    if last_response is None:
        return False
    proposed = last_response.clock
    clock = state.clock
    if proposed is not clock and proposed != clock:
        return False
    if not (state.owns_clock or state.parent is not None):
        return False
    if state.parent == record.target:
        if referencers_agree is not None:
            return referencers_agree
        return state.referencers.agree(state.clock)
    return True


# ----------------------------------------------------------------------
# Algorithm 3 — reception of a DGC message
# ----------------------------------------------------------------------

def process_message(
    state: DgcState,
    message: DgcMessage,
    now: float,
    *,
    consensus_reached: bool = False,
) -> DgcResponse:
    """Update ``state`` from an incoming DGC message; build the response.

    "If an active object receives a DGC message with a clock which is more
    recent than its own view of the clock, it updates its clock
    accordingly" — and, having changed candidate, it must re-elect a
    parent for the new reverse spanning tree.

    Runs once per received DGC message — the ownership/depth logic is
    inlined rather than going through ``owns_clock``/``current_depth``
    (one property plus one method call per message adds up at scale).
    """
    clock = state.clock
    message_clock = message.clock
    # Identity-first: in the steady state between clock movements every
    # referencer proposes the *object* we adopted from it (clocks are
    # shared, not copied), so the structural comparison is skipped for
    # the bulk of received messages.
    if message_clock is not clock and message_clock > clock:
        clock = state.clock = message_clock
        state.parent = None
        state.depth = None
    state.referencers.update(
        message.sender,
        message_clock,
        message.consensus,
        now,
        message.sender_ttb,
    )
    state.last_message_timestamp = now
    owns_clock = clock.owner == state.self_id
    parent = state.parent
    if owns_clock:
        depth: Optional[int] = 0
    elif parent is not None:
        depth = state.depth
    else:
        depth = None
    has_parent = parent is not None or owns_clock
    cached = state.cached_response
    if (
        cached is not None
        and cached.clock is clock
        and cached.has_parent == has_parent
        and cached.consensus_reached == consensus_reached
        and cached.depth == depth
    ):
        return cached
    response = DgcResponse(
        responder=state.self_id,
        clock=clock,
        has_parent=has_parent,
        consensus_reached=consensus_reached,
        depth=depth,
    )
    state.cached_response = response
    return response


# ----------------------------------------------------------------------
# Algorithm 4 — reception of a DGC response
# ----------------------------------------------------------------------

def process_response(
    state: DgcState,
    response: DgcResponse,
    *,
    bfs: bool = False,
) -> bool:
    """Update ``state`` from a DGC response; True if a parent was adopted.

    The clock in a response is *never* merged into the activity clock —
    only used as a consensus candidate (Fig. 4: otherwise a dead cycle C2
    referencing a live cycle C1 would keep C1's clocks circulating and
    prevent C1's collection... and vice versa; references are oriented).

    With ``bfs`` (Sec. 7.2 extension), a strictly shallower candidate
    replaces the current parent, converging towards a breadth-first
    reverse spanning tree of minimal height.
    """
    record = state.referenced.get(response.responder)
    if record is None:
        # Stale response: the edge was already removed.
        return False
    record.last_response = response
    # Identity-first (clocks are shared objects in the steady state, see
    # process_message): the structural comparison only runs when the
    # response proposes a clock object we did not adopt from it.
    response_clock = response.clock
    clock = state.clock
    if (
        (response_clock is not clock and response_clock != clock)
        or not response.has_parent
        or state.owns_clock
    ):
        return False
    candidate_depth = (
        response.depth + 1 if response.depth is not None else None
    )
    if state.parent is None:
        state.parent = response.responder
        state.depth = candidate_depth
        return True
    if (
        bfs
        and candidate_depth is not None
        and (state.depth is None or candidate_depth < state.depth)
    ):
        state.parent = response.responder
        state.depth = candidate_depth
        return True
    if state.parent == response.responder:
        # Refresh our recorded depth for the existing parent.
        state.depth = candidate_depth
    return False
