"""DGC configuration.

The algorithm is configured by only two parameters (paper Sec. 7.1):

* ``TTB`` (TimeToBeat) — the heartbeat/broadcast period (Sec. 3.1);
* ``TTA`` (TimeToAlone) — the silence window after which an activity
  considers that all of its referencers are gone.

Safety requires ``TTA > 2*TTB + MaxComm`` (Sec. 3.1): the worst case is a
reference to B handed by A to C right before A's broadcast while C has
just broadcast; C then needs up to ``2*TTB + Comm`` before its first
heartbeat reaches B.

The remaining switches expose the paper's optimisation and the
clock-increment rules for the ablation studies in DESIGN.md Sec. 6; they
all default to the paper's behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Union

from repro.errors import ConfigurationError

#: Sentinel value for :attr:`DgcConfig.beat_slots`: let each node's
#: :class:`repro.sim.beats.SlotController` scale the slot grid with its
#: live activity count.
AUTO_BEAT_SLOTS = "auto"

#: :attr:`DgcConfig.aggregation` values — the four delivery cores, from
#: baseline to most aggressive:
#:
#: * ``per-event`` — one kernel event per heartbeat tick and per
#:   message (the pre-wheel baseline; equals ``batched_beats=False``),
#: * ``per-entry`` — pulse-batched delivery, one 6-tuple entry and one
#:   typed dispatch per message (``aggregate_site_pairs=False``),
#: * ``exact`` — the aggregated columnar core: adjacent same-site-pair
#:   DGC runs merge into single aggregate entries; delivery order is
#:   bit-identical to per-event (the default, both booleans on),
#: * ``relaxed`` — per-(site pair, beat bucket) coalescing: DGC sends
#:   accumulate per ``(channel, kind)`` stream and flush once per
#:   :attr:`relaxed_flush_s` via the beat wheel.  Deliveries are
#:   *deferred* (never reordered within a stream, never earlier), so
#:   the exact-order tracer equivalence is traded for the relaxed
#:   tier: identical collection outcomes and bandwidth totals, delivery
#:   schedules equivalent up to the protocol-safe class of
#:   :mod:`repro.net.reorder`.
AGGREGATION_PER_EVENT = "per-event"
AGGREGATION_PER_ENTRY = "per-entry"
AGGREGATION_EXACT = "exact"
AGGREGATION_RELAXED = "relaxed"

AGGREGATION_MODES = (
    AGGREGATION_PER_EVENT,
    AGGREGATION_PER_ENTRY,
    AGGREGATION_EXACT,
    AGGREGATION_RELAXED,
)


@dataclass(frozen=True)
class DgcConfig:
    """Parameters and feature switches of the DGC algorithm."""

    ttb: float = 30.0
    tta: float = 61.0
    #: Sec. 4.3 optimisation: on consensus, wait TTA in a *doomed* state,
    #: stop heart-beating, and propagate ``consensus_reached`` through DGC
    #: responses so the whole cycle collects at once.
    consensus_propagation: bool = True
    #: Fig. 5 rule: increment the activity clock when a referencer is lost.
    increment_on_referencer_loss: bool = True
    #: Fig. 6 rule: increment the activity clock when a referenced is lost.
    increment_on_referenced_loss: bool = True
    #: Desynchronise broadcasts by starting each activity's beat at a
    #: uniformly random offset in [0, TTB).
    start_jitter: bool = True
    #: Quantize the start jitter onto a grid of ``beat_slots`` phase
    #: slots per TTB (0 = continuous jitter).  Collectors whose jitter
    #: lands in the same slot share a beat bucket — with the wheel, one
    #: kernel event per slot per beat period instead of one per
    #: activity.  The slot count trades desynchronisation granularity
    #: against scheduler batching; Fig. 10-scale runs use a few dozen
    #: slots so heartbeat heap traffic is O(slots), not O(activities).
    #: The string ``"auto"`` (:data:`AUTO_BEAT_SLOTS`) delegates the
    #: choice to the hosting node's adaptive
    #: :class:`repro.sim.beats.SlotController`, which re-buckets the grid
    #: as the node's live activity count changes.
    beat_slots: Union[int, str] = 0
    #: Schedule the TTB beat through the kernel's beat wheel and deliver
    #: its fan-out through the network's pulse batch (one kernel event
    #: per distinct delivery instant).  ``False`` restores per-event
    #: scheduling — one cancellable kernel event per activity per tick
    #: and per message — which is the baseline the Fig. 10 benchmark
    #: measures the batched scheduler against.
    batched_beats: bool = True
    #: Stage pulse-batched traffic in the columnar (struct-of-arrays)
    #: pulse and coalesce adjacent same-site-pair DGC runs into single
    #: aggregate entries unwrapped by one batch-sink call (see
    #: :mod:`repro.net.network`).  ``False`` keeps the previous
    #: per-entry batched pulse — the A/B baseline the aggregated
    #: columnar core is benchmarked against.  Only meaningful while
    #: ``batched_beats`` is on; either way fixed-seed outcomes are
    #: bit-identical across all delivery modes.
    aggregate_site_pairs: bool = True
    #: The delivery core by name (see :data:`AGGREGATION_MODES`) —
    #: supersedes the ``batched_beats``/``aggregate_site_pairs`` boolean
    #: pair, which it normalizes on construction so every downstream
    #: consumer keeps reading one source of truth.  ``None`` (the
    #: default) derives the mode from the booleans, so existing configs
    #: and overrides behave exactly as before; ``"relaxed"`` selects the
    #: per-(site pair, beat bucket) coalescing core, the only mode the
    #: booleans cannot express.
    aggregation: Optional[str] = None
    #: Flush period of the relaxed core's per-(site pair, beat bucket)
    #: accumulator, in seconds; ``None`` defaults to ``TTB / 4``
    #: (quarter-beat buckets).  Deferral is bounded by one flush period,
    #: so the effective safety margin becomes
    #: ``TTA > 2*TTB + MaxComm + relaxed_flush_s`` (see PERFORMANCE.md's
    #: relaxed-tier argument) — sub-beat buckets keep the added
    #: detection latency per expiry-cascade hop small while the
    #: flush-time site-level merge keeps the coalescing win large.
    #: Ignored outside ``aggregation="relaxed"``.
    relaxed_flush_s: Optional[float] = None
    #: Sec. 7.1 extension: honour the ``sender_ttb`` declared in DGC
    #: messages when expiring referencer records, so activities with
    #: heterogeneous (or dynamically adjusted) beat periods interoperate
    #: safely: a slower referencer's record lives
    #: ``TTA + 2*(sender_ttb - TTB)`` instead of plain TTA.
    heterogeneous_params: bool = False
    #: Sec. 7.1 extension: dynamically accelerate the beat when garbage
    #: is suspected ("an active object gets a parent and some of its
    #: referencers agree with the consensus") and relax it otherwise.
    dynamic_ttb: bool = False
    #: Multiplier applied to TTB while garbage is suspected (< 1).
    dynamic_accel: float = 0.5
    #: Floor for the accelerated beat, as a fraction of TTB.
    dynamic_min_ttb_factor: float = 0.25
    #: Sec. 7.2 extension: breadth-first reverse-spanning-tree election —
    #: responses carry the responder's depth and referencers re-elect a
    #: shallower parent when one appears, minimising the height ``h``
    #: that bounds detection time (Sec. 4.3).
    bfs_parent_election: bool = False

    def __post_init__(self) -> None:
        if self.ttb <= 0:
            raise ConfigurationError(f"TTB must be positive, got {self.ttb}")
        if self.tta <= 0:
            raise ConfigurationError(f"TTA must be positive, got {self.tta}")
        if not 0.0 < self.dynamic_accel <= 1.0:
            raise ConfigurationError(
                f"dynamic_accel must be in (0, 1], got {self.dynamic_accel}"
            )
        if not 0.0 < self.dynamic_min_ttb_factor <= 1.0:
            raise ConfigurationError(
                "dynamic_min_ttb_factor must be in (0, 1], got "
                f"{self.dynamic_min_ttb_factor}"
            )
        if isinstance(self.beat_slots, str):
            if self.beat_slots != AUTO_BEAT_SLOTS:
                raise ConfigurationError(
                    f"beat_slots must be an int >= 0 or "
                    f"{AUTO_BEAT_SLOTS!r}, got {self.beat_slots!r}"
                )
        elif self.beat_slots < 0:
            raise ConfigurationError(
                f"beat_slots must be >= 0, got {self.beat_slots}"
            )
        if self.relaxed_flush_s is not None and self.relaxed_flush_s <= 0:
            raise ConfigurationError(
                f"relaxed_flush_s must be positive, got {self.relaxed_flush_s}"
            )
        if self.aggregation is not None:
            if self.aggregation not in AGGREGATION_MODES:
                raise ConfigurationError(
                    f"aggregation must be one of {AGGREGATION_MODES}, got "
                    f"{self.aggregation!r}"
                )
            # Normalize the legacy boolean pair to the named mode so
            # downstream consumers (world wiring, the collector's
            # receive diet, equivalence suites) keep reading one source
            # of truth regardless of which knob selected the core.
            object.__setattr__(
                self, "batched_beats",
                self.aggregation != AGGREGATION_PER_EVENT,
            )
            object.__setattr__(
                self, "aggregate_site_pairs",
                self.aggregation in (AGGREGATION_EXACT, AGGREGATION_RELAXED),
            )

    def validate_against(self, max_comm: float) -> None:
        """Enforce the paper's safety margin ``TTA > 2*TTB + MaxComm``."""
        bound = 2.0 * self.ttb + max_comm
        if self.tta <= bound:
            raise ConfigurationError(
                f"TTA={self.tta} violates TTA > 2*TTB + MaxComm = {bound} "
                f"(TTB={self.ttb}, MaxComm={max_comm}); wrongful collection "
                f"becomes possible (paper Sec. 3.1)"
            )

    def satisfies_margin(self, max_comm: float) -> bool:
        """Non-raising form of :meth:`validate_against`."""
        return self.tta > 2.0 * self.ttb + max_comm

    @property
    def aggregation_mode(self) -> str:
        """The effective delivery core (one of
        :data:`AGGREGATION_MODES`): the explicit :attr:`aggregation`
        when set, else derived from the legacy boolean pair."""
        if self.aggregation is not None:
            return self.aggregation
        if not self.batched_beats:
            return AGGREGATION_PER_EVENT
        if not self.aggregate_site_pairs:
            return AGGREGATION_PER_ENTRY
        return AGGREGATION_EXACT

    @property
    def relaxed_flush_period(self) -> float:
        """The relaxed core's flush period: :attr:`relaxed_flush_s`, or
        ``TTB / 4`` when unset (quarter-beat buckets)."""
        if self.relaxed_flush_s is not None:
            return self.relaxed_flush_s
        return self.ttb / 4.0

    def with_overrides(self, **changes) -> "DgcConfig":
        """Functional update (configs are immutable)."""
        return replace(self, **changes)


#: :attr:`RegistryConfig.placement` values.
PLACEMENT_HOME = "home"
PLACEMENT_REPLICATED = "replicated"
PLACEMENT_HASHED = "hashed"

PLACEMENTS = (PLACEMENT_HOME, PLACEMENT_REPLICATED, PLACEMENT_HASHED)

#: :attr:`RegistryConfig.coherence` values.
COHERENCE_EAGER = "eager"
COHERENCE_BEAT = "beat"

COHERENCES = (COHERENCE_EAGER, COHERENCE_BEAT)


@dataclass(frozen=True)
class RegistryConfig:
    """Parameters of the naming service (paper Sec. 4.1: registered
    active objects are DGC roots "as anyone can look them up at any
    time").

    The naming service is a fabric subsystem: every operation
    (bind/unbind/lookup, plus the coherence traffic — invalidations and
    lease renewals) rides the typed pulse transport as ``registry.*``
    kinds.  The config chooses where bindings live and how aggressively
    far sites may cache them.
    """

    #: Where the authoritative shard for a name lives:
    #:
    #: * ``home`` — one static home node owns every binding (the
    #:   RMIRegistry-style baseline; far sites pay full cross-grid
    #:   latency unless the lease cache is on),
    #: * ``replicated`` — a primary (the home node) owns root pins and
    #:   pushes full replicas to every node; resolves are served from
    #:   the local replica with zero wire traffic,
    #: * ``hashed`` — the authority for a name is chosen by a stable
    #:   hash over the node list, spreading bindings (and their lookup
    #:   load) across the grid.
    placement: str = PLACEMENT_HOME
    #: Lease TTL for cached bindings, measured in *beats* of
    #: :attr:`lease_beat_s` (so renewals quantize onto the beat wheel
    #: like heartbeats).  ``0`` disables the lease cache — every
    #: non-authoritative resolve crosses the wire, the PR-3-shaped
    #: static-home behaviour.
    lease_ttb: int = 0
    #: Per-node lease-cache capacity (entries); eviction is FIFO in
    #: insertion order.  ``0`` disables caching like ``lease_ttb=0``.
    cache_size: int = 256
    #: Period of the per-node lease sweep (cache expiry + batched
    #: renewals), in seconds.  ``None`` inherits the DGC's TTB when a
    #: DGC is configured, else 30 s (the paper's NAS TTB).
    lease_beat_s: Optional[float] = None
    #: The home node (placement ``home``/``replicated``'s primary);
    #: ``None`` picks the topology's first node.
    home_node: Optional[str] = None
    #: How authority-side coherence traffic (lease invalidations,
    #: replica pushes, renewal denials) reaches the nodes that hold
    #: copies:
    #:
    #: * ``eager`` — one message per (update, destination) the instant
    #:   the authority applies the update (the PR-5 behaviour, kept as
    #:   the A/B baseline);
    #: * ``beat`` — updates accumulate in per-destination egress queues
    #:   (last writer wins per name) and flush once per lease beat as
    #:   multi-name ``registry.invalidate`` / ``registry.push``
    #:   batches, bounding a cached holder's staleness after an unbind
    #:   by one lease beat plus propagation.
    coherence: str = COHERENCE_EAGER

    def __post_init__(self) -> None:
        if self.placement not in PLACEMENTS:
            raise ConfigurationError(
                f"placement must be one of {PLACEMENTS}, got "
                f"{self.placement!r}"
            )
        if self.coherence not in COHERENCES:
            raise ConfigurationError(
                f"coherence must be one of {COHERENCES}, got "
                f"{self.coherence!r}"
            )
        if self.lease_ttb < 0:
            raise ConfigurationError(
                f"lease_ttb must be >= 0 beats, got {self.lease_ttb}"
            )
        if self.cache_size < 0:
            raise ConfigurationError(
                f"cache_size must be >= 0, got {self.cache_size}"
            )
        if self.lease_beat_s is not None and self.lease_beat_s <= 0:
            raise ConfigurationError(
                f"lease_beat_s must be positive, got {self.lease_beat_s}"
            )

    @property
    def caching(self) -> bool:
        """Lease caching is on (meaningful for ``home``/``hashed``;
        ``replicated`` keeps coherent replicas instead of leases)."""
        return (
            self.lease_ttb > 0
            and self.cache_size > 0
            and self.placement != PLACEMENT_REPLICATED
        )

    def with_overrides(self, **changes) -> "RegistryConfig":
        """Functional update (configs are immutable)."""
        return replace(self, **changes)


#: The configuration used for the paper's NAS benchmarks (Sec. 5.2):
#: "the TTB is set to 30 seconds and the TTA to 61 seconds".
NAS_CONFIG = DgcConfig(ttb=30.0, tta=61.0)

#: Fig. 10(a) torture-test configuration.
TORTURE_FAST_CONFIG = DgcConfig(ttb=30.0, tta=150.0)

#: Fig. 10(b) torture-test configuration.
TORTURE_SLOW_CONFIG = DgcConfig(ttb=300.0, tta=1500.0)
