"""The referencer table (paper Sec. 2.2, Fig. 2).

Referencers are tracked by ID only — the DGC never contacts them; it just
"stores the ID of the active objects contacting it".  For each referencer
the table remembers the last DGC message's clock and consensus flag (used
by Algorithm 1) and its arrival time (used to detect the *loss of a
referencer*, Sec. 3.2 / Fig. 5).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.clock import ActivityClock
from repro.runtime.ids import ActivityId


@dataclass
class ReferencerRecord:
    """Last-known state of one referencer.

    ``sender_ttb`` is the referencer's declared beat period (Sec. 7.1
    extension); 0 means undeclared (paper baseline).
    """

    referencer: ActivityId
    clock: ActivityClock
    consensus: bool
    last_message_time: float
    sender_ttb: float = 0.0


class ReferencerTable:
    """All known referencers of one activity."""

    def __init__(self) -> None:
        self._records: Dict[ActivityId, ReferencerRecord] = {}

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, referencer: ActivityId) -> bool:
        return referencer in self._records

    def get(self, referencer: ActivityId) -> Optional[ReferencerRecord]:
        return self._records.get(referencer)

    def ids(self) -> List[ActivityId]:
        return list(self._records.keys())

    def update(
        self,
        referencer: ActivityId,
        clock: ActivityClock,
        consensus: bool,
        now: float,
        sender_ttb: float = 0.0,
    ) -> bool:
        """Record a DGC message from ``referencer``; True if it is new."""
        record = self._records.get(referencer)
        if record is None:
            self._records[referencer] = ReferencerRecord(
                referencer, clock, consensus, now, sender_ttb
            )
            return True
        record.clock = clock
        record.consensus = consensus
        record.last_message_time = now
        record.sender_ttb = sender_ttb
        return False

    def agree(self, clock: ActivityClock) -> bool:
        """Paper Algorithm 1: do all referencers accept ``clock``?

        Vacuously true when the table is empty — callers that need the
        non-vacuous variant (the cyclic termination test) must check
        emptiness themselves.
        """
        for record in self._records.values():
            if record.clock != clock or not record.consensus:
                return False
        return True

    def expire(
        self,
        now: float,
        tta: float,
        base_ttb: float = 0.0,
        honor_sender_ttb: bool = False,
    ) -> List[ActivityId]:
        """Drop referencers silent for more than TTA; returns the lost ids.

        This is the *loss of a referencer* detection (Sec. 3.2): "it has
        not received DGC messages from this referencer in a TTA period".

        With ``honor_sender_ttb`` (Sec. 7.1 extension) a referencer that
        declared a beat period slower than ours gets its deadline
        stretched by ``2 * (sender_ttb - base_ttb)``, preserving the
        TTA > 2*TTB + MaxComm margin relative to *its* beat.
        """
        lost = []
        for referencer, record in self._records.items():
            deadline = tta
            if honor_sender_ttb and record.sender_ttb > base_ttb:
                deadline = tta + 2.0 * (record.sender_ttb - base_ttb)
            if now - record.last_message_time > deadline:
                lost.append(referencer)
        for referencer in lost:
            del self._records[referencer]
        return lost

    def max_declared_ttb(self) -> float:
        """Slowest declared beat among live referencers (Sec. 7.1)."""
        if not self._records:
            return 0.0
        return max(record.sender_ttb for record in self._records.values())

    def forget(self, referencer: ActivityId) -> None:
        """Remove one referencer record (used by tests/baselines)."""
        self._records.pop(referencer, None)
