"""The referencer table (paper Sec. 2.2, Fig. 2).

Referencers are tracked by ID only — the DGC never contacts them; it just
"stores the ID of the active objects contacting it".  For each referencer
the table remembers the last DGC message's clock and consensus flag (used
by Algorithm 1) and its arrival time (used to detect the *loss of a
referencer*, Sec. 3.2 / Fig. 5).

Hot-path bookkeeping
--------------------

Two operations run once per TTB tick on every activity and used to be
O(referencers) scans; both are now O(1) amortized:

* :meth:`ReferencerTable.agree` keeps an incremental count of records
  that agree (same clock, consensus flag set) with a *tracked* clock.
  The count is adjusted in :meth:`update`, :meth:`expire` and
  :meth:`forget`; a call with a different clock (the activity adopted or
  incremented its clock) rebuilds the count with one scan and tracks the
  new clock from then on.
* :meth:`ReferencerTable.expire` keeps a lower bound on the oldest
  ``last_message_time`` in the table.  When even the oldest possible
  record cannot have passed its deadline, the scan is skipped entirely
  (deadlines are at least TTA; ``honor_sender_ttb`` only stretches them).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.clock import ActivityClock
from repro.runtime.ids import ActivityId


@dataclass
class ReferencerRecord:
    """Last-known state of one referencer.

    ``sender_ttb`` is the referencer's declared beat period (Sec. 7.1
    extension); 0 means undeclared (paper baseline).
    """

    referencer: ActivityId
    clock: ActivityClock
    consensus: bool
    last_message_time: float
    sender_ttb: float = 0.0


class ReferencerTable:
    """All known referencers of one activity."""

    def __init__(self) -> None:
        self._records: Dict[ActivityId, ReferencerRecord] = {}
        #: Steady-state receive diet (set by the collector when the
        #: aggregated columnar core is active): skip the field writes and
        #: agreement-count adjustment for messages that are
        #: field-identical to the referencer's current record.
        #: Observably neutral — only the arrival time matters then.
        self.touch_skip = False
        #: Clock the incremental agreement count refers to; ``None`` until
        #: the first :meth:`agree` call.
        self._agree_clock: Optional[ActivityClock] = None
        #: Number of records with ``clock == _agree_clock and consensus``.
        self._agree_count = 0
        #: Lower bound on the minimum ``last_message_time`` across records
        #: (records only ever move their timestamp forward, so the bound
        #: stays valid without per-update maintenance); ``+inf`` when empty.
        self._lmt_floor = math.inf

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, referencer: ActivityId) -> bool:
        return referencer in self._records

    def get(self, referencer: ActivityId) -> Optional[ReferencerRecord]:
        return self._records.get(referencer)

    def ids(self) -> List[ActivityId]:
        return list(self._records.keys())

    def records(self) -> List[ReferencerRecord]:
        return list(self._records.values())

    def _agrees(self, record: ReferencerRecord) -> bool:
        return record.consensus and record.clock == self._agree_clock

    def update(
        self,
        referencer: ActivityId,
        clock: ActivityClock,
        consensus: bool,
        now: float,
        sender_ttb: float = 0.0,
    ) -> bool:
        """Record a DGC message from ``referencer``; True if it is new."""
        record = self._records.get(referencer)
        agree_clock = self._agree_clock
        if record is None:
            self._records[referencer] = ReferencerRecord(
                referencer, clock, consensus, now, sender_ttb
            )
            if now < self._lmt_floor:
                self._lmt_floor = now
            if agree_clock is not None and consensus and clock == agree_clock:
                self._agree_count += 1
            return True
        if (
            self.touch_skip
            and record.consensus == consensus
            and record.sender_ttb == sender_ttb
            and (record.clock is clock or record.clock == clock)
        ):
            # Field-identical to the last message from this referencer —
            # the steady state between clock movements.  Only the arrival
            # time matters (loss-of-referencer detection); skip the
            # agreement-count adjustment and the field writes.
            record.last_message_time = now
            return False
        if agree_clock is not None:
            if record.consensus and record.clock == agree_clock:
                self._agree_count -= 1
            if consensus and clock == agree_clock:
                self._agree_count += 1
        record.clock = clock
        record.consensus = consensus
        record.last_message_time = now
        record.sender_ttb = sender_ttb
        return False

    def agree(self, clock: ActivityClock) -> bool:
        """Paper Algorithm 1: do all referencers accept ``clock``?

        Vacuously true when the table is empty — callers that need the
        non-vacuous variant (the cyclic termination test) must check
        emptiness themselves.

        O(1) amortized: the first call for a given clock scans once and
        the count is maintained incrementally afterwards.
        """
        if self._agree_clock is None or clock != self._agree_clock:
            self._agree_clock = clock
            self._agree_count = sum(
                1 for record in self._records.values() if self._agrees(record)
            )
        return self._agree_count == len(self._records)

    def agree_scan(self, clock: ActivityClock) -> bool:
        """Reference implementation of :meth:`agree` — the naive
        O(referencers) scan.  Kept for property tests and for the
        pre-optimization baseline in :mod:`repro.perf.baseline`."""
        for record in self._records.values():
            if record.clock != clock or not record.consensus:
                return False
        return True

    def expire(
        self,
        now: float,
        tta: float,
        base_ttb: float = 0.0,
        honor_sender_ttb: bool = False,
    ) -> List[ActivityId]:
        """Drop referencers silent for more than TTA; returns the lost ids.

        This is the *loss of a referencer* detection (Sec. 3.2): "it has
        not received DGC messages from this referencer in a TTA period".

        With ``honor_sender_ttb`` (Sec. 7.1 extension) a referencer that
        declared a beat period slower than ours gets its deadline
        stretched by ``2 * (sender_ttb - base_ttb)``, preserving the
        TTA > 2*TTB + MaxComm margin relative to *its* beat.

        Fast path: every deadline is at least ``tta`` past the record's
        ``last_message_time`` (stretching only lengthens it), so when even
        the oldest record is within TTA, nothing can have expired and the
        scan is skipped.
        """
        if now - self._lmt_floor <= tta:
            return []
        lost = []
        floor = math.inf
        for referencer, record in self._records.items():
            deadline = tta
            if honor_sender_ttb and record.sender_ttb > base_ttb:
                deadline = tta + 2.0 * (record.sender_ttb - base_ttb)
            if now - record.last_message_time > deadline:
                lost.append(referencer)
            elif record.last_message_time < floor:
                floor = record.last_message_time
        for referencer in lost:
            self._drop(referencer)
        self._lmt_floor = floor
        return lost

    def expire_scan(
        self,
        now: float,
        tta: float,
        base_ttb: float = 0.0,
        honor_sender_ttb: bool = False,
    ) -> List[ActivityId]:
        """Reference implementation of :meth:`expire` without the
        min-deadline fast path (always scans)."""
        lost = []
        for referencer, record in self._records.items():
            deadline = tta
            if honor_sender_ttb and record.sender_ttb > base_ttb:
                deadline = tta + 2.0 * (record.sender_ttb - base_ttb)
            if now - record.last_message_time > deadline:
                lost.append(referencer)
        for referencer in lost:
            self._drop(referencer)
        if not self._records:
            self._lmt_floor = math.inf
        return lost

    def max_declared_ttb(self) -> float:
        """Slowest declared beat among live referencers (Sec. 7.1)."""
        if not self._records:
            return 0.0
        return max(record.sender_ttb for record in self._records.values())

    def forget(self, referencer: ActivityId) -> None:
        """Remove one referencer record (used by tests/baselines)."""
        self._drop(referencer)
        if not self._records:
            self._lmt_floor = math.inf

    def _drop(self, referencer: ActivityId) -> None:
        record = self._records.pop(referencer, None)
        if record is None:
            return
        if self._agree_clock is not None and self._agrees(record):
            self._agree_count -= 1
