"""The referenced table (paper Sec. 2.2, Fig. 2).

For every activity this activity references, the table keeps the remote
reference (the DGC *does* contact referenced activities), the last DGC
response received from it, and two liveness bits:

* ``needs_send`` — the Sec. 3.1 rule: "even if the reference is quickly
  garbage collected, the algorithm remembers that one DGC message must be
  sent anyway"; set on every deserialization, cleared by the next
  broadcast;
* ``tag_dead`` — the shared stub tag died (the local GC collected every
  stub for this target).

An entry is *removable* once its tag is dead **and** the mandatory first
send happened.  Removal is the *loss of a referenced* event (Fig. 6),
which increments the activity clock.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.wire import DgcResponse
from repro.runtime.ids import ActivityId
from repro.runtime.proxy import RemoteRef, StubTag


@dataclass
class ReferencedRecord:
    """DGC state for one referenced activity."""

    target: ActivityId
    ref: RemoteRef
    tag: Optional[StubTag] = None
    tag_dead: bool = False
    needs_send: bool = True
    last_response: Optional[DgcResponse] = None
    messages_sent: int = 0

    @property
    def removable(self) -> bool:
        return self.tag_dead and not self.needs_send


class ReferencedTable:
    """All activities referenced by one activity."""

    def __init__(self) -> None:
        self._records: Dict[ActivityId, ReferencedRecord] = {}
        #: True while some record *may* be removable: armed whenever a
        #: tag dies (the needs-send bit may clear later) so
        #: :meth:`pop_removable` — which runs once per TTB tick — can
        #: skip its O(records) scan in the steady state.
        self._maybe_removable = False

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, target: ActivityId) -> bool:
        return target in self._records

    def get(self, target: ActivityId) -> Optional[ReferencedRecord]:
        return self._records.get(target)

    def ids(self) -> List[ActivityId]:
        return list(self._records.keys())

    def records(self) -> List[ReferencedRecord]:
        return list(self._records.values())

    def records_view(self):
        """Live view over the records, in insertion order — for hot
        loops that do not mutate the table while iterating (the TTB
        broadcast; removal happens afterwards via
        :meth:`pop_removable`).  Copy-free: :meth:`records` allocates a
        fresh list on every tick of every activity."""
        return self._records.values()

    def on_deserialized(self, ref: RemoteRef, tag: StubTag) -> ReferencedRecord:
        """A stub for ``ref`` was deserialized: (re)establish the edge.

        Every deserialization re-arms ``needs_send`` so at least one DGC
        message goes out at the next broadcast even if the stub is
        immediately collected.
        """
        record = self._records.get(ref.activity_id)
        if record is None:
            record = ReferencedRecord(target=ref.activity_id, ref=ref)
            self._records[ref.activity_id] = record
        record.ref = ref
        record.tag = tag
        record.tag_dead = tag.dead
        if tag.dead:
            self._maybe_removable = True
        record.needs_send = True
        return record

    def on_tag_dead(self, tag: StubTag) -> Optional[ReferencedRecord]:
        """The local GC reported ``tag`` dead; returns the affected record
        (which may not yet be removable)."""
        record = self._records.get(tag.target)
        if record is None or record.tag is not tag:
            # A newer tag generation superseded this one: the edge was
            # re-established before the GC noticed the old tag's death.
            return None
        record.tag_dead = True
        self._maybe_removable = True
        return record

    def pop_removable(self) -> List[ReferencedRecord]:
        """Remove and return every record whose edge is gone.

        O(1) in the steady state: the scan only runs while a dead tag
        is outstanding (``_maybe_removable``), and the flag stays armed
        as long as any dead-tagged record survives the scan (it may
        still owe its mandatory first send).
        """
        if not self._maybe_removable:
            return []
        removable = []
        armed = False
        for record in self._records.values():
            if record.tag_dead:
                if record.needs_send:
                    armed = True
                else:
                    removable.append(record)
        for record in removable:
            del self._records[record.target]
        self._maybe_removable = armed
        return removable
