"""The per-activity DGC engine.

Ties the pure protocol (:mod:`repro.core.protocol`) to the runtime:

* a periodic TTB broadcast (paper Algorithm 2) with optional start jitter,
* the three clock-increment occasions (Sec. 3.2): becoming idle, loss of
  a referencer, loss of a referenced,
* acyclic termination by TTA timeout and cyclic termination by consensus,
* the Sec. 4.3 optimisation: on consensus the activity becomes *doomed* —
  it stops heart-beating, keeps answering DGC messages with
  ``consensus_reached`` so the whole cycle learns the verdict, and
  terminates after TTA.
"""

from __future__ import annotations

from typing import Optional

from repro.core import events
from repro.core.clock import ActivityClock
from repro.core.config import AUTO_BEAT_SLOTS, DgcConfig
from repro.core.protocol import (
    DgcState,
    acyclic_timeout_expired,
    cyclic_consensus_made,
    process_message,
    process_response,
)
from repro.core.wire import DgcMessage, DgcResponse
from repro.net.message import KIND_DGC_RESPONSE
from repro.runtime.activeobject import Activity
from repro.runtime.proxy import Proxy, RemoteRef, StubTag
from repro.sim.timers import PeriodicTimer


class DgcCollector:
    """One DGC engine attached to one activity."""

    def __init__(self, activity: Activity, config: DgcConfig) -> None:
        self.activity = activity
        self.config = config
        self._kernel = activity.node.kernel
        self._tracer = activity.node.tracer
        self._node = activity.node
        self.self_ref = RemoteRef(activity.id, activity.node.name)
        self.state = DgcState(
            self_id=activity.id,
            clock=ActivityClock(0, activity.id),
            last_message_timestamp=self._kernel.now,
        )
        self.doomed_since: Optional[float] = None
        #: Interned Sec. 4.3 verdict response (built on first use after
        #: dooming; invalidated by identity if the clock ever moved).
        self._doomed_response: Optional[DgcResponse] = None
        self._stopped = False
        self.messages_sent = 0
        self.messages_received = 0
        self.responses_received = 0
        # Hot-path caches of frozen config flags (attribute chains per
        # received response add up at scale).
        self._consensus_propagation = config.consensus_propagation
        self._bfs_parent_election = config.bfs_parent_election
        #: The steady-state receive diet (doomed-response interning,
        #: field-identical touch-write skip) is part of the aggregated
        #: columnar core; with ``aggregate_site_pairs`` off the receive
        #: path stays the previous core's, so the perf A/B measures the
        #: whole package against it.  The diet is observably neutral —
        #: outcomes are bit-identical either way.
        self._receive_diet = config.aggregate_site_pairs
        self.state.referencers.touch_skip = config.aggregate_site_pairs
        # Direct response lane (diet only): responses go straight into
        # the fabric's fused DGC send unless the node has a response run
        # open (an aggregate unwrap in progress — those must collect).
        self._net_send_single = self._node.network.send_dgc_single
        self._node_name = self._node.name
        self._response_bytes = self._node.wire_sizes.dgc_response_bytes
        #: Current beat period; differs from ``config.ttb`` only when the
        #: dynamic-TTB extension (Sec. 7.1) accelerates the beat.
        self.current_ttb = config.ttb
        beat_slots = config.beat_slots
        if beat_slots == AUTO_BEAT_SLOTS:
            # Adaptive grid: sized from the node's live activity count at
            # registration (this activity included — it was added before
            # the collector attaches).  Purely a function of simulated
            # state, so batched and per-event schedulers resolve the same
            # grid and stay bit-comparable.
            beat_slots = activity.node.beat_slot_controller.slots_for(
                len(activity.node.activities)
            )
        if config.start_jitter:
            rng = activity.node.rng_registry.stream(f"dgc:{activity.id}")
            initial_delay = rng.uniform(0.0, config.ttb)
            if beat_slots:
                # Snap the jitter onto the slot grid so beats sharing a
                # slot coalesce into one wheel bucket.  The RNG draw is
                # kept (stream consumption must not depend on the knob)
                # and the quantisation is identical under per-event
                # scheduling, so wheel-vs-per-event runs stay
                # bit-comparable.
                slot = config.ttb / beat_slots
                initial_delay = int(initial_delay / slot) * slot
        else:
            initial_delay = config.ttb
        self._timer = PeriodicTimer(
            self._kernel,
            config.ttb,
            self._tick,
            initial_delay=initial_delay,
            label=f"dgc.tick:{activity.id}",
            per_event=not config.batched_beats,
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def clock(self) -> ActivityClock:
        return self.state.clock

    @property
    def parent(self) -> Optional[str]:
        return self.state.parent

    @property
    def doomed(self) -> bool:
        return self.doomed_since is not None

    # ------------------------------------------------------------------
    # Runtime hooks
    # ------------------------------------------------------------------

    def on_became_idle(self) -> None:
        """Clock-increment occasion 1 (Sec. 3.2): the activity became
        idle; without this, interleavings of idle/busy during a traversal
        would make the outcome inconsistent."""
        if self._stopped or self.doomed:
            return
        self._increment_clock("idle")

    def on_reference_deserialized(self, proxy: Proxy) -> None:
        """A stub was deserialized: establish/refresh the referenced edge
        and re-arm the mandatory first heartbeat (Sec. 3.1)."""
        if self._stopped:
            return
        self.state.referenced.on_deserialized(proxy.ref, proxy.tag)

    def on_reference_dropped(self, tag: StubTag) -> None:
        """The local GC collected every stub behind ``tag``."""
        if self._stopped:
            return
        record = self.state.referenced.on_tag_dead(tag)
        if record is not None and record.removable:
            self._remove_referenced()

    def on_terminated(self) -> None:
        """The activity is gone; silence the engine."""
        self._stopped = True
        self._timer.stop()

    # ------------------------------------------------------------------
    # DGC wire handlers
    # ------------------------------------------------------------------

    def on_dgc_message(self, message: DgcMessage) -> None:
        if self._stopped:
            return
        self.messages_received += 1
        now = self._kernel.now
        if self.doomed:
            # Decision already taken: do not adopt clocks or mutate state;
            # just keep propagating the verdict (Sec. 4.3 optimisation).
            # The verdict is immutable while doomed (the clock is frozen:
            # every increment occasion is gated on ``doomed``), so with
            # the receive diet one interned response serves the whole
            # doom window instead of allocating one per incoming
            # message — the collapse phase is receive-dominated, so this
            # is the steady state at scale.
            response = self._doomed_response
            if response is None or response.clock is not self.state.clock:
                response = DgcResponse(
                    responder=self.state.self_id,
                    clock=self.state.clock,
                    has_parent=True,
                    consensus_reached=True,
                )
                if self._receive_diet:
                    self._doomed_response = response
        else:
            response = process_message(self.state, message, now)
        sender_ref = message.sender_ref
        if self._receive_diet and self._node._response_run is None:
            self._net_send_single(
                self._node_name,
                sender_ref.node,
                KIND_DGC_RESPONSE,
                self._response_bytes,
                sender_ref.activity_id,
                response,
            )
            return
        self._node.send_dgc_response(sender_ref, response)

    def on_dgc_response(self, response: DgcResponse) -> None:
        if self._stopped or self.doomed:
            return
        self.responses_received += 1
        if (
            response.consensus_reached
            and self._consensus_propagation
            and response.clock == self.state.clock
            and self.activity.is_idle()
        ):
            # Our referenced activity is part of an established consensus
            # on our very clock: we belong to the same garbage cycle.
            self._become_doomed(propagated=True)
            return
        process_response(
            self.state, response, bfs=self._bfs_parent_election
        )

    # ------------------------------------------------------------------
    # The TTB broadcast (Algorithm 2)
    # ------------------------------------------------------------------

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self._kernel.now
        if self.doomed:
            # Doomed activities no longer beat; termination is scheduled.
            return
        lost = self.state.referencers.expire(
            now,
            self.config.tta,
            base_ttb=self.config.ttb,
            honor_sender_ttb=self.config.heterogeneous_params,
        )
        if lost and self.config.increment_on_referencer_loss:
            # Clock-increment occasion 2 (Fig. 5): a referencer vanished;
            # the final clock owner must remain inside the referencer
            # closure, so refresh ownership.
            self._increment_clock("referencer_loss")
        is_idle = self.activity.is_idle()
        if is_idle:
            if acyclic_timeout_expired(self.state, now, self._acyclic_tta()):
                self._terminate(events.REASON_ACYCLIC)
                return
            if cyclic_consensus_made(self.state):
                if self._tracer.enabled:
                    self._tracer.record(
                        now,
                        events.DGC_CONSENSUS,
                        self.activity.id,
                        clock=repr(self.state.clock),
                    )
                if self._consensus_propagation:
                    self._become_doomed(propagated=False)
                else:
                    self._terminate(events.REASON_CYCLIC)
                return
        self._broadcast(is_idle)

    def _broadcast(self, is_idle: Optional[bool] = None) -> None:
        if is_idle is None:
            is_idle = self.activity.is_idle()
        declared_ttb = (
            self.current_ttb if self.config.heterogeneous_params else 0.0
        )
        # The referencer-agreement check only matters for the message to
        # the parent; compute it lazily and at most once per tick (it used
        # to run one O(referencers) scan per referenced record).
        referencers_agree: Optional[bool] = None
        # Messages are immutable and identical for every record with the
        # same consensus flag, so at most two objects are built per tick.
        by_flag: dict = {}
        # The fan-out is grouped by destination node (first-appearance
        # order, deterministic): records sharing a site become one
        # site-pair run — one fabric call, and in aggregated-columnar
        # mode one pulse entry — instead of one send per record.  The
        # grouped order is the send order under *every* delivery mode
        # (per-event, per-entry batched, aggregated), so the modes stay
        # bit-identical with each other.  Sends happen after the flag
        # loop; nothing in the loop observes them (delivery is always
        # deferred to a kernel event, even intra-node).
        by_node: dict = {}
        sent = 0
        state = self.state
        clock = state.clock
        parent = state.parent
        # Inlined :func:`consensus_flag_for` (which stays the canonical,
        # tested form): the is-idle/connected conjuncts are loop
        # constants, and the clock comparison is identity-first —
        # shared clock objects make the structural compare redundant in
        # the steady state.  One call per record becomes none.
        connected = is_idle and (
            parent is not None or clock.owner == state.self_id
        )
        for record in state.referenced.records_view():
            last_response = record.last_response
            if not connected or last_response is None:
                consensus = False
            else:
                proposed = last_response.clock
                if proposed is not clock and proposed != clock:
                    consensus = False
                elif parent == record.target:
                    if referencers_agree is None:
                        referencers_agree = state.referencers.agree(clock)
                    consensus = referencers_agree
                else:
                    consensus = True
            message = by_flag.get(consensus)
            if message is None:
                message = by_flag[consensus] = DgcMessage(
                    sender=self.state.self_id,
                    clock=self.state.clock,
                    consensus=consensus,
                    sender_ref=self.self_ref,
                    sender_ttb=declared_ttb,
                )
            ref = record.ref
            group = by_node.get(ref.node)
            if group is None:
                by_node[ref.node] = group = (ref, [], [])
            group[1].append(ref.activity_id)
            group[2].append(message)
            sent += 1
            record.messages_sent += 1
            record.needs_send = False
        if sent:
            self.messages_sent += sent
            node = self._node
            for dest_node, (ref, targets, messages) in by_node.items():
                if len(targets) == 1:
                    node.send_dgc_message(ref, messages[0])
                else:
                    node.send_dgc_messages(dest_node, targets, messages)
        if self.state.referenced.pop_removable():
            self._remove_referenced(already_popped=True)
        if self.config.dynamic_ttb:
            self._adjust_beat(is_idle)

    # ------------------------------------------------------------------
    # Sec. 7.1 extensions: heterogeneous and dynamic parameters
    # ------------------------------------------------------------------

    def _acyclic_tta(self) -> float:
        """Effective alone-timeout; stretched for slow referencers when
        heterogeneous parameters are honoured."""
        tta = self.config.tta
        if not self.config.heterogeneous_params:
            return tta
        slowest = self.state.referencers.max_declared_ttb()
        if slowest > self.config.ttb:
            tta += 2.0 * (slowest - self.config.ttb)
        return tta

    def _suspects_garbage(self) -> bool:
        """Paper Sec. 7.1: garbage is suspected "when an active object
        gets a parent and some of its referencers agree with the
        consensus" (or when it owns an agreed-upon clock itself)."""
        connected = self.state.parent is not None or (
            self.state.owns_clock and self.activity.is_idle()
        )
        if not connected:
            return False
        return any(
            record.consensus for record in self.state.referencers.records()
        )

    def _adjust_beat(self, is_idle: bool) -> None:
        if is_idle and self._suspects_garbage():
            floor = self.config.ttb * self.config.dynamic_min_ttb_factor
            target = max(floor, self.config.ttb * self.config.dynamic_accel)
        else:
            target = self.config.ttb
        if target != self.current_ttb:
            self.current_ttb = target
            self._timer.set_period(target)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _remove_referenced(self, already_popped: bool = False) -> None:
        """Loss of a referenced (Fig. 6): clock-increment occasion 3."""
        if not already_popped:
            removed = self.state.referenced.pop_removable()
            if not removed:
                return
        if self.config.increment_on_referenced_loss:
            self._increment_clock("referenced_loss")
        # With the rule ablated (DESIGN.md Sec. 6 item 4) the naive
        # protocol keeps its possibly-dangling parent and foreign clock —
        # exactly the broken-reverse-spanning-tree condition Fig. 6 warns
        # about; tests/integration/test_fig6_referenced_loss.py shows the
        # resulting wrongful collection.

    def _increment_clock(self, reason: str) -> None:
        self.state.increment_clock()
        # Guard before building kwargs: ``repr(clock)`` on every clock
        # increment is pure waste when tracing is off (torture runs).
        if self._tracer.enabled:
            self._tracer.record(
                self._kernel.now,
                events.DGC_CLOCK_INCREMENT,
                self.activity.id,
                reason=reason,
                clock=repr(self.state.clock),
            )

    def _become_doomed(self, propagated: bool) -> None:
        self.doomed_since = self._kernel.now
        if self._tracer.enabled:
            self._tracer.record(
                self._kernel.now,
                events.DGC_DOOMED,
                self.activity.id,
                propagated=propagated,
                clock=repr(self.state.clock),
            )
        # Sec. 4.3: wait TTA before terminating, giving every member of
        # the cycle the time to learn the verdict through our responses.
        self._kernel.schedule(
            self.config.tta,
            self._finish_doomed,
            label=f"dgc.doom:{self.activity.id}",
        )

    def _finish_doomed(self) -> None:
        if self._stopped:
            return
        self._terminate(events.REASON_CYCLIC)

    def _terminate(self, reason: str) -> None:
        self._timer.stop()
        self.activity.terminate(reason)
