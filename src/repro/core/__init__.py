"""The paper's primary contribution: the complete DGC for activities.

* :mod:`repro.core.config` — TTB/TTA parameters and the safety margin
  ``TTA > 2*TTB + MaxComm`` (paper Sec. 3.1),
* :mod:`repro.core.clock` — the named Lamport *activity clock*
  (paper Sec. 3.2),
* :mod:`repro.core.wire` — DGC messages and responses,
* :mod:`repro.core.referencers` / :mod:`repro.core.referenced` — the
  per-activity neighbour tables (paper Sec. 2.2, Fig. 2),
* :mod:`repro.core.protocol` — pure-functional renderings of the paper's
  Algorithms 1-4,
* :mod:`repro.core.collector` — the per-activity DGC engine tying it all
  to the runtime (broadcast loop, clock-increment occasions, doomed-state
  consensus propagation).
"""

from repro.core.clock import ActivityClock
from repro.core.config import DgcConfig
from repro.core.collector import DgcCollector
from repro.core.wire import DgcMessage, DgcResponse

__all__ = [
    "ActivityClock",
    "DgcConfig",
    "DgcCollector",
    "DgcMessage",
    "DgcResponse",
]
