"""The named Lamport activity clock (paper Sec. 3.2).

"The cyclic garbage collector algorithm requires every active object to
maintain a named Lamport logical clock, which is used to determine which
activity was the last active.  The clock is named in the sense that the ID
of the active object incrementing the clock is embedded in the clock.
This additional information provides a total ordering of the named clocks
by letting the comparison function first compare the clock values and then
the active object IDs if the clock values are identical."

Clocks are immutable value objects; ``incremented(owner)`` returns a new
clock ``owner:value+1`` and merging is simply ``max``.
"""
# repro: hot-path — every class slotted, no closure allocation in loops (HOT rules)

from __future__ import annotations

from typing import Any

from repro.runtime.ids import ActivityId


class ActivityClock:
    """An immutable named Lamport clock ``owner:value``."""

    __slots__ = ("value", "owner")

    def __init__(self, value: int, owner: ActivityId) -> None:
        object.__setattr__(self, "value", value)
        object.__setattr__(self, "owner", owner)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("ActivityClock is immutable")

    def incremented(self, new_owner: ActivityId) -> "ActivityClock":
        """``ID:Value`` incremented by ``new_owner`` becomes
        ``new_owner:Value+1`` (paper Sec. 3.2)."""
        return ActivityClock(self.value + 1, new_owner)

    def merge(self, other: "ActivityClock") -> "ActivityClock":
        """Lamport merge: the greater of the two clocks."""
        return other if other > self else self

    # -- total order -----------------------------------------------------
    #
    # Comparisons run once per DGC message/response and per agreement
    # check, so they compare fields directly instead of building key
    # tuples on every call.

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ActivityClock):
            return NotImplemented
        return self.value == other.value and self.owner == other.owner

    def __ne__(self, other: object) -> bool:
        if not isinstance(other, ActivityClock):
            return NotImplemented
        return self.value != other.value or self.owner != other.owner

    def __lt__(self, other: "ActivityClock") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.owner < other.owner

    def __le__(self, other: "ActivityClock") -> bool:
        if self.value != other.value:
            return self.value < other.value
        return self.owner <= other.owner

    def __gt__(self, other: "ActivityClock") -> bool:
        if self.value != other.value:
            return self.value > other.value
        return self.owner > other.owner

    def __ge__(self, other: "ActivityClock") -> bool:
        if self.value != other.value:
            return self.value > other.value
        return self.owner >= other.owner

    def __hash__(self) -> int:
        return hash((self.value, self.owner))

    def __repr__(self) -> str:
        return f"{self.owner}:{self.value}"
