"""DGC lifecycle trace-event kinds.

Centralised so the harness, figures and tests agree on the vocabulary.
Only low-frequency lifecycle events are traced (per-message tracing at
grid scale would dominate the run); message volumes come from the
bandwidth accountant instead.
"""

#: An activity finished serving and became idle.
ACTIVITY_IDLE = "activity.idle"
#: An activity was removed (reason: "acyclic", "cyclic", "explicit").
ACTIVITY_TERMINATED = "activity.terminated"
#: A clock owner detected the consensus on its final activity clock.
DGC_CONSENSUS = "dgc.consensus"  # repro: allow[KIND-literal] tracer event name, not a traffic kind — nothing routes it
#: An activity entered the doomed state (detected or propagated).
DGC_DOOMED = "dgc.doomed"  # repro: allow[KIND-literal] tracer event name, not a traffic kind — nothing routes it
#: An activity's clock was incremented (reason: "idle",
#: "referencer_loss", "referenced_loss").
DGC_CLOCK_INCREMENT = "dgc.clock_increment"  # repro: allow[KIND-literal] tracer event name, not a traffic kind — nothing routes it
#: An application message reached a terminated activity.
MESSAGE_DEAD_LETTER = "message.dead_letter"

#: Termination reasons.
REASON_ACYCLIC = "acyclic"
REASON_CYCLIC = "cyclic"
REASON_EXPLICIT = "explicit"
