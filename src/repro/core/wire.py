"""DGC messages and responses (paper Sec. 3.2).

Message (referencer -> referenced, every TTB):

* ``sender`` — the referencer's ID ("used to detect new referencers and to
  know which DGC response's final activity clock the consensus boolean
  refers to"),
* ``clock`` — the sender's view of the final activity clock,
* ``consensus`` — acceptance of the candidate received in the previous
  DGC response.

Response (referenced -> referencer, on the same connection):

* ``clock`` — the final-activity-clock consensus candidate,
* ``has_parent`` — whether the responder can serve as a parent in the
  reverse spanning tree (it has one itself, or it is the originator),
* ``consensus_reached`` — the Sec. 4.3 optimisation: the responder has
  detected (or learnt of) the consensus, so the whole cycle can collect
  at once.

``sender_ref`` rides along purely as the *response path*: the paper's
responses travel back over the TCP connection the message arrived on, so
no referencer connectivity is required; our simulated equivalent needs
the (id, node) pair to address the response envelope.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.core.clock import ActivityClock
from repro.runtime.ids import ActivityId
from repro.runtime.proxy import RemoteRef


@dataclass(frozen=True, slots=True)
class DgcMessage:
    """Heartbeat from a referencer to a referenced activity.

    ``sender_ttb`` is the Sec. 7.1 extension (heterogeneous/dynamic
    parameters): the sender declares its current beat period so the
    receiver can stretch this referencer's expiry deadline accordingly.
    A value of 0 means "use your own TTA unchanged" (paper baseline).
    """

    sender: ActivityId
    clock: ActivityClock
    consensus: bool
    sender_ref: RemoteRef
    sender_ttb: float = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        flag = "+" if self.consensus else "-"
        return f"DgcMessage({self.sender} clock={self.clock} consensus{flag})"


@dataclass(frozen=True, slots=True)
class DgcResponse:
    """Reply to a :class:`DgcMessage`, flowing referenced -> referencer.

    ``depth`` is the Sec. 7.2 extension (breadth-first spanning tree):
    the responder's distance to the consensus originator (0 for the
    owner).  ``None`` when unknown or when the extension is disabled;
    referencers electing parents can prefer shallow candidates, reducing
    the tree height ``h`` that bounds detection time.
    """

    responder: ActivityId
    clock: ActivityClock
    has_parent: bool
    consensus_reached: bool = False
    depth: Optional[int] = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parent = "P" if self.has_parent else "p"
        done = " REACHED" if self.consensus_reached else ""
        return f"DgcResponse({self.responder} clock={self.clock} {parent}{done})"
