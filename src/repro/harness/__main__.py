"""Command-line entry point: regenerate the paper's tables and figures,
or drive one workload directly.

Examples::

    python -m repro.harness fig8
    python -m repro.harness fig9 --ao-count 32 --runs 1
    python -m repro.harness fig10 --slaves 160
    python -m repro.harness run --workload nas:ft --ao-count 32
    python -m repro.harness run --workload torture --slaves 160 \
        --beat-slots auto
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from repro.harness.figures import fig10_report, run_fig10
from repro.harness.tables import fig8_table, fig9_table, run_comparisons


def _beat_slots(value: str):
    """``--beat-slots`` accepts an integer grid or ``auto`` (the
    adaptive per-node slot controller)."""
    if value == "auto":
        return value
    try:
        return int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected an integer or 'auto', got {value!r}"
        ) from None


def _add_nas_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ao-count", type=int, default=None,
        help="workers per kernel (default: the scaled preset, 64; "
        "paper scale is 256)",
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="seeds per configuration"
    )
    parser.add_argument(
        "--nodes", type=int, default=32, help="nodes in the topology"
    )
    parser.add_argument(
        "--kernels", default="CG,EP,FT", help="comma-separated kernel list"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness")
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig8 = subparsers.add_parser("fig8", help="bandwidth-overhead table")
    _add_nas_args(fig8)
    fig9 = subparsers.add_parser("fig9", help="time-overhead table")
    _add_nas_args(fig9)

    fig10 = subparsers.add_parser("fig10", help="torture-test evolution")
    fig10.add_argument("--slaves", type=int, default=320)
    fig10.add_argument("--duration", type=float, default=600.0)
    fig10.add_argument("--nodes", type=int, default=32)
    fig10.add_argument("--seed", type=int, default=1)
    fig10.add_argument(
        "--skip-slow", action="store_true",
        help="skip the TTB=300 run (it simulates ~5 hours)",
    )
    fig10.add_argument(
        "--paper-scale", action="store_true",
        help="the paper's full Fig. 10 scale: 6400 slaves on 128 nodes "
        "(overrides --slaves/--nodes; see PERFORMANCE.md)",
    )
    fig10.add_argument(
        "--beat-slots", type=_beat_slots, default=None,
        help="quantize heartbeat jitter onto N phase slots per TTB so "
        "beats coalesce into wheel buckets (recommended at paper "
        "scale: 16; 'auto' scales the grid with per-node activity "
        "count)",
    )
    fig10.add_argument(
        "--aggregation",
        choices=["per-event", "per-entry", "exact", "relaxed"],
        default=None,
        help="delivery core: per-event baseline, per-entry batched "
        "pulse, exact-order site-pair aggregation (the default), or "
        "the relaxed per-(site pair, beat bucket) coalescing tier",
    )
    fig10.add_argument(
        "--per-event-beats", action="store_true",
        help="deprecated alias for --aggregation per-event (disable "
        "the batched beat scheduler: one kernel event per tick and "
        "per DGC message; the perf baseline)",
    )
    fig10.add_argument(
        "--per-entry-pulse", action="store_true",
        help="deprecated alias for --aggregation per-entry (disable "
        "the columnar pulse and site-pair DGC aggregation: one "
        "6-tuple pulse entry per message; the previous batched core, "
        "kept as the A/B baseline)",
    )

    run_cmd = subparsers.add_parser(
        "run",
        help="drive one workload (torture or a NAS kernel) through the "
        "unified fabric and print its summary",
    )
    run_cmd.add_argument(
        "--workload",
        choices=["torture", "nas:cg", "nas:ep", "nas:ft", "naming"],
        default="torture",
        help="which traffic shape to run: the Fig. 10 torture test, one "
        "of the paper's NAS kernel skeletons (Sec. 5.2), or the naming "
        "service's bind/resolve/unbind churn (Sec. 4.1)",
    )
    run_cmd.add_argument("--nodes", type=int, default=32)
    run_cmd.add_argument("--seed", type=int, default=1)
    run_cmd.add_argument(
        "--live", action="store_true",
        help="sharded multi-process execution: partition the nodes over "
        "worker processes (per-shard LiveKernels, struct-packed wire "
        "frames between them) instead of the single-process simulator",
    )
    run_cmd.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="worker-process count for --live (default 2; implies "
        "--live when given)",
    )
    run_cmd.add_argument(
        "--wire-version", type=int, choices=[1, 2], default=None,
        help="cross-shard frame format for --live: 1 = the flat v1 "
        "encoding, 2 = interned/varint runs with persistent per-channel "
        "state (the default)",
    )
    run_cmd.add_argument(
        "--ttb", type=float, default=None, help="heartbeat period override"
    )
    run_cmd.add_argument(
        "--tta", type=float, default=None, help="silence window override"
    )
    run_cmd.add_argument(
        "--no-dgc", action="store_true",
        help="run without the DGC (explicit termination, the paper's "
        "bandwidth baseline)",
    )
    run_cmd.add_argument(
        "--paper-scale", action="store_true",
        help="the paper's scale for the chosen workload: 6400 slaves / "
        "128 nodes (torture) or 256 workers / 128 nodes (NAS)",
    )
    run_cmd.add_argument(
        "--beat-slots", type=_beat_slots, default=None,
        help="heartbeat phase slots per TTB (int or 'auto')",
    )
    run_cmd.add_argument(
        "--aggregation",
        choices=["per-event", "per-entry", "exact", "relaxed"],
        default=None,
        help="delivery core: per-event baseline, per-entry batched "
        "pulse, exact-order site-pair aggregation (the default), or "
        "the relaxed per-(site pair, beat bucket) coalescing tier",
    )
    run_cmd.add_argument(
        "--per-event-beats", action="store_true",
        help="deprecated alias for --aggregation per-event (disable "
        "pulse batching: one kernel event per message and per "
        "heartbeat tick; the perf baseline)",
    )
    run_cmd.add_argument(
        "--per-entry-pulse", action="store_true",
        help="deprecated alias for --aggregation per-entry (disable "
        "the columnar pulse and site-pair DGC aggregation; the "
        "previous batched core, kept as the A/B baseline)",
    )
    run_cmd.add_argument(
        "--relaxed-flush", type=float, default=None, metavar="SECONDS",
        help="flush period of the relaxed tier's coalescing buckets "
        "(default: TTB/4; only meaningful with --aggregation relaxed)",
    )
    # NAS knobs.
    run_cmd.add_argument(
        "--ao-count", type=int, default=None, help="NAS workers"
    )
    run_cmd.add_argument(
        "--nas-barrier", action="store_true",
        help="synchronous NAS variant: every exchange expects a reply "
        "and each iteration barriers on the returned futures",
    )
    run_cmd.add_argument(
        "--iterations", type=int, default=None, help="NAS iterations"
    )
    run_cmd.add_argument(
        "--payload-bytes", type=int, default=None,
        help="NAS per-message payload (CG vectors / FT transpose blocks)",
    )
    run_cmd.add_argument(
        "--iter-time", type=float, default=None,
        help="NAS per-iteration compute time (seconds)",
    )
    # Torture knobs.
    run_cmd.add_argument("--slaves", type=int, default=320)
    run_cmd.add_argument("--duration", type=float, default=600.0)
    # Naming knobs.
    run_cmd.add_argument(
        "--registry-placement",
        choices=["home", "replicated", "hashed"],
        default="home",
        help="where authoritative registry shards live (naming service)",
    )
    run_cmd.add_argument(
        "--lease-ttb", type=int, default=0,
        help="lease TTL for cached bindings, in beats of the lease sweep "
        "(0 disables the lease cache — the static-home baseline)",
    )
    run_cmd.add_argument(
        "--registry-cache", type=int, default=256,
        help="per-node lease-cache capacity (entries)",
    )
    run_cmd.add_argument(
        "--clients", type=int, default=64,
        help="naming workload: lookup clients spread across the grid",
    )
    run_cmd.add_argument(
        "--services", type=int, default=24,
        help="naming workload: bound services",
    )
    run_cmd.add_argument(
        "--lookup-period", type=float, default=4.0,
        help="naming workload: mean seconds between client lookup bursts",
    )
    run_cmd.add_argument(
        "--lookup-burst", type=int, default=4,
        help="naming workload: lookups issued per client wake-up",
    )
    run_cmd.add_argument(
        "--churn-period", type=float, default=None,
        help="naming workload: mean seconds between unbind/rebind churn",
    )
    run_cmd.add_argument(
        "--coherence", choices=["eager", "beat"], default="eager",
        help="registry coherence: eager per-update fan-out (default) or "
        "beat-quantized batches flushed once per lease beat",
    )
    run_cmd.add_argument(
        "--names", type=int, default=None,
        help="naming workload: total bound names, aliased round-robin "
        "over the services (default: one per service)",
    )
    run_cmd.add_argument(
        "--zipf-s", type=float, default=0.0,
        help="naming workload: Zipf skew for lookup/churn name draws "
        "(0 = uniform)",
    )
    run_cmd.add_argument(
        "--churn-burst", type=int, default=1,
        help="naming workload: names unbound+rebound per binder wake",
    )

    analyze = subparsers.add_parser(
        "analyze",
        help="run the fabric-invariant static analyzer (repro.analysis) "
        "over the source tree; exits non-zero on findings",
    )
    analyze.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    analyze.add_argument(
        "--rule", action="append", default=None, metavar="RULE-id",
        help="run only this rule (repeatable; default: all rules)",
    )
    analyze.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="report format (default: human)",
    )
    analyze.add_argument(
        "--budget-seconds", type=float, default=None,
        help="fail (exit 2) if the pass exceeds this wall-clock budget",
    )
    analyze.add_argument(
        "--force-scope", action="store_true",
        help="treat every file as in every rule scope (fixture corpora "
        "and ad-hoc snippets)",
    )
    analyze.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids and what they enforce, then exit",
    )

    everything = subparsers.add_parser("all", help="all artifacts, scaled")
    _add_nas_args(everything)
    everything.add_argument("--slaves", type=int, default=160)
    everything.add_argument("--duration", type=float, default=600.0)
    everything.add_argument("--seed", type=int, default=1)

    args = parser.parse_args(argv)

    if args.command == "analyze":
        return _run_analyze(args)

    if args.command == "run":
        return _run_workload(args)

    if args.command in ("fig8", "fig9", "all"):
        comparisons = run_comparisons(
            kernels=tuple(args.kernels.split(",")),
            ao_count=args.ao_count,
            seeds=tuple(range(1, args.runs + 1)),
            node_count=args.nodes,
        )
        if args.command in ("fig8", "all"):
            print(fig8_table(comparisons))
            print()
        if args.command in ("fig9", "all"):
            print(fig9_table(comparisons))
            print()

    if args.command in ("fig10", "all"):
        slaves = args.slaves
        nodes = args.nodes
        if getattr(args, "paper_scale", False):
            from repro.harness.figures import (
                PAPER_NODE_COUNT,
                PAPER_SLAVE_COUNT,
            )

            slaves = PAPER_SLAVE_COUNT
            nodes = PAPER_NODE_COUNT
        results = run_fig10(
            slave_count=slaves,
            active_duration=args.duration,
            node_count=nodes,
            seed=args.seed,
            include_slow=not getattr(args, "skip_slow", False),
            beat_slots=getattr(args, "beat_slots", None),
            batched_beats=(
                False if getattr(args, "per_event_beats", False) else None
            ),
            aggregate_site_pairs=(
                False if getattr(args, "per_entry_pulse", False) else None
            ),
            aggregation=getattr(args, "aggregation", None),
        )
        print(fig10_report(results))

    return 0


def _run_analyze(args: argparse.Namespace) -> int:
    """The ``analyze`` subcommand: delegate to the analyzer CLI so the
    two entry points (``harness analyze`` and ``python -m
    repro.analysis``) can never drift apart."""
    from repro.analysis.__main__ import main as analysis_main

    argv: List[str] = list(args.paths)
    for rule in args.rule or ():
        argv.extend(["--rule", rule])
    argv.extend(["--format", args.format])
    if args.budget_seconds is not None:
        argv.extend(["--budget-seconds", str(args.budget_seconds)])
    if args.force_scope:
        argv.append("--force-scope")
    if args.list_rules:
        argv.append("--list-rules")
    return analysis_main(argv)


def _run_workload(args: argparse.Namespace) -> int:
    """The ``run`` subcommand: one workload, one summary."""
    from repro.core.config import NAS_CONFIG, TORTURE_FAST_CONFIG
    from repro.harness.report import render_table
    from repro.net.topology import uniform_topology

    batched = False if args.per_event_beats else None
    aggregated = False if args.per_entry_pulse else None
    aggregation = args.aggregation

    problem = _check_naming_knobs(args)
    if problem is not None:
        print(f"error: {problem}", file=sys.stderr)
        return 2

    if args.live or args.shards is not None:
        return _run_sharded(args)
    if args.wire_version is not None:
        print(
            "error: --wire-version only applies to --live (it selects "
            "the cross-shard frame format; a single-process run has no "
            "wire)",
            file=sys.stderr,
        )
        return 2

    def config_for(base):
        if args.no_dgc:
            return None
        overrides = {}
        if args.ttb is not None:
            overrides["ttb"] = args.ttb
        if args.tta is not None:
            overrides["tta"] = args.tta
        if args.relaxed_flush is not None:
            overrides["relaxed_flush_s"] = args.relaxed_flush
        return base.with_overrides(**overrides) if overrides else base

    started = time.perf_counter()
    if args.workload == "torture":
        from repro.harness.figures import PAPER_NODE_COUNT, PAPER_SLAVE_COUNT
        from repro.workloads.torture import run_torture

        slaves = PAPER_SLAVE_COUNT if args.paper_scale else args.slaves
        nodes = PAPER_NODE_COUNT if args.paper_scale else args.nodes
        result = run_torture(
            dgc=config_for(TORTURE_FAST_CONFIG),
            slave_count=slaves,
            active_duration=args.duration,
            topology=uniform_topology(nodes),
            seed=args.seed,
            beat_slots=args.beat_slots,
            batched_beats=batched,
            aggregate_site_pairs=aggregated,
            aggregation=aggregation,
            keep_world=True,
        )
        rows = [
            ["activities", result.ao_count],
            ["last collected (s)",
             f"{result.last_collected_s:.1f}"
             if result.last_collected_s is not None else "-"],
            ["total MB", f"{result.total_bandwidth_mb:.2f}"],
            ["app MB", f"{result.app_bandwidth_mb:.2f}"],
            ["DGC MB", f"{result.dgc_bandwidth_mb:.2f}"],
            ["collected (acyclic/cyclic)",
             f"{result.collected_acyclic}/{result.collected_cyclic}"],
            ["kernel events fired", result.events_fired],
            ["sim time (s)", f"{result.sim_time_s:.1f}"],
        ]
        title = f"torture — {slaves} slaves on {nodes} nodes"
    elif args.workload == "naming":
        from repro.core.config import RegistryConfig
        from repro.workloads.naming import run_naming

        registry = RegistryConfig(
            placement=args.registry_placement,
            lease_ttb=args.lease_ttb,
            cache_size=args.registry_cache,
            coherence=args.coherence,
        )
        if args.registry_placement == "replicated" and args.lease_ttb > 0:
            print(
                "note: --lease-ttb has no effect with "
                "--registry-placement replicated (replicas are coherent "
                "copies; leases apply to home/hashed placement)",
                file=sys.stderr,
            )
        if (
            args.coherence == "beat"
            and args.registry_placement != "replicated"
            and args.lease_ttb == 0
        ):
            print(
                "note: --coherence beat has nothing to batch without "
                "replicas (--registry-placement replicated) or leases "
                "(--lease-ttb > 0): no coherence traffic exists",
                file=sys.stderr,
            )
        result = run_naming(
            dgc=config_for(NAS_CONFIG),
            registry=registry,
            client_count=args.clients,
            service_count=args.services,
            name_count=args.names,
            zipf_s=args.zipf_s,
            churn_burst=args.churn_burst,
            duration=args.duration,
            lookup_period=args.lookup_period,
            lookup_burst=args.lookup_burst,
            churn_period=args.churn_period,
            topology=uniform_topology(args.nodes),
            seed=args.seed,
            beat_slots=args.beat_slots,
            batched_beats=batched,
            aggregate_site_pairs=aggregated,
            aggregation=aggregation,
            keep_world=True,
        )
        rows = [
            ["clients / services", f"{result.client_count}/{result.service_count}"],
            ["resolves (hit/miss)",
             f"{result.resolves_completed} ({result.hits}/{result.misses})"],
            ["served (authority/replica/cache/remote/local-miss)",
             f"{result.authority_hits}/{result.replica_hits}/"
             f"{result.cache_hits}/{result.remote_lookups}/"
             f"{result.local_misses}"],
            ["mean resolve latency (ms)",
             f"{result.mean_resolve_latency_s * 1e3:.3f}"],
            ["invalidations / renews",
             f"{result.invalidations_sent}/{result.renew_messages_sent}"],
            ["coherence staged/coalesced/messages",
             f"{result.coherence_staged}/{result.coherence_coalesced}/"
             f"{result.coherence_messages_sent}"],
            ["registry MB", f"{result.registry_bandwidth_mb:.3f}"],
            ["total MB", f"{result.total_bandwidth_mb:.2f}"],
            ["DGC MB", f"{result.dgc_bandwidth_mb:.2f}"],
            ["collected (acyclic/cyclic)",
             f"{result.collected_acyclic}/{result.collected_cyclic}"],
            ["dead letters", result.dead_letters],
            ["kernel events fired", result.events_fired],
            ["sim time (s)", f"{result.sim_time_s:.1f}"],
        ]
        cached = " + leases" if registry.caching else ""
        title = (
            f"naming ({registry.placement}{cached}) — {args.clients} "
            f"clients, {args.services} services on {args.nodes} nodes"
        )
    else:
        from repro.harness.figures import PAPER_NODE_COUNT
        from repro.workloads.nas import PAPER_AO_COUNT, kernel_spec, run_nas_kernel

        kernel = args.workload.split(":", 1)[1]
        spec = kernel_spec(
            kernel,
            ao_count=PAPER_AO_COUNT if args.paper_scale else args.ao_count,
            iterations=args.iterations,
            iter_time_s=args.iter_time,
            payload_bytes=args.payload_bytes,
            reply_barrier=True if args.nas_barrier else None,
        )
        nodes = PAPER_NODE_COUNT if args.paper_scale else args.nodes
        result = run_nas_kernel(
            spec,
            dgc=config_for(NAS_CONFIG),
            topology=uniform_topology(nodes),
            seed=args.seed,
            beat_slots=args.beat_slots,
            batched_beats=batched,
            aggregate_site_pairs=aggregated,
            aggregation=aggregation,
            keep_world=True,
        )
        rows = [
            ["workers", result.ao_count],
            ["app time (s)", f"{result.app_time_s:.1f}"],
            ["DGC time (s)", f"{result.dgc_time_s:.1f}"],
            ["total MB", f"{result.bandwidth_mb:.2f}"],
            ["app MB", f"{result.app_bandwidth_mb:.2f}"],
            ["DGC MB", f"{result.dgc_bandwidth_mb:.2f}"],
            ["collected (acyclic/cyclic)",
             f"{result.collected_acyclic}/{result.collected_cyclic}"],
            ["dead letters", result.dead_letters],
            ["kernel events fired", result.events_fired],
            ["sim time (s)", f"{result.sim_time_s:.1f}"],
        ]
        variant = " (reply barrier)" if spec.reply_barrier else ""
        title = (
            f"NAS {spec.name}{variant} — {spec.ao_count} workers "
            f"on {nodes} nodes"
        )
    wall = time.perf_counter() - started
    rows.append(["wall time (s)", f"{wall:.2f}"])
    print(render_table(["metric", "value"], rows, title=title))
    accountant = getattr(result.world, "accountant", None) if result.world else None
    if accountant is not None:
        breakdown = accountant.describe()
        if breakdown:
            print("\nper-kind traffic:")
            print(breakdown)
    return 0


def _check_naming_knobs(args: argparse.Namespace) -> "str | None":
    """Validate the naming-only knobs; returns a rejection reason or
    ``None``.  Shared by the single-process and sharded run paths."""
    if args.workload != "naming":
        for flag, is_set in (
            ("--names", args.names is not None),
            ("--zipf-s", args.zipf_s != 0.0),
            ("--churn-burst", args.churn_burst != 1),
            ("--coherence beat", args.coherence == "beat"),
        ):
            if is_set:
                return (
                    f"{flag} only applies to --workload naming "
                    f"(got {args.workload!r})"
                )
        return None
    if args.names is not None and args.names < args.services:
        return (
            f"--names ({args.names}) must be >= --services "
            f"({args.services}): every service needs a first name"
        )
    if args.zipf_s < 0.0:
        return f"--zipf-s must be >= 0, got {args.zipf_s}"
    if args.churn_burst < 1:
        return f"--churn-burst must be >= 1, got {args.churn_burst}"
    return None


def _run_sharded(args: argparse.Namespace) -> int:
    """The ``run --live [--shards N]`` path: the multi-process world."""
    from repro.core.config import NAS_CONFIG, TORTURE_FAST_CONFIG
    from repro.errors import ConfigurationError
    from repro.harness.report import render_table
    from repro.net.topology import clustered_topology
    from repro.shard import ShardedWorld

    def reject(reason: str) -> int:
        print(f"error: {reason}", file=sys.stderr)
        return 2

    shards = 2 if args.shards is None else args.shards
    if shards < 1:
        return reject(f"--shards must be positive, got {shards}")
    if args.no_dgc:
        return reject(
            "--live is incompatible with --no-dgc: collection drives the "
            "sharded run protocol's stop condition"
        )
    if args.per_event_beats or args.aggregation == "per-event":
        return reject(
            "--live requires the batched pulse core: drop "
            "--per-event-beats / --aggregation per-event (the per-event "
            "envelope path cannot cross a shard boundary)"
        )
    if args.nas_barrier:
        return reject(
            "--live is incompatible with --nas-barrier: the reply-barrier "
            "variant's per-iteration future barrier is a single-process "
            "protocol (see repro.shard.workloads.build_nas)"
        )

    if args.workload == "torture":
        base = TORTURE_FAST_CONFIG
        params = dict(
            slave_count=args.slaves, active_duration=args.duration,
        )
        workload = "torture"
    elif args.workload == "naming":
        base = NAS_CONFIG
        params = dict(
            client_count=args.clients,
            service_count=args.services,
            name_count=args.names,
            zipf_s=args.zipf_s,
            churn_burst=args.churn_burst,
            duration=args.duration,
            lookup_period=args.lookup_period,
            lookup_burst=args.lookup_burst,
            churn_period=args.churn_period,
        )
        workload = "naming"
    else:
        base = NAS_CONFIG
        params = dict(
            kernel=args.workload.split(":", 1)[1],
            ao_count=args.ao_count,
            iterations=args.iterations,
            iter_time_s=args.iter_time,
            payload_bytes=args.payload_bytes,
        )
        workload = "nas"

    overrides = {}
    if args.ttb is not None:
        overrides["ttb"] = args.ttb
    if args.tta is not None:
        overrides["tta"] = args.tta
    if args.relaxed_flush is not None:
        overrides["relaxed_flush_s"] = args.relaxed_flush
    if args.beat_slots is not None:
        overrides["beat_slots"] = args.beat_slots
    if args.aggregation is not None:
        overrides["aggregation"] = args.aggregation
    elif args.per_entry_pulse:
        overrides["aggregate_site_pairs"] = False
    dgc = base.with_overrides(**overrides) if overrides else base

    registry = None
    if workload == "naming":
        from repro.core.config import RegistryConfig

        registry = RegistryConfig(
            placement=args.registry_placement,
            lease_ttb=args.lease_ttb,
            cache_size=args.registry_cache,
            coherence=args.coherence,
        )

    topology = clustered_topology(args.nodes, site_count=shards)
    try:
        sharded = ShardedWorld(
            topology, shards, workload=workload, params=params,
            dgc=dgc, registry=registry, seed=args.seed,
            **({} if args.wire_version is None
               else dict(wire_version=args.wire_version)),
        )
        result = sharded.run()
    except ConfigurationError as exc:
        return reject(str(exc))

    rows = [
        ["shards x nodes", f"{shards} x {args.nodes}"],
        ["plan lookahead (ms)",
         "-" if sharded.plan.lookahead == float("inf")
         else f"{sharded.plan.lookahead * 1e3:.1f}"],
        ["activities created", result.created],
        ["collected (acyclic/cyclic)",
         f"{result.collected_acyclic}/{result.collected_cyclic}"],
        ["dead letters", result.dead_letters],
        ["barrier rounds", result.rounds],
        ["wire version", f"v{result.wire_version}"],
        ["cross-shard frames", result.frame_count],
        ["frame KB", f"{result.frame_bytes / 1e3:.1f}"],
        ["frame bytes/entry",
         f"{result.frame_bytes / result.frame_entries:.1f}"
         if result.frame_entries else "-"],
        ["frame digest", result.frame_digest[:16]],
        ["total MB", f"{result.total_bytes / 1e6:.2f}"],
        ["kernel events fired",
         f"{result.events_fired} "
         f"({result.events_workload} workload + "
         f"{result.events_coordination} coordination)"],
        ["sim time (s)", f"{result.sim_time_s:.1f}"],
        ["wall time (s)", f"{result.wall_s:.2f}"],
        ["events/s", f"{result.events_fired / max(result.wall_s, 1e-9):,.0f}"],
    ]
    title = f"{args.workload} — sharded live world ({shards} processes)"
    print(render_table(["metric", "value"], rows, title=title))
    return 0


if __name__ == "__main__":
    sys.exit(main())
