"""Command-line entry point: regenerate the paper's tables and figures.

Examples::

    python -m repro.harness fig8
    python -m repro.harness fig9 --ao-count 32 --runs 1
    python -m repro.harness fig10 --slaves 160
    python -m repro.harness all
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.harness.figures import fig10_report, run_fig10
from repro.harness.tables import fig8_table, fig9_table, run_comparisons


def _add_nas_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--ao-count", type=int, default=None,
        help="workers per kernel (default: the scaled preset, 64; "
        "paper scale is 256)",
    )
    parser.add_argument(
        "--runs", type=int, default=3, help="seeds per configuration"
    )
    parser.add_argument(
        "--nodes", type=int, default=32, help="nodes in the topology"
    )
    parser.add_argument(
        "--kernels", default="CG,EP,FT", help="comma-separated kernel list"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.harness")
    subparsers = parser.add_subparsers(dest="command", required=True)

    fig8 = subparsers.add_parser("fig8", help="bandwidth-overhead table")
    _add_nas_args(fig8)
    fig9 = subparsers.add_parser("fig9", help="time-overhead table")
    _add_nas_args(fig9)

    fig10 = subparsers.add_parser("fig10", help="torture-test evolution")
    fig10.add_argument("--slaves", type=int, default=320)
    fig10.add_argument("--duration", type=float, default=600.0)
    fig10.add_argument("--nodes", type=int, default=32)
    fig10.add_argument("--seed", type=int, default=1)
    fig10.add_argument(
        "--skip-slow", action="store_true",
        help="skip the TTB=300 run (it simulates ~5 hours)",
    )
    fig10.add_argument(
        "--paper-scale", action="store_true",
        help="the paper's full Fig. 10 scale: 6400 slaves on 128 nodes "
        "(overrides --slaves/--nodes; see PERFORMANCE.md)",
    )
    fig10.add_argument(
        "--beat-slots", type=int, default=None,
        help="quantize heartbeat jitter onto N phase slots per TTB so "
        "beats coalesce into wheel buckets (recommended at paper "
        "scale: 16)",
    )
    fig10.add_argument(
        "--per-event-beats", action="store_true",
        help="disable the batched beat scheduler (one kernel event per "
        "tick and per DGC message; the perf baseline)",
    )

    everything = subparsers.add_parser("all", help="all artifacts, scaled")
    _add_nas_args(everything)
    everything.add_argument("--slaves", type=int, default=160)
    everything.add_argument("--duration", type=float, default=600.0)
    everything.add_argument("--seed", type=int, default=1)

    args = parser.parse_args(argv)

    if args.command in ("fig8", "fig9", "all"):
        comparisons = run_comparisons(
            kernels=tuple(args.kernels.split(",")),
            ao_count=args.ao_count,
            seeds=tuple(range(1, args.runs + 1)),
            node_count=args.nodes,
        )
        if args.command in ("fig8", "all"):
            print(fig8_table(comparisons))
            print()
        if args.command in ("fig9", "all"):
            print(fig9_table(comparisons))
            print()

    if args.command in ("fig10", "all"):
        slaves = args.slaves
        nodes = args.nodes
        if getattr(args, "paper_scale", False):
            from repro.harness.figures import (
                PAPER_NODE_COUNT,
                PAPER_SLAVE_COUNT,
            )

            slaves = PAPER_SLAVE_COUNT
            nodes = PAPER_NODE_COUNT
        results = run_fig10(
            slave_count=slaves,
            active_duration=args.duration,
            node_count=nodes,
            seed=args.seed,
            include_slow=not getattr(args, "skip_slow", False),
            beat_slots=getattr(args, "beat_slots", None),
            batched_beats=(
                False if getattr(args, "per_event_beats", False) else None
            ),
        )
        print(fig10_report(results))

    return 0


if __name__ == "__main__":
    sys.exit(main())
