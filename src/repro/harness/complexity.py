"""Sec. 4.3 complexity claims, measured.

The paper derives:

* detection time ``O(h * TTB)`` — ``h`` bounds the spanning-tree /
  reverse-spanning-tree heights over which clocks (messages) and
  consensus candidates (responses) propagate;
* full collection ``O(h * TTB) + TTA`` — the doomed-state wait.

``sweep_ring_heights`` collects rings of growing size (a ring of n has
``h = n - 1``) and reports, per size, the consensus-detection delay and
the full-collection delay after the ring became garbage.  The benchmark
asserts the paper's shape: detection grows roughly linearly with h and
stays within a small constant times ``h * TTB + TTA``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core import events
from repro.core.config import DgcConfig
from repro.errors import SimulationError
from repro.net.topology import uniform_topology
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_ring
from repro.world import World


@dataclass
class HeightPoint:
    """Measured timings for one ring size."""

    ring_size: int
    height: int
    ttb: float
    tta: float
    detection_s: float
    collection_s: float

    @property
    def detection_beats(self) -> float:
        """Detection delay in TTB units (the paper's natural unit)."""
        return self.detection_s / self.ttb


def measure_ring(
    ring_size: int,
    *,
    config: Optional[DgcConfig] = None,
    seed: int = 1,
    node_count: int = 4,
) -> HeightPoint:
    """Collect one ring; measure detection and collection delays."""
    dgc = config if config is not None else DgcConfig(ttb=1.0, tta=3.0)
    world = World(
        uniform_topology(node_count), dgc=dgc, seed=seed, safety_checks=True
    )
    driver = world.create_driver()
    ring = build_ring(world, driver, ring_size)
    world.run_for(2.0)
    garbage_at = world.kernel.now
    release_all(driver, ring)
    if not world.run_until_collected(1_000 * dgc.tta):
        raise SimulationError(f"ring of {ring_size} not collected")
    consensus = world.tracer.first(events.DGC_CONSENSUS)
    if consensus is None:
        raise SimulationError("no consensus event recorded")
    last_collected = max(world.stats.collected_by_id.values())
    return HeightPoint(
        ring_size=ring_size,
        height=ring_size - 1,
        ttb=dgc.ttb,
        tta=dgc.tta,
        detection_s=consensus.time - garbage_at,
        collection_s=last_collected - garbage_at,
    )


def sweep_ring_heights(
    sizes: Sequence[int] = (2, 4, 8, 16),
    *,
    config: Optional[DgcConfig] = None,
    seed: int = 1,
) -> List[HeightPoint]:
    """Measure detection/collection over growing ring heights."""
    return [
        measure_ring(size, config=config, seed=seed) for size in sizes
    ]


def detection_bound_factor(point: HeightPoint) -> float:
    """Measured detection over the paper's ``h * TTB`` bound unit.

    The clock of the eventual owner needs up to ``h`` beats to reach
    every member, plus one beat each for the response/consensus waves; a
    small constant factor is therefore expected, not exact equality.
    """
    bound = max(point.height, 1) * point.ttb
    return point.detection_s / bound


def collection_overhead(point: HeightPoint) -> float:
    """Measured collection minus detection; the paper predicts ~TTA plus
    the verdict-propagation beats."""
    return point.collection_s - point.detection_s
