"""Benchmark harness regenerating every table and figure of the paper.

* :mod:`repro.harness.tables` — Fig. 8 (bandwidth overhead) and Fig. 9
  (time overhead) for the NAS kernels,
* :mod:`repro.harness.figures` — Fig. 10 (torture-test evolution),
* :mod:`repro.harness.report` — plain-text tables and ASCII series plots,
* :mod:`repro.harness.experiment` — shared multi-seed running/aggregation.

Command line::

    python -m repro.harness fig8 [--scale N] [--runs K]
    python -m repro.harness fig9 [--scale N] [--runs K]
    python -m repro.harness fig10 [--slaves N]
    python -m repro.harness all
"""

from repro.harness.experiment import Aggregate, aggregate, run_seeds
from repro.harness.metrics import (
    CollectionReport,
    LatencySummary,
    collection_report,
)
from repro.harness.report import render_series, render_table

__all__ = [
    "Aggregate",
    "aggregate",
    "run_seeds",
    "CollectionReport",
    "LatencySummary",
    "collection_report",
    "render_series",
    "render_table",
]
