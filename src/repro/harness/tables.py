"""Fig. 8 (bandwidth overhead) and Fig. 9 (time overhead) regeneration.

Paper protocol (Sec. 5.2): NAS CG/EP/FT, class C, 256 activities
round-robin on 128 nodes, TTB=30s, TTA=61s, average and standard
deviation over 3 runs.  We run the communication skeletons (scaled by
default; pass ``ao_count=256`` and a 128-node topology for paper scale)
with and without the DGC and report the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.config import DgcConfig, NAS_CONFIG
from repro.harness.experiment import Aggregate, aggregate, overhead_percent
from repro.harness.report import render_table
from repro.net.topology import Topology, uniform_topology
from repro.workloads.nas import KERNELS, NasKernelSpec, run_nas_kernel


@dataclass
class KernelComparison:
    """One kernel's with/without-DGC aggregates (one row of each table)."""

    kernel: str
    nodgc_bandwidth: Aggregate
    dgc_bandwidth: Aggregate
    bandwidth_overhead_pct: float
    nodgc_time: Aggregate
    dgc_time_total: Aggregate
    time_overhead_pct: float
    dgc_collect_time: Aggregate


def compare_kernel(
    spec: NasKernelSpec,
    *,
    dgc: DgcConfig = NAS_CONFIG,
    seeds: Sequence[int] = (1, 2, 3),
    topology_factory=lambda: uniform_topology(32),
) -> KernelComparison:
    """Run one kernel under both regimes over all seeds."""
    with_runs = [
        run_nas_kernel(spec, dgc=dgc, seed=seed, topology=topology_factory())
        for seed in seeds
    ]
    without_runs = [
        run_nas_kernel(spec, dgc=None, seed=seed, topology=topology_factory())
        for seed in seeds
    ]
    with_bw = aggregate([run.bandwidth_mb for run in with_runs])
    without_bw = aggregate([run.bandwidth_mb for run in without_runs])
    with_time = aggregate([run.app_time_s for run in with_runs])
    without_time = aggregate([run.app_time_s for run in without_runs])
    collect_time = aggregate([run.dgc_time_s for run in with_runs])
    return KernelComparison(
        kernel=spec.name,
        nodgc_bandwidth=without_bw,
        dgc_bandwidth=with_bw,
        bandwidth_overhead_pct=overhead_percent(with_bw.mean, without_bw.mean),
        nodgc_time=without_time,
        dgc_time_total=with_time,
        time_overhead_pct=overhead_percent(with_time.mean, without_time.mean),
        dgc_collect_time=collect_time,
    )


def run_comparisons(
    *,
    kernels: Sequence[str] = ("CG", "EP", "FT"),
    ao_count: Optional[int] = None,
    dgc: DgcConfig = NAS_CONFIG,
    seeds: Sequence[int] = (1, 2, 3),
    node_count: int = 32,
) -> List[KernelComparison]:
    """Run every kernel; shared by the fig8 and fig9 renderers."""
    results = []
    for name in kernels:
        spec = KERNELS[name]
        if ao_count is not None:
            spec = spec.scaled(ao_count)
        results.append(
            compare_kernel(
                spec,
                dgc=dgc,
                seeds=seeds,
                topology_factory=lambda: uniform_topology(node_count),
            )
        )
    return results


def fig8_table(comparisons: Sequence[KernelComparison]) -> str:
    """Fig. 8: bandwidth overhead."""
    rows = [
        [
            comparison.kernel,
            f"{comparison.nodgc_bandwidth.mean:.2f} MB",
            f"{comparison.nodgc_bandwidth.std:.2f} MB",
            f"{comparison.dgc_bandwidth.mean:.2f} MB",
            f"{comparison.dgc_bandwidth.std:.2f} MB",
            f"{comparison.bandwidth_overhead_pct:.2f} %",
        ]
        for comparison in comparisons
    ]
    return render_table(
        [
            "Kernel",
            "No DGC avg",
            "No DGC std",
            "DGC avg",
            "DGC std",
            "Overhead",
        ],
        rows,
        title="Fig. 8 — Bandwidth overhead",
    )


def fig9_table(comparisons: Sequence[KernelComparison]) -> str:
    """Fig. 9: time overhead and DGC collection time."""
    rows = [
        [
            comparison.kernel,
            f"{comparison.nodgc_time.mean:.2f} s",
            f"{comparison.nodgc_time.std:.2f} s",
            f"{comparison.dgc_time_total.mean:.2f} s",
            f"{comparison.dgc_time_total.std:.2f} s",
            f"{comparison.time_overhead_pct:.2f} %",
            f"{comparison.dgc_collect_time.mean:.2f} s",
            f"{comparison.dgc_collect_time.std:.2f} s",
        ]
        for comparison in comparisons
    ]
    return render_table(
        [
            "Kernel",
            "No DGC avg",
            "No DGC std",
            "DGC avg",
            "DGC std",
            "Overhead",
            "DGC time avg",
            "DGC time std",
        ],
        rows,
        title="Fig. 9 — Time overhead",
    )
