"""Fig. 10 regeneration: torture-test evolution and totals.

Paper protocol (Sec. 5.3): 6401 activities (a master plus 50 slaves on
each of 128 machines) exchange references for ten minutes and go idle;
the DGC must then collapse the tangle.  Two configurations:
(a) TTB=30s / TTA=150s and (b) TTB=300s / TTA=1500s, plus a no-DGC
reference run for the bandwidth comparison (paper: 1699 MB and 2063 MB
vs 228 MB without DGC).

The beat-wheel refactor makes the full 6401-AO run affordable:
``run_fig10(slave_count=PAPER_SLAVE_COUNT, node_count=PAPER_NODE_COUNT,
beat_slots=16)`` schedules the 6401 heartbeats through O(beat_slots)
kernel events per beat period instead of O(activities);
``benchmarks/test_perf_fig10.py`` drives the paper-scale A/B against
per-event scheduling and records the trajectory in ``BENCH_fig10.json``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.core.config import (
    DgcConfig,
    TORTURE_FAST_CONFIG,
    TORTURE_SLOW_CONFIG,
)
from repro.harness.report import render_series, render_table
from repro.net.topology import uniform_topology
from repro.workloads.torture import TortureResult, run_torture

#: The paper's full Fig. 10 scale: 50 slaves on each of 128 machines,
#: plus the master — 6401 active objects.
PAPER_SLAVE_COUNT = 6400
PAPER_NODE_COUNT = 128


@dataclass
class Fig10Results:
    """The three runs Fig. 10 and its commentary need.

    ``slow``/``no_dgc`` repeat ``fast`` when their runs were skipped
    (perf-benchmark mode only needs the fast configuration).
    """

    fast: TortureResult
    slow: TortureResult
    no_dgc: TortureResult


def run_fig10(
    *,
    slave_count: int = 320,
    active_duration: float = 600.0,
    node_count: int = 32,
    seed: int = 1,
    fast: DgcConfig = TORTURE_FAST_CONFIG,
    slow: DgcConfig = TORTURE_SLOW_CONFIG,
    include_slow: bool = True,
    include_no_dgc: bool = True,
    beat_slots: Optional[Union[int, str]] = None,
    batched_beats: Optional[bool] = None,
    aggregate_site_pairs: Optional[bool] = None,
    aggregation: Optional[str] = None,
    collect_timeout: float = 36_000.0,
    keep_world: bool = False,
) -> Fig10Results:
    """Run the torture test under both configurations plus no-DGC.

    ``beat_slots``/``batched_beats``/``aggregate_site_pairs``/
    ``aggregation``/``keep_world`` are forwarded to
    :func:`repro.workloads.torture.run_torture` (heartbeat, pulse
    batching and delivery-core knobs); skipped runs reuse the fast
    result so the report shape is stable.
    """

    def run(dgc: Optional[DgcConfig], sample: float) -> TortureResult:
        return run_torture(
            dgc=dgc,
            slave_count=slave_count,
            active_duration=active_duration,
            topology=uniform_topology(node_count),
            seed=seed,
            sample_period=sample,
            collect_timeout=collect_timeout,
            beat_slots=beat_slots,
            batched_beats=batched_beats,
            aggregate_site_pairs=aggregate_site_pairs,
            aggregation=aggregation,
            keep_world=keep_world,
        )

    fast_result = run(fast, sample=10.0)
    slow_result = (
        run(slow, sample=100.0) if include_slow else fast_result
    )
    no_dgc_result = run(None, sample=10.0) if include_no_dgc else fast_result
    return Fig10Results(fast_result, slow_result, no_dgc_result)


def fig10_report(results: Fig10Results) -> str:
    """Render both evolution plots and the bandwidth totals."""
    parts = [
        render_series(
            results.fast.series,
            title=(
                f"Fig. 10(a) — TTB={results.fast.ttb:.0f}s "
                f"TTA={results.fast.tta:.0f}s "
                f"({results.fast.ao_count} activities)"
            ),
        ),
        "",
        render_series(
            results.slow.series,
            title=(
                f"Fig. 10(b) — TTB={results.slow.ttb:.0f}s "
                f"TTA={results.slow.tta:.0f}s "
                f"({results.slow.ao_count} activities)"
            ),
        ),
        "",
        render_table(
            ["Run", "Total MB", "App MB", "DGC MB", "Last collected (s)"],
            [
                [
                    f"TTB={results.fast.ttb:.0f}",
                    f"{results.fast.total_bandwidth_mb:.2f}",
                    f"{results.fast.app_bandwidth_mb:.2f}",
                    f"{results.fast.dgc_bandwidth_mb:.2f}",
                    f"{results.fast.last_collected_s:.0f}",
                ],
                [
                    f"TTB={results.slow.ttb:.0f}",
                    f"{results.slow.total_bandwidth_mb:.2f}",
                    f"{results.slow.app_bandwidth_mb:.2f}",
                    f"{results.slow.dgc_bandwidth_mb:.2f}",
                    f"{results.slow.last_collected_s:.0f}",
                ],
                [
                    "No DGC",
                    f"{results.no_dgc.total_bandwidth_mb:.2f}",
                    f"{results.no_dgc.app_bandwidth_mb:.2f}",
                    f"{results.no_dgc.dgc_bandwidth_mb:.2f}",
                    "-",
                ],
            ],
            title="Fig. 10 — Total bandwidth",
        ),
    ]
    return "\n".join(parts)
