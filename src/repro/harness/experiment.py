"""Shared experiment plumbing: multi-seed runs and aggregation.

The paper reports "the average and standard deviation ... over 3 runs";
we re-run with distinct seeds and aggregate the same way.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable, List, Sequence, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class Aggregate:
    """Mean and (population) standard deviation of one metric."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:
        return f"{self.mean:.2f} ± {self.std:.2f}"


def aggregate(values: Sequence[float]) -> Aggregate:
    """Aggregate a series the way the paper's tables do."""
    if not values:
        return Aggregate(float("nan"), float("nan"), 0)
    mean = sum(values) / len(values)
    variance = sum((value - mean) ** 2 for value in values) / len(values)
    return Aggregate(mean, math.sqrt(variance), len(values))


def run_seeds(
    run_one: Callable[[int], T],
    seeds: Iterable[int],
) -> List[T]:
    """Run ``run_one(seed)`` for every seed, returning all results."""
    return [run_one(seed) for seed in seeds]


def overhead_percent(with_value: float, without_value: float) -> float:
    """The paper's overhead metric ``(T_dgc - T_nodgc) / T_nodgc`` in %."""
    if without_value == 0:
        return float("inf")
    return (with_value - without_value) / without_value * 100.0
