"""Ablation runners for the design decisions DESIGN.md Sec. 6 lists.

* ``sweep_ttb_tta`` — the Sec. 3.1 trade-off: larger TTB lowers DGC
  bandwidth but delays reclamation (both measured on the same workload);
* ``compare_consensus_propagation`` — the Sec. 4.3 optimisation:
  collection time of a compound cycle with and without verdict
  propagation;
* ``compare_bfs_election`` — the Sec. 7.2 extension: detection delay on
  chord-rich graphs with and without breadth-first parent election.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core import events
from repro.core.config import DgcConfig
from repro.errors import SimulationError
from repro.net.topology import uniform_topology
from repro.workloads.app import link, release_all
from repro.workloads.synthetic import build_compound_cycles, build_ring
from repro.world import World


@dataclass
class TtbPoint:
    """One TTB/TTA setting measured on the ring workload."""

    ttb: float
    tta: float
    dgc_bandwidth_mb: float
    reclamation_s: float


def sweep_ttb_tta(
    ttb_values: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    *,
    ring_size: int = 6,
    tta_factor: float = 3.0,
    seed: int = 1,
) -> List[TtbPoint]:
    """Collect one ring per TTB setting; measure cost vs latency.

    ``TTA = tta_factor * TTB`` keeps the safety margin proportional, as
    the paper's own configurations do (30/61, 30/150, 300/1500).
    """
    points = []
    for ttb in ttb_values:
        config = DgcConfig(ttb=ttb, tta=tta_factor * ttb)
        world = World(
            uniform_topology(4), dgc=config, seed=seed, safety_checks=True
        )
        driver = world.create_driver()
        ring = build_ring(world, driver, ring_size)
        world.run_for(2.0)
        garbage_at = world.kernel.now
        release_all(driver, ring)
        if not world.run_until_collected(1_000 * config.tta):
            raise SimulationError(f"ring not collected at ttb={ttb}")
        last = max(world.stats.collected_by_id.values())
        points.append(
            TtbPoint(
                ttb=ttb,
                tta=config.tta,
                dgc_bandwidth_mb=world.accountant.dgc_bytes / 1e6,
                reclamation_s=last - garbage_at,
            )
        )
    return points


@dataclass
class AblationComparison:
    """Collection timings for a feature on/off pair."""

    enabled_s: float
    disabled_s: float
    enabled_consensus_rounds: int
    disabled_consensus_rounds: int

    @property
    def speedup(self) -> float:
        return self.disabled_s / self.enabled_s if self.enabled_s else 0.0


def _collect_compound(config: DgcConfig, seed: int, size: int) -> Tuple[float, int]:
    world = World(
        uniform_topology(4), dgc=config, seed=seed, safety_checks=True
    )
    driver = world.create_driver()
    ring_a, ring_b = build_compound_cycles(world, driver, size, size)
    world.run_for(2.0)
    start = world.kernel.now
    release_all(driver, ring_a + ring_b)
    if not world.run_until_collected(2_000 * config.tta):
        raise SimulationError("compound cycle not collected")
    last = max(world.stats.collected_by_id.values())
    return last - start, world.tracer.count(events.DGC_CONSENSUS)


def compare_consensus_propagation(
    *,
    cycle_size: int = 4,
    ttb: float = 1.0,
    tta: float = 3.0,
    seed: int = 3,
) -> AblationComparison:
    """The Sec. 4.3 optimisation, on vs off, on a compound cycle."""
    base = DgcConfig(ttb=ttb, tta=tta)
    with_time, with_rounds = _collect_compound(base, seed, cycle_size)
    without_time, without_rounds = _collect_compound(
        base.with_overrides(consensus_propagation=False), seed, cycle_size
    )
    return AblationComparison(
        enabled_s=with_time,
        disabled_s=without_time,
        enabled_consensus_rounds=with_rounds,
        disabled_consensus_rounds=without_rounds,
    )


def _detect_chorded_ring(config: DgcConfig, seed: int, size: int) -> float:
    world = World(
        uniform_topology(4), dgc=config, seed=seed, safety_checks=True
    )
    driver = world.create_driver()
    ring = build_ring(world, driver, size)
    # Chords halve the reachable depth for a BFS-elected tree.
    for index in range(0, size, 2):
        link(driver, ring[index], ring[(index + size // 2) % size],
             key="chord")
    world.run_for(2.0)
    start = world.kernel.now
    release_all(driver, ring)
    if not world.run_until_collected(2_000 * config.tta):
        raise SimulationError("chorded ring not collected")
    consensus = world.tracer.first(events.DGC_CONSENSUS)
    return consensus.time - start


def compare_bfs_election(
    *,
    ring_size: int = 12,
    ttb: float = 1.0,
    tta: float = 3.0,
    seed: int = 2,
) -> Tuple[float, float]:
    """Detection delay (seconds) with and without BFS parent election."""
    base = DgcConfig(ttb=ttb, tta=tta)
    with_bfs = _detect_chorded_ring(
        base.with_overrides(bfs_parent_election=True), seed, ring_size
    )
    without_bfs = _detect_chorded_ring(base, seed, ring_size)
    return with_bfs, without_bfs
