"""Plain-text rendering of tables and time series.

The paper's artifacts are a pair of tables (Figs. 8 and 9) and two
idle/collected evolution plots (Fig. 10); these helpers render both to
monospace text, which is what the benchmark harness prints and what
EXPERIMENTS.md embeds.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str = "",
) -> str:
    """Render an aligned monospace table."""
    columns = len(headers)
    widths = [len(header) for header in headers]
    for row in rows:
        for index in range(columns):
            cell = str(row[index]) if index < len(row) else ""
            widths[index] = max(widths[index], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        padded = [
            str(cells[index] if index < len(cells) else "").ljust(widths[index])
            for index in range(columns)
        ]
        return "| " + " | ".join(padded) + " |"

    separator = "|-" + "-|-".join("-" * width for width in widths) + "-|"
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append(separator)
    lines.extend(fmt_row([str(cell) for cell in row]) for row in rows)
    return "\n".join(lines)


def render_series(
    series: Sequence[Tuple[float, int, int]],
    *,
    title: str = "",
    height: int = 12,
    width: int = 72,
    labels: Tuple[str, str] = ("idle", "collected"),
) -> str:
    """ASCII plot of the Fig. 10 curves (idle ``.`` / collected ``#``).

    ``series`` is a list of ``(time, idle_count, collected_count)``.
    """
    if not series:
        return f"{title}\n(empty series)"
    t_max = max(point[0] for point in series) or 1.0
    y_max = max(max(point[1], point[2]) for point in series) or 1
    grid = [[" "] * width for _ in range(height)]
    for time, idle, collected in series:
        x = min(width - 1, int(time / t_max * (width - 1)))
        for value, glyph in ((idle, "."), (collected, "#")):
            y = min(height - 1, int(value / y_max * (height - 1)))
            row = height - 1 - y
            grid[row][x] = glyph
    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(
        f"y: 0..{y_max} activities | x: 0..{t_max:.0f}s | "
        f"'.'={labels[0]} '#'={labels[1]}"
    )
    lines.extend("".join(row) for row in grid)
    return "\n".join(lines)
