"""Collection-latency metrics extracted from world traces.

Turns a finished run into the distributions a systems evaluation needs:
per-activity *reclamation latency* (garbage-to-collected time), split by
collection reason, with percentile summaries.  Used by tests and
available to downstream users profiling their own workloads.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core import events


@dataclass
class LatencySummary:
    """Percentile summary of a latency sample."""

    count: int
    minimum: float
    p50: float
    p90: float
    p99: float
    maximum: float
    mean: float

    @classmethod
    def of(cls, samples: Sequence[float]) -> "LatencySummary":
        if not samples:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan, nan)
        ordered = sorted(samples)
        return cls(
            count=len(ordered),
            minimum=ordered[0],
            p50=percentile(ordered, 50.0),
            p90=percentile(ordered, 90.0),
            p99=percentile(ordered, 99.0),
            maximum=ordered[-1],
            mean=sum(ordered) / len(ordered),
        )


def percentile(ordered: Sequence[float], q: float) -> float:
    """Nearest-rank-with-interpolation percentile of a *sorted* sample."""
    if not ordered:
        raise ValueError("empty sample")
    if len(ordered) == 1:
        return ordered[0]
    rank = (q / 100.0) * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    fraction = rank - low
    return ordered[low] * (1 - fraction) + ordered[high] * fraction


@dataclass
class CollectionReport:
    """Reclamation latencies of one run, keyed by collection reason."""

    released_at: float
    latencies_by_reason: Dict[str, List[float]] = field(default_factory=dict)

    @property
    def all_latencies(self) -> List[float]:
        merged: List[float] = []
        for samples in self.latencies_by_reason.values():
            merged.extend(samples)
        return merged

    def summary(self, reason: Optional[str] = None) -> LatencySummary:
        if reason is None:
            return LatencySummary.of(self.all_latencies)
        return LatencySummary.of(self.latencies_by_reason.get(reason, []))


def collection_report(world, released_at: float) -> CollectionReport:
    """Build a report from a world's trace.

    ``released_at`` is the instant the activities became garbage (e.g.
    when the driver dropped its stubs); latencies are termination times
    minus that instant.  Requires tracing to be enabled.
    """
    report = CollectionReport(released_at=released_at)
    for event in world.tracer.events(kind=events.ACTIVITY_TERMINATED):
        if event.time < released_at:
            continue
        reason = event.details.get("reason", "unknown")
        report.latencies_by_reason.setdefault(reason, []).append(
            event.time - released_at
        )
    return report
