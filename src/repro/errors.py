"""Exception hierarchy for the repro library.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still being able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """An invalid configuration was supplied (e.g. TTA too small)."""


class SimulationError(ReproError):
    """The discrete-event kernel was used incorrectly."""


class SchedulingInPastError(SimulationError):
    """An event was scheduled strictly before the current simulated time."""


class NetworkError(ReproError):
    """A message could not be routed or delivered."""


class UnknownDestinationError(NetworkError):
    """A message was addressed to a node unknown to the fabric."""


class RuntimeModelError(ReproError):
    """The active-object runtime was used incorrectly."""


class ActivityTerminatedError(RuntimeModelError):
    """An operation was attempted on a terminated activity."""


class NoSuchActivityError(RuntimeModelError):
    """An activity id does not resolve to a live activity."""


class RegistryError(RuntimeModelError):
    """A registry lookup or bind failed."""


class ProtocolError(ReproError):
    """The DGC protocol state machine was driven into an invalid state."""


class OracleError(ReproError):
    """The ground-truth garbage oracle was queried inconsistently."""
