"""RMI-style lease-based reference-listing DGC (acyclic only).

Models the collector the paper positions itself against (Sec. 1): each
referencer periodically renews a *lease* on every remote object it holds
a stub for ("dirty calls"); a remote object whose last lease expired is
garbage.  This collects exactly what the paper's heartbeat collects —
acyclic garbage — and, being based on reference listing, can never
reclaim a distributed cycle (the stubs inside the cycle keep renewing
each other's leases forever).

Differences from the paper's algorithm worth noting:

* no activity clocks, no consensus, no idleness requirement — RMI
  collects an object once *no stub anywhere* targets it, regardless of
  activity; our activity-model equivalent terminates a non-root activity
  whose lease set is empty (an unreferenced activity cannot receive
  requests anymore);
* "clean calls" (explicit dereference notifications) are modelled by the
  tag-death hook, which simply stops renewing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.runtime.activeobject import Activity
from repro.runtime.ids import ActivityId
from repro.runtime.proxy import Proxy, RemoteRef, StubTag
from repro.sim.timers import PeriodicTimer


@dataclass(frozen=True)
class RmiDgcConfig:
    """Lease parameters (RMI default lease is 10 minutes; renewal happens
    at half the lease)."""

    lease_s: float = 600.0

    def __post_init__(self) -> None:
        if self.lease_s <= 0:
            raise ConfigurationError(f"lease must be positive: {self.lease_s}")

    @property
    def renew_period_s(self) -> float:
        return self.lease_s / 2.0


@dataclass(frozen=True)
class _DirtyCall:
    """The wire payload of a lease renewal."""

    sender: ActivityId
    lease_s: float


@dataclass
class _HeldLease:
    holder: ActivityId
    expires_at: float


class RmiDgcCollector:
    """Per-activity lease-based collector."""

    def __init__(self, activity: Activity, config: RmiDgcConfig) -> None:
        self.activity = activity
        self.config = config
        self._kernel = activity.node.kernel
        self._node = activity.node
        self.self_ref = RemoteRef(activity.id, activity.node.name)
        #: Remote objects we hold stubs for (we renew their leases).
        self._renewing: Dict[ActivityId, RemoteRef] = {}
        self._tag_dead: Dict[ActivityId, bool] = {}
        #: Leases granted to our referencers.
        self._leases: Dict[ActivityId, _HeldLease] = {}
        self._grace_until = self._kernel.now + config.lease_s
        self._stopped = False
        self.dirty_calls_sent = 0
        self._timer = PeriodicTimer(
            self._kernel,
            config.renew_period_s,
            self._tick,
            initial_delay=activity.node.rng_registry.stream(
                f"rmi:{activity.id}"
            ).uniform(0.0, config.renew_period_s),
            label=f"rmi.tick:{activity.id}",
        )

    # -- runtime hooks ----------------------------------------------------

    def on_became_idle(self) -> None:
        """RMI has no idleness concept; nothing to do."""

    def on_reference_deserialized(self, proxy: Proxy) -> None:
        if self._stopped:
            return
        self._renewing[proxy.activity_id] = proxy.ref
        self._tag_dead[proxy.activity_id] = False
        # An immediate dirty call on acquisition, as RMI does.
        self._send_dirty(proxy.ref)

    def on_reference_dropped(self, tag: StubTag) -> None:
        if self._stopped:
            return
        # Clean call: stop renewing; the remote lease will expire.
        if self._tag_dead.get(tag.target) is not None:
            self._tag_dead[tag.target] = True

    def on_terminated(self) -> None:
        self._stopped = True
        self._timer.stop()

    # -- wire handlers ------------------------------------------------------

    def on_dgc_message(self, message: _DirtyCall) -> None:
        if self._stopped:
            return
        self._leases[message.sender] = _HeldLease(
            message.sender, self._kernel.now + message.lease_s
        )

    def on_dgc_response(self, response) -> None:
        """RMI dirty calls need no protocol response; ignore."""

    # -- periodic renewal ----------------------------------------------------

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self._kernel.now
        for target, ref in list(self._renewing.items()):
            if self._tag_dead.get(target):
                del self._renewing[target]
                del self._tag_dead[target]
                continue
            self._send_dirty(ref)
        expired = [
            holder
            for holder, lease in self._leases.items()
            if lease.expires_at <= now
        ]
        for holder in expired:
            del self._leases[holder]
        if (
            not self._leases
            and now > self._grace_until
            and self.activity.is_idle()
        ):
            # No live lease and nothing being served: unreferenced.
            # (Real RMI also waits for local in-progress calls to end.)
            self._timer.stop()
            self.activity.terminate("acyclic")

    def _send_dirty(self, ref: RemoteRef) -> None:
        self.dirty_calls_sent += 1
        self._node.send_dgc_message(
            ref, _DirtyCall(self.activity.id, self.config.lease_s)
        )


def rmi_collector_factory(config: Optional[RmiDgcConfig] = None):
    """``World(collector_factory=rmi_collector_factory(...))``."""
    resolved = config if config is not None else RmiDgcConfig()

    def factory(activity: Activity) -> RmiDgcCollector:
        return RmiDgcCollector(activity, resolved)

    return factory
