"""Veiga & Ferreira-style cycle detection messages (CDM baseline).

The paper's related-work discussion (Sec. 6) characterises the Veiga &
Ferreira collector [4]: "cycle detection messages traverse the reference
graph and grow information about it.  Referencers are called dependencies
... A garbage cycle is identified as such when it has no more unresolved
dependencies ... the growth of the message is limited only by the total
size of the distributed system, so the communication overhead can become
large."

This module implements a faithful *skeleton* of that idea on our
runtime, sufficient for the space-complexity comparison (DESIGN.md
``baseline-veiga``):

* a suspect idle activity launches a CDM carrying the set of visited
  activities and the set of unresolved dependencies (referencer IDs not
  yet visited);
* the CDM hops to an unresolved dependency; a busy (or root) activity
  aborts the detection; an idle one marks itself visited and adds its own
  referencers as dependencies;
* when no unresolved dependency remains, every visited activity is
  garbage and is terminated.

The CDM wire size is modelled as ``base + per_id * |visited ∪ pending|``,
so the growth claim is directly measurable.  Referencer IDs are learnt
the same way as in the paper's algorithm (from periodic heartbeats, which
double as the acyclic collector); the CDM contacts referencers directly —
the extra connectivity requirement is precisely one of the drawbacks the
paper's algorithm avoids.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Set

from repro.errors import ConfigurationError
from repro.runtime.activeobject import Activity
from repro.runtime.ids import ActivityId
from repro.runtime.proxy import Proxy, RemoteRef, StubTag
from repro.sim.timers import PeriodicTimer

_cdm_ids = itertools.count(1)


@dataclass(frozen=True)
class VeigaConfig:
    """Heartbeat/CDM parameters and the CDM size model."""

    heartbeat_s: float = 30.0
    alone_after_s: float = 90.0
    #: Minimum idle time before an activity volunteers a CDM.
    suspect_after_s: float = 60.0
    cdm_base_bytes: int = 64
    cdm_per_id_bytes: int = 32

    def __post_init__(self) -> None:
        if self.alone_after_s <= 2 * self.heartbeat_s:
            raise ConfigurationError(
                "alone_after must exceed two heartbeats for safe "
                "acyclic collection"
            )


@dataclass(frozen=True)
class _Heartbeat:
    sender: ActivityId
    sender_ref: RemoteRef


@dataclass(frozen=True)
class _Cdm:
    """A cycle detection message."""

    cdm_id: int
    originator: ActivityId
    visited: FrozenSet[ActivityId]
    pending: FrozenSet[ActivityId]
    #: Remote refs for every activity named in the CDM, so the detection
    #: can hop and, on success, deliver the verdict.
    directory: tuple

    def size_ids(self) -> int:
        return len(self.visited | self.pending)


@dataclass(frozen=True)
class _Verdict:
    cdm_id: int
    members: FrozenSet[ActivityId]


class VeigaCollector:
    """Per-activity CDM collector."""

    def __init__(self, activity: Activity, config: VeigaConfig) -> None:
        self.activity = activity
        self.config = config
        self._kernel = activity.node.kernel
        self._node = activity.node
        self.self_ref = RemoteRef(activity.id, activity.node.name)
        self._referencers: Dict[ActivityId, float] = {}
        self._referencer_refs: Dict[ActivityId, RemoteRef] = {}
        self._renewing: Dict[ActivityId, RemoteRef] = {}
        self._tag_dead: Dict[ActivityId, bool] = {}
        self._last_heartbeat_in = self._kernel.now
        self._idle_since: Optional[float] = self._kernel.now
        self._cdm_seen: Set[int] = set()
        self._last_cdm_launch = -float("inf")
        self._stopped = False
        self.cdm_hops = 0
        self.max_cdm_ids = 0
        self.cdm_bytes_sent = 0
        rng = activity.node.rng_registry.stream(f"veiga:{activity.id}")
        self._timer = PeriodicTimer(
            self._kernel,
            config.heartbeat_s,
            self._tick,
            initial_delay=rng.uniform(0.0, config.heartbeat_s),
            label=f"veiga.tick:{activity.id}",
        )

    # -- runtime hooks ----------------------------------------------------

    def on_became_idle(self) -> None:
        self._idle_since = self._kernel.now

    def on_reference_deserialized(self, proxy: Proxy) -> None:
        if self._stopped:
            return
        self._renewing[proxy.activity_id] = proxy.ref
        self._tag_dead[proxy.activity_id] = False

    def on_reference_dropped(self, tag: StubTag) -> None:
        if tag.target in self._tag_dead:
            self._tag_dead[tag.target] = True

    def on_terminated(self) -> None:
        self._stopped = True
        self._timer.stop()

    # -- wire handlers ------------------------------------------------------

    def on_dgc_message(self, message) -> None:
        if self._stopped:
            return
        if isinstance(message, _Heartbeat):
            self._referencers[message.sender] = self._kernel.now
            self._referencer_refs[message.sender] = message.sender_ref
            self._last_heartbeat_in = self._kernel.now
        elif isinstance(message, _Cdm):
            self._on_cdm(message)
        elif isinstance(message, _Verdict):
            self._on_verdict(message)

    def on_dgc_response(self, response) -> None:
        """The CDM protocol has no responses; detection rides messages."""

    # -- heartbeat / acyclic path ------------------------------------------

    def _tick(self) -> None:
        if self._stopped:
            return
        now = self._kernel.now
        for target, ref in list(self._renewing.items()):
            if self._tag_dead.get(target):
                del self._renewing[target]
                del self._tag_dead[target]
                continue
            self._node.send_dgc_message(
                ref, _Heartbeat(self.activity.id, self.self_ref)
            )
        for referencer, last in list(self._referencers.items()):
            if now - last > self.config.alone_after_s:
                del self._referencers[referencer]
                self._referencer_refs.pop(referencer, None)
        if not self.activity.is_idle():
            return
        if (
            not self._referencers
            and now - self._last_heartbeat_in > self.config.alone_after_s
        ):
            self._timer.stop()
            self.activity.terminate("acyclic")
            return
        if (
            self._idle_since is not None
            and now - self._idle_since > self.config.suspect_after_s
            and now - self._last_cdm_launch > self.config.alone_after_s
            and self._referencers
        ):
            self._last_cdm_launch = now
            self._launch_cdm()

    # -- cyclic path ----------------------------------------------------------

    def _launch_cdm(self) -> None:
        cdm = _Cdm(
            cdm_id=next(_cdm_ids),
            originator=self.activity.id,
            visited=frozenset([self.activity.id]),
            pending=frozenset(self._referencers) - {self.activity.id},
            directory=tuple(
                (aid, ref) for aid, ref in self._referencer_refs.items()
            )
            + ((self.activity.id, self.self_ref),),
        )
        self._cdm_seen.add(cdm.cdm_id)
        self._forward_cdm(cdm)

    def _on_cdm(self, cdm: _Cdm) -> None:
        if self.activity.id not in cdm.pending:
            return  # stale hop (already resolved by a concurrent copy)
        if not self.activity.is_idle():
            return  # busy activity: the detection dies here
        visited = cdm.visited | {self.activity.id}
        pending = (cdm.pending | frozenset(self._referencers)) - visited
        directory = dict(cdm.directory)
        directory[self.activity.id] = self.self_ref
        directory.update(self._referencer_refs)
        new_cdm = _Cdm(
            cdm_id=cdm.cdm_id,
            originator=cdm.originator,
            visited=visited,
            pending=pending,
            directory=tuple(directory.items()),
        )
        if not pending:
            self._broadcast_verdict(new_cdm)
            return
        self._forward_cdm(new_cdm)

    def _forward_cdm(self, cdm: _Cdm) -> None:
        directory = dict(cdm.directory)
        target = next(iter(sorted(cdm.pending)))
        ref = directory.get(target)
        if ref is None:
            return  # unknown dependency: detection cannot proceed
        self.cdm_hops += 1
        self.max_cdm_ids = max(self.max_cdm_ids, cdm.size_ids())
        size = (
            self.config.cdm_base_bytes
            + self.config.cdm_per_id_bytes * cdm.size_ids()
        )
        self.cdm_bytes_sent += size
        self._node.send_dgc_message(ref, cdm, size_bytes=size)

    def _broadcast_verdict(self, cdm: _Cdm) -> None:
        directory = dict(cdm.directory)
        verdict = _Verdict(cdm.cdm_id, cdm.visited)
        for member in cdm.visited:
            if member == self.activity.id:
                continue
            ref = directory.get(member)
            if ref is not None:
                self._node.send_dgc_message(ref, verdict)
        self._timer.stop()
        self.activity.terminate("cyclic")

    def _on_verdict(self, verdict: _Verdict) -> None:
        if self.activity.id not in verdict.members or self._stopped:
            return
        self._timer.stop()
        self.activity.terminate("cyclic")


def veiga_collector_factory(config: Optional[VeigaConfig] = None):
    """``World(collector_factory=veiga_collector_factory(...))``."""
    resolved = config if config is not None else VeigaConfig()

    def factory(activity: Activity) -> VeigaCollector:
        return VeigaCollector(activity, resolved)

    return factory
