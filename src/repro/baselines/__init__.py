"""Baseline distributed garbage collectors for comparison.

* :mod:`repro.baselines.rmi` — a lease-based reference-listing DGC in the
  style of Java RMI's (paper Sec. 1/6): collects acyclic garbage with a
  cost profile similar to the paper's heartbeat, but is structurally
  unable to collect cycles.
* :mod:`repro.baselines.veiga` — a cycle-detection-message traversal in
  the style of Veiga & Ferreira [4]: complete, but its messages grow with
  the explored subgraph ("the growth of the message is limited only by
  the total size of the distributed system").
* :mod:`repro.baselines.lefessant` — a simplified mark-propagation
  collector in the style of Le Fessant [13], used for qualitative
  comparison of the related-work section's claims.

These baselines implement the same collector interface the runtime
expects (attach with ``World(collector_factory=...)``), so every workload
runs unmodified under any of them.
"""

from repro.baselines.rmi import RmiDgcCollector, RmiDgcConfig, rmi_collector_factory
from repro.baselines.veiga import (
    VeigaCollector,
    VeigaConfig,
    veiga_collector_factory,
)
from repro.baselines.lefessant import (
    LeFessantCollector,
    LeFessantConfig,
    lefessant_collector_factory,
)

__all__ = [
    "RmiDgcCollector",
    "RmiDgcConfig",
    "rmi_collector_factory",
    "VeigaCollector",
    "VeigaConfig",
    "veiga_collector_factory",
    "LeFessantCollector",
    "LeFessantConfig",
    "lefessant_collector_factory",
]
