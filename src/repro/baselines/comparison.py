"""Cross-collector comparison harness.

Runs the same workload under the paper's DGC and each baseline, giving
the qualitative table the related-work section argues from:

=================  ========  =======  =============================
collector          acyclic   cyclic   cost signature
=================  ========  =======  =============================
paper (this work)  yes       yes      fixed-size messages, per-edge
rmi                yes       no       fixed-size leases, per-edge
veiga              yes       yes      messages grow with cycle size
lefessant          yes       yes*     per-edge marks (*quiescent)
=================  ========  =======  =============================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.baselines.lefessant import LeFessantConfig, lefessant_collector_factory
from repro.baselines.rmi import RmiDgcConfig, rmi_collector_factory
from repro.baselines.veiga import VeigaConfig, veiga_collector_factory
from repro.core.config import DgcConfig
from repro.net.topology import uniform_topology
from repro.workloads.app import release_all
from repro.workloads.synthetic import build_chain, build_ring
from repro.world import World


@dataclass
class CollectorOutcome:
    """Behaviour of one collector on the chain+ring probe workload."""

    name: str
    chain_collected: bool
    ring_collected: bool
    dgc_bytes: int
    horizon_s: float


def _world_for(name: str, beat: float, seed: int) -> World:
    topology = uniform_topology(4)
    if name == "paper":
        return World(
            topology, dgc=DgcConfig(ttb=beat, tta=3 * beat), seed=seed
        )
    factories: Dict[str, Callable] = {
        "rmi": rmi_collector_factory(RmiDgcConfig(lease_s=3 * beat)),
        "veiga": veiga_collector_factory(
            VeigaConfig(
                heartbeat_s=beat,
                alone_after_s=3 * beat,
                suspect_after_s=2 * beat,
            )
        ),
        "lefessant": lefessant_collector_factory(
            LeFessantConfig(heartbeat_s=beat, alone_after_s=3 * beat)
        ),
    }
    return World(
        topology, dgc=None, collector_factory=factories[name], seed=seed
    )


COLLECTORS = ("paper", "rmi", "veiga", "lefessant")


def run_probe(
    name: str,
    *,
    chain_length: int = 3,
    ring_size: int = 3,
    beat: float = 1.0,
    horizon_beats: float = 120.0,
    seed: int = 1,
) -> CollectorOutcome:
    """Chain (acyclic probe) + ring (cyclic probe) under one collector."""
    world = _world_for(name, beat, seed)
    driver = world.create_driver()
    chain = build_chain(world, driver, chain_length, name_prefix="chain")
    ring = build_ring(world, driver, ring_size, name_prefix="ring")
    world.run_for(2.0)
    chain_ids = {proxy.activity_id for proxy in chain}
    ring_ids = {proxy.activity_id for proxy in ring}
    release_all(driver, chain + ring)
    horizon = horizon_beats * beat
    world.kernel.run_until_quiescent(world.all_collected, beat, horizon)
    live = {activity.id for activity in world.live_non_roots()}
    return CollectorOutcome(
        name=name,
        chain_collected=not (chain_ids & live),
        ring_collected=not (ring_ids & live),
        dgc_bytes=world.accountant.dgc_bytes,
        horizon_s=horizon,
    )


def run_all_probes(**kwargs) -> List[CollectorOutcome]:
    """Run the probe under every collector."""
    return [run_probe(name, **kwargs) for name in COLLECTORS]
