"""DET — determinism lint for the deterministic core.

Byte-identical sharded replay and the bit-identical equivalence suites
require that nothing in ``core/``, ``sim/``, ``net/``, ``shard/`` or
``runtime/`` reads entropy or wall-clock time, iterates an unordered
set into a send/schedule order, or orders anything by ``id()``.  All
randomness is routed through the seeded streams of ``sim/rng.py``
(which carries its own reasoned suppression — it is the sanctioned
router), and all time comes from the kernel's virtual clock.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.model import Finding
from repro.analysis.walker import Rule, SourceFile, register_rule

_ENTROPY_MODULES = {"random", "secrets", "uuid"}
#: module-qualified calls that read entropy.
_ENTROPY_CALLS = {
    "os": {"urandom", "getrandom"},
    "uuid": {"uuid1", "uuid3", "uuid4", "uuid5"},
    "secrets": None,  # every attribute of secrets is entropy
    "random": None,  # module-level functions share one global stream
}

_WALLCLOCK_CALLS = {
    "time": {
        "time", "time_ns", "monotonic", "monotonic_ns",
        "perf_counter", "perf_counter_ns",
    },
    "datetime": {"now", "utcnow", "today"},
    "date": {"today"},
}
_WALLCLOCK_FROM_TIME = {
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns",
}

_SET_CALLS = {"set", "frozenset"}
_SET_METHODS = {
    "union", "intersection", "difference", "symmetric_difference",
}


@register_rule
class DetEntropy(Rule):
    id = "DET-entropy"
    summary = (
        "no entropy sources in the deterministic core: route all "
        "randomness through the seeded streams of sim/rng.py"
    )
    scope = "core"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    head = alias.name.split(".", 1)[0]
                    if head in _ENTROPY_MODULES or alias.name == "numpy.random":
                        yield self.finding(
                            sf, node,
                            f"import of entropy module {alias.name!r}: use "
                            f"a seeded RngRegistry stream instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                head = (node.module or "").split(".", 1)[0]
                if head in _ENTROPY_MODULES:
                    # ``random.Random`` instances are fine when seeded by
                    # the registry — importing the *class* is the one
                    # sanctioned use; the global-stream functions are not.
                    names = {alias.name for alias in node.names}
                    if head != "random" or names - {"Random"}:
                        yield self.finding(
                            sf, node,
                            f"from-import of entropy module "
                            f"{node.module!r}: use a seeded RngRegistry "
                            f"stream instead",
                        )
            elif isinstance(node, ast.Call):
                qualifier = _module_attr(node)
                if qualifier is None:
                    continue
                module, attr = qualifier
                allowed = _ENTROPY_CALLS.get(module, ())
                if allowed is None or (allowed and attr in allowed):
                    yield self.finding(
                        sf, node,
                        f"call to {module}.{attr}() reads process entropy: "
                        f"draw from a seeded RngRegistry stream instead",
                    )


@register_rule
class DetWallclock(Rule):
    id = "DET-wallclock"
    summary = (
        "no wall-clock reads in the deterministic core: simulated time "
        "comes from the kernel's virtual clock"
    )
    scope = "core"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                qualifier = _module_attr(node)
                if qualifier is None:
                    continue
                module, attr = qualifier
                flagged = _WALLCLOCK_CALLS.get(module)
                if flagged and attr in flagged:
                    yield self.finding(
                        sf, node,
                        f"call to {module}.{attr}() reads the wall clock: "
                        f"use the kernel's virtual now (or suppress with a "
                        f"reason if this is reporting-only)",
                    )
            elif isinstance(node, ast.ImportFrom) and node.module == "time":
                bad = sorted(
                    alias.name for alias in node.names
                    if alias.name in _WALLCLOCK_FROM_TIME
                )
                if bad:
                    yield self.finding(
                        sf, node,
                        f"from-import of wall-clock reader(s) "
                        f"{', '.join(bad)} from time",
                    )


@register_rule
class DetUnorderedIter(Rule):
    id = "DET-unordered-iter"
    summary = (
        "no iteration over unordered sets in the deterministic core: "
        "set iteration order varies with hash seeding and insertion "
        "history — wrap in sorted(...) before it feeds sends or "
        "scheduling"
    )
    scope = "core"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        seen: Set[tuple] = set()
        for node in ast.walk(sf.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp,
                       ast.GeneratorExp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for candidate in iters:
                if _is_set_expr(candidate):
                    key = (candidate.lineno, candidate.col_offset)
                    if key not in seen:
                        seen.add(key)
                        yield self.finding(
                            sf, candidate,
                            "iterating a set yields a hash-seed-dependent "
                            "order: wrap in sorted(...) (or keep an "
                            "ordered structure) before the order can feed "
                            "sends or scheduling",
                        )


@register_rule
class DetIdOrder(Rule):
    id = "DET-id-order"
    summary = (
        "no id()-dependent ordering in the deterministic core: object "
        "addresses vary run to run"
    )
    scope = "core"

    def check(self, sf: SourceFile, facts) -> Iterator[Finding]:
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.Call):
                name = None
                if isinstance(node.func, ast.Name):
                    name = node.func.id
                elif isinstance(node.func, ast.Attribute):
                    name = node.func.attr
                if name not in {"sorted", "min", "max", "sort"}:
                    continue
                for kw in node.keywords:
                    if kw.arg == "key" and _is_id_key(kw.value):
                        yield self.finding(
                            sf, node,
                            f"{name}(..., key=id) orders by object "
                            f"address, which varies run to run: key on a "
                            f"stable field instead",
                        )
            elif isinstance(node, ast.Compare):
                if any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                ) and any(
                    _is_id_call(side)
                    for side in [node.left, *node.comparators]
                ):
                    yield self.finding(
                        sf, node,
                        "comparing id() values orders by object address, "
                        "which varies run to run",
                    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------


def _module_attr(call: ast.Call):
    """``("time", "monotonic")`` for ``time.monotonic(...)``; None for
    anything that is not a plain module-attribute call."""
    func = call.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        return func.value.id, func.attr
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, ast.Set):
        return True
    if isinstance(node, ast.SetComp):
        return True
    if isinstance(node, ast.Call):
        if isinstance(node.func, ast.Name) and node.func.id in _SET_CALLS:
            return True
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _SET_METHODS
        ):
            return True
    return False


def _is_id_call(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id == "id"
    )


def _is_id_key(node: ast.AST) -> bool:
    if isinstance(node, ast.Name) and node.id == "id":
        return True
    if isinstance(node, ast.Lambda):
        return any(_is_id_call(inner) for inner in ast.walk(node.body))
    return False
