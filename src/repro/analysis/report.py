"""Reporters: render an :class:`AnalysisResult` for humans or CI.

The JSON shape is stable (``schema`` version bumps on breaking change)
so the CI artifact diffs cleanly between runs; the human format is one
``path:line:col  RULE  message`` line per finding, grep- and
editor-jump-friendly.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Dict

from repro.analysis.model import AnalysisResult

JSON_SCHEMA_VERSION = 1


def render_human(result: AnalysisResult) -> str:
    lines = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}  {finding.rule}  {finding.message}"
        )
    noun = "finding" if len(result.findings) == 1 else "findings"
    summary = (
        f"{len(result.findings)} {noun} in {result.files_scanned} files "
        f"({result.suppressed_count} suppressed, "
        f"{result.elapsed_s:.2f}s)"
    )
    if result.clean:
        summary = (
            f"clean: {result.files_scanned} files, all invariants hold "
            f"({result.suppressed_count} suppressed, "
            f"{result.elapsed_s:.2f}s)"
        )
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: AnalysisResult) -> str:
    counts: Dict[str, int] = Counter(f.rule for f in result.findings)
    payload = {
        "schema": JSON_SCHEMA_VERSION,
        "root": result.root,
        "rules_run": list(result.rules_run),
        "files_scanned": result.files_scanned,
        "suppressed": result.suppressed_count,
        "elapsed_s": round(result.elapsed_s, 3),
        "counts": dict(sorted(counts.items())),
        "findings": [
            {
                "rule": f.rule,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
            }
            for f in result.findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=False)
