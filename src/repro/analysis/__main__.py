"""CLI for the fabric-invariant analyzer.

Examples::

    python -m repro.analysis src/repro
    python -m repro.analysis src/repro --rule DET-entropy --rule KIND-literal
    python -m repro.analysis src/repro --format json --budget-seconds 10
    python -m repro.analysis --list-rules

Exit codes: ``0`` clean, ``1`` findings, ``2`` usage error or
wall-clock budget exceeded (the CI job uses ``--budget-seconds`` to
assert the pass stays cheap).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.report import render_human, render_json
from repro.analysis.walker import (
    META_PARSE,
    META_SUPPRESSION,
    Analyzer,
    all_rule_ids,
    rule_summaries,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description=(
            "Static analyzer for the fabric's load-bearing invariants: "
            "determinism (DET), kind-registry exhaustiveness (KIND), "
            "the SPMD shard contract (SPMD), and hot-path allocation "
            "discipline (HOT).  See ANALYSIS.md."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--rule", action="append", default=None, metavar="RULE-id",
        help="run only this rule (repeatable; default: all rules)",
    )
    parser.add_argument(
        "--format", choices=["human", "json"], default="human",
        help="report format (default: human)",
    )
    parser.add_argument(
        "--root", default=None,
        help="directory findings paths are reported relative to "
        "(default: the first scanned directory)",
    )
    parser.add_argument(
        "--budget-seconds", type=float, default=None,
        help="fail (exit 2) if the pass takes longer than this "
        "wall-clock budget — keeps the CI job honest about cost",
    )
    parser.add_argument(
        "--force-scope", action="store_true",
        help="treat every file as in every rule scope (fixture corpora "
        "and ad-hoc snippets; normally scoping follows the package "
        "layout)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule ids and what they enforce, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    if args.list_rules:
        summaries = dict(rule_summaries())
        summaries[META_PARSE] = (
            "engine pseudo-rule: a file that does not parse is a finding, "
            "not a crash"
        )
        summaries[META_SUPPRESSION] = (
            "engine pseudo-rule: suppressions must carry a reason and "
            "name known rules"
        )
        width = max(len(rule_id) for rule_id in summaries)
        for rule_id in sorted(summaries):
            print(f"{rule_id.ljust(width)}  {summaries[rule_id]}")
        return 0

    try:
        analyzer = Analyzer(
            args.paths,
            root=args.root,
            rules=args.rule,
            force_scope=args.force_scope,
        )
        result = analyzer.run()
    except (ValueError, FileNotFoundError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(render_json(result))
    else:
        print(render_human(result))

    if (
        args.budget_seconds is not None
        and result.elapsed_s > args.budget_seconds
    ):
        print(
            f"error: analysis took {result.elapsed_s:.2f}s, over the "
            f"--budget-seconds {args.budget_seconds:.2f}s budget",
            file=sys.stderr,
        )
        return 2
    return 0 if result.clean else 1


if __name__ == "__main__":
    sys.exit(main())
